#![warn(missing_docs)]

//! `global-cache-reuse` — facade crate re-exporting the whole workspace.
//!
//! Reproduction of Ding & Kennedy, *Improving Effective Bandwidth through
//! Compiler Enhancement of Global Cache Reuse* (IPPS 2001). See the README
//! for a tour and `DESIGN.md` for the system inventory.

pub use gcr_analysis as analysis;
pub use gcr_apps as apps;
pub use gcr_cache as cache;
pub use gcr_core as opt;
pub use gcr_exec as exec;
pub use gcr_frontend as frontend;
pub use gcr_ir as ir;
pub use gcr_reuse as reuse;
