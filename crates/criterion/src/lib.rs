#![warn(missing_docs)]

//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API. The build container cannot reach crates.io, so the
//! workspace's benches link against this shim: same surface
//! ([`Criterion::benchmark_group`], [`Bencher::iter`], `criterion_group!`,
//! `criterion_main!`), but measurement is a plain wall-clock mean over a
//! fixed number of iterations — no statistics, plots or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { name: format!("{name}/{param}") }
    }
}

/// Units processed per iteration, reported as a rate.
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    /// Mean seconds per iteration of the last `iter` call.
    last_secs: f64,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_secs = start.elapsed().as_secs_f64() / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { iters: self.sample_size, last_secs: 0.0 };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_secs > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / b.last_secs)
            }
            Some(Throughput::Bytes(n)) if b.last_secs > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / b.last_secs)
            }
            _ => String::new(),
        };
        println!("{}/{label}: {:.6} s/iter{rate}", self.name, b.last_secs);
    }

    /// Benchmarks `f` under `id` with `input` passed through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.name.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(&name.to_string(), f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, throughput: None, _c: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name.to_string(), f);
        self
    }
}

/// Bundles benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
