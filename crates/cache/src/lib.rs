#![warn(missing_docs)]

//! `gcr-cache` — cache, TLB and cycle-time simulation.
//!
//! Stands in for the R10K/R12K hardware counters of the paper's evaluation
//! (Section 4.2): set-associative LRU caches (L1 32 KB/32 B lines/2-way,
//! L2 1–4 MB/128 B lines/2-way on the paper's machines), a fully
//! associative LRU TLB, and a simple in-order cycle model that converts
//! instruction, flop and miss counts into an "execution time".
//!
//! The experiment binaries scale problem sizes down from the paper's
//! (513², 2K², class B) to keep simulated traces tractable, and scale the
//! simulated caches with them so that the problem-size : cache-size
//! geometry is preserved; [`CacheConfig::scaled`] produces those configs.
//!
//! A [`Cache`] simulates one set-associative LRU level; misses and
//! write-backs drive the memory-traffic accounting:
//!
//! ```
//! use gcr_cache::{Cache, CacheConfig};
//!
//! // 2 sets x 2 ways of 32-byte lines = 128 bytes.
//! let mut c = Cache::new(CacheConfig { size: 128, line: 32, assoc: 2 });
//! assert!(!c.access(0));       // cold miss
//! assert!(c.access(8));        // same line: hit
//! assert!(!c.access(64));      // different set: miss
//! assert_eq!((c.hits, c.misses), (1, 2));
//! ```
//!
//! [`MemoryHierarchy`] stacks L1/L2/TLB, [`HierarchySink`] feeds it from
//! the interpreter's address trace, and [`PhasedHierarchySink`] splits the
//! same totals per computation phase for the JSON reports.

pub mod assoc;
pub mod cost;
pub mod hierarchy;
pub mod levels;
pub mod multicap;
pub mod sim;
pub mod spec;

pub use assoc::{AssocResult, AssocSweepSink};
pub use cost::CostModel;
pub use hierarchy::{HierarchySink, MemoryHierarchy, MissCounts, PhasedHierarchySink};
pub use levels::{
    Inclusion, LevelCounts, MultiLevelCache, MultiLevelCounts, MultiLevelSink, MultiLevelSweepSink,
    Prefetch,
};
pub use multicap::{CapacitySweepSink, MultiHierarchySink};
pub use sim::{Cache, CacheConfig, Tlb, Victim};
pub use spec::{measure_hierarchy, HierarchyRun, HierarchySpec, SweepBin};
