#![warn(missing_docs)]

//! `gcr-cache` — cache, TLB and cycle-time simulation.
//!
//! Stands in for the R10K/R12K hardware counters of the paper's evaluation
//! (Section 4.2): set-associative LRU caches (L1 32 KB/32 B lines/2-way,
//! L2 1–4 MB/128 B lines/2-way on the paper's machines), a fully
//! associative LRU TLB, and a simple in-order cycle model that converts
//! instruction, flop and miss counts into an "execution time".
//!
//! The experiment binaries scale problem sizes down from the paper's
//! (513², 2K², class B) to keep simulated traces tractable, and scale the
//! simulated caches with them so that the problem-size : cache-size
//! geometry is preserved; [`CacheConfig::scaled`] produces those configs.

pub mod cost;
pub mod hierarchy;
pub mod sim;

pub use cost::CostModel;
pub use hierarchy::{HierarchySink, MemoryHierarchy, MissCounts};
pub use sim::{Cache, CacheConfig, Tlb};
