//! Single-pass set-associative capacity sweep.
//!
//! [`CapacitySweepSink`](crate::CapacitySweepSink) answers every *fully
//! associative* LRU capacity from one reuse-distance pass, but the paper's
//! machines were 2-way set-associative — conflict misses exist there that
//! no reuse-distance argument can see. [`AssocSweepSink`] closes that gap:
//! it fans one access stream out to any number of concrete
//! [`Cache`] geometries (ways × sets × line), each simulated exactly, so
//! one trace pass answers the whole associativity cross-product the same
//! way [`crate::MultiHierarchySink`] answers the hierarchy cross-product.
//!
//! ## Which monotonicity holds
//!
//! At a **fixed set count**, growing the number of ways can only remove
//! misses: the set mapping is unchanged, each set is an independent
//! fully-associative LRU stack, and a `w`-way stack's contents are always
//! a prefix of the `(w+1)`-way stack's contents (stack inclusion). The
//! `assoc` conformance oracle checks exactly this.
//!
//! At a **fixed capacity** the same claim is *false*: changing the way
//! count changes the set mapping, and a direct-mapped cache can beat full
//! LRU associativity outright (a cyclic sweep over capacity + 1 lines
//! makes full-LRU miss every access while direct mapping confines the
//! conflict to one set — see `fewer_ways_can_win_at_fixed_capacity`
//! below). The one fixed-capacity relation that *is* exact: with
//! `ways = capacity / line` there is a single set, and the cache **is**
//! the fully-associative LRU simulator, byte for byte.

use crate::sim::{Cache, CacheConfig};
use gcr_exec::{AccessEvent, TraceSink};

/// Demand counters of one swept configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssocResult {
    /// The geometry simulated.
    pub config: CacheConfig,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

/// One access stream fanned out to many exact set-associative LRU caches.
///
/// Unlike the reuse-distance sweep this costs one simulated cache per
/// configuration, but each access is a bounded `assoc`-entry scan, so a
/// handful of configurations stays within the same order of magnitude as
/// the Fenwick-tree distance pass (BENCH_sweep.json records the ratio on
/// the fig3 job set).
pub struct AssocSweepSink {
    caches: Vec<Cache>,
    refs: u64,
}

impl AssocSweepSink {
    /// A sweep over the given geometries (each validated by
    /// [`Cache::new`]).
    pub fn new(configs: &[CacheConfig]) -> Self {
        AssocSweepSink { caches: configs.iter().map(|&c| Cache::new(c)).collect(), refs: 0 }
    }

    /// References observed so far.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Demand misses of configuration `i`, in registration order.
    pub fn misses(&self, i: usize) -> u64 {
        self.caches[i].misses
    }

    /// Counters of every configuration, in registration order.
    pub fn results(&self) -> Vec<AssocResult> {
        self.caches
            .iter()
            .map(|c| AssocResult {
                config: c.config(),
                hits: c.hits,
                misses: c.misses,
                writebacks: c.writebacks,
            })
            .collect()
    }
}

impl TraceSink for AssocSweepSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.refs += 1;
        for c in &mut self.caches {
            c.access_rw(ev.addr, ev.is_write);
        }
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Configuration-major, like MultiHierarchySink: the caches are
        // independent, so each one sweeps the whole strip in stream order
        // with its tag arrays hot.
        self.refs += batch.len() as u64;
        for c in &mut self.caches {
            for k in 0..batch.iters as i64 {
                for sl in batch.slots {
                    c.access_rw(sl.addr_at(k), sl.is_write);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapacitySweepSink;
    use gcr_exec::{ExecEngine, Machine};
    use gcr_ir::ParamBinding;

    const SRC: &str = "
program p
param N
array A[N, N], B[N, N]
for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i], B[i, j])
  }
}
for i = 2, N {
  when [2, N - 1] B[i, i] = g(A[i, i - 1])
}
";

    fn run(sink: &mut impl TraceSink, engine: ExecEngine, n: i64) {
        let prog = gcr_frontend::parse(SRC).unwrap();
        let mut m = Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(engine);
        m.run(sink);
    }

    /// The whole point of the sink: its single pass must be bit-identical
    /// to one dedicated cache per configuration.
    #[test]
    fn fan_out_matches_dedicated_caches() {
        let configs = [
            CacheConfig { size: 256, line: 32, assoc: 1 },
            CacheConfig { size: 256, line: 32, assoc: 4 },
            CacheConfig { size: 1024, line: 64, assoc: 2 },
        ];
        let mut sweep = AssocSweepSink::new(&configs);
        run(&mut sweep, ExecEngine::Interp, 16);
        for (i, &cfg) in configs.iter().enumerate() {
            let mut c = Cache::new(cfg);
            struct One<'a>(&'a mut Cache);
            impl TraceSink for One<'_> {
                fn access(&mut self, ev: AccessEvent) {
                    self.0.access_rw(ev.addr, ev.is_write);
                }
            }
            run(&mut One(&mut c), ExecEngine::Interp, 16);
            assert_eq!(
                sweep.results()[i],
                AssocResult {
                    config: cfg,
                    hits: c.hits,
                    misses: c.misses,
                    writebacks: c.writebacks,
                }
            );
        }
    }

    /// Batched (VM strip) capture must equal the per-event (interpreter)
    /// reference on every counter — the `record_batch` fast path can never
    /// drift from the per-event semantics.
    #[test]
    fn batched_matches_per_event() {
        let configs = [
            CacheConfig { size: 128, line: 16, assoc: 2 },
            CacheConfig { size: 512, line: 32, assoc: 4 },
        ];
        let mut batched = AssocSweepSink::new(&configs);
        run(&mut batched, ExecEngine::Vm, 12);
        let mut per_event = AssocSweepSink::new(&configs);
        run(&mut per_event, ExecEngine::Interp, 12);
        assert_eq!(batched.refs(), per_event.refs());
        assert_eq!(batched.results(), per_event.results());
    }

    /// With one set (`ways = capacity / line`) the sink IS the fully
    /// associative simulator and must byte-equal the reuse-distance sweep.
    #[test]
    fn single_set_equals_fully_associative_sweep() {
        let line = 32u64;
        let caps = [2 * line, 7 * line, 40 * line];
        let configs: Vec<CacheConfig> = caps
            .iter()
            .map(|&c| CacheConfig {
                size: c as usize,
                line: line as usize,
                assoc: (c / line) as usize,
            })
            .collect();
        let mut assoc = AssocSweepSink::new(&configs);
        run(&mut assoc, ExecEngine::Vm, 14);
        let mut fa = CapacitySweepSink::new(line, &caps);
        run(&mut fa, ExecEngine::Vm, 14);
        for (i, &cap) in caps.iter().enumerate() {
            assert_eq!(assoc.misses(i), fa.misses(cap), "capacity {} lines", cap / line);
        }
    }

    /// Misses are monotone non-increasing in ways at a fixed *set count*
    /// (per-set LRU stack inclusion).
    #[test]
    fn more_ways_at_fixed_sets_never_miss_more() {
        let (line, sets) = (32usize, 4usize);
        let configs: Vec<CacheConfig> =
            (1..=6).map(|w| CacheConfig { size: sets * w * line, line, assoc: w }).collect();
        let mut sweep = AssocSweepSink::new(&configs);
        run(&mut sweep, ExecEngine::Vm, 18);
        let misses: Vec<u64> = (0..configs.len()).map(|i| sweep.misses(i)).collect();
        for w in misses.windows(2) {
            assert!(w[1] <= w[0], "stack inclusion violated: {misses:?}");
        }
    }

    /// The naive fixed-capacity claim is false: on a cyclic over-capacity
    /// sweep, full LRU associativity misses every access while direct
    /// mapping confines the conflict to one set. This is why the `assoc`
    /// oracle pins the set count, not the capacity (DESIGN.md §16).
    #[test]
    fn fewer_ways_can_win_at_fixed_capacity() {
        let line = 8usize;
        let capacity = 64usize; // 8 lines
        let fa = CacheConfig { size: capacity, line, assoc: 8 }; // 1 set
        let dm = CacheConfig { size: capacity, line, assoc: 1 }; // 8 sets
        let mut sweep = AssocSweepSink::new(&[fa, dm]);
        for _ in 0..4 {
            for i in 0..9u64 {
                // capacity + 1 lines
                sweep.access(AccessEvent {
                    addr: i * line as u64,
                    array: gcr_ir::ArrayId::from_index(0),
                    ref_id: gcr_ir::RefId::from_index(0),
                    stmt: gcr_ir::StmtId::from_index(0),
                    is_write: false,
                });
            }
        }
        let (fa_misses, dm_misses) = (sweep.misses(0), sweep.misses(1));
        assert_eq!(fa_misses, 36, "full LRU misses every access of the cyclic sweep");
        assert!(
            dm_misses < fa_misses,
            "direct-mapped ({dm_misses}) must beat full LRU ({fa_misses}) here"
        );
    }
}
