//! Set-associative LRU cache and TLB simulators.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's L1: 32 KB, 32-byte lines, 2-way (both R10K and R12K).
    pub fn l1_mips() -> Self {
        CacheConfig { size: 32 << 10, line: 32, assoc: 2 }
    }

    /// The paper's Origin2000 L2: 4 MB, 128-byte lines, 2-way.
    pub fn l2_origin2000() -> Self {
        CacheConfig { size: 4 << 20, line: 128, assoc: 2 }
    }

    /// The paper's Octane L2: 1 MB, 128-byte lines, 2-way.
    pub fn l2_octane() -> Self {
        CacheConfig { size: 1 << 20, line: 128, assoc: 2 }
    }

    /// Shrinks capacity by `factor` (for scaled-down problem sizes),
    /// keeping line size and associativity.
    pub fn scaled(self, factor: usize) -> Self {
        let size = (self.size / factor.max(1)).max(self.line * self.assoc);
        CacheConfig { size, ..self }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / self.line / self.assoc).max(1)
    }
}

/// An evicted line: `(line base address, dirty)`. `None` when the fill
/// found a free way.
pub type Victim = Option<(u64, bool)>;

/// A set-associative write-back, write-allocate cache with true LRU
/// replacement and dirty-line tracking (for memory-traffic accounting —
/// the paper's subject is bandwidth, i.e. *data transferred*).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// Per set: `(tag, dirty)` ordered most-recently-used first.
    sets: Vec<Vec<(u64, bool)>>,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.assoc >= 1);
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (size {}/line {}/assoc {})",
            cfg.size,
            cfg.line,
            cfg.assoc
        );
        Cache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Simulates one read access; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false)
    }

    /// Simulates one access; stores mark the line dirty. Returns `true` on
    /// hit.
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool) -> bool {
        self.access_evict(addr, is_write).0
    }

    /// Simulates one access, additionally reporting the line evicted to
    /// make room (its base address and dirty bit). Multi-level models use
    /// the victim to drive write-back propagation and back-invalidation;
    /// plain callers use [`Cache::access_rw`]. Dirty victims still bump
    /// [`Cache::writebacks`] exactly as before.
    #[inline]
    pub fn access_evict(&mut self, addr: u64, is_write: bool) -> (bool, Victim) {
        let block = addr >> self.line_shift;
        let set_idx = (block & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        let tag = block >> self.set_mask.count_ones();
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            // Move to MRU position.
            set[..=pos].rotate_right(1);
            set[0].1 |= is_write;
            self.hits += 1;
            (true, None)
        } else {
            let mut victim = None;
            if set.len() == self.cfg.assoc {
                if let Some((vtag, dirty)) = set.pop() {
                    if dirty {
                        self.writebacks += 1;
                    }
                    victim = Some((
                        ((vtag << self.set_mask.count_ones()) | set_idx as u64) << self.line_shift,
                        dirty,
                    ));
                }
            }
            set.insert(0, (tag, is_write));
            self.misses += 1;
            (false, victim)
        }
    }

    /// True when the line holding `addr` is resident. Does not touch LRU
    /// order or counters.
    pub fn contains(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let tag = block >> self.set_mask.count_ones();
        self.sets[(block & self.set_mask) as usize].iter().any(|&(t, _)| t == tag)
    }

    /// Inserts the line holding `addr` at MRU position *without* counting
    /// a demand hit or miss — the primitive behind prefetch fills and
    /// exclusive-hierarchy line movement. A resident line is promoted and
    /// its dirty bit OR-ed. Returns the evicted victim, if any; the caller
    /// decides what traffic the victim represents (nothing is added to
    /// [`Cache::writebacks`]).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Victim {
        let block = addr >> self.line_shift;
        let set_idx = (block & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        let tag = block >> self.set_mask.count_ones();
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            set[..=pos].rotate_right(1);
            set[0].1 |= dirty;
            return None;
        }
        let mut victim = None;
        if set.len() == self.cfg.assoc {
            if let Some((vtag, vdirty)) = set.pop() {
                victim = Some((
                    ((vtag << self.set_mask.count_ones()) | set_idx as u64) << self.line_shift,
                    vdirty,
                ));
            }
        }
        set.insert(0, (tag, dirty));
        victim
    }

    /// Removes the line holding `addr` if resident, returning its dirty
    /// bit. No counters are touched — extraction models exclusive-hierarchy
    /// promotion and back-invalidation, not a demand access.
    pub fn extract(&mut self, addr: u64) -> Option<bool> {
        let block = addr >> self.line_shift;
        let set = &mut self.sets[(block & self.set_mask) as usize];
        let tag = block >> self.set_mask.count_ones();
        let pos = set.iter().position(|&(t, _)| t == tag)?;
        Some(set.remove(pos).1)
    }

    /// Marks the line holding `addr` dirty if resident (LRU order
    /// unchanged). Returns `false` when the line is absent — inclusive
    /// hierarchies use that to detect a write-back that must skip a level.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = &mut self.sets[(block & self.set_mask) as usize];
        let tag = block >> self.set_mask.count_ones();
        match set.iter_mut().find(|(t, _)| *t == tag) {
            Some(e) => {
                e.1 = true;
                true
            }
            None => false,
        }
    }

    /// Drops every resident line overlapping `[addr, addr + len)` —
    /// back-invalidation when an enclosing line leaves a lower inclusive
    /// level. Returns how many of the dropped lines were dirty (their
    /// contents fold into the departing lower-level line).
    pub fn invalidate_range(&mut self, addr: u64, len: u64) -> u64 {
        let line = self.cfg.line as u64;
        let first = addr >> self.line_shift;
        let last = (addr + len.max(1) - 1) >> self.line_shift;
        let mut dirty = 0;
        for block in first..=last {
            if let Some(true) = self.extract(block * line) {
                dirty += 1;
            }
        }
        dirty
    }

    /// Bytes transferred from the next level: fills plus write-backs.
    pub fn traffic_bytes(&self) -> u64 {
        (self.misses + self.writebacks) * self.cfg.line as u64
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

/// A fully associative LRU TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    inner: Cache,
    /// Page size in bytes.
    pub page: usize,
}

impl Tlb {
    /// Builds a TLB with `entries` entries of `page`-byte pages.
    pub fn new(entries: usize, page: usize) -> Self {
        Tlb {
            inner: Cache::new(CacheConfig { size: entries * page, line: page, assoc: entries }),
            page,
        }
    }

    /// The paper's machines: 64-entry fully associative, 16 KB pages
    /// (IRIX default page size on Origin2000/Octane).
    pub fn mips_r10k() -> Self {
        Tlb::new(64, 16 << 10)
    }

    /// Scaled-down TLB for scaled problem sizes.
    pub fn scaled(entries: usize, page: usize) -> Self {
        Tlb::new(entries, page)
    }

    /// Simulates one access; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.inner.misses
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.inner.hits
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        // 2 sets, 1 way, 8-byte lines: addresses 0 and 16 collide.
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 1 });
        assert!(!c.access(0));
        assert!(!c.access(16));
        assert!(!c.access(0), "evicted by 16");
        assert!(!c.access(8), "other set cold");
        assert!(c.access(8));
    }

    #[test]
    fn two_way_lru() {
        // 1 set, 2 ways, 8-byte lines.
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        c.access(0); // [0]
        c.access(8); // [8,0]
        assert!(c.access(0)); // [0,8]
        c.access(16); // evicts 8 -> [16,0]
        assert!(c.access(0));
        assert!(!c.access(8), "8 was LRU-evicted");
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 32, assoc: 2 });
        assert!(!c.access(0));
        assert!(c.access(8));
        assert!(c.access(24));
        assert!(!c.access(32));
    }

    #[test]
    fn lru_sweep_thrash() {
        // Sweep of 2x capacity with LRU: every access misses on re-sweep.
        let cfg = CacheConfig { size: 256, line: 8, assoc: 2 };
        let mut c = Cache::new(cfg);
        let lines = (2 * cfg.size / cfg.line) as u64;
        for _ in 0..3 {
            for i in 0..lines {
                c.access(i * 8);
            }
        }
        assert_eq!(c.hits, 0, "LRU provides no reuse under cyclic over-capacity sweep");
    }

    #[test]
    fn fully_assoc_tlb_lru() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0));
        assert!(!t.access(4096));
        assert!(t.access(100));
        assert!(!t.access(3 * 4096));
        assert!(!t.access(4097 + 4096), "page 1 evicted? no wait");
        // page 1 (4096..8192) was MRU after access(4096); access(100) made
        // page 0 MRU; access(3*4096) evicted page 1.
        assert_eq!(t.misses(), 4);
    }

    #[test]
    fn scaled_config_keeps_geometry() {
        let c = CacheConfig::l2_origin2000().scaled(64);
        assert_eq!(c.size, (4 << 20) / 64);
        assert_eq!(c.line, 128);
        assert_eq!(c.assoc, 2);
        let _ = Cache::new(c);
    }

    #[test]
    fn writebacks_only_for_dirty_lines() {
        // 1 set, 1 way: every new line evicts the previous one.
        let mut c = Cache::new(CacheConfig { size: 8, line: 8, assoc: 1 });
        c.access_rw(0, false); // clean fill
        c.access_rw(8, false); // evicts clean line: no write-back
        assert_eq!(c.writebacks, 0);
        c.access_rw(16, true); // dirty fill (evicts clean)
        assert_eq!(c.writebacks, 0);
        c.access_rw(24, false); // evicts dirty line
        assert_eq!(c.writebacks, 1);
        assert_eq!(c.traffic_bytes(), (4 + 1) * 8);
    }

    #[test]
    fn dirty_bit_sticks_until_eviction() {
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        c.access_rw(0, true);
        c.access_rw(0, false); // read does not clean it
        c.access_rw(8, false);
        c.access_rw(16, false); // evicts LRU line 0 (dirty)
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn streaming_write_traffic_doubles() {
        // Write-streaming: every line filled once and written back once.
        let cfg = CacheConfig { size: 64, line: 8, assoc: 2 };
        let mut c = Cache::new(cfg);
        for i in 0..64u64 {
            c.access_rw(i * 8, true);
        }
        assert_eq!(c.misses, 64);
        // All but the 8 resident lines written back so far.
        assert_eq!(c.writebacks, 64 - 8);
    }

    #[test]
    fn access_evict_reports_victim_address() {
        // 2 sets, 1 way, 8-byte lines: 0 and 16 share set 0.
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 1 });
        assert_eq!(c.access_evict(0, true), (false, None));
        let (hit, victim) = c.access_evict(16, false);
        assert!(!hit);
        assert_eq!(victim, Some((0, true)), "dirty line 0 evicted by 16");
        assert_eq!(c.writebacks, 1, "access_evict keeps the write-back counter");
    }

    #[test]
    fn fill_is_stat_neutral_and_promotes() {
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        assert_eq!(c.fill(0, false), None);
        assert_eq!(c.fill(8, false), None);
        assert_eq!(c.fill(0, true), None, "resident: promote + dirty, no victim");
        // 16 evicts the LRU line 8; line 0 stays (it was promoted).
        assert_eq!(c.fill(16, false), Some((8, false)));
        assert!(c.contains(0));
        assert_eq!((c.hits, c.misses, c.writebacks), (0, 0, 0), "fill counts nothing");
        assert_eq!(c.extract(0), Some(true), "dirty bit OR-ed by the resident fill");
        assert_eq!(c.extract(0), None);
    }

    #[test]
    fn invalidate_range_drops_enclosed_lines() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 8, assoc: 8 });
        c.fill(0, true);
        c.fill(8, false);
        c.fill(16, true);
        c.fill(32, true); // outside the invalidated 32-byte enclosing line
        assert_eq!(c.invalidate_range(0, 32), 2, "two dirty lines in [0,32)");
        assert!(!c.contains(0) && !c.contains(8) && !c.contains(16));
        assert!(c.contains(32));
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        assert!(!c.mark_dirty(0));
        c.fill(0, false);
        assert!(c.mark_dirty(0));
        assert_eq!(c.extract(0), Some(true));
    }

    #[test]
    fn miss_rate_reported() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 8, assoc: 2 });
        c.access(0);
        c.access(0);
        assert_eq!(c.miss_rate(), 0.5);
        c.reset();
        assert_eq!(c.accesses(), 0);
    }
}
