//! Set-associative LRU cache and TLB simulators.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's L1: 32 KB, 32-byte lines, 2-way (both R10K and R12K).
    pub fn l1_mips() -> Self {
        CacheConfig { size: 32 << 10, line: 32, assoc: 2 }
    }

    /// The paper's Origin2000 L2: 4 MB, 128-byte lines, 2-way.
    pub fn l2_origin2000() -> Self {
        CacheConfig { size: 4 << 20, line: 128, assoc: 2 }
    }

    /// The paper's Octane L2: 1 MB, 128-byte lines, 2-way.
    pub fn l2_octane() -> Self {
        CacheConfig { size: 1 << 20, line: 128, assoc: 2 }
    }

    /// Shrinks capacity by `factor` (for scaled-down problem sizes),
    /// keeping line size and associativity.
    pub fn scaled(self, factor: usize) -> Self {
        let size = (self.size / factor.max(1)).max(self.line * self.assoc);
        CacheConfig { size, ..self }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / self.line / self.assoc).max(1)
    }
}

/// A set-associative write-back, write-allocate cache with true LRU
/// replacement and dirty-line tracking (for memory-traffic accounting —
/// the paper's subject is bandwidth, i.e. *data transferred*).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// Per set: `(tag, dirty)` ordered most-recently-used first.
    sets: Vec<Vec<(u64, bool)>>,
    /// Hit count.
    pub hits: u64,
    /// Miss count.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.assoc >= 1);
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (size {}/line {}/assoc {})",
            cfg.size,
            cfg.line,
            cfg.assoc
        );
        Cache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Simulates one read access; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false)
    }

    /// Simulates one access; stores mark the line dirty. Returns `true` on
    /// hit.
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool) -> bool {
        let block = addr >> self.line_shift;
        let set = &mut self.sets[(block & self.set_mask) as usize];
        let tag = block >> self.set_mask.count_ones();
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            // Move to MRU position.
            set[..=pos].rotate_right(1);
            set[0].1 |= is_write;
            self.hits += 1;
            true
        } else {
            if set.len() == self.cfg.assoc {
                if let Some((_, dirty)) = set.pop() {
                    if dirty {
                        self.writebacks += 1;
                    }
                }
            }
            set.insert(0, (tag, is_write));
            self.misses += 1;
            false
        }
    }

    /// Bytes transferred from the next level: fills plus write-backs.
    pub fn traffic_bytes(&self) -> u64 {
        (self.misses + self.writebacks) * self.cfg.line as u64
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

/// A fully associative LRU TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    inner: Cache,
    /// Page size in bytes.
    pub page: usize,
}

impl Tlb {
    /// Builds a TLB with `entries` entries of `page`-byte pages.
    pub fn new(entries: usize, page: usize) -> Self {
        Tlb {
            inner: Cache::new(CacheConfig { size: entries * page, line: page, assoc: entries }),
            page,
        }
    }

    /// The paper's machines: 64-entry fully associative, 16 KB pages
    /// (IRIX default page size on Origin2000/Octane).
    pub fn mips_r10k() -> Self {
        Tlb::new(64, 16 << 10)
    }

    /// Scaled-down TLB for scaled problem sizes.
    pub fn scaled(entries: usize, page: usize) -> Self {
        Tlb::new(entries, page)
    }

    /// Simulates one access; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.inner.misses
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.inner.hits
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        // 2 sets, 1 way, 8-byte lines: addresses 0 and 16 collide.
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 1 });
        assert!(!c.access(0));
        assert!(!c.access(16));
        assert!(!c.access(0), "evicted by 16");
        assert!(!c.access(8), "other set cold");
        assert!(c.access(8));
    }

    #[test]
    fn two_way_lru() {
        // 1 set, 2 ways, 8-byte lines.
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        c.access(0); // [0]
        c.access(8); // [8,0]
        assert!(c.access(0)); // [0,8]
        c.access(16); // evicts 8 -> [16,0]
        assert!(c.access(0));
        assert!(!c.access(8), "8 was LRU-evicted");
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 32, assoc: 2 });
        assert!(!c.access(0));
        assert!(c.access(8));
        assert!(c.access(24));
        assert!(!c.access(32));
    }

    #[test]
    fn lru_sweep_thrash() {
        // Sweep of 2x capacity with LRU: every access misses on re-sweep.
        let cfg = CacheConfig { size: 256, line: 8, assoc: 2 };
        let mut c = Cache::new(cfg);
        let lines = (2 * cfg.size / cfg.line) as u64;
        for _ in 0..3 {
            for i in 0..lines {
                c.access(i * 8);
            }
        }
        assert_eq!(c.hits, 0, "LRU provides no reuse under cyclic over-capacity sweep");
    }

    #[test]
    fn fully_assoc_tlb_lru() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0));
        assert!(!t.access(4096));
        assert!(t.access(100));
        assert!(!t.access(3 * 4096));
        assert!(!t.access(4097 + 4096), "page 1 evicted? no wait");
        // page 1 (4096..8192) was MRU after access(4096); access(100) made
        // page 0 MRU; access(3*4096) evicted page 1.
        assert_eq!(t.misses(), 4);
    }

    #[test]
    fn scaled_config_keeps_geometry() {
        let c = CacheConfig::l2_origin2000().scaled(64);
        assert_eq!(c.size, (4 << 20) / 64);
        assert_eq!(c.line, 128);
        assert_eq!(c.assoc, 2);
        let _ = Cache::new(c);
    }

    #[test]
    fn writebacks_only_for_dirty_lines() {
        // 1 set, 1 way: every new line evicts the previous one.
        let mut c = Cache::new(CacheConfig { size: 8, line: 8, assoc: 1 });
        c.access_rw(0, false); // clean fill
        c.access_rw(8, false); // evicts clean line: no write-back
        assert_eq!(c.writebacks, 0);
        c.access_rw(16, true); // dirty fill (evicts clean)
        assert_eq!(c.writebacks, 0);
        c.access_rw(24, false); // evicts dirty line
        assert_eq!(c.writebacks, 1);
        assert_eq!(c.traffic_bytes(), (4 + 1) * 8);
    }

    #[test]
    fn dirty_bit_sticks_until_eviction() {
        let mut c = Cache::new(CacheConfig { size: 16, line: 8, assoc: 2 });
        c.access_rw(0, true);
        c.access_rw(0, false); // read does not clean it
        c.access_rw(8, false);
        c.access_rw(16, false); // evicts LRU line 0 (dirty)
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn streaming_write_traffic_doubles() {
        // Write-streaming: every line filled once and written back once.
        let cfg = CacheConfig { size: 64, line: 8, assoc: 2 };
        let mut c = Cache::new(cfg);
        for i in 0..64u64 {
            c.access_rw(i * 8, true);
        }
        assert_eq!(c.misses, 64);
        // All but the 8 resident lines written back so far.
        assert_eq!(c.writebacks, 64 - 8);
    }

    #[test]
    fn miss_rate_reported() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 8, assoc: 2 });
        c.access(0);
        c.access(0);
        assert_eq!(c.miss_rate(), 0.5);
        c.reset();
        assert_eq!(c.accesses(), 0);
    }
}
