//! Cycle cost model.
//!
//! Converts execution statistics and miss counts into a cycle estimate so
//! the experiment harness can report "execution time" bars (Figure 10).
//! The model is a simple in-order approximation with partial latency
//! hiding: the paper's machines hide much of the L1-miss latency with
//! out-of-order issue and prefetching, so the default penalties weight L2
//! and TLB misses (the bandwidth-bound events) most heavily.

use crate::hierarchy::MissCounts;
use gcr_exec::ExecStats;

/// Per-event cycle costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per dynamic statement instance (issue overhead).
    pub per_instance: f64,
    /// Cycles per floating-point operation.
    pub per_flop: f64,
    /// Cycles per memory reference (L1 hit).
    pub per_ref: f64,
    /// Additional cycles per L1 miss (partially hidden).
    pub l1_miss: f64,
    /// Additional cycles per L2 miss (memory latency/bandwidth).
    pub l2_miss: f64,
    /// Additional cycles per TLB miss (software refill on MIPS).
    pub tlb_miss: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Loosely calibrated to a 300 MHz R12K with latency hiding:
        // ~10 cycles residual per L1 miss, ~80 per L2 miss, ~70 per TLB
        // miss (IRIX software refill).
        CostModel {
            per_instance: 1.0,
            per_flop: 0.5,
            per_ref: 1.0,
            l1_miss: 10.0,
            l2_miss: 80.0,
            tlb_miss: 70.0,
        }
    }
}

impl CostModel {
    /// Estimated cycles for a run.
    pub fn cycles(&self, stats: &ExecStats, misses: &MissCounts) -> f64 {
        self.per_instance * stats.instances as f64
            + self.per_flop * stats.flops as f64
            + self.per_ref * misses.refs as f64
            + self.l1_miss * misses.l1 as f64
            + self.l2_miss * misses.l2 as f64
            + self.tlb_miss * misses.tlb as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_penalties_dominate_when_thrashing() {
        let m = CostModel::default();
        let stats = ExecStats { instances: 1000, flops: 2000, reads: 3000, writes: 1000 };
        let hit = MissCounts { refs: 4000, l1: 0, l2: 0, tlb: 0, memory_traffic: 0 };
        let thrash =
            MissCounts { refs: 4000, l1: 4000, l2: 4000, tlb: 1000, memory_traffic: 512000 };
        let fast = m.cycles(&stats, &hit);
        let slow = m.cycles(&stats, &thrash);
        assert!(slow > 10.0 * fast, "thrashing must dominate: {fast} vs {slow}");
    }

    #[test]
    fn monotone_in_each_component() {
        let m = CostModel::default();
        let stats = ExecStats { instances: 10, flops: 10, reads: 10, writes: 0 };
        let base = MissCounts { refs: 10, l1: 1, l2: 1, tlb: 1, memory_traffic: 0 };
        let c0 = m.cycles(&stats, &base);
        for (dl1, dl2, dtlb) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let worse =
                MissCounts { refs: 10, l1: 1 + dl1, l2: 1 + dl2, tlb: 1 + dtlb, memory_traffic: 0 };
            assert!(m.cycles(&stats, &worse) > c0);
        }
    }
}
