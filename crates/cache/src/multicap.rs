//! Single-pass multi-capacity / multi-configuration cache simulation.
//!
//! The sweep engine's second redundancy killer: the paper's evaluation is
//! a cross-product over cache configurations, and the naive way to cover
//! it is one interpreter run per configuration — every run re-executing
//! the same program and re-generating the same address trace. Both
//! simulators here consume **one** trace pass for *all* configurations at
//! once:
//!
//! * [`CapacitySweepSink`] — one [`ReuseDistanceAnalyzer`] whose exact
//!   per-threshold counts ([`gcr_reuse::CapacityCounter`]) answer the miss
//!   count of every fully-associative LRU capacity simultaneously. On such
//!   a cache an access misses iff its reuse distance (in lines) is at
//!   least the capacity (Section 2.1 of the paper), so the analyzer's
//!   output is not an estimate: it is bit-identical to simulating each
//!   capacity separately, at any capacity — including the sub-bin
//!   thresholds the log₂ histogram cannot see.
//! * [`MultiHierarchySink`] — one access stream fanned out to any number
//!   of full [`MemoryHierarchy`]s (set-associative L1/L2 + TLB), replacing
//!   the one-run-per-hierarchy pattern that [`crate::HierarchySink`]
//!   otherwise forces on capacity sweeps.
//!
//! Both carry bit-identical-totals tests against the per-level paths they
//! replace.

use crate::hierarchy::{MemoryHierarchy, MissCounts};
use gcr_exec::{AccessEvent, TraceSink};
use gcr_reuse::distance::ReuseDistanceAnalyzer;
use gcr_reuse::CapacityCounter;

/// Exact miss counts of every fully-associative LRU capacity in one trace
/// pass.
///
/// Capacities are in bytes and must be positive multiples of the line
/// size; distances are measured at line granularity, so two addresses in
/// the same line count as one datum (spatial locality is honoured exactly
/// as a real fully-associative cache of that line size would).
pub struct CapacitySweepSink {
    analyzer: ReuseDistanceAnalyzer,
    counter: CapacityCounter,
    line: u64,
    refs: u64,
}

impl CapacitySweepSink {
    /// A sweep over `capacities_bytes` with `line`-byte lines (`line` a
    /// power of two; each capacity a positive multiple of `line`).
    pub fn new(line: u64, capacities_bytes: &[u64]) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let caps_lines: Vec<u64> = capacities_bytes
            .iter()
            .map(|&c| {
                assert!(
                    c >= line && c % line == 0,
                    "capacity {c} is not a positive multiple of line {line}"
                );
                c / line
            })
            .collect();
        CapacitySweepSink {
            analyzer: ReuseDistanceAnalyzer::new(line),
            counter: CapacityCounter::new(caps_lines),
            line,
            refs: 0,
        }
    }

    /// References observed so far.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Exact misses of a fully associative LRU cache of `capacity_bytes`
    /// (must be one of the registered capacities): cold misses plus
    /// reuses whose line-granular distance reaches the capacity.
    pub fn misses(&self, capacity_bytes: u64) -> u64 {
        self.analyzer.hist.cold + self.counter.at_least(capacity_bytes / self.line)
    }

    /// `(capacity_bytes, misses)` for every registered capacity,
    /// ascending.
    pub fn miss_counts(&self) -> Vec<(u64, u64)> {
        self.counter
            .thresholds()
            .iter()
            .map(|&lines| (lines * self.line, self.misses(lines * self.line)))
            .collect()
    }
}

impl TraceSink for CapacitySweepSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.refs += 1;
        if let Some(d) = self.analyzer.access(ev.addr) {
            self.counter.record(d);
        }
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Distances ignore instance boundaries and the write flag; one
        // affine expansion loop in stream order amortizes the virtual
        // call across the whole strip.
        self.refs += batch.len() as u64;
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                if let Some(d) = self.analyzer.access(sl.addr_at(k)) {
                    self.counter.record(d);
                }
            }
        }
    }
}

/// One access stream fanned out to many [`MemoryHierarchy`]s: the
/// single-pass replacement for running the interpreter once per cache
/// level or configuration.
pub struct MultiHierarchySink {
    /// The simulated hierarchies, in registration order.
    pub hierarchies: Vec<MemoryHierarchy>,
}

impl MultiHierarchySink {
    /// Wraps the given hierarchies.
    pub fn new(hierarchies: Vec<MemoryHierarchy>) -> Self {
        MultiHierarchySink { hierarchies }
    }

    /// Miss counters per hierarchy, in registration order.
    pub fn counts(&self) -> Vec<MissCounts> {
        self.hierarchies.iter().map(|h| h.counts()).collect()
    }
}

impl TraceSink for MultiHierarchySink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        for h in &mut self.hierarchies {
            h.access_rw(ev.addr, ev.is_write);
        }
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Hierarchy-major: each hierarchy is independent, so sweeping one
        // hierarchy over the whole strip (in stream order) keeps its tag
        // arrays hot instead of round-robining every hierarchy per event.
        for h in &mut self.hierarchies {
            for k in 0..batch.iters as i64 {
                for sl in batch.slots {
                    h.access_rw(sl.addr_at(k), sl.is_write);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchySink;
    use crate::sim::{Cache, CacheConfig, Tlb};
    use gcr_exec::Machine;
    use gcr_ir::ParamBinding;

    const SRC: &str = "
program p
param N
array A[N, N], B[N, N]
for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i], B[i, j])
  }
}
for i = 1, N {
  for j = 1, N {
    B[j, i] = g(A[j, i])
  }
}
";

    /// Byte addresses of one run (for replaying the identical stream
    /// through reference simulators).
    fn trace_of(n: i64) -> Vec<(u64, bool)> {
        struct Cap(Vec<(u64, bool)>);
        impl TraceSink for Cap {
            fn access(&mut self, ev: AccessEvent) {
                self.0.push((ev.addr, ev.is_write));
            }
        }
        let prog = gcr_frontend::parse(SRC).unwrap();
        let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
        let mut cap = Cap(Vec::new());
        m.run(&mut cap);
        cap.0
    }

    #[test]
    fn capacity_sweep_bit_identical_to_per_capacity_lru_simulation() {
        let trace = trace_of(24);
        let line = 32u64;
        // Mix of power-of-two and sub-bin capacities (3 and 25 lines).
        let caps: Vec<u64> = vec![line, 3 * line, 8 * line, 25 * line, 256 * line];
        let mut sweep = CapacitySweepSink::new(line, &caps);
        for &(addr, w) in &trace {
            sweep.access(AccessEvent {
                addr,
                array: gcr_ir::ArrayId::from_index(0),
                ref_id: gcr_ir::RefId::from_index(0),
                stmt: gcr_ir::StmtId::from_index(0),
                is_write: w,
            });
        }
        // Current per-level path: one dedicated pass per capacity through a
        // fully-associative LRU cache simulator.
        for &cap in &caps {
            let assoc = (cap / line) as usize;
            let mut c = Cache::new(CacheConfig { size: cap as usize, line: line as usize, assoc });
            for &(addr, w) in &trace {
                c.access_rw(addr, w);
            }
            assert_eq!(
                sweep.misses(cap),
                c.misses,
                "capacity {} lines must match the dedicated simulation",
                cap / line
            );
        }
        assert_eq!(sweep.refs(), trace.len() as u64);
    }

    #[test]
    fn multi_hierarchy_bit_identical_to_separate_runs() {
        let prog = gcr_frontend::parse(SRC).unwrap();
        let bind = ParamBinding::new(vec![20]);
        let configs: Vec<MemoryHierarchy> = vec![
            MemoryHierarchy::origin2000_scaled(16, 64),
            MemoryHierarchy::origin2000_scaled(4, 16),
            MemoryHierarchy::new(
                CacheConfig { size: 512, line: 32, assoc: 2 },
                CacheConfig { size: 4096, line: 128, assoc: 2 },
                Tlb::new(8, 4096),
            ),
        ];
        // Single pass through all three.
        let mut multi = MultiHierarchySink::new(configs.clone());
        Machine::new(&prog, bind.clone()).run(&mut multi);
        // Per-level path: one interpreter run per hierarchy.
        for (i, h) in configs.into_iter().enumerate() {
            let mut single = HierarchySink::new(h);
            Machine::new(&prog, bind.clone()).run(&mut single);
            assert_eq!(
                multi.counts()[i],
                single.hierarchy.counts(),
                "hierarchy {i} totals must be bit-identical"
            );
        }
    }

    #[test]
    fn capacity_sweep_misses_are_monotone() {
        let trace = trace_of(16);
        let line = 32u64;
        let caps: Vec<u64> = (1..=64).map(|k| k * line).collect();
        let mut sweep = CapacitySweepSink::new(line, &caps);
        for &(addr, w) in &trace {
            sweep.access(AccessEvent {
                addr,
                array: gcr_ir::ArrayId::from_index(0),
                ref_id: gcr_ir::RefId::from_index(0),
                stmt: gcr_ir::StmtId::from_index(0),
                is_write: w,
            });
        }
        let counts = sweep.miss_counts();
        for w in counts.windows(2) {
            assert!(w[1].1 <= w[0].1, "bigger LRU cache cannot miss more: {counts:?}");
        }
    }
}
