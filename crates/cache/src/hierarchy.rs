//! Two-level cache hierarchy plus TLB, with a trace-sink adapter.
//!
//! Mirrors how the paper's hardware counters see memory: the TLB observes
//! every reference; L2 observes L1 misses (miss counts, like the R10K/R12K
//! event counters).

use crate::sim::{Cache, CacheConfig, Tlb};
use gcr_exec::{AccessEvent, TraceSink};

/// Miss counters of one simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissCounts {
    /// Total memory references observed.
    pub refs: u64,
    /// L1 misses.
    pub l1: u64,
    /// L2 misses (among L1 misses).
    pub l2: u64,
    /// TLB misses.
    pub tlb: u64,
    /// Bytes transferred between L2 and memory (fills + write-backs) — the
    /// paper's "amount of data transferred".
    pub memory_traffic: u64,
}

impl MissCounts {
    /// Counter-wise difference `self − earlier`, for attributing a window
    /// of a run (e.g. one phase) from two cumulative snapshots.
    pub fn since(&self, earlier: &MissCounts) -> MissCounts {
        MissCounts {
            refs: self.refs - earlier.refs,
            l1: self.l1 - earlier.l1,
            l2: self.l2 - earlier.l2,
            tlb: self.tlb - earlier.tlb,
            memory_traffic: self.memory_traffic - earlier.memory_traffic,
        }
    }

    /// Counter-wise accumulation.
    pub fn add(&mut self, other: &MissCounts) {
        self.refs += other.refs;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.tlb += other.tlb;
        self.memory_traffic += other.memory_traffic;
    }

    /// L1 miss rate over all references.
    pub fn l1_rate(&self) -> f64 {
        ratio(self.l1, self.refs)
    }

    /// L2 miss rate over all references (paper reports global rates).
    pub fn l2_rate(&self) -> f64 {
        ratio(self.l2, self.refs)
    }

    /// TLB miss rate over all references.
    pub fn tlb_rate(&self) -> f64 {
        ratio(self.tlb, self.refs)
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// L1 + L2 + TLB.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    /// First-level cache.
    pub l1: Cache,
    /// Second-level cache (sees L1 misses only).
    pub l2: Cache,
    /// Translation lookaside buffer (sees every reference).
    pub tlb: Tlb,
    counts: MissCounts,
}

impl MemoryHierarchy {
    /// Builds a hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig, tlb: Tlb) -> Self {
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            tlb,
            counts: MissCounts::default(),
        }
    }

    /// The paper's Origin2000 (R12K): 32 KB L1, 4 MB L2, 64-entry TLB.
    pub fn origin2000() -> Self {
        Self::new(CacheConfig::l1_mips(), CacheConfig::l2_origin2000(), Tlb::mips_r10k())
    }

    /// The paper's Octane (R10K): 32 KB L1, 1 MB L2, 64-entry TLB.
    pub fn octane() -> Self {
        Self::new(CacheConfig::l1_mips(), CacheConfig::l2_octane(), Tlb::mips_r10k())
    }

    /// Origin2000 geometry shrunk for scaled problem sizes (line sizes and
    /// associativity preserved). `l1_scale` shrinks L1 and the TLB page —
    /// these track the *linear* problem dimension (how many grid rows fit)
    /// — while `l2_scale` shrinks L2, which tracks the total data
    /// footprint. TLB entry count is kept at 64.
    pub fn origin2000_scaled(l1_scale: usize, l2_scale: usize) -> Self {
        let page = ((16 << 10) / l1_scale.max(1)).next_power_of_two().clamp(256, 16 << 10);
        Self::new(
            CacheConfig::l1_mips().scaled(l1_scale),
            CacheConfig::l2_origin2000().scaled(l2_scale),
            Tlb::scaled(64, page),
        )
    }

    /// Simulates one read reference.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        self.access_rw(addr, false);
    }

    /// Simulates one reference; stores dirty the caches for write-back
    /// traffic accounting.
    #[inline]
    pub fn access_rw(&mut self, addr: u64, is_write: bool) {
        self.counts.refs += 1;
        if !self.tlb.access(addr) {
            self.counts.tlb += 1;
        }
        if !self.l1.access_rw(addr, is_write) {
            self.counts.l1 += 1;
            if !self.l2.access_rw(addr, is_write) {
                self.counts.l2 += 1;
            }
        }
    }

    /// Miss counters so far.
    pub fn counts(&self) -> MissCounts {
        let mut c = self.counts;
        c.memory_traffic = self.l2.traffic_bytes();
        c
    }

    /// Clears all state and counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.tlb.reset();
        self.counts = MissCounts::default();
    }
}

/// `TraceSink` adapter: feed a [`MemoryHierarchy`] directly from the
/// interpreter.
pub struct HierarchySink {
    /// The simulated hierarchy.
    pub hierarchy: MemoryHierarchy,
}

impl HierarchySink {
    /// Wraps a hierarchy.
    pub fn new(hierarchy: MemoryHierarchy) -> Self {
        HierarchySink { hierarchy }
    }
}

impl TraceSink for HierarchySink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.hierarchy.access_rw(ev.addr, ev.is_write);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // The hierarchy is boundary-blind: one tight affine expansion
        // loop per strip, in stream order.
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                self.hierarchy.access_rw(sl.addr_at(k), sl.is_write);
            }
        }
    }
}

/// [`HierarchySink`] with per-phase miss attribution: every access is
/// charged to the top-level statement (computation phase) that issued it,
/// using the statement → phase map of
/// [`gcr_ir::Program::phase_of_stmts`]. Totals are identical to an
/// unphased [`HierarchySink`] run — the hierarchy sees the same stream —
/// so the phased sink can replace it wherever a breakdown is wanted.
///
/// ```
/// use gcr_cache::{MemoryHierarchy, PhasedHierarchySink};
/// use gcr_exec::Machine;
/// use gcr_ir::ParamBinding;
/// let prog = gcr_frontend::parse("
/// program demo
/// param N
/// array A[N, N]
/// for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i]) } }
/// for i = 1, N { for j = 1, N { A[j, i] = g(A[j, i]) } }
/// ").unwrap();
/// let mut sink = PhasedHierarchySink::new(
///     MemoryHierarchy::origin2000_scaled(16, 64), &prog);
/// Machine::new(&prog, ParamBinding::new(vec![64])).run(&mut sink);
/// let phases = sink.phases();
/// assert_eq!(phases.len(), 2);
/// assert_eq!(phases[0].0, "0: for i");
/// let total = sink.hierarchy.counts();
/// assert_eq!(phases[0].1.refs + phases[1].1.refs, total.refs);
/// ```
pub struct PhasedHierarchySink {
    /// The simulated hierarchy.
    pub hierarchy: MemoryHierarchy,
    phase_of: Vec<usize>,
    labels: Vec<String>,
    per_phase: Vec<MissCounts>,
    current: Option<usize>,
    mark: MissCounts,
}

impl PhasedHierarchySink {
    /// Wraps a hierarchy with the phase structure of `prog`.
    pub fn new(hierarchy: MemoryHierarchy, prog: &gcr_ir::Program) -> Self {
        let labels = prog.phase_labels();
        PhasedHierarchySink {
            hierarchy,
            phase_of: prog.phase_of_stmts(),
            per_phase: vec![MissCounts::default(); labels.len()],
            labels,
            current: None,
            mark: MissCounts::default(),
        }
    }

    fn flush(&mut self) {
        let now = self.hierarchy.counts();
        if let Some(p) = self.current {
            if let Some(c) = self.per_phase.get_mut(p) {
                c.add(&now.since(&self.mark));
            }
        }
        self.mark = now;
    }

    /// Per-phase miss counters measured so far, labelled.
    pub fn phases(&mut self) -> Vec<(String, MissCounts)> {
        self.flush();
        self.labels.iter().cloned().zip(self.per_phase.iter().copied()).collect()
    }
}

impl TraceSink for PhasedHierarchySink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        let phase = self.phase_of.get(ev.stmt.index()).copied().unwrap_or(0);
        if self.current != Some(phase) {
            self.flush();
            self.current = Some(phase);
        }
        self.hierarchy.access_rw(ev.addr, ev.is_write);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Attribution only depends on each event's phase, in stream order;
        // each slot's phase is loop-invariant, so within a strip the check
        // reduces to a predictable compare per event.
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                let phase = self.phase_of.get(sl.stmt.index()).copied().unwrap_or(0);
                if self.current != Some(phase) {
                    self.flush();
                    self.current = Some(phase);
                }
                self.hierarchy.access_rw(sl.addr_at(k), sl.is_write);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = MemoryHierarchy::new(
            CacheConfig { size: 64, line: 32, assoc: 2 },
            CacheConfig { size: 256, line: 32, assoc: 2 },
            Tlb::new(4, 4096),
        );
        h.access(0); // L1 miss, L2 miss
        h.access(0); // L1 hit
        h.access(8); // L1 hit (same line)
        let c = h.counts();
        assert_eq!(c.refs, 3);
        assert_eq!(c.l1, 1);
        assert_eq!(c.l2, 1);
        assert_eq!(h.l2.accesses(), 1, "L2 only saw the L1 miss");
    }

    #[test]
    fn streaming_misses_at_line_granularity() {
        let mut h = MemoryHierarchy::new(
            CacheConfig { size: 1024, line: 32, assoc: 2 },
            CacheConfig { size: 4096, line: 128, assoc: 2 },
            Tlb::new(4, 4096),
        );
        // Stream 64 KB of doubles: every 4th access misses L1 (32 B lines),
        // and of those every 4th misses L2 (128 B lines).
        let n = 8192u64;
        for i in 0..n {
            h.access(i * 8);
        }
        let c = h.counts();
        assert_eq!(c.l1, n / 4);
        assert_eq!(c.l2, n / 16);
        assert_eq!(c.tlb, n * 8 / 4096);
        assert!((c.l1_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = MemoryHierarchy::origin2000_scaled(16, 64);
        for i in 0..1000u64 {
            h.access(i * 64);
        }
        assert!(h.counts().l1 > 0);
        h.reset();
        assert_eq!(h.counts(), MissCounts::default());
    }

    #[test]
    fn phased_sink_matches_unphased_totals() {
        use gcr_exec::Machine;
        let prog = gcr_frontend::parse(
            "
program p
param N
array A[N], B[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
",
        )
        .unwrap();
        let bind = gcr_ir::ParamBinding::new(vec![512]);
        let mut plain = HierarchySink::new(MemoryHierarchy::origin2000_scaled(16, 64));
        Machine::new(&prog, bind.clone()).run(&mut plain);
        let mut phased =
            PhasedHierarchySink::new(MemoryHierarchy::origin2000_scaled(16, 64), &prog);
        Machine::new(&prog, bind).run(&mut phased);
        let phases = phased.phases();
        assert_eq!(phases.len(), 2);
        let total = phased.hierarchy.counts();
        assert_eq!(total, plain.hierarchy.counts(), "phasing must not perturb the simulation");
        let mut sum = MissCounts::default();
        for (_, c) in &phases {
            sum.add(c);
        }
        assert_eq!(sum, total, "phases partition the totals");
        // The second nest re-reads A and streams B: it must see references.
        assert!(phases[1].1.refs > 0);
    }

    #[test]
    fn presets_build() {
        let o = MemoryHierarchy::origin2000();
        assert_eq!(o.l2.config().size, 4 << 20);
        let c = MemoryHierarchy::octane();
        assert_eq!(c.l2.config().size, 1 << 20);
    }
}
