//! Hierarchy descriptors: the one textual spec shared by `gcrc
//! --hierarchy`, the `gcr-serve` `hierarchy` request header, and the
//! gallery/bench jobs.
//!
//! Grammar (comma-separated `key=value` pairs, any order, `l1` required):
//!
//! ```text
//! l1=SIZE/LINE/ASSOC[,l2=SIZE/LINE/ASSOC[,l3=...]]
//!     [,policy=inclusive|exclusive][,prefetch=none|next-line]
//! ```
//!
//! `SIZE` and `LINE` are bytes with optional `K`/`M` suffixes; `ASSOC` is
//! a way count or `fa` (fully associative, ways = size/line). Example:
//! `l1=8K/32/4,l2=64K/128/fa,prefetch=next-line`. Validation beyond
//! syntax (level count, line nesting, exclusive constraints) is the same
//! as [`MultiLevelCache::new`], reported as errors instead of panics so
//! servers can reject bad descriptors.
//!
//! [`measure_hierarchy`] is the shared execution helper behind the CLI
//! flag, the serve endpoint and the gallery: one machine pass through a
//! three-way tee — the multi-level model, the fully-associative
//! reuse-distance sweep, and a 4-way set-associative sweep at the same
//! capacities — so every report's sweep bins carry both the FA and the
//! set-associative miss columns from a single trace.

use crate::levels::{Inclusion, MultiLevelCache, MultiLevelCounts, MultiLevelSink, Prefetch};
use crate::multicap::CapacitySweepSink;
use crate::sim::CacheConfig;
use crate::AssocSweepSink;
use gcr_exec::{AccessEvent, DataLayout, ExecEngine, Machine, TraceSink};
use gcr_ir::{GcrError, ParamBinding, Program, StmtId};

/// A parsed, validated hierarchy descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchySpec {
    /// Level geometries, L1 first (1 to 3 levels).
    pub levels: Vec<CacheConfig>,
    /// Inclusion policy (`policy=`; default inclusive).
    pub inclusion: Inclusion,
    /// Prefetch policy (`prefetch=`; default none).
    pub prefetch: Prefetch,
}

fn parse_bytes(s: &str) -> Result<usize, String> {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1024),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    let n: usize = num.parse().map_err(|_| format!("bad byte count '{s}'"))?;
    n.checked_mul(mult).ok_or_else(|| format!("byte count '{s}' overflows"))
}

fn format_bytes(n: usize) -> String {
    if n >= 1024 * 1024 && n.is_multiple_of(1024 * 1024) {
        format!("{}M", n / (1024 * 1024))
    } else if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}K", n / 1024)
    } else {
        n.to_string()
    }
}

fn parse_level(s: &str) -> Result<CacheConfig, String> {
    let parts: Vec<&str> = s.split('/').collect();
    if parts.len() != 3 {
        return Err(format!("level '{s}' is not SIZE/LINE/ASSOC"));
    }
    let size = parse_bytes(parts[0])?;
    let line = parse_bytes(parts[1])?;
    if size == 0 || line == 0 {
        return Err(format!("level '{s}' has a zero dimension"));
    }
    if !line.is_power_of_two() {
        return Err(format!("line size {line} is not a power of two"));
    }
    if size % line != 0 {
        return Err(format!("size {size} is not a multiple of line {line}"));
    }
    let assoc = if parts[2].eq_ignore_ascii_case("fa") {
        size / line
    } else {
        parts[2].parse::<usize>().map_err(|_| format!("bad way count '{}'", parts[2]))?
    };
    if assoc == 0 || size % (line * assoc) != 0 {
        return Err(format!("{assoc} ways do not divide {size}/{line} lines"));
    }
    let sets = size / (line * assoc);
    if !sets.is_power_of_two() {
        return Err(format!("level '{s}' has {sets} sets (must be a power of two)"));
    }
    Ok(CacheConfig { size, line, assoc })
}

impl HierarchySpec {
    /// Parses and validates a descriptor string.
    pub fn parse(text: &str) -> Result<HierarchySpec, String> {
        let mut levels: Vec<Option<CacheConfig>> = vec![None, None, None];
        let mut inclusion = Inclusion::Inclusive;
        let mut prefetch = Prefetch::None;
        for field in text.split(',') {
            let field = field.trim();
            let (key, value) =
                field.split_once('=').ok_or_else(|| format!("'{field}' is not key=value"))?;
            match key.trim() {
                "l1" => levels[0] = Some(parse_level(value)?),
                "l2" => levels[1] = Some(parse_level(value)?),
                "l3" => levels[2] = Some(parse_level(value)?),
                "policy" => {
                    inclusion = match value {
                        "inclusive" => Inclusion::Inclusive,
                        "exclusive" => Inclusion::Exclusive,
                        _ => return Err(format!("unknown policy '{value}'")),
                    }
                }
                "prefetch" => {
                    prefetch = match value {
                        "none" => Prefetch::None,
                        "next-line" => Prefetch::NextLine,
                        _ => return Err(format!("unknown prefetch policy '{value}'")),
                    }
                }
                k => return Err(format!("unknown key '{k}'")),
            }
        }
        // Levels must be contiguous from l1.
        let present = levels.iter().take_while(|l| l.is_some()).count();
        if levels.iter().skip(present).any(|l| l.is_some()) {
            return Err("levels must be contiguous from l1".to_string());
        }
        if present == 0 {
            return Err("descriptor needs at least l1=SIZE/LINE/ASSOC".to_string());
        }
        let levels: Vec<CacheConfig> = levels.into_iter().flatten().collect();
        for w in levels.windows(2) {
            if w[1].line < w[0].line {
                return Err(format!(
                    "line sizes must be non-decreasing downward ({} then {})",
                    w[0].line, w[1].line
                ));
            }
        }
        if inclusion == Inclusion::Exclusive {
            if levels.len() != 2 {
                return Err("exclusive hierarchies have exactly two levels".to_string());
            }
            if levels[0].line != levels[1].line {
                return Err("exclusive levels need equal line sizes".to_string());
            }
        }
        Ok(HierarchySpec { levels, inclusion, prefetch })
    }

    /// The canonical descriptor text: `parse(describe()) == self`, and all
    /// defaults are spelled out so reports are self-describing.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for (k, c) in self.levels.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let assoc = if c.sets() == 1 { "fa".to_string() } else { c.assoc.to_string() };
            s.push_str(&format!(
                "l{}={}/{}/{}",
                k + 1,
                format_bytes(c.size),
                format_bytes(c.line),
                assoc
            ));
        }
        s.push_str(&format!(",policy={},prefetch={}", self.inclusion.name(), self.prefetch.name()));
        s
    }

    /// Builds the simulator for this descriptor.
    pub fn build(&self) -> MultiLevelCache {
        MultiLevelCache::new(&self.levels, self.inclusion, self.prefetch)
    }

    /// The sweep capacities paired with this hierarchy in reports: powers
    /// of two from 4 L1 lines up to 2x the last level, so the bins bracket
    /// every level. Each is simulated both fully associatively and 4-way
    /// set-associatively (4 ways divide every power-of-two capacity ≥ 4
    /// lines into a power-of-two set count).
    pub fn sweep_capacities(&self) -> Vec<u64> {
        let line = self.levels[0].line as u64;
        let top = (2 * self.levels.last().unwrap().size as u64).next_power_of_two();
        let mut caps = Vec::new();
        let mut c = (4 * line).next_power_of_two();
        while c <= top && caps.len() < 12 {
            caps.push(c);
            c *= 4;
        }
        caps
    }
}

/// One sweep bin of a [`HierarchyRun`]: the same capacity simulated fully
/// associatively (reuse-distance) and 4-way set-associatively (exact).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepBin {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Fully-associative LRU misses at this capacity.
    pub fa_misses: u64,
    /// 4-way set-associative LRU misses at this capacity.
    pub assoc_misses: u64,
}

/// Everything one trace pass measures for a hierarchy descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyRun {
    /// Canonical descriptor ([`HierarchySpec::describe`]).
    pub spec: String,
    /// Level geometries, L1 first (mirrors `counts.levels`).
    pub configs: Vec<CacheConfig>,
    /// L1 line size the sweep bins use, in bytes.
    pub line: u64,
    /// Multi-level totals.
    pub counts: MultiLevelCounts,
    /// FA + 4-way sweep over [`HierarchySpec::sweep_capacities`].
    pub sweep: Vec<SweepBin>,
}

/// Three-way tee: the hierarchy model plus both sweep flavors share one
/// trace pass.
struct HierarchyTee {
    model: MultiLevelSink,
    fa: CapacitySweepSink,
    sa: AssocSweepSink,
}

impl TraceSink for HierarchyTee {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.model.access(ev);
        self.fa.access(ev);
        self.sa.access(ev);
    }

    #[inline]
    fn end_instance(&mut self, stmt: StmtId) {
        self.model.end_instance(stmt);
        self.fa.end_instance(stmt);
        self.sa.end_instance(stmt);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        self.model.record_batch(batch);
        self.fa.record_batch(batch);
        self.sa.record_batch(batch);
    }
}

/// Runs `prog` once and measures the descriptor: multi-level counters
/// plus FA and 4-way set-associative sweep bins, all from the same trace.
#[allow(clippy::too_many_arguments)]
pub fn measure_hierarchy(
    prog: &Program,
    binding: ParamBinding,
    layout: DataLayout,
    engine: ExecEngine,
    steps: usize,
    fuel: u64,
    spec: &HierarchySpec,
) -> Result<HierarchyRun, GcrError> {
    let caps = spec.sweep_capacities();
    let line = spec.levels[0].line as u64;
    let sa_configs: Vec<CacheConfig> = caps
        .iter()
        .map(|&c| CacheConfig { size: c as usize, line: line as usize, assoc: 4 })
        .collect();
    let mut tee = HierarchyTee {
        model: MultiLevelSink::new(spec.build()),
        fa: CapacitySweepSink::new(line, &caps),
        sa: AssocSweepSink::new(&sa_configs),
    };
    let mut m = Machine::with_layout(prog, binding, layout).with_engine(engine);
    m.run_steps_guarded(&mut tee, steps, fuel)?;
    let sweep = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| SweepBin {
            capacity: c,
            fa_misses: tee.fa.misses(c),
            assoc_misses: tee.sa.misses(i),
        })
        .collect();
    Ok(HierarchyRun {
        spec: spec.describe(),
        configs: spec.levels.clone(),
        line,
        counts: tee.model.model.counts(),
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_descriptor() {
        let s = HierarchySpec::parse("l1=8K/32/4,l2=64K/128/fa,prefetch=next-line").unwrap();
        assert_eq!(s.levels.len(), 2);
        assert_eq!(s.levels[0], CacheConfig { size: 8192, line: 32, assoc: 4 });
        assert_eq!(s.levels[1], CacheConfig { size: 65536, line: 128, assoc: 512 });
        assert_eq!(s.inclusion, Inclusion::Inclusive);
        assert_eq!(s.prefetch, Prefetch::NextLine);
    }

    #[test]
    fn describe_round_trips() {
        for text in [
            "l1=8K/32/4",
            "l1=512/32/fa,l2=4K/128/2,l3=1M/128/8",
            "l1=8K/32/4,l2=64K/32/fa,policy=exclusive,prefetch=next-line",
        ] {
            let s = HierarchySpec::parse(text).unwrap();
            assert_eq!(HierarchySpec::parse(&s.describe()).unwrap(), s, "{text}");
        }
    }

    #[test]
    fn rejects_bad_descriptors() {
        for bad in [
            "",
            "l2=8K/32/4",                               // no l1
            "l1=8K/32/4,l3=1M/128/8",                   // gap
            "l1=8K/32",                                 // not SIZE/LINE/ASSOC
            "l1=8K/33/4",                               // line not power of two
            "l1=8K/32/3",                               // 3 ways -> non-pow2 sets
            "l1=8K/32/nope",                            // bad way count
            "l1=8K/128/4,l2=64K/32/4",                  // shrinking line
            "l1=8K/32/4,policy=exclusive",              // exclusive needs 2 levels
            "l1=8K/32/4,l2=64K/128/4,policy=exclusive", // exclusive needs equal lines
            "l1=8K/32/4,policy=mostly",                 // unknown policy
            "l1=8K/32/4,turbo=yes",                     // unknown key
        ] {
            assert!(HierarchySpec::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn sweep_capacities_bracket_the_levels() {
        let s = HierarchySpec::parse("l1=8K/32/4,l2=64K/128/fa").unwrap();
        let caps = s.sweep_capacities();
        assert!(caps.first().unwrap() < &(8 * 1024));
        assert!(caps.last().unwrap() >= &(64 * 1024));
        for w in caps.windows(2) {
            assert!(w[1] > w[0]);
        }
        // every capacity works as a 4-way geometry with pow2 sets
        for &c in &caps {
            assert!((c as usize / (32 * 4)).is_power_of_two(), "capacity {c}");
        }
    }

    #[test]
    fn measure_ties_the_three_sinks_together() {
        let prog = gcr_frontend::parse(
            "
program p
param N
array A[N, N], B[N, N]
for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i], B[i, j])
  }
}
",
        )
        .unwrap();
        let spec = HierarchySpec::parse("l1=512/32/4,l2=4K/128/fa").unwrap();
        let bind = ParamBinding::new(vec![16]);
        let layout = DataLayout::column_major(&prog, &bind, 0);
        let run =
            measure_hierarchy(&prog, bind.clone(), layout, ExecEngine::Vm, 1, u64::MAX, &spec)
                .unwrap();
        assert_eq!(run.spec, "l1=512/32/4,l2=4K/128/fa,policy=inclusive,prefetch=none");
        assert_eq!(run.sweep.len(), spec.sweep_capacities().len());
        assert!(run.counts.refs > 0);
        // The FA column is a lower bound for 4-way at the same capacity
        // is NOT guaranteed in general, but both columns must count the
        // same stream: misses never exceed refs and never undershoot the
        // cold-line floor.
        for b in &run.sweep {
            assert!(b.fa_misses <= run.counts.refs);
            assert!(b.assoc_misses <= run.counts.refs);
            assert!(b.fa_misses > 0 && b.assoc_misses > 0);
        }
        // Bigger FA capacity never misses more.
        for w in run.sweep.windows(2) {
            assert!(w[1].fa_misses <= w[0].fa_misses);
        }
    }
}
