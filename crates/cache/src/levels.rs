//! Multi-level inclusive/exclusive cache hierarchies with an optional
//! next-line prefetcher.
//!
//! [`MemoryHierarchy`](crate::MemoryHierarchy) models the paper's two
//! machines as "mostly inclusive": L2 sees L1's demand misses and the two
//! levels never exchange state. [`MultiLevelCache`] is the realistic
//! counterpart — two or three exact [`Cache`] levels coupled by an
//! explicit inclusion policy:
//!
//! * **Inclusive** — upper-level contents are (demand-)subsets of lower
//!   levels. A hit at level *k* fills every level above it; when a lower
//!   level evicts a line, the enclosed lines in the levels above are
//!   back-invalidated, their dirty contents folding into the departing
//!   line. Dirty victims of level *k* are written back into level *k+1*
//!   (marking the enclosing resident line dirty) without disturbing that
//!   level's LRU order — write-backs are traffic, not demand reuse.
//! * **Exclusive** — exactly two levels of equal line size; L2 is a
//!   victim cache. An L2 hit *moves* the line into L1 (extraction, no
//!   copy); every L1 victim moves down into L2; only L2 evictions reach
//!   memory. The effective capacity is the sum of both levels.
//!
//! The **next-line prefetcher** (when enabled) reacts to every L1 demand
//! miss on line `L` by filling line `L+1` into L1 — stat-neutral at L1
//! (no demand hit/miss is counted), issued *after* the demand fill so the
//! prefetched line lands most-recently-used, and fetched straight from
//! memory-side (prefetch probes do not perturb lower-level LRU state).
//! Useless prefetches therefore pollute L1 exactly as a real next-line
//! scheme would, and [`MultiLevelCounts::prefetches`] counts only lines
//! actually brought in (already-resident next lines are free).
//!
//! All orderings above are fixed and documented because the simulation is
//! golden-tested: the same trace must produce the same counters on every
//! platform and thread count.

use crate::sim::{Cache, CacheConfig};
use gcr_exec::{AccessEvent, TraceSink};

/// Inclusion policy coupling the levels of a [`MultiLevelCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inclusion {
    /// Upper levels are subsets of lower ones; lower-level evictions
    /// back-invalidate.
    Inclusive,
    /// Two levels of equal line size; the lower level holds only victims
    /// of the upper.
    Exclusive,
}

impl Inclusion {
    /// Stable descriptor name (`policy=` value).
    pub fn name(self) -> &'static str {
        match self {
            Inclusion::Inclusive => "inclusive",
            Inclusion::Exclusive => "exclusive",
        }
    }
}

/// Prefetch policy of a [`MultiLevelCache`]'s first level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Prefetch {
    /// No prefetching.
    #[default]
    None,
    /// On every L1 demand miss for line `L`, fill line `L+1` into L1.
    NextLine,
}

impl Prefetch {
    /// Stable descriptor name (`prefetch=` value).
    pub fn name(self) -> &'static str {
        match self {
            Prefetch::None => "none",
            Prefetch::NextLine => "next-line",
        }
    }
}

/// Demand counters of one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty lines this level pushed down (to the next level or, from the
    /// last level, to memory).
    pub writebacks: u64,
}

/// Totals of a [`MultiLevelCache`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiLevelCounts {
    /// References observed.
    pub refs: u64,
    /// Per-level demand counters, L1 first.
    pub levels: Vec<LevelCounts>,
    /// Lines the prefetcher actually brought into L1.
    pub prefetches: u64,
    /// Last-level lines fetched from memory (demand + prefetch).
    pub memory_fills: u64,
    /// Dirty lines written to memory.
    pub memory_writebacks: u64,
    /// Bytes exchanged with memory: fills plus write-backs, at the last
    /// level's line size (prefetch fills count at L1 line size).
    pub memory_traffic: u64,
}

/// A two- or three-level exact LRU hierarchy under one inclusion policy.
#[derive(Clone, Debug)]
pub struct MultiLevelCache {
    levels: Vec<Cache>,
    inclusion: Inclusion,
    prefetch: Prefetch,
    counts: Vec<LevelCounts>,
    refs: u64,
    prefetches: u64,
    memory_fills: u64,
    memory_writebacks: u64,
    prefetch_fill_bytes: u64,
}

impl MultiLevelCache {
    /// Builds the hierarchy. Requirements, enforced here:
    /// 1–3 levels; line sizes non-decreasing from L1 down (a lower-level
    /// line must enclose upper-level lines); exclusive policy only with
    /// exactly two levels of equal line size.
    pub fn new(configs: &[CacheConfig], inclusion: Inclusion, prefetch: Prefetch) -> Self {
        assert!(
            (1..=3).contains(&configs.len()),
            "a hierarchy has 1 to 3 levels, got {}",
            configs.len()
        );
        for w in configs.windows(2) {
            assert!(
                w[1].line >= w[0].line,
                "line sizes must be non-decreasing downward ({} then {})",
                w[0].line,
                w[1].line
            );
        }
        if inclusion == Inclusion::Exclusive {
            assert!(configs.len() == 2, "exclusive hierarchies have exactly two levels");
            assert!(
                configs[0].line == configs[1].line,
                "exclusive levels exchange whole lines and need equal line sizes"
            );
        }
        MultiLevelCache {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
            inclusion,
            prefetch,
            counts: vec![LevelCounts::default(); configs.len()],
            refs: 0,
            prefetches: 0,
            memory_fills: 0,
            memory_writebacks: 0,
            prefetch_fill_bytes: 0,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Geometry of level `k` (0 = L1).
    pub fn config(&self, k: usize) -> CacheConfig {
        self.levels[k].config()
    }

    /// The inclusion policy.
    pub fn inclusion(&self) -> Inclusion {
        self.inclusion
    }

    /// The prefetch policy.
    pub fn prefetch(&self) -> Prefetch {
        self.prefetch
    }

    /// Current totals.
    pub fn counts(&self) -> MultiLevelCounts {
        let last_line = self.levels.last().unwrap().config().line as u64;
        MultiLevelCounts {
            refs: self.refs,
            levels: self.counts.clone(),
            prefetches: self.prefetches,
            memory_fills: self.memory_fills,
            memory_writebacks: self.memory_writebacks,
            memory_traffic: (self.memory_fills + self.memory_writebacks) * last_line
                + self.prefetch_fill_bytes,
        }
    }

    /// Simulates one access.
    pub fn access_rw(&mut self, addr: u64, is_write: bool) {
        self.refs += 1;
        match self.inclusion {
            Inclusion::Inclusive => self.access_inclusive(addr, is_write),
            Inclusion::Exclusive => self.access_exclusive(addr, is_write),
        }
    }

    fn access_inclusive(&mut self, addr: u64, is_write: bool) {
        let n = self.levels.len();
        // 1. Find the first level that holds the line.
        let hit = (0..n).find(|&k| self.levels[k].contains(addr));
        for k in 0..hit.unwrap_or(n) {
            self.counts[k].misses += 1;
        }
        match hit {
            Some(h) => self.counts[h].hits += 1,
            None => self.memory_fills += 1,
        }
        // 2. Fill every level from the hit (or memory) upward, deepest
        // first so victim cascades complete before the level above fills.
        let deepest = hit.unwrap_or(n - 1);
        for k in (0..=deepest).rev() {
            let victim = self.levels[k].fill(addr, k == 0 && is_write);
            if let Some(v) = victim {
                self.evict_inclusive(k, v);
            }
        }
        if hit != Some(0) {
            self.issue_prefetch(addr);
        }
    }

    /// Handles a line leaving inclusive level `k`: back-invalidate the
    /// levels above (their dirty contents fold into the departing line),
    /// then write the line down one level, or to memory from the last.
    fn evict_inclusive(&mut self, k: usize, (vaddr, vdirty): (u64, bool)) {
        let line = self.levels[k].config().line as u64;
        let mut dirty = vdirty;
        for j in 0..k {
            let dropped = self.levels[j].invalidate_range(vaddr, line);
            self.counts[j].writebacks += dropped;
            dirty |= dropped > 0;
        }
        if !dirty {
            return;
        }
        self.counts[k].writebacks += 1;
        if k + 1 == self.levels.len() || !self.levels[k + 1].mark_dirty(vaddr) {
            // From the last level — or past a lower level that no longer
            // holds the enclosing line (it can evict it within the same
            // access cascade) — the data goes to memory.
            self.memory_writebacks += 1;
        }
    }

    /// Exclusive path: L2 is a victim cache, so every movement is a line
    /// *transfer* — the stat-neutral [`Cache`] primitives model it and the
    /// demand counters are kept here.
    fn access_exclusive(&mut self, addr: u64, is_write: bool) {
        if self.levels[0].contains(addr) {
            self.counts[0].hits += 1;
            self.levels[0].fill(addr, is_write); // promote + dirty
            return;
        }
        self.counts[0].misses += 1;
        let from_l2 = self.levels[1].extract(addr);
        let dirty = match from_l2 {
            Some(d) => {
                self.counts[1].hits += 1;
                d | is_write
            }
            None => {
                self.counts[1].misses += 1;
                self.memory_fills += 1;
                is_write
            }
        };
        if let Some(v) = self.levels[0].fill(addr, dirty) {
            self.demote_to_l2(v);
        }
        self.issue_prefetch(addr);
    }

    fn issue_prefetch(&mut self, addr: u64) {
        if self.prefetch != Prefetch::NextLine {
            return;
        }
        let line = self.levels[0].config().line as u64;
        let next = (addr & !(line - 1)) + line;
        if self.levels[0].contains(next) {
            return;
        }
        self.prefetches += 1;
        self.prefetch_fill_bytes += line;
        if let Some(v) = self.levels[0].fill(next, false) {
            match self.inclusion {
                Inclusion::Inclusive => self.evict_inclusive(0, v),
                Inclusion::Exclusive => self.demote_to_l2(v),
            }
        }
    }

    /// Moves an L1 victim into exclusive L2; the L2 victim (if dirty)
    /// continues to memory.
    fn demote_to_l2(&mut self, (vaddr, vdirty): (u64, bool)) {
        if vdirty {
            self.counts[0].writebacks += 1;
        }
        if let Some((_, v2dirty)) = self.levels[1].fill(vaddr, vdirty) {
            if v2dirty {
                self.counts[1].writebacks += 1;
                self.memory_writebacks += 1;
            }
        }
    }
}

/// [`TraceSink`] feeding one [`MultiLevelCache`], with a native batch
/// path (iteration-major, matching the per-event stream order exactly).
pub struct MultiLevelSink {
    /// The simulated hierarchy.
    pub model: MultiLevelCache,
}

impl MultiLevelSink {
    /// Wraps the given hierarchy.
    pub fn new(model: MultiLevelCache) -> Self {
        MultiLevelSink { model }
    }
}

impl TraceSink for MultiLevelSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.model.access_rw(ev.addr, ev.is_write);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // One hierarchy: iteration-major is the stream order. (A
        // hierarchy's state is order-sensitive, so unlike the fan-out
        // sinks there is no configuration-major freedom here.)
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                self.model.access_rw(sl.addr_at(k), sl.is_write);
            }
        }
    }
}

/// Many independent [`MultiLevelCache`]s fed by one trace pass — the
/// multi-level analogue of [`crate::MultiHierarchySink`].
pub struct MultiLevelSweepSink {
    /// The simulated hierarchies, in registration order.
    pub models: Vec<MultiLevelCache>,
}

impl MultiLevelSweepSink {
    /// Wraps the given hierarchies.
    pub fn new(models: Vec<MultiLevelCache>) -> Self {
        MultiLevelSweepSink { models }
    }

    /// Totals per hierarchy, in registration order.
    pub fn counts(&self) -> Vec<MultiLevelCounts> {
        self.models.iter().map(|m| m.counts()).collect()
    }
}

impl TraceSink for MultiLevelSweepSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        for m in &mut self.models {
            m.access_rw(ev.addr, ev.is_write);
        }
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Model-major: each hierarchy is independent.
        for m in &mut self.models {
            for k in 0..batch.iters as i64 {
                for sl in batch.slots {
                    m.access_rw(sl.addr_at(k), sl.is_write);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{ExecEngine, Machine};
    use gcr_ir::ParamBinding;

    const SRC: &str = "
program p
param N
array A[N, N], B[N, N], C[N]
for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i], B[i, j])
  }
  C[i] = g(C[i] + A[1, i])
}
for i = 2, N {
  when [2, N - 1] B[i, i - 1] = h(A[i, i])
}
";

    fn l1() -> CacheConfig {
        CacheConfig { size: 512, line: 32, assoc: 4 }
    }

    fn l2() -> CacheConfig {
        CacheConfig { size: 4096, line: 128, assoc: 8 }
    }

    fn run(sink: &mut impl TraceSink, engine: ExecEngine, n: i64) {
        let prog = gcr_frontend::parse(SRC).unwrap();
        Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(engine).run(sink);
    }

    /// Per-level counters must be conservative: every miss at level k is
    /// an access at level k+1, and refs = L1 hits + L1 misses.
    #[test]
    fn demand_counters_are_conservative() {
        for (inclusion, cfgs) in [
            (Inclusion::Inclusive, vec![l1(), l2()]),
            (
                Inclusion::Inclusive,
                vec![l1(), l2(), CacheConfig { size: 1 << 15, line: 128, assoc: 8 }],
            ),
            (Inclusion::Exclusive, vec![l1(), CacheConfig { size: 4096, line: 32, assoc: 8 }]),
        ] {
            let mut sink =
                MultiLevelSink::new(MultiLevelCache::new(&cfgs, inclusion, Prefetch::None));
            run(&mut sink, ExecEngine::Interp, 16);
            let c = sink.model.counts();
            assert_eq!(c.refs, c.levels[0].hits + c.levels[0].misses, "{inclusion:?}");
            for k in 1..c.levels.len() {
                assert_eq!(
                    c.levels[k - 1].misses,
                    c.levels[k].hits + c.levels[k].misses,
                    "{inclusion:?} level {k}"
                );
            }
            assert_eq!(c.memory_fills, c.levels.last().unwrap().misses, "{inclusion:?}");
            assert!(c.refs > 0);
        }
    }

    /// Batched (VM strip) capture must equal the per-event (interpreter)
    /// reference on every counter, for both policies and with the
    /// prefetcher on.
    #[test]
    fn batched_matches_per_event() {
        for (inclusion, prefetch, cfgs) in [
            (Inclusion::Inclusive, Prefetch::None, vec![l1(), l2()]),
            (Inclusion::Inclusive, Prefetch::NextLine, vec![l1(), l2()]),
            (
                Inclusion::Exclusive,
                Prefetch::NextLine,
                vec![l1(), CacheConfig { size: 4096, line: 32, assoc: 8 }],
            ),
        ] {
            let mut vm = MultiLevelSink::new(MultiLevelCache::new(&cfgs, inclusion, prefetch));
            run(&mut vm, ExecEngine::Vm, 14);
            let mut ev = MultiLevelSink::new(MultiLevelCache::new(&cfgs, inclusion, prefetch));
            run(&mut ev, ExecEngine::Interp, 14);
            assert_eq!(
                vm.model.counts(),
                ev.model.counts(),
                "{inclusion:?}/{prefetch:?}: batch path drifted from per-event"
            );
        }
    }

    /// The fan-out sink must be bit-identical to separate passes.
    #[test]
    fn sweep_fan_out_matches_separate_runs() {
        let models = vec![
            MultiLevelCache::new(&[l1(), l2()], Inclusion::Inclusive, Prefetch::None),
            MultiLevelCache::new(
                &[l1(), CacheConfig { size: 4096, line: 32, assoc: 8 }],
                Inclusion::Exclusive,
                Prefetch::NextLine,
            ),
        ];
        let mut multi = MultiLevelSweepSink::new(models.clone());
        run(&mut multi, ExecEngine::Vm, 12);
        for (i, m) in models.into_iter().enumerate() {
            let mut single = MultiLevelSink::new(m);
            run(&mut single, ExecEngine::Vm, 12);
            assert_eq!(multi.counts()[i], single.model.counts(), "model {i}");
        }
    }

    /// Exclusive L1+L2 of total capacity C behaves like one LRU of nearly
    /// capacity C on a working set that fits: after warm-up, a scan over
    /// L1+L2 lines sees no memory fills, while inclusive caps out at L2.
    #[test]
    fn exclusive_capacity_is_additive() {
        let small = CacheConfig { size: 256, line: 32, assoc: 8 }; // 8 lines, 1 set
        let big = CacheConfig { size: 512, line: 32, assoc: 16 }; // 16 lines, 1 set
        let mut excl = MultiLevelCache::new(&[small, big], Inclusion::Exclusive, Prefetch::None);
        let mut incl = MultiLevelCache::new(&[small, big], Inclusion::Inclusive, Prefetch::None);
        // 20 lines: fits in 8 + 16 = 24 (exclusive), not in 16 (inclusive).
        for _ in 0..6 {
            for i in 0..20u64 {
                excl.access_rw(i * 32, false);
                incl.access_rw(i * 32, false);
            }
        }
        assert_eq!(excl.counts().memory_fills, 20, "cold fills only: the set fits exclusively");
        assert!(
            incl.counts().memory_fills > 20,
            "inclusive capacity is bounded by L2: {:?}",
            incl.counts()
        );
    }

    /// Next-line prefetching turns a forward streaming scan into ~half
    /// the demand misses (every prefetched line is used one access later).
    #[test]
    fn next_line_prefetch_halves_streaming_misses() {
        let cfgs = [l1(), CacheConfig { size: 1 << 14, line: 32, assoc: 8 }];
        let mut plain = MultiLevelCache::new(&cfgs, Inclusion::Inclusive, Prefetch::None);
        let mut pf = MultiLevelCache::new(&cfgs, Inclusion::Inclusive, Prefetch::NextLine);
        for i in 0..256u64 {
            plain.access_rw(i * 32, false);
            pf.access_rw(i * 32, false);
        }
        assert_eq!(plain.counts().levels[0].misses, 256);
        assert_eq!(pf.counts().levels[0].misses, 128, "every other line arrives early");
        assert_eq!(pf.counts().prefetches, 128);
    }

    /// Inclusive back-invalidation: when L2 evicts a line, the copies in
    /// L1 disappear with it.
    #[test]
    fn inclusive_l2_eviction_back_invalidates_l1() {
        // L1: 2 lines of 32B (1 set x 2 ways); L2: 2 lines of 32B.
        let tiny = CacheConfig { size: 64, line: 32, assoc: 2 };
        let mut m = MultiLevelCache::new(&[tiny, tiny], Inclusion::Inclusive, Prefetch::None);
        m.access_rw(0, false); // L1 {0}, L2 {0}
        m.access_rw(32, false); // L1 {32,0}, L2 {32,0}
        m.access_rw(64, false); // L2 evicts 0 -> back-invalidates L1's 0
        m.access_rw(0, false); // must miss everywhere again
        let c = m.counts();
        assert_eq!(c.levels[0].misses, 4, "access to back-invalidated line must miss L1");
        assert_eq!(c.memory_fills, 4);
    }

    /// A dirty line evicted from L1 marks its enclosing L2 line dirty, so
    /// the write-back reaches memory exactly once, when L2 evicts it.
    #[test]
    fn dirty_writeback_propagates_through_l2() {
        let tiny = CacheConfig { size: 32, line: 32, assoc: 1 }; // 1 line
        let l2 = CacheConfig { size: 64, line: 32, assoc: 2 }; // 2 lines
        let mut m = MultiLevelCache::new(&[tiny, l2], Inclusion::Inclusive, Prefetch::None);
        m.access_rw(0, true); // dirty in L1
        m.access_rw(32, false); // L1 evicts dirty 0 -> L2's 0 marked dirty
        let mid = m.counts();
        assert_eq!(mid.levels[0].writebacks, 1);
        assert_eq!(mid.memory_writebacks, 0, "dirty data parked in L2, not yet in memory");
        m.access_rw(64, false); // L2 evicts 0 (dirty) -> memory
        m.access_rw(96, false);
        assert_eq!(m.counts().memory_writebacks, 1);
    }
}
