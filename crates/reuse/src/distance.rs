//! Online reuse-distance analysis.
//!
//! The reuse distance of an access is the number of *distinct* data items
//! touched since the previous access to the same datum (Figure 1 of the
//! paper); on a fully associative LRU cache an access hits iff its reuse
//! distance is smaller than the cache capacity.
//!
//! The analyzer keeps one *slot* per distinct datum in a Fenwick (binary
//! indexed) tree ordered by last-access time. An access to a datum whose
//! previous slot is `p` has distance = number of live slots after `p`;
//! the datum's slot then moves to the end. Dead slots (tombstones) are
//! compacted when they outnumber live ones, giving amortized `O(log M)` per
//! access with memory proportional to the number of distinct data items —
//! this is the array-based formulation of Olken's tree algorithm.

use crate::hash::FnvHashMap;
use gcr_ir::RefId;

/// Fenwick tree over slot liveness bits.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut k = i + 1;
        while k <= self.len() {
            self.tree[k] = (self.tree[k] as i64 + delta as i64) as u32;
            k += k & k.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut k = i + 1;
        let mut s = 0u64;
        while k > 0 {
            s += self.tree[k] as u64;
            k -= k & k.wrapping_neg();
        }
        s
    }
}

/// Histogram of reuse distances in log₂ bins.
///
/// Bin 0 counts distance 0; bin `k ≥ 1` counts distances in
/// `[2^(k−1), 2^k)`. Cold (first-ever) accesses are counted separately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Counts per bin.
    pub bins: Vec<u64>,
    /// First accesses (infinite distance).
    pub cold: u64,
    /// Total finite-distance accesses.
    pub reuses: u64,
}

impl Histogram {
    /// Records one distance.
    pub fn record(&mut self, d: u64) {
        self.record_n(d, 1);
    }

    /// Records a distance with multiplicity `n` (used by sampling, where a
    /// watched reuse represents `n` reuses).
    pub fn record_n(&mut self, d: u64, n: u64) {
        let bin = if d == 0 { 0 } else { 64 - (d.leading_zeros() as usize) };
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += n;
        self.reuses += n;
    }

    /// Number of reuses with distance ≥ `threshold`, **bin-granular**:
    /// only bins that lie entirely at or above `threshold` are counted.
    ///
    /// Exact when `threshold` is a power of two (bin boundaries are powers
    /// of two). For a `threshold` strictly inside a bin the whole bin is
    /// dropped, so the result *under*-counts by up to that bin's
    /// population — the log₂ bins cannot see sub-bin thresholds. Use
    /// [`CapacityCounter`] when exact counts at arbitrary thresholds are
    /// needed (the multi-capacity cache simulator does).
    pub fn at_least(&self, threshold: u64) -> u64 {
        let mut total = 0;
        for (k, &c) in self.bins.iter().enumerate() {
            let lo = if k == 0 { 0u64 } else { 1u64 << (k - 1) };
            if lo >= threshold {
                total += c;
            }
        }
        total
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.cold += other.cold;
        self.reuses += other.reuses;
    }

    /// `(bin upper bound exponent, count)` pairs for plotting: a point at
    /// `(k, c)` means `c` references had distance in `[2^(k−1), 2^k)`.
    pub fn points(&self) -> Vec<(usize, u64)> {
        self.bins.iter().copied().enumerate().filter(|&(_, c)| c > 0).collect()
    }
}

/// Exact per-threshold reuse counters — the precise counterpart of the
/// bin-granular [`Histogram::at_least`].
///
/// The thresholds of interest (cache capacities, in the analyzer's
/// measurement units) are registered up front; every recorded distance is
/// then classified against all of them at once in `O(log k)`. Unlike the
/// log₂ histogram, counts are exact for *any* threshold, not just powers
/// of two — this is what lets one reuse-distance pass serve every cache
/// capacity of a sweep simultaneously.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapacityCounter {
    /// Registered thresholds, ascending and deduplicated.
    caps: Vec<u64>,
    /// `by_class[i]` = number of recorded distances `d` for which exactly
    /// `i` thresholds satisfy `cap ≤ d`.
    by_class: Vec<u64>,
    recorded: u64,
}

impl CapacityCounter {
    /// A counter for the given thresholds (any order, duplicates merged).
    pub fn new(mut caps: Vec<u64>) -> Self {
        caps.sort_unstable();
        caps.dedup();
        let n = caps.len();
        CapacityCounter { caps, by_class: vec![0; n + 1], recorded: 0 }
    }

    /// Registered thresholds, ascending.
    pub fn thresholds(&self) -> &[u64] {
        &self.caps
    }

    /// Records one finite reuse distance.
    #[inline]
    pub fn record(&mut self, d: u64) {
        let class = self.caps.partition_point(|&c| c <= d);
        self.by_class[class] += 1;
        self.recorded += 1;
    }

    /// Total distances recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Exact number of recorded distances ≥ `cap`. `cap` must be one of
    /// the registered thresholds.
    pub fn at_least(&self, cap: u64) -> u64 {
        let j = self
            .caps
            .binary_search(&cap)
            .unwrap_or_else(|_| panic!("threshold {cap} was not registered"));
        self.by_class[j + 1..].iter().sum()
    }
}

/// Per-static-reference running statistics (for evadable classification).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerRef {
    /// Finite reuses observed.
    pub count: u64,
    /// Sum of distances.
    pub sum: u64,
    /// Cold accesses.
    pub cold: u64,
}

impl PerRef {
    /// Mean finite reuse distance.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The reuse-distance analyzer.
///
/// The paper's Figure 1 sequence `a b c a a c b` has reuse distances
/// `2, 0, 1, 2`:
///
/// ```
/// use gcr_reuse::ReuseDistanceAnalyzer;
/// let mut rd = ReuseDistanceAnalyzer::new(1);
/// let seq = [b'a', b'b', b'c', b'a', b'a', b'c', b'b'];
/// let dists: Vec<_> = seq.iter().map(|&x| rd.access(x as u64)).collect();
/// assert_eq!(&dists[3..], &[Some(2), Some(0), Some(1), Some(2)]);
/// ```
pub struct ReuseDistanceAnalyzer {
    /// Granularity shift: 3 = 8-byte elements, 5 = 32-byte blocks, …
    shift: u32,
    last: FnvHashMap<u64, u32>,
    /// Slot → datum (for compaction); `u64::MAX` marks a tombstone.
    slots: Vec<u64>,
    fenwick: Fenwick,
    next: usize,
    /// Global histogram.
    pub hist: Histogram,
    /// Per-reference statistics.
    pub per_ref: FnvHashMap<RefId, PerRef>,
    track_refs: bool,
}

impl ReuseDistanceAnalyzer {
    /// Creates an analyzer measuring at `granularity` bytes (power of two).
    pub fn new(granularity: u64) -> Self {
        assert!(granularity.is_power_of_two());
        ReuseDistanceAnalyzer {
            shift: granularity.trailing_zeros(),
            last: FnvHashMap::default(),
            slots: Vec::new(),
            fenwick: Fenwick::new(1024),
            next: 0,
            hist: Histogram::default(),
            per_ref: FnvHashMap::default(),
            track_refs: false,
        }
    }

    /// Enables per-static-reference statistics.
    pub fn track_refs(mut self) -> Self {
        self.track_refs = true;
        self
    }

    /// Number of distinct data items seen.
    pub fn distinct(&self) -> usize {
        self.last.len()
    }

    /// Processes one access; returns the reuse distance (`None` = cold).
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let datum = addr >> self.shift;
        let live = self.last.len() as u64;
        let dist = match self.last.get_mut(&datum) {
            Some(slot_ref) => {
                let p = *slot_ref as usize;
                let d = live - self.fenwick.prefix(p);
                self.fenwick.add(p, -1);
                self.slots[p] = u64::MAX;
                let s = self.alloc_slot(datum);
                *self.last.get_mut(&datum).unwrap() = s as u32;
                Some(d)
            }
            None => {
                let s = self.alloc_slot(datum);
                self.last.insert(datum, s as u32);
                None
            }
        };
        match dist {
            Some(d) => self.hist.record(d),
            None => self.hist.cold += 1,
        }
        dist
    }

    /// Processes one access attributed to a static reference.
    pub fn access_ref(&mut self, addr: u64, r: RefId) -> Option<u64> {
        let d = self.access(addr);
        if self.track_refs {
            let e = self.per_ref.entry(r).or_default();
            match d {
                Some(d) => {
                    e.count += 1;
                    e.sum += d;
                }
                None => e.cold += 1,
            }
        }
        d
    }

    fn alloc_slot(&mut self, datum: u64) -> usize {
        if self.next == self.fenwick.len() {
            if self.last.len() * 2 + 64 < self.next {
                self.compact();
            } else {
                let new_len = (self.fenwick.len() * 2).max(2048);
                let mut f = Fenwick::new(new_len);
                self.slots.resize(new_len, u64::MAX);
                for (i, &d) in self.slots.iter().enumerate() {
                    if d != u64::MAX {
                        f.add(i, 1);
                    }
                }
                self.fenwick = f;
            }
        }
        let s = self.next;
        self.next += 1;
        if self.slots.len() <= s {
            self.slots.resize(self.fenwick.len(), u64::MAX);
        }
        self.slots[s] = datum;
        self.fenwick.add(s, 1);
        s
    }

    /// Rebuilds the slot array without tombstones (order preserved).
    fn compact(&mut self) {
        let mut f = Fenwick::new(self.fenwick.len());
        let mut w = 0usize;
        for r in 0..self.next {
            let d = self.slots[r];
            if d != u64::MAX {
                self.slots[w] = d;
                f.add(w, 1);
                *self.last.get_mut(&d).unwrap() = w as u32;
                w += 1;
            }
        }
        for s in self.slots[w..].iter_mut() {
            *s = u64::MAX;
        }
        self.next = w;
        self.fenwick = f;
    }
}

/// A [`gcr_exec::TraceSink`] that feeds every access into a
/// [`ReuseDistanceAnalyzer`] online (program-order measurement without
/// storing the trace).
pub struct DistanceSink {
    /// The analyzer.
    pub analyzer: ReuseDistanceAnalyzer,
}

impl DistanceSink {
    /// Analyzer at element (8-byte) granularity with per-ref tracking.
    pub fn elements() -> Self {
        DistanceSink { analyzer: ReuseDistanceAnalyzer::new(8).track_refs() }
    }
}

impl gcr_exec::TraceSink for DistanceSink {
    #[inline]
    fn access(&mut self, ev: gcr_exec::AccessEvent) {
        self.analyzer.access_ref(ev.addr, ev.ref_id);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Distances ignore instance boundaries: one tight affine
        // expansion loop per strip, in exact stream order.
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                self.analyzer.access_ref(sl.addr_at(k), sl.ref_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seq: &[u64]) -> Vec<Option<u64>> {
        let mut a = ReuseDistanceAnalyzer::new(1);
        seq.iter().map(|&x| a.access(x)).collect()
    }

    #[test]
    fn figure1_example() {
        // a b c a a c b: distances None None None 2 0 1 2
        let ds = run(&[0, 1, 2, 0, 0, 2, 1]);
        assert_eq!(ds, vec![None, None, None, Some(2), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn fused_figure1_all_zero() {
        // a a a b b c c: after "fusion" all reuse distances are zero.
        let ds = run(&[0, 0, 0, 1, 1, 2, 2]);
        let finite: Vec<u64> = ds.into_iter().flatten().collect();
        assert_eq!(finite, vec![0, 0, 0, 0]);
    }

    #[test]
    fn distance_equals_lru_stack_depth() {
        // Cyclic sweep over k elements: steady-state distance k-1.
        let k = 10u64;
        let seq: Vec<u64> = (0..5 * k).map(|i| i % k).collect();
        let ds = run(&seq);
        for d in &ds[k as usize..] {
            assert_eq!(*d, Some(k - 1));
        }
    }

    #[test]
    fn granularity_merges_block_neighbors() {
        let mut a = ReuseDistanceAnalyzer::new(32);
        assert_eq!(a.access(0), None);
        assert_eq!(a.access(24), Some(0), "same 32-byte block");
        assert_eq!(a.access(32), None, "next block");
    }

    #[test]
    fn compaction_preserves_distances() {
        // Force many tombstones by re-touching a small working set many
        // times, then verify against a naive implementation.
        let mut xs = Vec::new();
        for round in 0..200u64 {
            for e in 0..37u64 {
                xs.push((e * 7 + round) % 41);
            }
        }
        let fast = run(&xs);
        // naive
        let mut seen: Vec<u64> = Vec::new();
        let mut naive = Vec::new();
        for &x in &xs {
            match seen.iter().rposition(|&y| y == x) {
                Some(p) => {
                    let mut distinct: Vec<u64> = seen[p + 1..].to_vec();
                    distinct.sort_unstable();
                    distinct.dedup();
                    naive.push(Some(distinct.len() as u64));
                    seen.remove(p);
                    seen.push(x);
                }
                None => {
                    naive.push(None);
                    seen.push(x);
                }
            }
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1023);
        assert_eq!(h.bins[0], 1); // d=0
        assert_eq!(h.bins[1], 1); // d=1
        assert_eq!(h.bins[2], 2); // d=2,3
        assert_eq!(h.bins[3], 1); // d=4
        assert_eq!(h.bins[10], 1); // d=1023 in [512,1024)
        assert_eq!(h.reuses, 6);
        assert_eq!(h.at_least(512), 1);
    }

    #[test]
    fn capacity_counter_is_exact_where_bins_undercount() {
        // Distances 5, 6, 7 all land in histogram bin 3 ([4, 8)).
        let mut h = Histogram::default();
        let mut c = CapacityCounter::new(vec![6, 8]);
        for d in [5u64, 6, 7] {
            h.record(d);
            c.record(d);
        }
        // Bin-granular: threshold 6 is inside bin 3, whole bin dropped.
        assert_eq!(h.at_least(6), 0, "documented undercount");
        // Exact: distances 6 and 7 are ≥ 6.
        assert_eq!(c.at_least(6), 2);
        assert_eq!(c.at_least(8), 0);
        assert_eq!(c.recorded(), 3);
    }

    #[test]
    fn capacity_counter_matches_naive_for_every_threshold() {
        let mut x = 0xdead_beefu64;
        let dists: Vec<u64> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 40) % 700
            })
            .collect();
        let caps = vec![0u64, 1, 3, 7, 100, 128, 333, 699, 700, 1000];
        let mut c = CapacityCounter::new(caps.clone());
        for &d in &dists {
            c.record(d);
        }
        for &cap in &caps {
            let naive = dists.iter().filter(|&&d| d >= cap).count() as u64;
            assert_eq!(c.at_least(cap), naive, "cap {cap}");
        }
    }

    #[test]
    fn capacity_counter_agrees_with_histogram_at_powers_of_two() {
        let mut h = Histogram::default();
        let mut c = CapacityCounter::new(vec![1, 2, 4, 8, 16, 32, 64]);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(48271) % 0x7fff_ffff;
            let d = x % 100;
            h.record(d);
            c.record(d);
        }
        for cap in [1u64, 2, 4, 8, 16, 32, 64] {
            assert_eq!(h.at_least(cap), c.at_least(cap), "power of two {cap} is a bin boundary");
        }
    }

    #[test]
    fn per_ref_tracking() {
        let mut a = ReuseDistanceAnalyzer::new(1).track_refs();
        let r0 = RefId::from_index(0);
        let r1 = RefId::from_index(1);
        a.access_ref(10, r0);
        a.access_ref(11, r1);
        a.access_ref(10, r0);
        a.access_ref(11, r1);
        assert_eq!(a.per_ref[&r0].count, 1);
        assert_eq!(a.per_ref[&r0].mean(), 1.0);
        assert_eq!(a.per_ref[&r1].cold, 1);
    }
}
