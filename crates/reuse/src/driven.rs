//! Reuse-driven execution (Section 2.2, Figure 2).
//!
//! The limit study replays a captured instruction trace in a new order:
//!
//! 1. the trace is re-executed on an **ideal parallel machine** where an
//!    instruction runs as soon as its operands are available (topological
//!    order by flow dependences);
//! 2. the **reuse-driven** order then gives priority to the instruction that
//!    reuses the data of the instruction just executed — the inverse of
//!    Belady's policy — using a FIFO queue of preferred instructions and
//!    `ForceExecute` to pull in unexecuted producers.
//!
//! The resulting order is measured with the reuse-distance analyzer; the
//! comparison against program order is Figure 3.

use crate::distance::{Histogram, ReuseDistanceAnalyzer};
use crate::evadable::RefStats;
use crate::trace::InstrTrace;
use std::collections::{HashMap, VecDeque};

/// Flow-dependence structure over a trace: per instruction, its producers
/// (last writer of each operand), plus per-datum toucher lists used to find
/// each datum's next (unexecuted) use.
pub struct DepGraph {
    /// CSR producers: instruction `i` has `prods[pstarts[i]..pstarts[i+1]]`.
    prods: Vec<u32>,
    pstarts: Vec<u32>,
    /// Dense datum id per access position (aligned with `InstrTrace::accs`).
    datum_of: Vec<u32>,
    /// CSR toucher lists: datum `d` is touched by instructions
    /// `touchers[tstarts[d]..tstarts[d+1]]`, in trace order (deduplicated
    /// per instruction).
    touchers: Vec<u32>,
    tstarts: Vec<u32>,
}

impl DepGraph {
    /// Builds the dependence structure in a few linear scans.
    pub fn build(trace: &InstrTrace) -> DepGraph {
        let n = trace.len();
        let mut last_writer: HashMap<u64, u32> = HashMap::new();
        let mut prods = Vec::new();
        let mut pstarts = Vec::with_capacity(n + 1);
        pstarts.push(0u32);
        let mut scratch: Vec<u32> = Vec::new();
        // Dense datum ids.
        let mut datum_ids: HashMap<u64, u32> = HashMap::new();
        let mut datum_of = vec![0u32; trace.total_accesses()];
        for (k, a) in trace.accs.iter().enumerate() {
            let next = datum_ids.len() as u32;
            datum_of[k] = *datum_ids.entry(a.addr).or_insert(next);
        }
        let ndata = datum_ids.len();
        for i in 0..n {
            scratch.clear();
            for (addr, is_write, _) in trace.accesses(i) {
                if !is_write {
                    if let Some(&w) = last_writer.get(&addr) {
                        scratch.push(w);
                    }
                }
            }
            // Writes take effect after the instruction's reads.
            for (addr, is_write, _) in trace.accesses(i) {
                if is_write {
                    last_writer.insert(addr, i as u32);
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            prods.extend_from_slice(&scratch);
            pstarts.push(prods.len() as u32);
        }
        // Toucher lists per datum (dedup consecutive same-instruction hits).
        let mut counts = vec![0u32; ndata + 1];
        let mut last_seen = vec![u32::MAX; ndata];
        for i in 0..n {
            for &dk in &datum_of[trace.starts[i] as usize..trace.starts[i + 1] as usize] {
                let d = dk as usize;
                if last_seen[d] != i as u32 {
                    last_seen[d] = i as u32;
                    counts[d + 1] += 1;
                }
            }
        }
        for d in 1..counts.len() {
            counts[d] += counts[d - 1];
        }
        let tstarts = counts.clone();
        let mut touchers = vec![0u32; *tstarts.last().unwrap() as usize];
        let mut fill = tstarts.clone();
        let mut last_seen = vec![u32::MAX; ndata];
        for i in 0..n {
            for &dk in &datum_of[trace.starts[i] as usize..trace.starts[i + 1] as usize] {
                let d = dk as usize;
                if last_seen[d] != i as u32 {
                    last_seen[d] = i as u32;
                    touchers[fill[d] as usize] = i as u32;
                    fill[d] += 1;
                }
            }
        }
        DepGraph { prods, pstarts, datum_of, touchers, tstarts }
    }

    /// Producers of instruction `i`.
    pub fn producers(&self, i: usize) -> &[u32] {
        &self.prods[self.pstarts[i] as usize..self.pstarts[i + 1] as usize]
    }

    /// Number of distinct data items.
    pub fn data_count(&self) -> usize {
        self.tstarts.len() - 1
    }
}

/// Per-datum cursor to the first unexecuted toucher, with lazy skipping.
struct NextUse<'a> {
    deps: &'a DepGraph,
    /// Cursor per datum into its toucher list.
    cursor: Vec<u32>,
}

impl<'a> NextUse<'a> {
    fn new(deps: &'a DepGraph) -> Self {
        NextUse { deps, cursor: deps.tstarts[..deps.data_count()].to_vec() }
    }

    /// First unexecuted toucher of datum `d`, advancing the cursor past
    /// executed ones (amortized O(1) per skip).
    fn first_unexecuted(&mut self, d: u32, executed: &[bool]) -> Option<u32> {
        let end = self.deps.tstarts[d as usize + 1];
        let mut c = self.cursor[d as usize];
        while c < end && executed[self.deps.touchers[c as usize] as usize] {
            c += 1;
        }
        self.cursor[d as usize] = c;
        if c < end {
            Some(self.deps.touchers[c as usize])
        } else {
            None
        }
    }

    /// The unexecuted instruction with the *closest reuse* of `i`'s data:
    /// among each datum's first unexecuted toucher, the one earliest in the
    /// ideal execution order.
    fn next_use(
        &mut self,
        trace: &InstrTrace,
        i: usize,
        executed: &[bool],
        ideal_pos: &[u32],
    ) -> Option<u32> {
        let (s, e) = (trace.starts[i] as usize, trace.starts[i + 1] as usize);
        let mut best: Option<u32> = None;
        for k in s..e {
            let d = self.deps.datum_of[k];
            if let Some(j) = self.first_unexecuted(d, executed) {
                if best.is_none_or(|b| ideal_pos[j as usize] < ideal_pos[b as usize]) {
                    best = Some(j);
                }
            }
        }
        best
    }
}

/// Computes the ideal parallel execution order: instructions sorted by
/// dataflow level (ties broken by trace order).
pub fn ideal_parallel_order(trace: &InstrTrace, deps: &DepGraph) -> Vec<u32> {
    let n = trace.len();
    let mut level = vec![0u32; n];
    let mut max_level = 0;
    for i in 0..n {
        let l = deps.producers(i).iter().map(|&p| level[p as usize] + 1).max().unwrap_or(0);
        level[i] = l;
        max_level = max_level.max(l);
    }
    // Counting sort by level, stable in trace order.
    let mut counts = vec![0u32; max_level as usize + 2];
    for &l in &level {
        counts[l as usize + 1] += 1;
    }
    for k in 1..counts.len() {
        counts[k] += counts[k - 1];
    }
    let mut order = vec![0u32; n];
    for (i, &l) in level.iter().enumerate() {
        let l = l as usize;
        order[counts[l] as usize] = i as u32;
        counts[l] += 1;
    }
    order
}

/// Which "next use" the algorithm chases. The paper's description is a
/// sentence ("executes the instruction that has the closest reuse"), and
/// notes that other heuristics were tried without improvement; both natural
/// readings are provided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NextUsePolicy {
    /// The data's closest unexecuted consumer in the *ideal* execution
    /// order (the stronger oracle; default).
    #[default]
    IdealOrder,
    /// The data's closest unexecuted consumer in the original *trace*
    /// order.
    TraceOrder,
}

/// The reuse-driven execution order (Figure 2 of the paper) under the
/// default policy.
pub fn reuse_driven_order(trace: &InstrTrace) -> Vec<u32> {
    reuse_driven_order_with(trace, NextUsePolicy::IdealOrder)
}

/// The reuse-driven execution order under an explicit next-use policy.
pub fn reuse_driven_order_with(trace: &InstrTrace, policy: NextUsePolicy) -> Vec<u32> {
    let deps = DepGraph::build(trace);
    let ideal = ideal_parallel_order(trace, &deps);
    let n = trace.len();
    let mut ideal_pos = vec![0u32; n];
    match policy {
        NextUsePolicy::IdealOrder => {
            for (p, &i) in ideal.iter().enumerate() {
                ideal_pos[i as usize] = p as u32;
            }
        }
        NextUsePolicy::TraceOrder => {
            for (i, p) in ideal_pos.iter_mut().enumerate() {
                *p = i as u32;
            }
        }
    }
    let mut next_use = NextUse::new(&deps);
    let mut executed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut stack: Vec<u32> = Vec::new();

    // ForceExecute(j): execute unexecuted producers first, then j; every
    // executed instruction is enqueued.
    let force_execute = |j: u32,
                         executed: &mut Vec<bool>,
                         order: &mut Vec<u32>,
                         queue: &mut VecDeque<u32>,
                         stack: &mut Vec<u32>| {
        stack.clear();
        stack.push(j);
        while let Some(&top) = stack.last() {
            if executed[top as usize] {
                stack.pop();
                continue;
            }
            let mut ready = true;
            for &p in deps.producers(top as usize) {
                if !executed[p as usize] {
                    stack.push(p);
                    ready = false;
                }
            }
            if ready {
                stack.pop();
                executed[top as usize] = true;
                order.push(top);
                queue.push_back(top);
            }
        }
    };

    for &i in &ideal {
        if !executed[i as usize] {
            force_execute(i, &mut executed, &mut order, &mut queue, &mut stack);
        }
        while let Some(j) = queue.pop_front() {
            if let Some(k) = next_use.next_use(trace, j as usize, &executed, &ideal_pos) {
                debug_assert!(!executed[k as usize]);
                force_execute(k, &mut executed, &mut order, &mut queue, &mut stack);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Replays a trace in the given instruction order through the
/// reuse-distance analyzer (element granularity).
pub fn measure_order(trace: &InstrTrace, order: &[u32]) -> (Histogram, RefStats) {
    let mut a = ReuseDistanceAnalyzer::new(1).track_refs();
    for &i in order {
        for (addr, _, r) in trace.accesses(i as usize) {
            a.access_ref(addr, r);
        }
    }
    (a.hist.clone(), a.per_ref.clone())
}

/// Measures the trace in its original program order.
pub fn measure_program_order(trace: &InstrTrace) -> (Histogram, RefStats) {
    let order: Vec<u32> = (0..trace.len() as u32).collect();
    measure_order(trace, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Access;
    use gcr_ir::{RefId, StmtId};

    /// Hand-builds a trace: each instruction is (reads, write).
    fn mk(instrs: &[(&[u64], u64)]) -> InstrTrace {
        let mut t = InstrTrace::default();
        t.starts.push(0);
        for (k, (reads, w)) in instrs.iter().enumerate() {
            for &r in *reads {
                t.accs.push(Access { addr: r, ref_id: RefId::from_index(0), is_write: false });
            }
            t.accs.push(Access { addr: *w, ref_id: RefId::from_index(1), is_write: true });
            t.starts.push(t.accs.len() as u32);
            t.stmts.push(StmtId::from_index(k));
        }
        t
    }

    #[test]
    fn producers_follow_flow_deps() {
        // 0: w10; 1: r10 w11; 2: r11 w12
        let t = mk(&[(&[], 10), (&[10], 11), (&[11], 12)]);
        let d = DepGraph::build(&t);
        assert_eq!(d.producers(0), &[] as &[u32]);
        assert_eq!(d.producers(1), &[0]);
        assert_eq!(d.producers(2), &[1]);
    }

    #[test]
    fn ideal_order_levels() {
        // Two independent chains interleaved: 0→2, 1→3.
        let t = mk(&[(&[], 1), (&[], 2), (&[1], 3), (&[2], 4)]);
        let d = DepGraph::build(&t);
        let o = ideal_parallel_order(&t, &d);
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn driven_order_is_a_permutation() {
        let t = mk(&[(&[], 1), (&[], 2), (&[1], 3), (&[2], 4), (&[3, 4], 5)]);
        let mut o = reuse_driven_order(&t);
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn driven_respects_flow_deps() {
        // chain: 0 → 1 → 2 → 3
        let t = mk(&[(&[], 1), (&[1], 2), (&[2], 3), (&[3], 4)]);
        let o = reuse_driven_order(&t);
        let pos: HashMap<u32, usize> = o.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        assert!(pos[&0] < pos[&1]);
        assert!(pos[&1] < pos[&2]);
        assert!(pos[&2] < pos[&3]);
    }

    #[test]
    fn driven_shortens_reuse_distance() {
        // Loop 1 writes a[i] (distinct), loop 2 reads a[i]:
        //   instrs 0..8 write 100..108; instrs 8..16 read them.
        // Program order: each read has distance 7. Reuse-driven: the read
        // chases the just-written datum, distance ~0.
        let mut instrs: Vec<(Vec<u64>, u64)> = Vec::new();
        for i in 0..8u64 {
            instrs.push((vec![], 100 + i));
        }
        for i in 0..8u64 {
            instrs.push((vec![100 + i], 200 + i));
        }
        let refs: Vec<(&[u64], u64)> = instrs.iter().map(|(r, w)| (r.as_slice(), *w)).collect();
        let t = mk(&refs);
        let (h_prog, _) = measure_program_order(&t);
        let o = reuse_driven_order(&t);
        let (h_driven, _) = measure_order(&t, &o);
        let mean = |h: &Histogram| {
            let tot: u64 = h.bins.iter().sum();
            let weighted: u64 = h
                .bins
                .iter()
                .enumerate()
                .map(|(k, &c)| c * if k == 0 { 0 } else { 1 << (k - 1) })
                .sum();
            weighted as f64 / tot.max(1) as f64
        };
        assert!(
            mean(&h_driven) < mean(&h_prog),
            "driven {} < program {}",
            mean(&h_driven),
            mean(&h_prog)
        );
    }

    #[test]
    fn next_use_picks_closest_unexecuted() {
        let t = mk(&[(&[], 1), (&[], 9), (&[1], 2), (&[1], 3)]);
        let d = DepGraph::build(&t);
        let ideal = ideal_parallel_order(&t, &d);
        let mut pos = vec![0u32; t.len()];
        for (p, &i) in ideal.iter().enumerate() {
            pos[i as usize] = p as u32;
        }
        let mut nu = NextUse::new(&d);
        let mut executed = vec![false; t.len()];
        executed[0] = true;
        assert_eq!(nu.next_use(&t, 0, &executed, &pos), Some(2));
        executed[2] = true;
        let mut nu = NextUse::new(&d);
        assert_eq!(nu.next_use(&t, 0, &executed, &pos), Some(3), "skips executed toucher");
        executed[1] = true;
        executed[3] = true;
        let mut nu = NextUse::new(&d);
        assert_eq!(nu.next_use(&t, 3, &executed, &pos), None);
    }
}
