#![warn(missing_docs)]

//! `gcr-reuse` — reuse-distance measurement and the reuse-driven execution
//! limit study (Sections 2.1–2.2 of the paper).
//!
//! * [`distance`] — online reuse-distance analysis: the number of distinct
//!   data items touched between consecutive accesses to the same datum
//!   (Figure 1), in `O(log M)` per access, with log₂ histograms (Figure 3);
//! * [`trace`] — capture of statement-instance traces (instruction, reads,
//!   write) from the interpreter;
//! * [`driven`] — the reuse-driven execution algorithm of Figure 2: replay
//!   on an ideal dataflow machine, then reorder so the instruction with the
//!   closest reuse runs next (the "inverse of Belady");
//! * [`evadable`] — classification of *evadable reuses*: reuses whose
//!   distance grows with the input size (the paper's main §2.2 metric);
//! * [`predict`] — miss-ratio curves from reuse-distance histograms (the
//!   §2.1 perfect-cache equivalence, made executable).

pub mod distance;
pub mod driven;
pub mod evadable;
pub mod predict;
pub mod sampled;
pub mod trace;

pub use distance::{DistanceSink, Histogram, ReuseDistanceAnalyzer};
pub use driven::reuse_driven_order;
pub use evadable::{evadable_fraction, EvadableReport, RefStats};
pub use predict::{miss_ratio_curve, predicted_miss_ratio, predicted_misses};
pub use sampled::SampledAnalyzer;
pub use trace::{InstrTrace, TraceCapture};
