#![warn(missing_docs)]

//! `gcr-reuse` — reuse-distance measurement and the reuse-driven execution
//! limit study (Sections 2.1–2.2 of the paper).
//!
//! * [`distance`] — online reuse-distance analysis: the number of distinct
//!   data items touched between consecutive accesses to the same datum
//!   (Figure 1), in `O(log M)` per access, with log₂ histograms (Figure 3);
//! * [`trace`] — capture of statement-instance traces (instruction, reads,
//!   write) from the interpreter;
//! * [`driven`] — the reuse-driven execution algorithm of Figure 2: replay
//!   on an ideal dataflow machine, then reorder so the instruction with the
//!   closest reuse runs next (the "inverse of Belady");
//! * [`evadable`] — classification of *evadable reuses*: reuses whose
//!   distance grows with the input size (the paper's main §2.2 metric);
//! * [`predict`] — miss-ratio curves from reuse-distance histograms (the
//!   §2.1 perfect-cache equivalence, made executable);
//! * [`profile`] — per-array and per-phase histogram profiling, the
//!   observability layer behind `gcrc --profile` and the JSON reports.
//!
//! The core primitive is [`ReuseDistanceAnalyzer`] — feed it an address
//! stream, get back per-access distances and a log₂ [`Histogram`]:
//!
//! ```
//! let mut a = gcr_reuse::ReuseDistanceAnalyzer::new(8); // element granularity
//! assert_eq!(a.access(0), None);     // cold
//! assert_eq!(a.access(8), None);     // cold
//! assert_eq!(a.access(0), Some(1));  // one distinct datum in between
//! assert_eq!(a.distinct(), 2);
//! assert_eq!(a.hist.cold, 2);
//! ```

pub mod distance;
pub mod driven;
pub mod evadable;
pub mod hash;
pub mod predict;
pub mod profile;
pub mod sampled;
pub mod trace;

pub use distance::{CapacityCounter, DistanceSink, Histogram, ReuseDistanceAnalyzer};
pub use driven::reuse_driven_order;
pub use evadable::{evadable_fraction, EvadableReport, RefStats};
pub use hash::{FnvBuildHasher, FnvHashMap, FnvHasher};
pub use predict::{miss_ratio_curve, predicted_miss_ratio, predicted_misses};
pub use profile::{ProfileSink, ReuseProfile};
pub use sampled::SampledAnalyzer;
pub use trace::{Access, InstrTrace, TraceCapture};
