//! Hand-rolled FNV-1a hashing for the analyzer's hot maps.
//!
//! The reuse-distance analyzer keys two maps on every traced access: the
//! last-access time by datum (`u64` address) and the per-reference
//! statistics by [`gcr_ir::RefId`]. The standard library's default SipHash
//! is keyed and DoS-resistant — properties these internal, small, fixed
//! keys do not need — and its per-lookup cost is visible in the analyzer
//! profile. FNV-1a is the same pinned hash `gcr-bench::sweep` already uses
//! for measurement keys: unkeyed, deterministic across runs and platforms
//! (all writes are little-endian), and a handful of cycles for 4–8 byte
//! keys. No external dependency, matching the offline build constraint.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a streaming hasher (64-bit).
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    // Fixed-width writes go through the same byte stream in little-endian
    // order, so hashes are identical on every platform.
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Deterministic build-hasher (zero per-map state).
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` using FNV-1a, for small fixed-width keys on hot paths.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a 64-bit reference values.
        let h = |bytes: &[u8]| {
            let mut f = FnvHasher::default();
            f.write(bytes);
            f.finish()
        };
        assert_eq!(h(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(h(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(h(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FnvHashMap<u64, u32> = FnvHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 8, k as u32);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 8)), Some(&(k as u32)));
        }
    }
}
