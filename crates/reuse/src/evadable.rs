//! Evadable-reuse classification (Section 2.2).
//!
//! "We call those reuses whose reuse distance increases with the input size
//! *evadable* reuses." The classification therefore needs the same program
//! measured at two input sizes: a static reference whose mean reuse distance
//! grows (super-constantly) between the sizes is evadable, and all its
//! dynamic reuses at the larger size count as evadable reuses.

use crate::distance::PerRef;
use crate::hash::FnvHashMap;
use gcr_ir::RefId;

/// Per-static-reference measurement at one input size.
pub type RefStats = FnvHashMap<RefId, PerRef>;

/// Result of an evadable-reuse comparison.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvadableReport {
    /// Dynamic references (at the larger size) whose static reference is
    /// evadable.
    pub evadable_refs: u64,
    /// Total dynamic references at the larger size (including cold).
    pub total_refs: u64,
    /// Number of static references classified evadable.
    pub evadable_static: usize,
    /// Total static references observed at both sizes.
    pub total_static: usize,
}

impl EvadableReport {
    /// Fraction of dynamic memory references that are evadable reuses.
    pub fn fraction(&self) -> f64 {
        if self.total_refs == 0 {
            0.0
        } else {
            self.evadable_refs as f64 / self.total_refs as f64
        }
    }
}

/// Classifies evadable reuses between a small-size and a large-size run of
/// the same program.
///
/// A static reference is evadable when its mean finite reuse distance at the
/// larger size exceeds `growth × mean` at the smaller size and is larger
/// than `min_distance` (filters registers/loop-constant reuses). The paper
/// grows each dimension ~2× between sizes; `growth = 1.5` separates
/// O(1)-distance reuses (ratio →1) from O(N)- or O(N²)-distance reuses
/// (ratio ≥2) robustly.
pub fn evadable_fraction(
    small: &RefStats,
    large: &RefStats,
    growth: f64,
    min_distance: f64,
) -> EvadableReport {
    let mut rep = EvadableReport::default();
    for (r, big) in large {
        rep.total_refs += big.count + big.cold;
        rep.total_static += 1;
        let Some(sm) = small.get(r) else { continue };
        if big.count == 0 || sm.count == 0 {
            continue;
        }
        let grew = big.mean() > sm.mean() * growth && big.mean() > min_distance;
        if grew {
            rep.evadable_static += 1;
            rep.evadable_refs += big.count;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: &[(u32, u64, u64, u64)]) -> RefStats {
        pairs
            .iter()
            .map(|&(r, count, sum, cold)| {
                (RefId::from_index(r as usize), PerRef { count, sum, cold })
            })
            .collect()
    }

    #[test]
    fn growing_reference_is_evadable() {
        // ref 0: mean 100 -> 400 (evadable); ref 1: mean 2 -> 2 (not).
        let small = stats(&[(0, 10, 1000, 1), (1, 10, 20, 1)]);
        let large = stats(&[(0, 40, 16000, 1), (1, 40, 80, 1)]);
        let rep = evadable_fraction(&small, &large, 1.5, 4.0);
        assert_eq!(rep.evadable_static, 1);
        assert_eq!(rep.evadable_refs, 40);
        assert_eq!(rep.total_refs, 82);
        assert!((rep.fraction() - 40.0 / 82.0).abs() < 1e-12);
    }

    #[test]
    fn small_distances_never_evadable() {
        // Growth ratio high but absolute distance tiny (e.g. 0.1 -> 0.4).
        let small = stats(&[(0, 100, 10, 0)]);
        let large = stats(&[(0, 100, 40, 0)]);
        let rep = evadable_fraction(&small, &large, 1.5, 4.0);
        assert_eq!(rep.evadable_static, 0);
    }

    #[test]
    fn missing_reference_ignored() {
        let small = stats(&[]);
        let large = stats(&[(0, 10, 10000, 0)]);
        let rep = evadable_fraction(&small, &large, 1.5, 4.0);
        assert_eq!(rep.evadable_static, 0);
        assert_eq!(rep.total_refs, 10);
    }
}
