//! Cache-miss prediction from reuse distances.
//!
//! Section 2.1: "On a perfect cache (fully associative with LRU
//! replacement), a data reuse hits in cache if and only if its reuse
//! distance is smaller than the cache size." A reuse-distance histogram
//! therefore predicts, in one measurement pass, the miss count of *every*
//! cache capacity at once — the miss-ratio curve. This is how reuse
//! distance became the standard locality metric in the authors' later
//! work; here it lets users size caches for a program (or a transformed
//! program) without re-simulating.

use crate::distance::Histogram;

/// Predicted misses for a fully associative LRU cache holding `capacity`
/// data items (at the histogram's measurement granularity).
///
/// Exact when `capacity` is a power of two (histogram bins are log₂);
/// otherwise the whole bin containing `capacity` is dropped by
/// [`Histogram::at_least`], *under*-counting misses by up to that bin's
/// population. For exact counts at arbitrary capacities record distances
/// into a [`crate::distance::CapacityCounter`] (what the single-pass
/// multi-capacity simulator in `gcr-cache` does) instead of predicting
/// from a finished histogram.
pub fn predicted_misses(hist: &Histogram, capacity: u64) -> u64 {
    hist.cold + hist.at_least(capacity)
}

/// Predicted miss ratio at the given capacity.
pub fn predicted_miss_ratio(hist: &Histogram, capacity: u64) -> f64 {
    let total = hist.reuses + hist.cold;
    if total == 0 {
        0.0
    } else {
        predicted_misses(hist, capacity) as f64 / total as f64
    }
}

/// The full miss-ratio curve: `(capacity, miss ratio)` at every power of
/// two up to the point where only cold misses remain.
pub fn miss_ratio_curve(hist: &Histogram) -> Vec<(u64, f64)> {
    let max_bin = hist.bins.len();
    (0..=max_bin)
        .map(|k| {
            let cap = 1u64 << k;
            (cap, predicted_miss_ratio(hist, cap))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::ReuseDistanceAnalyzer;

    /// Cyclic sweep over W elements: distance W−1 on every reuse; a cache
    /// of ≥ W elements hits everything, smaller caches miss everything.
    #[test]
    fn sweep_curve_is_a_step() {
        let w = 64u64;
        let mut a = ReuseDistanceAnalyzer::new(1);
        for r in 0..10 {
            for e in 0..w {
                a.access(e);
                let _ = r;
            }
        }
        let h = &a.hist;
        // Capacity w (power of two): all reuses hit; only cold misses.
        assert_eq!(predicted_misses(h, w), w);
        // Capacity w/2: everything misses.
        assert_eq!(predicted_misses(h, w / 2), h.cold + h.reuses);
        let curve = miss_ratio_curve(h);
        assert!(curve.first().unwrap().1 > 0.9);
        assert!(curve.last().unwrap().1 < 0.2);
    }

    /// Prediction matches a simulated fully associative LRU cache exactly
    /// at power-of-two capacities (cross-check of the Section 2.1 claim).
    #[test]
    fn prediction_matches_lru_simulation() {
        // Deterministic mixed-locality stream.
        let mut x = 0x12345678u64;
        let addrs: Vec<u64> = (0..5000)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if i % 3 == 0 {
                    (x >> 33) % 700
                } else {
                    i as u64 % 97
                }
            })
            .collect();
        for cap_log in [4u32, 6, 8] {
            let cap = 1usize << cap_log;
            let mut analyzer = ReuseDistanceAnalyzer::new(1);
            let mut misses = 0u64;
            // Simulate fully associative LRU directly via the analyzer's
            // own definition is circular — use an independent naive LRU.
            let mut stack: Vec<u64> = Vec::new();
            for &addr in &addrs {
                analyzer.access(addr);
                match stack.iter().rposition(|&d| d == addr) {
                    Some(p) if stack.len() - 1 - p < cap => {
                        stack.remove(p);
                        stack.push(addr);
                    }
                    Some(p) => {
                        misses += 1;
                        stack.remove(p);
                        stack.push(addr);
                    }
                    None => {
                        misses += 1;
                        stack.push(addr);
                    }
                }
            }
            assert_eq!(predicted_misses(&analyzer.hist, cap as u64), misses, "capacity {cap}");
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut a = ReuseDistanceAnalyzer::new(1);
        for i in 0..2000u64 {
            a.access(i * 7 % 311);
            a.access(i % 13);
        }
        let curve = miss_ratio_curve(&a.hist);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "{curve:?}");
        }
    }
}
