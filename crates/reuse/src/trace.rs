//! Statement-instance trace capture.
//!
//! The reuse-driven execution study (Section 2.2) operates on the run-time
//! trace of "source-level instructions": one entry per dynamic assignment
//! instance, with the data it reads and writes. [`TraceCapture`] is a
//! [`gcr_exec::TraceSink`] that records the trace in CSR form.

use gcr_exec::{AccessEvent, TraceSink};
use gcr_ir::{RefId, StmtId};

/// A captured instruction trace. Addresses are at element granularity.
#[derive(Clone, Debug, Default)]
pub struct InstrTrace {
    /// Flat address stream; instruction `i` owns `addrs[starts[i]..starts[i+1]]`.
    pub addrs: Vec<u64>,
    /// Matching write flags (the write, if any, is last).
    pub is_write: Vec<bool>,
    /// Matching static reference ids.
    pub refs: Vec<RefId>,
    /// CSR offsets, length = instructions + 1.
    pub starts: Vec<u32>,
    /// Static statement id per instruction.
    pub stmts: Vec<StmtId>,
}

impl InstrTrace {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when no instructions were captured.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Accesses of instruction `i`: `(addr, is_write, ref)` triples.
    pub fn accesses(&self, i: usize) -> impl Iterator<Item = (u64, bool, RefId)> + '_ {
        let r = self.starts[i] as usize..self.starts[i + 1] as usize;
        r.map(move |k| (self.addrs[k], self.is_write[k], self.refs[k]))
    }

    /// Total number of accesses.
    pub fn total_accesses(&self) -> usize {
        self.addrs.len()
    }
}

/// Sink building an [`InstrTrace`].
#[derive(Debug, Default)]
pub struct TraceCapture {
    /// The trace under construction.
    pub trace: InstrTrace,
}

impl TraceCapture {
    /// New empty capture.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// New capture with room for `instances` instructions and `accesses`
    /// addresses, reserved up front. Use the interpreter's static
    /// [`gcr_exec::ExecEstimate`] so multi-million-access traces are built
    /// without reallocation.
    pub fn with_capacity(instances: u64, accesses: u64) -> Self {
        let (ni, na) = (instances as usize, accesses as usize);
        let mut t = InstrTrace {
            addrs: Vec::with_capacity(na),
            is_write: Vec::with_capacity(na),
            refs: Vec::with_capacity(na),
            starts: Vec::with_capacity(ni + 1),
            stmts: Vec::with_capacity(ni),
        };
        t.starts.push(0);
        TraceCapture { trace: t }
    }

    /// Finishes and returns the trace.
    pub fn finish(self) -> InstrTrace {
        self.trace
    }
}

impl TraceSink for TraceCapture {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.trace.addrs.push(ev.addr >> 3); // element granularity
        self.trace.is_write.push(ev.is_write);
        self.trace.refs.push(ev.ref_id);
    }

    fn end_instance(&mut self, stmt: StmtId) {
        self.trace.stmts.push(stmt);
        self.trace.starts.push(self.trace.addrs.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::Machine;
    use gcr_ir::{Expr, LinExpr, ParamBinding, ProgramBuilder, Subscript};

    #[test]
    fn captures_instances() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let c = b.array("C", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, 0)]);
        let s = b.assign(c, vec![Subscript::var(i, 0)], Expr::Call("f", vec![rhs]));
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s]);
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let mut cap = TraceCapture::new();
        m.run(&mut cap);
        let t = cap.finish();
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_accesses(), 8);
        let acc: Vec<_> = t.accesses(0).collect();
        assert_eq!(acc.len(), 2);
        assert!(!acc[0].1 && acc[1].1, "read then write");
        // A and C are adjacent; A elems 0..4, C elems 4..8
        assert_eq!(acc[0].0, 0);
        assert_eq!(acc[1].0, 4);
    }
}
