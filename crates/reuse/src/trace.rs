//! Statement-instance trace capture.
//!
//! The reuse-driven execution study (Section 2.2) operates on the run-time
//! trace of "source-level instructions": one entry per dynamic assignment
//! instance, with the data it reads and writes. [`TraceCapture`] is a
//! [`gcr_exec::TraceSink`] that records the trace in CSR form.

use gcr_exec::{AccessEvent, TraceSink};
use gcr_ir::{RefId, StmtId};

/// One recorded access: element-granularity address, static reference, and
/// write flag, packed into a single record so capture is one vector push
/// (three parallel vectors cost three capacity checks and three scattered
/// store streams on the multi-million-access traces of Section 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Element-granularity address.
    pub addr: u64,
    /// Static reference id.
    pub ref_id: RefId,
    /// True for the write (the write, if any, is last in its instruction).
    pub is_write: bool,
}

/// A captured instruction trace. Addresses are at element granularity.
#[derive(Clone, Debug, Default)]
pub struct InstrTrace {
    /// Flat access stream; instruction `i` owns `accs[starts[i]..starts[i+1]]`.
    pub accs: Vec<Access>,
    /// CSR offsets, length = instructions + 1.
    pub starts: Vec<u32>,
    /// Static statement id per instruction.
    pub stmts: Vec<StmtId>,
}

impl InstrTrace {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when no instructions were captured.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Accesses of instruction `i`: `(addr, is_write, ref)` triples.
    pub fn accesses(&self, i: usize) -> impl Iterator<Item = (u64, bool, RefId)> + '_ {
        let r = self.starts[i] as usize..self.starts[i + 1] as usize;
        self.accs[r].iter().map(|a| (a.addr, a.is_write, a.ref_id))
    }

    /// Total number of accesses.
    pub fn total_accesses(&self) -> usize {
        self.accs.len()
    }
}

/// Sink building an [`InstrTrace`].
#[derive(Debug, Default)]
pub struct TraceCapture {
    /// The trace under construction.
    pub trace: InstrTrace,
}

impl TraceCapture {
    /// New empty capture.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// New capture with room for `instances` instructions and `accesses`
    /// addresses, reserved up front. Use the interpreter's static
    /// [`gcr_exec::ExecEstimate`] so multi-million-access traces are built
    /// without reallocation.
    pub fn with_capacity(instances: u64, accesses: u64) -> Self {
        let (ni, na) = (instances as usize, accesses as usize);
        let mut t = InstrTrace {
            accs: Vec::with_capacity(na),
            starts: Vec::with_capacity(ni + 1),
            stmts: Vec::with_capacity(ni),
        };
        t.starts.push(0);
        TraceCapture { trace: t }
    }

    /// Finishes and returns the trace.
    pub fn finish(self) -> InstrTrace {
        self.trace
    }

    /// Empties the capture, keeping the allocated buffers. Benchmarks use
    /// this to time repeated captures without re-paying page faults on
    /// multi-megabyte trace buffers.
    pub fn clear(&mut self) {
        self.trace.accs.clear();
        self.trace.stmts.clear();
        self.trace.starts.clear();
        self.trace.starts.push(0);
    }
}

impl TraceSink for TraceCapture {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.trace.accs.push(Access {
            addr: ev.addr >> 3, // element granularity
            ref_id: ev.ref_id,
            is_write: ev.is_write,
        });
    }

    #[inline]
    fn end_instance(&mut self, stmt: StmtId) {
        self.trace.stmts.push(stmt);
        self.trace.starts.push(self.trace.accs.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::Machine;
    use gcr_ir::{Expr, LinExpr, ParamBinding, ProgramBuilder, Subscript};

    #[test]
    fn captures_instances() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let c = b.array("C", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, 0)]);
        let s = b.assign(c, vec![Subscript::var(i, 0)], Expr::Call("f", vec![rhs]));
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s]);
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let mut cap = TraceCapture::new();
        m.run(&mut cap);
        let t = cap.finish();
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_accesses(), 8);
        let acc: Vec<_> = t.accesses(0).collect();
        assert_eq!(acc.len(), 2);
        assert!(!acc[0].1 && acc[1].1, "read then write");
        // A and C are adjacent; A elems 0..4, C elems 4..8
        assert_eq!(acc[0].0, 0);
        assert_eq!(acc[1].0, 4);
    }
}
