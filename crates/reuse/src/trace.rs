//! Statement-instance trace capture.
//!
//! The reuse-driven execution study (Section 2.2) operates on the run-time
//! trace of "source-level instructions": one entry per dynamic assignment
//! instance, with the data it reads and writes. [`TraceCapture`] is a
//! [`gcr_exec::TraceSink`] that records the trace in CSR form.
//!
//! Capture has two paths. Per-event calls (`access`/`end_instance`, the
//! interpreter and compiled tape) append straight to the flat CSR vectors.
//! Batched calls ([`gcr_exec::TraceSink::record_batch`], the VM's strip
//! engine) append the *compressed affine form* — one [`gcr_exec::BatchSlot`]
//! descriptor per event position instead of one record per event, two
//! orders of magnitude less write traffic on long strips. The flat trace is
//! materialized lazily by [`TraceCapture::trace`]/[`TraceCapture::finish`],
//! which expand the deferred batches in stream order; engines that never
//! batch pay nothing. The materialized stream is byte-identical to what the
//! per-event path records (the sweep harness hashes all three engines'
//! traces against each other).

use gcr_exec::{AccessEvent, BatchSlot, TraceSink};
use gcr_ir::{RefId, StmtId};

/// One recorded access: element-granularity address, static reference, and
/// write flag, packed into a single record so capture is one vector push
/// (three parallel vectors cost three capacity checks and three scattered
/// store streams on the multi-million-access traces of Section 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Element-granularity address.
    pub addr: u64,
    /// Static reference id.
    pub ref_id: RefId,
    /// True for the write (the write, if any, is last in its instruction).
    pub is_write: bool,
}

/// A captured instruction trace. Addresses are at element granularity.
#[derive(Clone, Debug, Default)]
pub struct InstrTrace {
    /// Flat access stream; instruction `i` owns `accs[starts[i]..starts[i+1]]`.
    pub accs: Vec<Access>,
    /// CSR offsets, length = instructions + 1.
    pub starts: Vec<u32>,
    /// Static statement id per instruction.
    pub stmts: Vec<StmtId>,
}

impl InstrTrace {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when no instructions were captured.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Accesses of instruction `i`: `(addr, is_write, ref)` triples.
    pub fn accesses(&self, i: usize) -> impl Iterator<Item = (u64, bool, RefId)> + '_ {
        let r = self.starts[i] as usize..self.starts[i + 1] as usize;
        self.accs[r].iter().map(|a| (a.addr, a.is_write, a.ref_id))
    }

    /// Total number of accesses.
    pub fn total_accesses(&self) -> usize {
        self.accs.len()
    }
}

/// One deferred strip batch: spans into the slot/end pools, the iteration
/// count, and the flat-stream position the batch belongs at (so per-event
/// and batched spans interleave in true stream order when materialized).
#[derive(Clone, Copy, Debug)]
struct Run {
    slots: (u32, u32),
    ends: (u32, u32),
    iters: u32,
    /// Flat accesses recorded before this batch arrived.
    acc_at: u32,
    /// Flat instances recorded before this batch arrived.
    inst_at: u32,
}

/// Sink building an [`InstrTrace`].
#[derive(Debug, Default)]
pub struct TraceCapture {
    /// Flat CSR stream from per-event capture (and, after
    /// [`materialize`](Self::trace), from expanded batches too).
    trace: InstrTrace,
    /// Deferred batches in arrival order.
    runs: Vec<Run>,
    /// Slot pool the runs index into.
    rslots: Vec<BatchSlot>,
    /// Instance-boundary pool the runs index into.
    rends: Vec<(u32, StmtId)>,
}

impl TraceCapture {
    /// New empty capture.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// New capture with room for `instances` instructions and `accesses`
    /// addresses, reserved up front. Use the interpreter's static
    /// [`gcr_exec::ExecEstimate`] so multi-million-access traces are built
    /// without reallocation.
    pub fn with_capacity(instances: u64, accesses: u64) -> Self {
        let (ni, na) = (instances as usize, accesses as usize);
        let mut t = InstrTrace {
            accs: Vec::with_capacity(na),
            starts: Vec::with_capacity(ni + 1),
            stmts: Vec::with_capacity(ni),
        };
        t.starts.push(0);
        TraceCapture { trace: t, runs: Vec::new(), rslots: Vec::new(), rends: Vec::new() }
    }

    /// The captured trace, materializing any deferred batches first.
    pub fn trace(&mut self) -> &InstrTrace {
        self.materialize();
        &self.trace
    }

    /// Finishes and returns the trace, materializing deferred batches.
    pub fn finish(mut self) -> InstrTrace {
        self.materialize();
        self.trace
    }

    /// Total accesses captured so far — flat plus still-compressed — without
    /// forcing materialization.
    pub fn total_accesses(&self) -> usize {
        let batched: usize =
            self.runs.iter().map(|r| (r.slots.1 - r.slots.0) as usize * r.iters as usize).sum();
        self.trace.accs.len() + batched
    }

    /// Empties the capture, keeping the allocated buffers. Benchmarks use
    /// this to time repeated captures without re-paying page faults on
    /// multi-megabyte trace buffers.
    pub fn clear(&mut self) {
        self.trace.accs.clear();
        self.trace.stmts.clear();
        self.trace.starts.clear();
        self.trace.starts.push(0);
        self.runs.clear();
        self.rslots.clear();
        self.rends.clear();
    }

    /// Expands deferred batches into the flat CSR stream, merging them with
    /// the per-event spans at the positions they arrived. No-op when no
    /// batches are pending, so per-event engines never pay for it.
    fn materialize(&mut self) {
        if self.runs.is_empty() {
            return;
        }
        let flat = std::mem::take(&mut self.trace);
        let extra_acc: usize =
            self.runs.iter().map(|r| (r.slots.1 - r.slots.0) as usize * r.iters as usize).sum();
        let extra_inst: usize =
            self.runs.iter().map(|r| (r.ends.1 - r.ends.0) as usize * r.iters as usize).sum();
        let mut t = InstrTrace {
            accs: Vec::with_capacity(flat.accs.len() + extra_acc),
            starts: Vec::with_capacity(flat.stmts.len() + extra_inst + 1),
            stmts: Vec::with_capacity(flat.stmts.len() + extra_inst),
        };
        t.starts.push(0);
        let mut fa = 0usize; // flat accesses copied so far
        let mut fi = 0usize; // flat instances copied so far
        let mut ins = 0u32; // batch-expanded accesses inserted so far
        let mut copy_flat = |t: &mut InstrTrace, acc_to: usize, inst_to: usize, ins: u32| {
            t.accs.extend_from_slice(&flat.accs[fa..acc_to]);
            fa = acc_to;
            while fi < inst_to {
                t.stmts.push(flat.stmts[fi]);
                // Flat offsets count flat accesses only; rebase onto the
                // merged stream by the batch events inserted before here.
                t.starts.push(flat.starts[fi + 1] + ins);
                fi += 1;
            }
        };
        for r in &self.runs {
            copy_flat(&mut t, r.acc_at as usize, r.inst_at as usize, ins);
            let slots = &self.rslots[r.slots.0 as usize..r.slots.1 as usize];
            let ends = &self.rends[r.ends.0 as usize..r.ends.1 as usize];
            let n = slots.len();
            for k in 0..r.iters as i64 {
                for sl in slots {
                    t.accs.push(Access {
                        addr: sl.addr_at(k) >> 3, // element granularity
                        ref_id: sl.ref_id,
                        is_write: sl.is_write,
                    });
                }
                let base = (t.accs.len() - n) as u32;
                for &(end, stmt) in ends {
                    t.stmts.push(stmt);
                    t.starts.push(base + end);
                }
            }
            ins += (n as u32) * r.iters;
        }
        copy_flat(&mut t, flat.accs.len(), flat.stmts.len(), ins);
        self.runs.clear();
        self.rslots.clear();
        self.rends.clear();
        self.trace = t;
    }
}

impl TraceSink for TraceCapture {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.trace.accs.push(Access {
            addr: ev.addr >> 3, // element granularity
            ref_id: ev.ref_id,
            is_write: ev.is_write,
        });
    }

    #[inline]
    fn end_instance(&mut self, stmt: StmtId) {
        self.trace.stmts.push(stmt);
        self.trace.starts.push(self.trace.accs.len() as u32);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Store the batch in compressed affine form: O(slots) descriptor
        // writes instead of O(slots × iters) event records — the whole
        // point of the VM's strip batching. (Eager expansion here was
        // measured at ~4ns/event, which put batched capture's write
        // traffic on par with per-event capture and erased the strip
        // engine's run-time win.) Expansion to the flat CSR stream is
        // deferred to `trace()`/`finish()`.
        let s0 = self.rslots.len() as u32;
        self.rslots.extend_from_slice(batch.slots);
        let e0 = self.rends.len() as u32;
        self.rends.extend_from_slice(batch.ends);
        self.runs.push(Run {
            slots: (s0, self.rslots.len() as u32),
            ends: (e0, self.rends.len() as u32),
            iters: batch.iters,
            acc_at: self.trace.accs.len() as u32,
            inst_at: self.trace.stmts.len() as u32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{ExecEngine, Machine};
    use gcr_ir::{Expr, LinExpr, ParamBinding, ProgramBuilder, Subscript};

    #[test]
    fn captures_instances() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let c = b.array("C", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, 0)]);
        let s = b.assign(c, vec![Subscript::var(i, 0)], Expr::Call("f", vec![rhs]));
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s]);
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let mut cap = TraceCapture::new();
        m.run(&mut cap);
        let t = cap.finish();
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_accesses(), 8);
        let acc: Vec<_> = t.accesses(0).collect();
        assert_eq!(acc.len(), 2);
        assert!(!acc[0].1 && acc[1].1, "read then write");
        // A and C are adjacent; A elems 0..4, C elems 4..8
        assert_eq!(acc[0].0, 0);
        assert_eq!(acc[1].0, 4);
    }

    /// The lazily-materialized batched capture must reproduce the
    /// per-event stream exactly, including where batched strips interleave
    /// with guarded (per-event) iterations.
    #[test]
    fn batched_capture_matches_per_event() {
        for prog in [gcr_apps::adi::program(), gcr_apps::sp::program()] {
            let bind = ParamBinding::new(vec![8]);
            let mut vm_cap = TraceCapture::new();
            Machine::new(&prog, bind.clone()).with_engine(ExecEngine::Vm).run(&mut vm_cap);
            let mut ev_cap = TraceCapture::new();
            Machine::new(&prog, bind).with_engine(ExecEngine::Interp).run(&mut ev_cap);
            let (vm, ev) = (vm_cap.finish(), ev_cap.finish());
            assert_eq!(vm.accs, ev.accs, "{}: access streams differ", prog.name);
            assert_eq!(vm.starts, ev.starts, "{}: instance bounds differ", prog.name);
            assert_eq!(vm.stmts, ev.stmts, "{}: statement ids differ", prog.name);
        }
    }
}
