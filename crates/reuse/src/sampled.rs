//! Sampled (approximate) reuse-distance analysis.
//!
//! Exact analysis costs `O(log M)` per access with the full last-access
//! map in memory; at the paper's real input sizes (class B SP runs
//! billions of references) that dominates experiment time. The standard
//! mitigation is set sampling: watch a deterministic subset of the data,
//! measure exact reuse distances *within the subset*, and scale both the
//! distances and the counts by the sampling rate.

use crate::distance::Histogram;

/// Approximate reuse-distance analyzer watching `1/rate` of the data.
///
/// Internally this is the exact analyzer restricted to the watched subset:
/// a watched datum's reuse distance over watched data, multiplied by the
/// rate, estimates its true distance (each watched datum stands for `rate`
/// data items under the uniform hash selection).
pub struct SampledAnalyzer {
    shift: u32,
    rate: u64,
    inner: crate::distance::ReuseDistanceAnalyzer,
    /// Scaled histogram (counts multiplied by `rate`).
    pub hist: Histogram,
}

impl SampledAnalyzer {
    /// Creates an analyzer at `granularity` bytes watching one datum in
    /// `rate` (deterministic hash-based selection; `rate = 1` watches
    /// everything and is exact).
    pub fn new(granularity: u64, rate: u64) -> Self {
        assert!(granularity.is_power_of_two());
        assert!(rate >= 1);
        SampledAnalyzer {
            shift: granularity.trailing_zeros(),
            rate,
            inner: crate::distance::ReuseDistanceAnalyzer::new(1),
            hist: Histogram::default(),
        }
    }

    fn watched(&self, datum: u64) -> bool {
        datum.wrapping_mul(0x9e37_79b9_7f4a_7c15).is_multiple_of(self.rate)
    }

    /// Processes one access; returns the scaled distance estimate for
    /// watched data, `None` otherwise (unwatched or cold).
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let datum = addr >> self.shift;
        if !self.watched(datum) {
            return None;
        }
        match self.inner.access(datum) {
            Some(d) => {
                let est = d * self.rate;
                self.hist.record_n(est, self.rate);
                Some(est)
            }
            None => {
                self.hist.cold += self.rate;
                None
            }
        }
    }

    /// Number of distinct watched data seen.
    pub fn watched_distinct(&self) -> usize {
        self.inner.distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::ReuseDistanceAnalyzer;

    /// On a cyclic sweep the estimate converges to the true distance
    /// (W − 1) within sampling error.
    #[test]
    fn sweep_estimate_close_to_exact() {
        let w = 4096u64;
        let rounds = 6;
        let mut exact = ReuseDistanceAnalyzer::new(1);
        let mut approx = SampledAnalyzer::new(1, 16);
        for _ in 0..rounds {
            for e in 0..w {
                exact.access(e);
                approx.access(e);
            }
        }
        // Compare mean finite distances.
        let mean = |h: &Histogram| {
            let tot: u64 = h.bins.iter().sum();
            let wsum: u64 = h
                .bins
                .iter()
                .enumerate()
                .map(|(k, &c)| c * if k == 0 { 0 } else { 1u64 << (k - 1) })
                .sum();
            wsum as f64 / tot.max(1) as f64
        };
        let (me, ma) = (mean(&exact.hist), mean(&approx.hist));
        assert!((me - ma).abs() / me < 0.5, "exact mean {me}, sampled mean {ma}");
        // Scaled totals are in the right ballpark.
        let total_exact = exact.hist.reuses + exact.hist.cold;
        let total_approx = approx.hist.reuses + approx.hist.cold;
        let ratio = total_approx as f64 / total_exact as f64;
        assert!((0.5..2.0).contains(&ratio), "total ratio {ratio}");
    }

    #[test]
    fn rate_one_matches_exact_distances() {
        let mut exact = ReuseDistanceAnalyzer::new(8);
        let mut approx = SampledAnalyzer::new(8, 1);
        let addrs = [0u64, 8, 16, 0, 8, 40, 16, 0];
        for &a in &addrs {
            let d1 = exact.access(a);
            let d2 = approx.access(a);
            assert_eq!(d1, d2, "addr {a}");
        }
    }

    #[test]
    fn unwatched_data_returns_none() {
        let mut a = SampledAnalyzer::new(1, 1_000_000);
        let mut hits = 0;
        for x in 0..1000u64 {
            if a.access(x).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "reuses of watched data only; none reused here");
    }
}
