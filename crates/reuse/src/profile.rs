//! Reuse-distance *profiling*: full histograms per array and per phase.
//!
//! The global histogram of [`crate::distance::DistanceSink`] answers "what
//! is the program's locality"; this module answers *where it comes from*.
//! A [`ProfileSink`] runs one shared reuse-distance stack over the whole
//! address stream (distances are a property of the interleaved trace, so
//! per-array stacks would be wrong) and attributes every access's distance
//! to two secondary histograms:
//!
//! * **per array** — which data structure carries the long distances the
//!   paper's regrouping step attacks (Figure 1's per-datum view);
//! * **per phase** — which top-level loop nest produces them, where a
//!   *phase* is a top-level statement of the program
//!   ([`gcr_ir::Program::phase_of_stmts`]), the same granularity at which
//!   regrouping partitions the program into computation phases.
//!
//! The finished [`ReuseProfile`] is what `gcrc --profile` prints and what
//! the JSON reports embed (see `gcr_cli::report`).
//!
//! ```
//! use gcr_exec::Machine;
//! use gcr_ir::ParamBinding;
//! use gcr_reuse::ProfileSink;
//! let prog = gcr_frontend::parse("
//! program demo
//! param N
//! array A[N], B[N]
//! for i = 1, N { A[i] = f(A[i]) }
//! for i = 1, N { B[i] = g(A[i], B[i]) }
//! ").unwrap();
//! let mut sink = ProfileSink::elements(&prog);
//! Machine::new(&prog, ParamBinding::new(vec![64])).run(&mut sink);
//! let profile = sink.finish();
//! assert_eq!(profile.per_array.len(), 2);        // A and B
//! assert_eq!(profile.per_phase.len(), 2);        // two top-level nests
//! assert_eq!(profile.per_array[0].0, "A");
//! // A's second-loop reads reuse the first loop's data at distance ~N.
//! assert!(profile.per_array[0].1.reuses > 0);
//! ```

use crate::distance::{Histogram, ReuseDistanceAnalyzer};
use gcr_exec::{AccessEvent, TraceSink};
use gcr_ir::Program;

/// A complete reuse-distance profile of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// Measurement granularity in bytes (8 = elements).
    pub granularity: u64,
    /// Histogram over every access.
    pub global: Histogram,
    /// Per-array histograms, in declaration order (scalars never appear in
    /// the trace, so their histograms stay empty).
    pub per_array: Vec<(String, Histogram)>,
    /// Per-phase histograms, one per top-level statement.
    pub per_phase: Vec<(String, Histogram)>,
}

impl ReuseProfile {
    /// Distinct data items touched (the executed footprint, in units of
    /// `granularity`): every cold access is the first touch of one datum.
    pub fn distinct(&self) -> u64 {
        self.global.cold
    }
}

/// Trace sink measuring a [`ReuseProfile`] online.
pub struct ProfileSink {
    analyzer: ReuseDistanceAnalyzer,
    granularity: u64,
    array_names: Vec<String>,
    per_array: Vec<Histogram>,
    phase_of: Vec<usize>,
    phase_labels: Vec<String>,
    per_phase: Vec<Histogram>,
}

impl ProfileSink {
    /// A profiler at `granularity` bytes for `prog`'s arrays and phases.
    pub fn new(prog: &Program, granularity: u64) -> Self {
        let phase_labels = prog.phase_labels();
        ProfileSink {
            analyzer: ReuseDistanceAnalyzer::new(granularity),
            granularity,
            array_names: prog.arrays.iter().map(|a| a.name.clone()).collect(),
            per_array: vec![Histogram::default(); prog.arrays.len()],
            phase_of: prog.phase_of_stmts(),
            per_phase: vec![Histogram::default(); phase_labels.len()],
            phase_labels,
        }
    }

    /// Element-granularity (8-byte) profiler, the paper's Figure 1/3 unit.
    pub fn elements(prog: &Program) -> Self {
        Self::new(prog, 8)
    }

    /// Finishes the measurement.
    pub fn finish(self) -> ReuseProfile {
        ReuseProfile {
            granularity: self.granularity,
            global: self.analyzer.hist,
            per_array: self.array_names.into_iter().zip(self.per_array).collect(),
            per_phase: self.phase_labels.into_iter().zip(self.per_phase).collect(),
        }
    }
}

fn attribute(h: Option<&mut Histogram>, d: Option<u64>) {
    if let Some(h) = h {
        match d {
            Some(d) => h.record(d),
            None => h.cold += 1,
        }
    }
}

impl TraceSink for ProfileSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        let d = self.analyzer.access_ref(ev.addr, ev.ref_id);
        attribute(self.per_array.get_mut(ev.array.index()), d);
        let phase = self.phase_of.get(ev.stmt.index()).copied().unwrap_or(0);
        attribute(self.per_phase.get_mut(phase), d);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // The profile is instance-boundary-blind; expanding the affine
        // batch iteration-major keeps the reuse stack hot without
        // per-event dispatch, and each slot's attribution targets are
        // loop-invariant.
        for k in 0..batch.iters as i64 {
            for sl in batch.slots {
                let d = self.analyzer.access_ref(sl.addr_at(k), sl.ref_id);
                attribute(self.per_array.get_mut(sl.array.index()), d);
                let phase = self.phase_of.get(sl.stmt.index()).copied().unwrap_or(0);
                attribute(self.per_phase.get_mut(phase), d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::Machine;
    use gcr_ir::ParamBinding;

    const SRC: &str = "
program p
param N
array A[N], B[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

    fn profile(n: i64) -> ReuseProfile {
        let prog = gcr_frontend::parse(SRC).unwrap();
        let mut sink = ProfileSink::elements(&prog);
        let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
        m.run(&mut sink);
        sink.finish()
    }

    #[test]
    fn partitions_sum_to_global() {
        let p = profile(64);
        let sum = |hs: &[(String, Histogram)]| {
            let mut total = Histogram::default();
            for (_, h) in hs {
                total.merge(h);
            }
            total
        };
        let by_array = sum(&p.per_array);
        let by_phase = sum(&p.per_phase);
        assert_eq!(by_array.reuses, p.global.reuses);
        assert_eq!(by_array.cold, p.global.cold);
        assert_eq!(by_phase.reuses, p.global.reuses);
        assert_eq!(by_phase.bins, p.global.bins);
    }

    #[test]
    fn attributes_cross_loop_reuse_to_consuming_phase() {
        let p = profile(64);
        // Phase 0 touches A cold; phase 1 re-reads A at distance >= ~N and
        // touches B cold.
        assert_eq!(p.per_phase.len(), 2);
        let (_, first) = &p.per_phase[0];
        let (_, second) = &p.per_phase[1];
        assert_eq!(first.cold, 64);
        assert_eq!(second.cold, 64);
        assert!(second.at_least(32) > 0, "{second:?}");
        // The long-distance reuse belongs to array A.
        let (name, a) = &p.per_array[0];
        assert_eq!(name, "A");
        assert!(a.at_least(32) > 0, "{a:?}");
    }

    #[test]
    fn distinct_counts_footprint() {
        let p = profile(32);
        assert_eq!(p.distinct(), 64, "two 32-element arrays");
    }
}
