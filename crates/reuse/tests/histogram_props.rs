//! Exactness laws of the reuse-distance counters.
//!
//! `Histogram::at_least` is bin-granular: exact at power-of-two
//! thresholds, a documented *under*-count strictly inside a bin.
//! `CapacityCounter` is the exact counterpart at arbitrary registered
//! thresholds — in particular at the line-granularity capacities
//! (`capacity / line` with non-power-of-two line counts) that regrouped
//! layouts produce. These properties pin both claims against a brute
//! force over random distance streams.

use gcr_reuse::{CapacityCounter, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// A random distance stream with both short and long distances, so every
/// histogram bin range gets populated.
fn distances() -> impl Strategy<Value = Vec<u64>> {
    vec((0u64..400).prop_map(|x| if x >= 200 { (x - 200) * 37 } else { x }), 1..120)
}

fn brute_at_least(ds: &[u64], t: u64) -> u64 {
    ds.iter().filter(|&&d| d >= t).count() as u64
}

fn histogram_of(ds: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &d in ds {
        h.record(d);
    }
    h
}

proptest! {
    /// At powers of two (and 0 and 1, the first bin boundaries) the
    /// log₂-binned count is exact.
    #[test]
    fn histogram_exact_at_bin_boundaries(ds in distances(), k in 0u32..13) {
        let h = histogram_of(&ds);
        let t = 1u64 << k;
        prop_assert_eq!(h.at_least(t), brute_at_least(&ds, t), "threshold {}", t);
        prop_assert_eq!(h.at_least(0), ds.len() as u64);
    }

    /// At any threshold the bin-granular count never *over*-counts, and
    /// its undercount is bounded by the population of the bin the
    /// threshold cuts through.
    #[test]
    fn histogram_undercount_is_bounded(ds in distances(), t in 1u64..5000) {
        let h = histogram_of(&ds);
        let exact = brute_at_least(&ds, t);
        let binned = h.at_least(t);
        prop_assert!(binned <= exact, "overcount at {}: {} > {}", t, binned, exact);
        // The cut bin is [2^(bit-1), 2^bit); only its members can be lost.
        let lo = if t <= 1 { 0 } else { 1u64 << (63 - (t - 1).leading_zeros()) };
        let hi = if t <= 1 { 1 } else { lo * 2 };
        let cut = ds.iter().filter(|&&d| d >= lo && d < hi).count() as u64;
        prop_assert!(exact - binned <= cut, "lost more than the cut bin at {}", t);
    }

    /// `CapacityCounter` is exact at every registered threshold —
    /// including line-granularity capacities that are not powers of two.
    #[test]
    fn capacity_counter_exact_at_line_granularity(
        ds in distances(),
        line in 2u64..9,
        lines in vec(1u64..200, 1..8),
    ) {
        let caps: Vec<u64> = lines.iter().map(|&k| k * line).collect();
        let mut c = CapacityCounter::new(caps.clone());
        for &d in &ds {
            c.record(d);
        }
        prop_assert_eq!(c.recorded(), ds.len() as u64);
        for &cap in &caps {
            prop_assert_eq!(c.at_least(cap), brute_at_least(&ds, cap), "cap {}", cap);
        }
    }

    /// The exact counter refines the binned one: at a registered
    /// power-of-two threshold both agree; at any registered threshold the
    /// exact count is ≥ the binned count.
    #[test]
    fn capacity_counter_refines_histogram(ds in distances(), k in 0u32..13, t in 1u64..5000) {
        let h = histogram_of(&ds);
        let mut c = CapacityCounter::new(vec![1u64 << k, t]);
        for &d in &ds {
            c.record(d);
        }
        prop_assert_eq!(c.at_least(1 << k), h.at_least(1 << k));
        prop_assert!(c.at_least(t) >= h.at_least(t));
    }

    /// Merging histograms is counting on the concatenated stream.
    #[test]
    fn histogram_merge_is_concatenation(a in distances(), b in distances(), k in 0u32..13) {
        let mut ha = histogram_of(&a);
        let hb = histogram_of(&b);
        ha.merge(&hb);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ha.reuses, all.len() as u64);
        prop_assert_eq!(ha.at_least(1 << k), brute_at_least(&all, 1 << k));
    }
}
