//! Failure minimization by loop/statement/expression deletion.
//!
//! The vendored `proptest` shim deliberately has no shrinking, so the
//! fuzzer carries its own: a greedy delta debugger over the IR. Given a
//! failing program and a predicate ("does this candidate still fail?"),
//! it repeatedly tries structure-removing edits, keeps every candidate
//! that still fails, and stops at a fixpoint. Candidates are re-validated
//! before the predicate runs, so shrinking can never wander into programs
//! whose failure is a self-inflicted validation error rather than the
//! original finding.
//!
//! Edit classes, from coarse to fine:
//!
//! 1. delete a top-level statement (keeping at least one);
//! 2. delete a statement from a loop body (deleting the loop itself when
//!    the body would become empty);
//! 3. strip a guard range or an outer condition;
//! 4. hoist a subexpression over its parent, or collapse a right-hand
//!    side to `1.0`;
//! 5. move subscript and variable offsets toward zero.

use gcr_ir::{Expr, GuardedStmt, Program, Stmt, Subscript};

/// Total predicate evaluations allowed per shrink (keeps pathological
/// failures from stalling the fuzz loop).
const MAX_TRIES: usize = 3000;

/// Minimizes `prog` against `fails` (which must return `true` for `prog`
/// itself). The result still fails, is structurally valid, and keeps every
/// array reference in bounds — an edit that strips a guard or deletes a
/// statement must not manufacture an out-of-bounds access (release builds
/// wrap silently, which would shrink toward an artifact instead of the
/// original failure).
pub fn shrink(prog: &Program, fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    let mut cur = prog.clone();
    let mut tries = 0usize;
    loop {
        let mut progressed = false;
        for edit in 0..NUM_EDIT_CLASSES {
            loop {
                if tries >= MAX_TRIES {
                    return cur;
                }
                match apply_first(&cur, edit, &mut |cand| {
                    tries += 1;
                    gcr_ir::validate::validate(cand).is_ok()
                        && crate::gen::in_bounds(cand)
                        && fails(cand)
                }) {
                    Some(smaller) => {
                        cur = smaller;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        if !progressed {
            return cur;
        }
    }
}

const NUM_EDIT_CLASSES: usize = 5;

/// Tries every candidate of one edit class in a deterministic order and
/// returns the first accepted one.
fn apply_first(
    cur: &Program,
    edit: usize,
    accept: &mut dyn FnMut(&Program) -> bool,
) -> Option<Program> {
    let candidates: Vec<Program> = match edit {
        0 => delete_top(cur),
        1 => delete_nested(cur),
        2 => strip_guards(cur),
        3 => simplify_exprs(cur),
        _ => zero_offsets(cur),
    };
    candidates.into_iter().find(|c| accept(c))
}

fn delete_top(cur: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    if cur.body.len() > 1 {
        for i in 0..cur.body.len() {
            let mut c = cur.clone();
            c.body.remove(i);
            out.push(c);
        }
    }
    out
}

/// Paths to every loop body in the program, as (clone-with-edit) closures.
fn delete_nested(cur: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // For each loop (addressed by a path of body indices) and each member,
    // produce a candidate with that member removed, or with the whole loop
    // removed when it would become empty.
    fn visit(cur: &Program, path: &mut Vec<usize>, list: &[GuardedStmt], out: &mut Vec<Program>) {
        for (i, gs) in list.iter().enumerate() {
            if let Stmt::Loop(l) = &gs.stmt {
                path.push(i);
                for k in 0..l.body.len() {
                    if l.body.len() > 1 {
                        let mut c = cur.clone();
                        with_loop_at(&mut c, path, |lp| {
                            lp.body.remove(k);
                        });
                        out.push(c);
                    }
                }
                visit(cur, path, &l.body, out);
                path.pop();
            }
        }
    }
    let mut path = Vec::new();
    visit(cur, &mut path, &cur.body, &mut out);
    out
}

/// Runs `f` on the loop addressed by `path` (indices into nested bodies).
fn with_loop_at(prog: &mut Program, path: &[usize], f: impl FnOnce(&mut gcr_ir::Loop)) {
    let mut list = &mut prog.body;
    for (d, &i) in path.iter().enumerate() {
        let Stmt::Loop(l) = &mut list[i].stmt else { unreachable!("path must address loops") };
        if d + 1 == path.len() {
            f(l);
            return;
        }
        list = &mut l.body;
    }
}

fn strip_guards(cur: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    for_each_guarded(cur, &mut |c, gs| {
        if gs.guard.is_some() {
            let mut cand = c.clone();
            edit_same_stmt(&mut cand, gs, |g| g.guard = None);
            out.push(cand);
        }
        for k in 0..gs.outer.len() {
            let mut cand = c.clone();
            edit_same_stmt(&mut cand, gs, |g| {
                g.outer.remove(k);
            });
            out.push(cand);
        }
    });
    out
}

/// Invokes `f` for every guarded statement in the program (with the
/// program itself, for cloning).
fn for_each_guarded<'p>(prog: &'p Program, f: &mut dyn FnMut(&'p Program, &'p GuardedStmt)) {
    fn visit<'p>(
        prog: &'p Program,
        list: &'p [GuardedStmt],
        f: &mut dyn FnMut(&'p Program, &'p GuardedStmt),
    ) {
        for gs in list {
            f(prog, gs);
            if let Stmt::Loop(l) = &gs.stmt {
                visit(prog, &l.body, f);
            }
        }
    }
    visit(prog, &prog.body, f);
}

/// Applies `edit` to the statement in `cand` that occupies the same
/// position as `target` does in the original (matched by statement
/// identity: the assign id for statements, the loop variable for loops —
/// both unique within a program).
/// A one-shot statement edit, boxed so the recursive walk can thread it.
type StmtEdit<'a> = Option<Box<dyn FnOnce(&mut GuardedStmt) + 'a>>;

fn edit_same_stmt(cand: &mut Program, target: &GuardedStmt, edit: impl FnOnce(&mut GuardedStmt)) {
    fn matches(a: &GuardedStmt, b: &GuardedStmt) -> bool {
        match (&a.stmt, &b.stmt) {
            (Stmt::Assign(x), Stmt::Assign(y)) => x.id == y.id,
            (Stmt::Loop(x), Stmt::Loop(y)) => x.var == y.var,
            _ => false,
        }
    }
    fn visit(list: &mut [GuardedStmt], target: &GuardedStmt, edit: &mut StmtEdit<'_>) {
        for gs in list {
            if matches(gs, target) {
                if let Some(e) = edit.take() {
                    e(gs);
                }
                return;
            }
            if let Stmt::Loop(l) = &mut gs.stmt {
                visit(&mut l.body, target, edit);
            }
        }
    }
    let mut boxed: StmtEdit<'_> = Some(Box::new(edit));
    visit(&mut cand.body, target, &mut boxed);
}

fn simplify_exprs(cur: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    for_each_assign_path(cur, &mut |assign_id| {
        // Collect replacement candidates for this assign's rhs: each
        // immediate subexpression, then the constant.
        let rhs = find_rhs(cur, assign_id).expect("assign id must exist");
        let mut reps: Vec<Expr> = Vec::new();
        collect_children(rhs, &mut reps);
        if !matches!(rhs, Expr::Const(_)) {
            reps.push(Expr::Const(1.0));
        }
        for r in reps {
            let mut cand = cur.clone();
            set_rhs(&mut cand, assign_id, r);
            out.push(cand);
        }
    });
    out
}

fn collect_children(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Unary(_, x) => out.push((**x).clone()),
        Expr::Bin(_, x, y) => {
            out.push((**x).clone());
            out.push((**y).clone());
        }
        Expr::Call(_, args) => out.extend(args.iter().cloned()),
        _ => {}
    }
}

fn for_each_assign_path(prog: &Program, f: &mut dyn FnMut(gcr_ir::StmtId)) {
    fn visit(list: &[GuardedStmt], f: &mut dyn FnMut(gcr_ir::StmtId)) {
        for gs in list {
            match &gs.stmt {
                Stmt::Assign(a) => f(a.id),
                Stmt::Loop(l) => visit(&l.body, f),
            }
        }
    }
    visit(&prog.body, f);
}

fn find_rhs(prog: &Program, id: gcr_ir::StmtId) -> Option<&Expr> {
    fn visit(list: &[GuardedStmt], id: gcr_ir::StmtId) -> Option<&Expr> {
        for gs in list {
            match &gs.stmt {
                Stmt::Assign(a) if a.id == id => return Some(&a.rhs),
                Stmt::Loop(l) => {
                    if let Some(e) = visit(&l.body, id) {
                        return Some(e);
                    }
                }
                _ => {}
            }
        }
        None
    }
    visit(&prog.body, id)
}

fn set_rhs(prog: &mut Program, id: gcr_ir::StmtId, rhs: Expr) {
    fn visit(list: &mut [GuardedStmt], id: gcr_ir::StmtId, rhs: &mut Option<Expr>) {
        for gs in list {
            match &mut gs.stmt {
                Stmt::Assign(a) if a.id == id => {
                    if let Some(r) = rhs.take() {
                        a.rhs = r;
                    }
                    return;
                }
                Stmt::Loop(l) => visit(&mut l.body, id, rhs),
                _ => {}
            }
        }
    }
    let mut r = Some(rhs);
    visit(&mut prog.body, id, &mut r);
}

/// Candidates with one nonzero offset (subscript or variable expression)
/// moved one step toward zero.
fn zero_offsets(cur: &Program) -> Vec<Program> {
    // Count offset slots, then produce one candidate per nonzero slot.
    let total = count_offsets(cur);
    let mut out = Vec::new();
    for slot in 0..total {
        let mut cand = cur.clone();
        if nudge_offset(&mut cand, slot) {
            out.push(cand);
        }
    }
    out
}

fn count_offsets(prog: &Program) -> usize {
    let mut n = 0;
    visit_offsets(&mut prog.clone(), &mut |_| {
        n += 1;
        false
    });
    n
}

/// Nudges offset slot `idx` one step toward zero; true when it changed.
fn nudge_offset(prog: &mut Program, idx: usize) -> bool {
    let mut k = 0;
    let mut changed = false;
    visit_offsets(prog, &mut |off| {
        let hit = k == idx;
        k += 1;
        if hit && *off != 0 {
            *off -= off.signum();
            changed = true;
        }
        hit
    });
    changed
}

/// Visits every offset in the program in a stable order. The callback
/// returns `true` to stop early.
fn visit_offsets(prog: &mut Program, f: &mut dyn FnMut(&mut i64) -> bool) {
    fn expr(e: &mut Expr, f: &mut dyn FnMut(&mut i64) -> bool) -> bool {
        match e {
            Expr::Var { offset, .. } => f(offset),
            Expr::Read(r) => subs(&mut r.subs, f),
            Expr::Unary(_, x) => expr(x, f),
            Expr::Bin(_, x, y) => expr(x, f) || expr(y, f),
            Expr::Call(_, args) => args.iter_mut().any(|a| expr(a, f)),
            _ => false,
        }
    }
    fn subs(list: &mut [Subscript], f: &mut dyn FnMut(&mut i64) -> bool) -> bool {
        list.iter_mut().any(|s| match s {
            Subscript::Var { offset, .. } => f(offset),
            Subscript::Invariant(_) => false,
        })
    }
    fn visit(list: &mut [GuardedStmt], f: &mut dyn FnMut(&mut i64) -> bool) -> bool {
        for gs in list {
            let stop = match &mut gs.stmt {
                Stmt::Assign(a) => expr(&mut a.rhs, f) || subs(&mut a.lhs.subs, f),
                Stmt::Loop(l) => visit(&mut l.body, f),
            };
            if stop {
                return true;
            }
        }
        false
    }
    visit(&mut prog.body, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        gcr_frontend::parse(src).unwrap()
    }

    const BIG: &str = "
program big
param N
array A[N], B[N], C[N]

for i = 2, N - 1 {
  when [3, 5] A[i] = f(B[i-1]) + C[i+1]
  B[i] = g(A[i]) * 2.0
}
for j = 1, N {
  C[j] = h(C[j])
}
A[1] = A[N]
";

    #[test]
    fn shrinks_to_single_statement_for_trivial_predicate() {
        let prog = parse(BIG);
        // "Still fails" = program is non-empty: the shrinker should strip
        // it down to one bare statement with a trivial rhs.
        let small = shrink(&prog, &mut |p| !p.body.is_empty());
        assert_eq!(small.body.len(), 1, "{}", gcr_ir::print::print_program(&small));
        gcr_ir::validate::validate(&small).unwrap();
    }

    #[test]
    fn preserves_targeted_property() {
        let prog = parse(BIG);
        // Failure depends on the guarded statement: it must survive.
        let has_guard = |p: &Program| {
            let mut found = false;
            for_each_guarded(p, &mut |_, gs| found |= gs.guard.is_some());
            found
        };
        let small = shrink(&prog, &mut |p| has_guard(p));
        assert!(has_guard(&small));
        assert!(small.count_assigns() <= 2, "{}", gcr_ir::print::print_program(&small));
    }

    #[test]
    fn offsets_move_toward_zero() {
        let prog = parse(
            "
program offs
param N
array A[N]
for i = 3, N - 3 {
  A[i] = A[i-2] + A[i+2]
}
",
        );
        // Any program with a loop still "fails": offsets should shrink to 0.
        let small = shrink(&prog, &mut |p| p.count_loops() == 1);
        let text = gcr_ir::print::print_program(&small);
        assert!(!text.contains("i-2") && !text.contains("i+2"), "{text}");
    }

    #[test]
    fn result_always_validates() {
        let prog = parse(BIG);
        let small = shrink(&prog, &mut |p| p.count_assigns() >= 2);
        gcr_ir::validate::validate(&small).unwrap();
        assert!(small.count_assigns() >= 2);
    }
}
