//! Seeded deterministic random stream for the generator.
//!
//! The splitmix64 stream moved to [`gcr_par::rng`] so the fault-injection
//! plan (`gcr_par::fault`), the `gcr-chaos` workload driver, and the
//! fuzzer all draw from the same primitive; this module re-exports it
//! under the fuzzer's historical path. One `u64` seed fully determines
//! every generated program, which is what makes `gcr-fuzz --seed`
//! reproducible across machines and what lets a failure report name the
//! exact iteration.

pub use gcr_par::rng::Rng;
