#![warn(missing_docs)]

//! `gcr-conform` — generative conformance harness for the whole workspace.
//!
//! Every measured claim in the reproduction rests on a handful of
//! universals that are individually cheap to check on *one* program:
//!
//! 1. the compiled tape engine is observationally identical to the
//!    reference interpreter (same events, bit-identical memory);
//! 2. the fail-safe optimizer preserves program semantics on every rung of
//!    its degradation ladder;
//! 3. the single-pass [`gcr_cache::CapacitySweepSink`] agrees exactly with
//!    per-capacity LRU simulation, and LRU miss counts are monotone in
//!    capacity (the inclusion property);
//! 4. reuse-distance profiles are internally consistent (histogram mass
//!    equals access count; per-array/per-phase slices sum to the global
//!    histogram);
//! 5. fused programs have size-independent reuse distances bounded by the
//!    paper's `O(k·m)` constant on fusible loop chains;
//! 6. the analytic reuse model ([`gcr_static`]) reproduces the simulator's
//!    miss counts at sizes its fit never saw — byte-exact on guard-free
//!    (affine) programs, within its documented tolerance on guarded ones.
//!
//! This crate checks them on *millions* of programs: [`gen`] draws random
//! valid `gcr-ir` programs from a seeded grammar, [`oracles`] runs the seven
//! metamorphic oracles above, [`mod@shrink`] minimizes any failure by
//! loop/statement/expression deletion, and [`corpus`] replays the minimized
//! reproducers committed under `corpus/*.loop` as ordinary unit tests. The
//! `gcr-fuzz` binary drives the whole loop (in parallel, via
//! [`gcr_par::scope_map`]) and is wired into CI as a PR gate.

pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod rng;
pub mod shrink;

pub use gen::{generate, generate_chain, GenConfig};
pub use oracles::{assoc_parity, run_oracle, Oracle, ALL_ORACLES};
pub use rng::Rng;
pub use shrink::shrink;

/// One fuzzing failure: the oracle that rejected the program, its message,
/// and the printed program before and after shrinking.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Iteration index that produced the program.
    pub iter: u64,
    /// The oracle that failed.
    pub oracle: Oracle,
    /// The oracle's diagnostic.
    pub message: String,
    /// Printed source of the failing program, as generated.
    pub program: String,
    /// Printed source after shrinking (still failing the same oracle).
    pub minimized: String,
}

/// Runs `iters` fuzzing iterations of the given oracles starting from
/// `seed`, in parallel across [`gcr_par::thread_count`] workers, and
/// shrinks every failure. Iteration `i` derives its own generator stream
/// from `(seed, i)`, so any failure is reproducible with
/// `--seed <seed> --iters 1` offset to the reported iteration.
pub fn fuzz(seed: u64, iters: u64, oracles: &[Oracle]) -> Vec<Failure> {
    let items: Vec<u64> = (0..iters).collect();
    let failures = gcr_par::scope_map(&items, |&it| {
        let mut out = Vec::new();
        for &o in oracles {
            if let Some(f) = run_iteration(seed, it, o) {
                out.push(f);
            }
        }
        out
    });
    let mut flat: Vec<Failure> = failures.into_iter().flatten().collect();
    for f in &mut flat {
        f.minimized = minimize(seed, f);
    }
    flat
}

/// Runs one oracle on iteration `it`'s generated program, returning an
/// unshrunk failure on rejection.
fn run_iteration(seed: u64, it: u64, oracle: Oracle) -> Option<Failure> {
    let prog = program_for(seed, it, oracle);
    match run_oracle(oracle, &prog) {
        Ok(()) => None,
        Err(message) => Some(Failure {
            iter: it,
            oracle,
            message,
            program: gcr_ir::print::print_program(&prog),
            minimized: String::new(),
        }),
    }
}

/// The program oracle `o` checks on iteration `it`: the semantic oracles
/// draw from the tame grammar (finite arithmetic, so relative-tolerance
/// comparison is meaningful), the trace oracles from the full grammar, and
/// the fusion-bound oracle from the fusible chain family.
pub fn program_for(seed: u64, it: u64, o: Oracle) -> gcr_ir::Program {
    let mut rng = Rng::for_iteration(seed, it);
    match o {
        Oracle::Bound => generate_chain(&mut rng),
        Oracle::Optimize => generate(&mut rng, &GenConfig::tame()),
        _ => generate(&mut rng, &GenConfig::default()),
    }
}

/// Shrinks a failure's program against "the same oracle still rejects".
fn minimize(_seed: u64, f: &Failure) -> String {
    let prog = match gcr_frontend::parse(&f.program) {
        Ok(p) => p,
        // Printing a generated program is expected to round-trip; if it
        // does not, that is itself a finding — keep the original text.
        Err(_) => return f.program.clone(),
    };
    let oracle = f.oracle;
    let small = shrink(&prog, &mut |p| run_oracle(oracle, p).is_err());
    gcr_ir::print::print_program(&small)
}
