//! The seven metamorphic oracles.
//!
//! Each oracle takes a program and returns `Err(diagnostic)` when one of
//! the workspace's cross-cutting invariants is violated. Panics inside the
//! system under test are caught and reported as failures too, so the
//! fuzzer surfaces crashes and mismatches through the same channel.
//!
//! | oracle | invariant | compared artifacts |
//! |--------|-----------|--------------------|
//! | [`Oracle::Engine`]   | interpreter ≡ compiled tape | event stream, stats, f64 bits, fuel |
//! | [`Oracle::Optimize`] | `optimize_checked` preserves semantics on every ladder rung | final array contents vs original |
//! | [`Oracle::Sweep`]    | single-pass sweep ≡ per-capacity LRU; inclusion property | exact miss counts |
//! | [`Oracle::Profile`]  | reuse profiles are internally consistent | histogram masses |
//! | [`Oracle::Bound`]    | fused reuse distances are `O(k·m)`, size-independent | max exact distance at two sizes |
//! | [`Oracle::Static`]   | analytic miss model ≡ trace simulation at unseen sizes | miss counts per capacity and array, by construct class |
//! | [`Oracle::Assoc`]    | single-set set-associative ≡ fully-associative sweep; per-set stack inclusion | exact miss counts |

use gcr_cache::{Cache, CacheConfig, CapacitySweepSink};
use gcr_core::checked::{optimize_checked, Pass, SafetyOptions};
use gcr_core::OptimizeOptions;
use gcr_exec::{AccessEvent, DataLayout, ExecEngine, Machine, TraceSink};
use gcr_ir::{ParamBinding, Program, StmtId};
use gcr_reuse::{Histogram, ProfileSink, ReuseDistanceAnalyzer};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One of the six conformance oracles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Differential interpreter-vs-compiled execution.
    Engine,
    /// Optimizer semantic preservation across the degradation ladder.
    Optimize,
    /// Capacity sweep vs dedicated LRU simulation + inclusion property.
    Sweep,
    /// Reuse-distance profile consistency.
    Profile,
    /// Fused-chain reuse-distance bound (`O(k·m)`, size-independent).
    Bound,
    /// Analytic miss model vs trace simulation at sizes the fit never saw.
    Static,
    /// Set-associative simulation vs the fully-associative sweep
    /// (single-set byte equality + fixed-set-count way monotonicity).
    Assoc,
}

/// All oracles, in documentation order.
pub const ALL_ORACLES: [Oracle; 7] = [
    Oracle::Engine,
    Oracle::Optimize,
    Oracle::Sweep,
    Oracle::Profile,
    Oracle::Bound,
    Oracle::Static,
    Oracle::Assoc,
];

impl Oracle {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Engine => "engine",
            Oracle::Optimize => "optimize",
            Oracle::Sweep => "sweep",
            Oracle::Profile => "profile",
            Oracle::Bound => "bound",
            Oracle::Static => "static",
            Oracle::Assoc => "assoc",
        }
    }

    /// Parses a CLI name (`"all"` is handled by the caller).
    pub fn from_name(s: &str) -> Option<Oracle> {
        ALL_ORACLES.into_iter().find(|o| o.name() == s)
    }
}

impl std::fmt::Display for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fuel budget for oracle runs: generous for the generated sizes, finite
/// so a transformed program with runaway bounds terminates.
const FUEL: u64 = 50_000_000;

/// Runs one oracle, converting panics in the system under test into
/// failures.
pub fn run_oracle(oracle: Oracle, prog: &Program) -> Result<(), String> {
    let res = catch_unwind(AssertUnwindSafe(|| match oracle {
        Oracle::Engine => engine_diff(prog),
        Oracle::Optimize => optimize_equiv(prog),
        Oracle::Sweep => sweep_vs_sim(prog),
        Oracle::Profile => profile_consistency(prog),
        Oracle::Bound => fused_bound(prog),
        Oracle::Static => static_parity(prog),
        Oracle::Assoc => assoc_parity(prog, ExecEngine::from_env().unwrap_or_default()),
    }));
    match res {
        Ok(r) => r,
        Err(p) => Err(format!("panic: {}", panic_msg(p))),
    }
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------- oracle 1

/// One observable event: a traced access or an instance boundary. The
/// compiled engine must reproduce the interpreter's stream exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    Access { addr: u64, array: usize, ref_id: usize, stmt: usize, is_write: bool },
    End(usize),
}

#[derive(Default)]
struct Cap(Vec<Ev>);

impl TraceSink for Cap {
    fn access(&mut self, ev: AccessEvent) {
        self.0.push(Ev::Access {
            addr: ev.addr,
            array: ev.array.index(),
            ref_id: ev.ref_id.index(),
            stmt: ev.stmt.index(),
            is_write: ev.is_write,
        });
    }

    fn end_instance(&mut self, stmt: StmtId) {
        self.0.push(Ev::End(stmt.index()));
    }
}

struct Run {
    events: Vec<Ev>,
    stats: gcr_exec::ExecStats,
    mem: Vec<Vec<u64>>,
    outcome: Result<(), String>,
}

fn run_engine(
    prog: &Program,
    binding: &ParamBinding,
    layout: &DataLayout,
    engine: ExecEngine,
    steps: usize,
    fuel: u64,
) -> Run {
    let mut m = Machine::with_layout(prog, binding.clone(), layout.clone()).with_engine(engine);
    let mut cap = Cap::default();
    let outcome = m.run_steps_guarded(&mut cap, steps, fuel).map_err(|e| e.to_string());
    let mem = (0..prog.arrays.len())
        .map(|i| {
            m.read_array(gcr_ir::ArrayId::from_index(i)).into_iter().map(f64::to_bits).collect()
        })
        .collect();
    Run { events: cap.0, stats: m.stats(), mem, outcome }
}

/// Oracle 1: the compiled tape engine *and* the register bytecode VM must
/// each be observationally identical to the interpreter — same event
/// stream (accesses *and* instance boundaries, in order), same statistics,
/// bit-identical `f64` memory, and the same fuel-exhaustion behaviour —
/// under several layouts. A three-way interp≡compiled≡vm check: both
/// derived engines are differenced against the same reference runs.
fn engine_diff(prog: &Program) -> Result<(), String> {
    let binding = ParamBinding::new(vec![12; prog.params.len()]);
    let layouts = [
        ("plain", DataLayout::column_major(prog, &binding, 0)),
        ("padded", DataLayout::column_major(prog, &binding, 64)),
    ];
    let derived = [ExecEngine::Compiled, ExecEngine::Vm];
    for (label, layout) in &layouts {
        // The generated grammar stays inside the compiler's domain; a
        // fallback to the interpreter would silently void the comparison.
        let mut probe = Machine::with_layout(prog, binding.clone(), layout.clone())
            .with_engine(ExecEngine::Compiled);
        if !probe.compiles() {
            return Err(format!("program unexpectedly outside compiler domain ({label} layout)"));
        }
        for steps in [1usize, 2] {
            let a = run_engine(prog, &binding, layout, ExecEngine::Interp, steps, FUEL);
            for engine in derived {
                let b = run_engine(prog, &binding, layout, engine, steps, FUEL);
                compare_runs(label, engine, steps, &a, &b)?;
            }
        }
        // Fuel parity: starve all engines with the fuel that lets the
        // interpreter get roughly halfway, and require the identical
        // error and identical (prefix) event stream.
        let full = run_engine(prog, &binding, layout, ExecEngine::Interp, 1, FUEL);
        let spent = full.stats.instances + 1;
        if spent > 2 {
            let short = spent / 2;
            let a = run_engine(prog, &binding, layout, ExecEngine::Interp, 1, short);
            for engine in derived {
                let b = run_engine(prog, &binding, layout, engine, 1, short);
                if a.outcome != b.outcome {
                    return Err(format!(
                        "fuel {short} outcome diverged ({label}): interp {:?} vs {} {:?}",
                        a.outcome,
                        engine.name(),
                        b.outcome
                    ));
                }
                if a.events != b.events {
                    return Err(format!(
                        "fuel {short} event prefix diverged ({label}): interp {} events, {} {}",
                        a.events.len(),
                        engine.name(),
                        b.events.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

fn compare_runs(
    label: &str,
    engine: ExecEngine,
    steps: usize,
    a: &Run,
    b: &Run,
) -> Result<(), String> {
    let name = engine.name();
    if a.outcome != b.outcome {
        return Err(format!(
            "outcome diverged ({label}, steps={steps}): interp {:?} vs {name} {:?}",
            a.outcome, b.outcome
        ));
    }
    if a.events != b.events {
        let at = a.events.iter().zip(&b.events).position(|(x, y)| x != y);
        return Err(format!(
            "event streams diverged ({label}, steps={steps}): interp {} events vs {name} {}, first diff at {:?}: {:?} vs {:?}",
            a.events.len(),
            b.events.len(),
            at,
            at.map(|i| a.events[i]),
            at.map(|i| b.events[i]),
        ));
    }
    if a.stats != b.stats {
        return Err(format!(
            "stats diverged ({label}, steps={steps}): interp {:?} vs {name} {:?}",
            a.stats, b.stats
        ));
    }
    for (ai, (ma, mb)) in a.mem.iter().zip(&b.mem).enumerate() {
        if ma != mb {
            let at = ma.iter().zip(mb).position(|(x, y)| x != y);
            return Err(format!(
                "memory of array #{ai} diverged ({label}, {name}, steps={steps}) at element {at:?}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 2

/// Elementwise comparison with the pipeline's own tolerance, extended with
/// bit equality so identically-produced non-finite values do not trip it.
fn close(x: f64, y: f64) -> bool {
    x.to_bits() == y.to_bits() || (x - y).abs() <= 1e-9 * x.abs().max(1.0)
}

/// Oracle 2: every rung of the degradation ladder must deliver a program
/// that computes the same array contents as the original — verified
/// *externally* (not trusting the pipeline's internal oracle) and at a
/// larger size than the internal checkpoint uses, so size-parametric
/// transformation bugs cannot hide behind the checked size.
fn optimize_equiv(prog: &Program) -> Result<(), String> {
    let faults: [Option<Pass>; 4] =
        [None, Some(Pass::Prelim), Some(Pass::Fusion { level: 1 }), Some(Pass::Regroup)];
    for fault in faults {
        let safety = SafetyOptions { inject_fault: fault, ..SafetyOptions::default() };
        let opt = optimize_checked(prog, &OptimizeOptions::default(), &safety)
            .map_err(|e| format!("optimize_checked({fault:?}) fatal: {e}"))?;
        // The injected corruption adds +1.0 to the first assignment after
        // the pass. The pipeline's checkpoints need not "detect" it per se
        // (the corrupted statement may write a scalar or sit under a dead
        // guard, leaving memory untouched) — but whatever program comes out
        // the other end must be memory-equivalent to the original at the
        // ladder's own oracle sizes. (A dynamic oracle cannot promise more:
        // value clamps like `min(x, 1.0)` can mask a corruption at any
        // finite size set, so divergence at a *third* size is a known
        // residual, not a checkpoint bug.) The unfaulted pipeline is held
        // to a stricter standard: equivalence at a size the internal
        // oracle never saw, which is what catches size-parametric
        // transform bugs.
        match fault {
            None => check_equivalence(prog, &opt, 16, fault)?,
            Some(_) => {
                let sizes = [
                    SafetyOptions::default().oracle_n,
                    SafetyOptions::default().oracle_n2.unwrap_or(12),
                ];
                for n in sizes {
                    check_equivalence(prog, &opt, n, fault).map_err(|e| {
                        format!("undetected injected fault escaped the ladder: {e}")
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// Executes original and optimized programs from equalized initial data
/// and compares every (non-scalar) array, following component splits
/// (`u` → `u__1..u__k`) the preliminary passes may have introduced.
fn check_equivalence(
    orig: &Program,
    opt: &gcr_core::OptimizedProgram,
    n: i64,
    fault: Option<Pass>,
) -> Result<(), String> {
    let binding = ParamBinding::new(vec![n; orig.params.len()]);
    let steps = 2;
    let layout = DataLayout::column_major(orig, &binding, 0);
    let mut reference = Machine::with_layout(orig, binding.clone(), layout);
    let initial: Vec<Vec<f64>> = (0..orig.arrays.len())
        .map(|i| reference.read_array(gcr_ir::ArrayId::from_index(i)))
        .collect();
    reference
        .run_steps_guarded(&mut gcr_exec::NullSink, steps, FUEL)
        .map_err(|e| format!("reference run failed at N={n}: {e}"))?;

    let opt_layout = opt.layout(&binding);
    let mut m = Machine::with_layout(&opt.program, binding.clone(), opt_layout);
    for (i, decl) in orig.arrays.iter().enumerate() {
        let vals = &initial[i];
        if let Some(t) = opt.program.array_by_name(&decl.name) {
            if opt.program.array(t).rank() == decl.rank() {
                m.write_array(t, vals).map_err(|e| e.to_string())?;
                continue;
            }
        }
        let comps = split_count(&opt.program, &decl.name)
            .ok_or_else(|| format!("array {} disappeared after {fault:?}", decl.name))?;
        for c in 0..comps {
            let part = opt.program.array_by_name(&format!("{}__{}", decl.name, c + 1)).unwrap();
            let slice: Vec<f64> = vals.iter().skip(c).step_by(comps).copied().collect();
            m.write_array(part, &slice).map_err(|e| e.to_string())?;
        }
    }
    m.run_steps_guarded(&mut gcr_exec::NullSink, steps, FUEL).map_err(|e| {
        format!("optimized run ({}, fault {fault:?}) failed at N={n}: {e}", opt.robustness.strategy)
    })?;

    for (i, decl) in orig.arrays.iter().enumerate() {
        if decl.rank() == 0 {
            continue; // scalar reductions may reassociate across fusion
        }
        let want = reference.read_array(gcr_ir::ArrayId::from_index(i));
        if let Some(t) = opt.program.array_by_name(&decl.name) {
            if opt.program.array(t).rank() == decl.rank() {
                compare_arrays(
                    &decl.name,
                    &want,
                    &m.read_array(t),
                    &opt.robustness.strategy,
                    fault,
                )?;
                continue;
            }
        }
        let comps = split_count(&opt.program, &decl.name)
            .ok_or_else(|| format!("array {} disappeared after {fault:?}", decl.name))?;
        for c in 0..comps {
            let part = opt.program.array_by_name(&format!("{}__{}", decl.name, c + 1)).unwrap();
            let wantc: Vec<f64> = want.iter().skip(c).step_by(comps).copied().collect();
            compare_arrays(
                &format!("{}__{}", decl.name, c + 1),
                &wantc,
                &m.read_array(part),
                &opt.robustness.strategy,
                fault,
            )?;
        }
    }
    Ok(())
}

/// Number of `name__k` components present in the transformed program.
fn split_count(prog: &Program, name: &str) -> Option<usize> {
    let mut c = 0;
    while prog.array_by_name(&format!("{}__{}", name, c + 1)).is_some() {
        c += 1;
    }
    (c > 0).then_some(c)
}

fn compare_arrays(
    name: &str,
    want: &[f64],
    got: &[f64],
    strategy: &str,
    fault: Option<Pass>,
) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!(
            "array {name} length {} vs {} (strategy {strategy}, fault {fault:?})",
            want.len(),
            got.len()
        ));
    }
    for (i, (&x, &y)) in want.iter().zip(got).enumerate() {
        if !close(x, y) {
            return Err(format!(
                "array {name}[{i}] diverged: {x} vs {y} (strategy {strategy}, fault {fault:?})"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 3

/// Capturing sink: feeds the sweep and records the raw address stream for
/// the per-capacity reference simulations.
struct SweepCap {
    sweep: CapacitySweepSink,
    trace: Vec<(u64, bool)>,
}

impl TraceSink for SweepCap {
    fn access(&mut self, ev: AccessEvent) {
        self.sweep.access(ev);
        self.trace.push((ev.addr, ev.is_write));
    }
}

/// Oracle 3: the single-pass [`CapacitySweepSink`] must agree *exactly*
/// with a dedicated fully-associative LRU simulation at every capacity of
/// a random capacity set (Section 2.1: hit ⟺ reuse distance < capacity),
/// and miss counts must be monotone in capacity (the inclusion property).
fn sweep_vs_sim(prog: &Program) -> Result<(), String> {
    let binding = ParamBinding::new(vec![12; prog.params.len()]);
    let mut rng = crate::rng::Rng::new(
        prog.body.len() as u64 ^ (prog.next_stmt as u64) << 16 ^ (prog.next_ref as u64) << 32,
    );
    let line: u64 = *rng.pick(&[16, 32, 64]);
    let ncaps = rng.range(2, 5) as usize;
    let mut caps: Vec<u64> = (0..ncaps).map(|_| line * rng.range(1, 96) as u64).collect();
    caps.sort_unstable();
    caps.dedup();

    let mut sink = SweepCap { sweep: CapacitySweepSink::new(line, &caps), trace: Vec::new() };
    let mut m = Machine::new(prog, binding);
    m.run_steps_guarded(&mut sink, 2, FUEL).map_err(|e| format!("run failed: {e}"))?;

    if sink.sweep.refs() != sink.trace.len() as u64 {
        return Err(format!(
            "sweep saw {} refs, trace recorded {}",
            sink.sweep.refs(),
            sink.trace.len()
        ));
    }
    for &cap in &caps {
        let assoc = (cap / line) as usize;
        let mut c = Cache::new(CacheConfig { size: cap as usize, line: line as usize, assoc });
        for &(addr, w) in &sink.trace {
            c.access_rw(addr, w);
        }
        let got = sink.sweep.misses(cap);
        if got != c.misses {
            return Err(format!(
                "capacity {} lines (line {line}): sweep {got} misses, dedicated LRU {}",
                cap / line,
                c.misses
            ));
        }
    }
    let counts = sink.sweep.miss_counts();
    for w in counts.windows(2) {
        if w[1].1 > w[0].1 {
            return Err(format!(
                "inclusion violated: {} misses at {}B > {} misses at {}B",
                w[1].1, w[1].0, w[0].1, w[0].0
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 4

/// Wraps a [`ProfileSink`] while independently counting events.
struct ProfileCap {
    profile: ProfileSink,
    accesses: u64,
    distinct: std::collections::HashSet<u64>,
    granularity: u64,
}

impl TraceSink for ProfileCap {
    fn access(&mut self, ev: AccessEvent) {
        self.profile.access(ev);
        self.accesses += 1;
        self.distinct.insert(ev.addr / self.granularity);
    }

    fn end_instance(&mut self, stmt: StmtId) {
        self.profile.end_instance(stmt);
    }
}

fn mass(h: &Histogram) -> u64 {
    h.cold + h.reuses
}

/// Oracle 4: profile bookkeeping must be conservative — the global
/// histogram's mass equals the traced access count, its cold count equals
/// the distinct footprint, bin totals equal the reuse count, and the
/// per-array and per-phase decompositions each sum back to the global
/// histogram.
fn profile_consistency(prog: &Program) -> Result<(), String> {
    let binding = ParamBinding::new(vec![12; prog.params.len()]);
    let granularity = 8;
    let mut sink = ProfileCap {
        profile: ProfileSink::new(prog, granularity),
        accesses: 0,
        distinct: std::collections::HashSet::new(),
        granularity,
    };
    let mut m = Machine::new(prog, binding);
    m.run_steps_guarded(&mut sink, 2, FUEL).map_err(|e| format!("run failed: {e}"))?;
    let accesses = sink.accesses;
    let footprint = sink.distinct.len() as u64;
    let profile = sink.profile.finish();

    let g = &profile.global;
    if mass(g) != accesses {
        return Err(format!("global mass {} != traced accesses {accesses}", mass(g)));
    }
    if g.cold != footprint {
        return Err(format!("global cold {} != distinct footprint {footprint}", g.cold));
    }
    if g.bins.iter().sum::<u64>() != g.reuses {
        return Err(format!(
            "global bins sum {} != reuses {}",
            g.bins.iter().sum::<u64>(),
            g.reuses
        ));
    }
    let per_array: u64 = profile.per_array.iter().map(|(_, h)| mass(h)).sum();
    if per_array != mass(g) {
        return Err(format!("per-array masses sum {per_array} != global {}", mass(g)));
    }
    let per_phase: u64 = profile.per_phase.iter().map(|(_, h)| mass(h)).sum();
    if per_phase != mass(g) {
        return Err(format!("per-phase masses sum {per_phase} != global {}", mass(g)));
    }
    let cold_arrays: u64 = profile.per_array.iter().map(|(_, h)| h.cold).sum();
    if cold_arrays < g.cold {
        // Per-array cold counts may exceed the global (an element first
        // seen by array A then reused by array B under regrouped layouts
        // is cold for B too), but can never undercount.
        return Err(format!("per-array cold sum {cold_arrays} < global cold {}", g.cold));
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 5

/// Sink tracking the maximum exact finite reuse distance.
struct MaxDist {
    analyzer: ReuseDistanceAnalyzer,
    max: u64,
}

impl TraceSink for MaxDist {
    fn access(&mut self, ev: AccessEvent) {
        if let Some(d) = self.analyzer.access(ev.addr) {
            self.max = self.max.max(d);
        }
    }
}

fn max_distance(prog: &Program, opt: &gcr_core::OptimizedProgram, n: i64) -> Result<u64, String> {
    let binding = ParamBinding::new(vec![n; prog.params.len()]);
    let layout = opt.layout(&binding);
    let mut m = Machine::with_layout(&opt.program, binding, layout);
    let mut sink = MaxDist { analyzer: ReuseDistanceAnalyzer::new(8), max: 0 };
    m.run_guarded(&mut sink, FUEL).map_err(|e| format!("fused run failed at N={n}: {e}"))?;
    Ok(sink.max)
}

/// Oracle 5: on the fusible chain family ([`crate::gen::generate_chain`]),
/// fusion must (a) actually fuse the whole chain into one nest, and (b)
/// bound every reuse distance by a constant independent of `N` and linear
/// in the chain size — the paper's central `O(k·m)` claim (Section 3.1).
/// Size independence is checked exactly: the maximum finite distance must
/// be *identical* at two different sizes.
fn fused_bound(prog: &Program) -> Result<(), String> {
    let k = prog.arrays.iter().filter(|a| !a.is_scalar()).count();
    let m = prog.count_loops();
    let opt = optimize_checked(prog, &OptimizeOptions::default(), &SafetyOptions::default())
        .map_err(|e| format!("optimize failed on fusible chain: {e}"))?;
    if opt.robustness.degraded() {
        return Err(format!(
            "fusible chain degraded to {}: {:?}",
            opt.robustness.strategy, opt.robustness.fallbacks
        ));
    }
    if opt.program.count_nests() != 1 {
        return Err(format!(
            "fusible chain of {m} loops left {} nests (strategy {})",
            opt.program.count_nests(),
            opt.robustness.strategy
        ));
    }
    let d1 = max_distance(prog, &opt, 40)?;
    let d2 = max_distance(prog, &opt, 80)?;
    if d1 != d2 {
        return Err(format!(
            "fused max reuse distance is size-dependent: {d1} at N=40, {d2} at N=80"
        ));
    }
    // Generous constant: the steady-state window holds O(k·m) elements
    // (k arrays × alignment window), plus boundary iterations.
    let bound = 16 * (k as u64 + 1) * (m as u64 + 1) + 64;
    if d1 > bound {
        return Err(format!(
            "fused max reuse distance {d1} exceeds O(k·m) bound {bound} (k={k}, m={m})"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 6

/// Slack added to a bounded model's own tolerance when comparing against
/// the simulator: the model documents its holdout error, which small
/// verification sizes can exceed by quantization noise.
const BOUNDED_SLACK: f64 = 0.02;

/// Oracle 6: the analytic reuse model ([`gcr_static`]) must reproduce the
/// trace simulator's miss counts at sizes its fit never saw, with the
/// accuracy its construct class promises: **byte-exact** for guard-free
/// (affine) programs, within the model's own documented tolerance (plus
/// [`BOUNDED_SLACK`]) for guarded ones. A refusal (`NotAnalyzable`) is
/// only acceptable inside the model's documented exclusions — several
/// size parameters, or a guarded program whose fit failed; a guard-free
/// single-parameter program that the model refuses is an oracle failure.
fn static_parity(prog: &Program) -> Result<(), String> {
    if prog.params.len() > 1 {
        return Ok(()); // documented exclusion: the model is univariate
    }
    // Small line and capacities keep the regime floor — and with it the
    // probe and verification simulations — cheap for arbitrary nest depth.
    let line: u64 = 16;
    let caps: Vec<u64> = vec![64, 256];
    let steps = 2;
    let spec = gcr_static::SweepSpec::new(line, caps.clone(), steps);
    let analyzer = match gcr_static::Analyzer::analyze_with(
        prog,
        spec,
        ExecEngine::from_env().unwrap_or_default(),
        FUEL,
        |b| DataLayout::column_major(prog, b, 0),
    ) {
        Ok(a) => a,
        Err(gcr_static::StaticError::NotAnalyzable { reason }) => {
            if gcr_static::has_guards(prog) {
                return Ok(()); // documented refusal on guarded control flow
            }
            return Err(format!("guard-free program refused by the model: {reason}"));
        }
        Err(gcr_static::StaticError::Gcr(gcr_ir::GcrError::BudgetExceeded { .. })) => {
            return Ok(()); // probe too expensive at this fuel: out of scope
        }
        Err(gcr_static::StaticError::Gcr(e)) => return Err(format!("probe run failed: {e}")),
    };
    let model = analyzer.model();
    // Two sizes the fit never touched: just past the regime floor and a
    // different residue class farther out.
    for n in [model.base + 5, 2 * model.base + 3] {
        let p = match analyzer.predict(n) {
            Ok(p) => p,
            Err(e) => return Err(format!("predict({n}) failed: {e}")),
        };
        let mut sink = CapacitySweepSink::new(line, &caps);
        let binding = ParamBinding::new(vec![n; prog.params.len()]);
        let mut m = Machine::new(prog, binding);
        match m.run_steps_guarded(&mut sink, steps, FUEL) {
            Ok(()) => {}
            Err(gcr_ir::GcrError::BudgetExceeded { .. }) => return Ok(()),
            Err(e) => return Err(format!("verification run failed at N={n}: {e}")),
        }
        if p.refs != sink.refs() as u128 {
            return Err(format!(
                "refs diverged at N={n}: model {} vs simulated {}",
                p.refs,
                sink.refs()
            ));
        }
        for cp in &p.capacities {
            let want = sink.misses(cp.capacity) as u128;
            match p.class {
                gcr_static::Class::Exact => {
                    if cp.misses != want {
                        return Err(format!(
                            "exact-class misses diverged at N={n}, capacity {}B: \
                             model {} vs simulated {want}",
                            cp.capacity, cp.misses
                        ));
                    }
                }
                gcr_static::Class::Bounded => {
                    let tol = model.tolerance + BOUNDED_SLACK;
                    let err = (cp.misses as f64 - want as f64).abs() / (want as f64).max(1.0);
                    if err > tol {
                        return Err(format!(
                            "bounded-class misses off by {err:.4} (> {tol:.4}) at N={n}, \
                             capacity {}B: model {} vs simulated {want}",
                            cp.capacity, cp.misses
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- oracle 7

/// Tee feeding the fully-associative sweep and the set-associative fan-out
/// from one pass, batches included (the VM engine emits strips).
struct AssocCap {
    fa: CapacitySweepSink,
    sa: gcr_cache::AssocSweepSink,
}

impl TraceSink for AssocCap {
    fn access(&mut self, ev: AccessEvent) {
        self.fa.access(ev);
        self.sa.access(ev);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        self.fa.record_batch(batch);
        self.sa.record_batch(batch);
    }
}

/// Oracle 7, engine-parameterized so the corpus replay can pin all three
/// engines explicitly. Two laws of the exact set-associative simulator
/// (see DESIGN.md §16 for why monotonicity pins the *set count*):
///
/// 1. **Single-set equality** — with `ways = capacity / line` the cache is
///    one LRU stack, and its misses must byte-equal the reuse-distance
///    [`CapacitySweepSink`] at the same capacity.
/// 2. **Way monotonicity at fixed set count** — growing the ways at a
///    fixed set count never adds misses (per-set LRU stack inclusion).
pub fn assoc_parity(prog: &Program, engine: ExecEngine) -> Result<(), String> {
    let binding = ParamBinding::new(vec![12; prog.params.len()]);
    let mut rng = crate::rng::Rng::new(
        0x5e7a_550c
            ^ prog.body.len() as u64
            ^ (prog.next_stmt as u64) << 16
            ^ (prog.next_ref as u64) << 32,
    );
    let line: u64 = *rng.pick(&[16, 32, 64]);
    let mut caps: Vec<u64> = (0..3).map(|_| line * rng.range(1, 96) as u64).collect();
    caps.sort_unstable();
    caps.dedup();
    let sets = 1usize << rng.range(1, 4); // 2, 4 or 8 sets
    let max_ways = 4usize;

    // Single-set geometries first (index-aligned with `caps`), then the
    // fixed-set-count way ladder.
    let mut configs: Vec<CacheConfig> = caps
        .iter()
        .map(|&c| CacheConfig { size: c as usize, line: line as usize, assoc: (c / line) as usize })
        .collect();
    let ladder_at = configs.len();
    configs.extend((1..=max_ways).map(|w| CacheConfig {
        size: sets * w * line as usize,
        line: line as usize,
        assoc: w,
    }));

    let mut sink = AssocCap {
        fa: CapacitySweepSink::new(line, &caps),
        sa: gcr_cache::AssocSweepSink::new(&configs),
    };
    let mut m = Machine::new(prog, binding).with_engine(engine);
    m.run_steps_guarded(&mut sink, 2, FUEL).map_err(|e| format!("run failed: {e}"))?;

    if sink.fa.refs() != sink.sa.refs() {
        return Err(format!(
            "FA sweep saw {} refs, set-associative sweep {}",
            sink.fa.refs(),
            sink.sa.refs()
        ));
    }
    for (i, &cap) in caps.iter().enumerate() {
        let (fa, sa) = (sink.fa.misses(cap), sink.sa.misses(i));
        if fa != sa {
            return Err(format!(
                "single set of {} lines (line {line}): set-associative {sa} misses, \
                 FA sweep {fa}",
                cap / line
            ));
        }
    }
    let ladder: Vec<u64> = (ladder_at..configs.len()).map(|i| sink.sa.misses(i)).collect();
    for (w, pair) in ladder.windows(2).enumerate() {
        if pair[1] > pair[0] {
            return Err(format!(
                "way monotonicity violated at {sets} sets: {} misses with {} ways > \
                 {} misses with {} ways",
                pair[1],
                w + 2,
                pair[0],
                w + 1
            ));
        }
    }
    Ok(())
}
