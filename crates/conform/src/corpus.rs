//! The minimized regression corpus: `corpus/*.loop`.
//!
//! Every file is a small LoopLang program — a shrunk fuzzing reproducer or
//! a hand-minimized edge case — replayed by the test suite on every build.
//! Replay re-runs the conformance oracles that apply to arbitrary
//! programs, plus the frontend round-trip property, under whichever
//! execution engine `GCR_EXEC` selects for the plain run. New fuzzing
//! failures land here automatically: `gcr-fuzz` writes the minimized
//! program next to its diagnostic, and committing the `.loop` file turns
//! the failure into a permanent regression test.

use crate::oracles::{run_oracle, Oracle};
use gcr_ir::{ParamBinding, Program};
use std::path::{Path, PathBuf};

/// Directory holding the committed corpus.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// All committed corpus files, sorted by name (deterministic replay
/// order).
pub fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    files.sort();
    files
}

/// Replays one corpus program through every applicable oracle. Returns the
/// first violation, prefixed with the failing check's name.
pub fn replay(src: &str) -> Result<(), String> {
    let prog = gcr_frontend::parse(src).map_err(|e| format!("parse: {e}"))?;
    gcr_ir::validate::validate(&prog).map_err(|e| format!("validate: {e:?}"))?;

    // Round-trip: the printer and parser must agree exactly on
    // parser-originated programs.
    let printed = gcr_ir::print::print_program(&prog);
    let back = gcr_frontend::parse(&printed).map_err(|e| format!("reparse: {e}"))?;
    if back != prog {
        return Err(format!("round-trip: parse(print(p)) != p\n--- printed:\n{printed}"));
    }

    // Plain run under the env-selected engine (the corpus must execute
    // under both `GCR_EXEC=interp` and `GCR_EXEC=compiled`).
    let binding = ParamBinding::new(vec![12; prog.params.len()]);
    let mut m = gcr_exec::Machine::new(&prog, binding);
    m.run_steps_guarded(&mut gcr_exec::NullSink, 2, 50_000_000)
        .map_err(|e| format!("plain run: {e}"))?;

    for oracle in [Oracle::Engine, Oracle::Sweep, Oracle::Profile, Oracle::Static, Oracle::Assoc] {
        run_oracle(oracle, &prog).map_err(|e| format!("{oracle}: {e}"))?;
    }
    // The optimizer oracle compares with a relative tolerance, which is
    // only meaningful when the program computes finite values.
    if finite_at(&prog, 16) {
        run_oracle(Oracle::Optimize, &prog).map_err(|e| format!("optimize: {e}"))?;
    }
    Ok(())
}

/// True when every array element stays finite after the oracle run shape.
fn finite_at(prog: &Program, n: i64) -> bool {
    let binding = ParamBinding::new(vec![n; prog.params.len()]);
    let mut m = gcr_exec::Machine::new(prog, binding);
    if m.run_steps_guarded(&mut gcr_exec::NullSink, 2, 50_000_000).is_err() {
        return false;
    }
    (0..prog.arrays.len())
        .all(|i| m.read_array(gcr_ir::ArrayId::from_index(i)).iter().all(|v| v.is_finite()))
}
