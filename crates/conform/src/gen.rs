//! Seeded random generation of valid `gcr-ir` programs.
//!
//! The grammar deliberately mirrors the paper's input model (Figure 5) —
//! the same shapes the optimizer, both execution engines, and every
//! measurement sink must agree on:
//!
//! * multi-dimensional loop nests (1-D loops and 2-D nests over an `N×N`
//!   array, including transposed subscripts);
//! * per-statement guard ranges (constant and `N`-relative, occasionally
//!   empty or statically dead — the segment-splitting edge cases);
//! * outer conditions on strictly enclosing loop variables;
//! * negative and positive subscript offsets, sized so that *every*
//!   subscript stays within `1..=N` for every binding `N ≥ MIN_N` (the
//!   interpreter's debug bounds assertion is part of the reference
//!   semantics, so generated programs must never trip it);
//! * arrays shared across loops, scalar and array reductions, invariant
//!   subscripts, and loop-invariant bare statements between loops.
//!
//! Every generated program passes [`gcr_ir::validate::validate`] by
//! construction (debug-asserted here), parses back from its printed form,
//! and executes under any `N ≥ MIN_N`.

use crate::rng::Rng;
use gcr_ir::{
    ArrayId, BinOp, Expr, GuardedStmt, LinExpr, Loop, ParamBinding, ParamId, Program,
    ProgramBuilder, Range, ReduceOp, Stmt, Subscript, UnOp, VarId,
};

/// Smallest parameter binding any oracle uses. Generated subscripts are
/// provably in bounds for every `N ≥ MIN_N`.
pub const MIN_N: i64 = 8;

/// Knobs of the program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of top-level statements.
    pub max_top: usize,
    /// Maximum statements per loop body.
    pub max_stmts: usize,
    /// Maximum expression nesting depth.
    pub max_depth: usize,
    /// Allow 2-D nests over the `N×N` array.
    pub allow_2d: bool,
    /// Allow guard ranges and outer conditions.
    pub allow_guards: bool,
    /// Restrict arithmetic to operations that keep values finite and
    /// well-conditioned (no `*`, `/`, `sqrt`), so oracles comparing with a
    /// relative tolerance are meaningful. The full grammar may produce
    /// `inf`/`NaN`, which bit-exact oracles handle fine.
    pub tame: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_top: 4,
            max_stmts: 3,
            max_depth: 3,
            allow_2d: true,
            allow_guards: true,
            tame: false,
        }
    }
}

impl GenConfig {
    /// The restricted grammar for semantic (tolerance-compared) oracles.
    pub fn tame() -> Self {
        GenConfig { tame: true, ..GenConfig::default() }
    }
}

/// Loop-variable value interval, kept in a form whose containment in
/// `1..=N` can be decided for every `N ≥ MIN_N`.
#[derive(Clone, Copy, Debug)]
struct Iv {
    /// Constant lower bound (`≥ 1`).
    lo: i64,
    /// Upper bound.
    hi: Hi,
}

#[derive(Clone, Copy, Debug)]
enum Hi {
    /// `N - b` with `b ≥ 0`.
    NMinus(i64),
    /// A constant `k ≤ MIN_N`.
    Const(i64),
}

impl Iv {
    /// Valid subscript offsets for an extent-`N` dimension: `i + off` stays
    /// in `1..=N` for every iteration and every `N ≥ MIN_N`.
    fn off_lo(&self) -> i64 {
        1 - self.lo
    }

    fn off_hi(&self) -> i64 {
        match self.hi {
            Hi::NMinus(b) => b,
            Hi::Const(k) => MIN_N - k,
        }
    }

    fn hi_expr(&self, n: ParamId) -> LinExpr {
        match self.hi {
            Hi::NMinus(b) => LinExpr::param(n).add_const(-b),
            Hi::Const(k) => LinExpr::konst(k),
        }
    }
}

/// Everything the recursive generator needs.
struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    n: ParamId,
    /// Rank-1 arrays of extent `N`.
    vecs: Vec<ArrayId>,
    /// The `N×N` array, when 2-D shapes are enabled.
    mat: Option<ArrayId>,
    scalar: ArrayId,
    /// Enclosing loop variables with their (guard-refined) intervals,
    /// outermost first.
    scope: Vec<(VarId, Iv)>,
    /// Loop variables allocated so far (for unique names).
    nvars: usize,
}

/// Generates one random valid program.
pub fn generate(rng: &mut Rng, cfg: &GenConfig) -> Program {
    let mut b = ProgramBuilder::new("fuzz");
    let n = b.param("N");
    let nvecs = rng.range(2, 3) as usize;
    let vecs: Vec<ArrayId> =
        (0..nvecs).map(|i| b.array(format!("A{i}"), &[LinExpr::param(n)])).collect();
    let mat = (cfg.allow_2d && rng.chance(1, 2))
        .then(|| b.array("M", &[LinExpr::param(n), LinExpr::param(n)]));
    let scalar = b.scalar("s");
    let mut g = Gen { rng, cfg, n, vecs, mat, scalar, scope: Vec::new(), nvars: 0 };
    let top = g.rng.range(1, cfg.max_top as i64) as usize;
    let mut body = Vec::new();
    for _ in 0..top {
        let stmt = g.top_item(&mut b);
        body.push(GuardedStmt::bare(stmt));
    }
    let mut prog = b.finish();
    prog.body = body;
    debug_assert!(
        gcr_ir::validate::validate(&prog).is_ok(),
        "generator must only emit valid programs:\n{}",
        gcr_ir::print::print_program(&prog)
    );
    canonicalize(prog)
}

/// Round-trips a built program through the printer and parser so that the
/// generator emits parser-canonical IR (the parser folds `var + intconst`
/// into subscript-offset form and fixes guard spellings; the round-trip
/// property `parse(print(p)) == p` is claimed for parser-originated
/// programs only).
fn canonicalize(prog: Program) -> Program {
    let printed = gcr_ir::print::print_program(&prog);
    match gcr_frontend::parse(&printed) {
        Ok(p) => p,
        Err(e) => panic!("generated program does not reparse ({e}):\n{printed}"),
    }
}

impl Gen<'_> {
    fn top_item(&mut self, b: &mut ProgramBuilder) -> Stmt {
        match self.rng.below(8) {
            // Bare loop-invariant statement between loops (boundary
            // updates like `A[1] = A[N]`).
            0 => self.invariant_assign(b),
            1 | 2 if self.mat.is_some() => self.nest_2d(b),
            _ => self.loop_1d(b),
        }
    }

    /// A fresh interval for a loop: mostly `[small, N - small]`, sometimes
    /// constant-trip (`[small, const ≤ MIN_N]`) which may even be empty at
    /// small `N`.
    fn interval(&mut self) -> Iv {
        let lo = self.rng.range(1, 4);
        let hi = if self.rng.chance(1, 6) {
            Hi::Const(self.rng.range(lo.min(MIN_N), MIN_N))
        } else {
            Hi::NMinus(self.rng.range(0, 3))
        };
        Iv { lo, hi }
    }

    fn fresh_var(&mut self, b: &mut ProgramBuilder) -> VarId {
        let v = b.var(format!("i{}", self.nvars));
        self.nvars += 1;
        v
    }

    fn loop_1d(&mut self, b: &mut ProgramBuilder) -> Stmt {
        let iv = self.interval();
        let v = self.fresh_var(b);
        let count = self.rng.range(1, self.cfg.max_stmts as i64) as usize;
        let mut body = Vec::new();
        for _ in 0..count {
            body.push(self.member(b, v, iv));
        }
        Stmt::Loop(Loop { var: v, lo: LinExpr::konst(iv.lo), hi: iv.hi_expr(self.n), body })
    }

    fn nest_2d(&mut self, b: &mut ProgramBuilder) -> Stmt {
        let iv_u = self.interval();
        let u = self.fresh_var(b);
        self.scope.push((u, iv_u));
        let inner = self.loop_1d(b);
        self.scope.pop();
        let mut member = GuardedStmt::bare(inner);
        // Outer condition on the (strictly enclosing) outer variable: the
        // inner loop only runs for part of the outer range.
        if self.cfg.allow_guards && self.rng.chance(1, 3) {
            member.outer.push((u, self.guard_range(iv_u)));
        }
        let mut body = vec![member];
        // Occasionally a second inner statement directly under the outer
        // loop, so segments mix loops and statements.
        if self.rng.chance(1, 3) {
            body.push(self.member(b, u, iv_u));
        }
        Stmt::Loop(Loop { var: u, lo: LinExpr::konst(iv_u.lo), hi: iv_u.hi_expr(self.n), body })
    }

    /// One guarded member of a loop over `v` with interval `iv`.
    fn member(&mut self, b: &mut ProgramBuilder, v: VarId, iv: Iv) -> GuardedStmt {
        let guard = (self.cfg.allow_guards && self.rng.chance(1, 3)).then(|| self.guard_range(iv));
        // Offsets must be valid over the iterations the statement actually
        // executes: the loop interval, or — exercising the guard-refined
        // bound prover — the tighter guard∩loop interval.
        let eff = match &guard {
            Some(g) if self.rng.chance(1, 2) => refine(iv, g),
            _ => iv,
        };
        self.scope.push((v, eff));
        let stmt = self.stmt(b, v, eff);
        self.scope.pop();
        GuardedStmt { stmt, guard, outer: Vec::new() }
    }

    /// A guard range over a loop with interval `iv`: usually a sub-range,
    /// sometimes disjoint (statically dead member) or empty.
    fn guard_range(&mut self, iv: Iv) -> Range {
        let lo = self.rng.range(1, MIN_N);
        let hi = if self.rng.chance(1, 2) {
            LinExpr::konst(self.rng.range(lo - 2, MIN_N))
        } else {
            LinExpr::param(self.n).add_const(-self.rng.range(0, 3))
        };
        let _ = iv;
        Range::new(LinExpr::konst(lo), hi)
    }

    /// An assignment (or reduction) whose subscripts use variable `v`
    /// bounded by `eff`.
    fn stmt(&mut self, b: &mut ProgramBuilder, v: VarId, eff: Iv) -> Stmt {
        let rhs = self.expr(b, 0);
        match self.rng.below(10) {
            // Scalar reduction.
            0 | 1 => {
                let op = *self.rng.pick(&[ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min]);
                b.reduce(op, self.scalar, vec![], rhs)
            }
            // Array reduction.
            2 => {
                let a = *self.rng.pick(&self.vecs.clone());
                let sub = self.var_sub(v, eff);
                b.reduce(ReduceOp::Sum, a, vec![sub], rhs)
            }
            // 2-D write, when the matrix and two loop vars are available.
            3 | 4 => match self.mat_subs() {
                Some(subs) => {
                    let m = self.mat.unwrap();
                    b.assign(m, subs, rhs)
                }
                None => {
                    let a = *self.rng.pick(&self.vecs.clone());
                    let sub = self.var_sub(v, eff);
                    b.assign(a, vec![sub], rhs)
                }
            },
            // Plain scalar write.
            5 if self.rng.chance(1, 2) => b.assign(self.scalar, vec![], rhs),
            // 1-D write.
            _ => {
                let a = *self.rng.pick(&self.vecs.clone());
                let sub = self.var_sub(v, eff);
                b.assign(a, vec![sub], rhs)
            }
        }
    }

    /// A variable subscript `v + off` valid over `eff`.
    fn var_sub(&mut self, v: VarId, eff: Iv) -> Subscript {
        let off = self.rng.range(eff.off_lo().max(-3), eff.off_hi().min(3));
        Subscript::var(v, off)
    }

    /// Two matrix subscripts drawn from the enclosing variables (straight
    /// or transposed), falling back to invariants when fewer than two
    /// variables are live.
    fn mat_subs(&mut self) -> Option<Vec<Subscript>> {
        self.mat?;
        let mut subs = Vec::with_capacity(2);
        for d in 0..2 {
            let pick = if self.scope.is_empty() {
                None
            } else {
                // Straight orientation reads dim 0 from the innermost
                // variable; transposed swaps them.
                let idx = if self.rng.chance(3, 4) {
                    self.scope.len() - 1 - (d % self.scope.len())
                } else {
                    self.rng.below(self.scope.len() as u64) as usize
                };
                Some(self.scope[idx])
            };
            subs.push(match pick {
                Some((v, iv)) => {
                    let off = self.rng.range(iv.off_lo().max(-3), iv.off_hi().min(3));
                    Subscript::var(v, off)
                }
                None => self.invariant_sub(),
            });
        }
        Some(subs)
    }

    /// A loop-invariant subscript valid for every `N ≥ MIN_N`.
    fn invariant_sub(&mut self) -> Subscript {
        if self.rng.chance(1, 2) {
            Subscript::Invariant(LinExpr::konst(self.rng.range(1, MIN_N)))
        } else {
            Subscript::Invariant(LinExpr::param(self.n).add_const(-self.rng.range(0, 3)))
        }
    }

    /// Top-level `A[k] = expr` boundary statement (no variables in scope).
    fn invariant_assign(&mut self, b: &mut ProgramBuilder) -> Stmt {
        let rhs = self.expr(b, 0);
        if self.rng.chance(1, 4) {
            b.assign(self.scalar, vec![], rhs)
        } else {
            let a = *self.rng.pick(&self.vecs.clone());
            let sub = self.invariant_sub();
            b.assign(a, vec![sub], rhs)
        }
    }

    /// Random expression over the current scope.
    fn expr(&mut self, b: &mut ProgramBuilder, depth: usize) -> Expr {
        if depth >= self.cfg.max_depth || self.rng.chance(2, 5) {
            return self.leaf(b);
        }
        match self.rng.below(10) {
            0 | 1 => {
                let op = if self.cfg.tame {
                    *self.rng.pick(&[UnOp::Neg, UnOp::Abs])
                } else {
                    *self.rng.pick(&[UnOp::Neg, UnOp::Abs, UnOp::Sqrt])
                };
                Expr::Unary(op, Box::new(self.expr(b, depth + 1)))
            }
            2..=4 => {
                let name = *self.rng.pick(&["f", "g", "h", "t", "u", "w", "relax", "flux", "wave"]);
                let nargs = self.rng.range(1, 2) as usize;
                let args = (0..nargs).map(|_| self.expr(b, depth + 1)).collect();
                Expr::Call(name, args)
            }
            _ => {
                let op = if self.cfg.tame {
                    *self.rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Max, BinOp::Min])
                } else {
                    *self.rng.pick(&[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Max,
                        BinOp::Min,
                    ])
                };
                let x = self.expr(b, depth + 1);
                let y = self.expr(b, depth + 1);
                Expr::Bin(op, Box::new(x), Box::new(y))
            }
        }
    }

    fn leaf(&mut self, b: &mut ProgramBuilder) -> Expr {
        match self.rng.below(10) {
            0 | 1 => Expr::Const((self.rng.range(-4, 4) as f64) * 0.5),
            2 if !self.scope.is_empty() => {
                let (v, _) = *self.rng.pick(&self.scope.clone());
                Expr::Var { var: v, offset: self.rng.range(-2, 2) }
            }
            3 if self.rng.chance(1, 2) => b.read_scalar(self.scalar),
            n if n >= 8 && self.mat.is_some() => match self.mat_subs() {
                Some(subs) => b.read(self.mat.unwrap(), subs),
                None => Expr::Const(1.0),
            },
            _ => {
                let a = *self.rng.pick(&self.vecs.clone());
                let sub = match self.scope.last().copied() {
                    Some((v, iv)) if self.rng.chance(4, 5) => {
                        let off = self.rng.range(iv.off_lo().max(-3), iv.off_hi().min(3));
                        Subscript::var(v, off)
                    }
                    _ => self.invariant_sub(),
                };
                b.read(a, vec![sub])
            }
        }
    }
}

/// Intersection of a loop interval with a guard, conservatively folded to
/// the [`Iv`] form (used only to widen the valid-offset window; any
/// interval contained in the true intersection is safe).
fn refine(iv: Iv, g: &Range) -> Iv {
    let glo = g.lo.as_const();
    let ghi = g.hi.as_const();
    let lo = match glo {
        Some(c) if c > iv.lo => c.min(MIN_N),
        _ => iv.lo,
    };
    let hi = match (ghi, iv.hi) {
        // A constant guard top caps the interval at min(k, old); using the
        // smaller slack of the two stays safe.
        (Some(k), Hi::Const(old)) => Hi::Const(old.min(k.max(1))),
        (Some(k), Hi::NMinus(_)) if (1..=MIN_N).contains(&k) => Hi::Const(k),
        _ => iv.hi,
    };
    // Guard against inverted intervals from weird guards: fall back to the
    // loop interval (always safe).
    if lo > MIN_N || matches!(hi, Hi::Const(k) if k < lo) {
        iv
    } else {
        Iv { lo, hi }
    }
}

/// Dynamically verifies that every array reference stays within
/// `1..=extent` at a handful of sample sizes, mirroring the interpreter's
/// activation rules (member guards over the enclosing variable, `outer`
/// entries against current outer values). Affine subscripts under affine
/// bounds violate either at the smallest size or independently of size, so
/// small samples decide the property for every `N >= MIN_N`.
pub fn in_bounds(prog: &Program) -> bool {
    [MIN_N, MIN_N + 1, 12, 17].iter().all(|&n| in_bounds_at(prog, n))
}

fn in_bounds_at(prog: &Program, n: i64) -> bool {
    let binding = ParamBinding::new(vec![n; prog.params.len()]);
    let extents: Vec<Vec<i64>> =
        prog.arrays.iter().map(|a| a.dims.iter().map(|d| d.eval(&binding)).collect()).collect();
    let mut vars = vec![0i64; prog.vars.len()];
    bounds_list(&prog.body, &binding, &extents, &mut vars)
}

fn bounds_list(
    list: &[gcr_ir::GuardedStmt],
    binding: &ParamBinding,
    extents: &[Vec<i64>],
    vars: &mut Vec<i64>,
) -> bool {
    // Top-level statements carry no guards (validation forbids them).
    list.iter().all(|gs| bounds_stmt(gs, binding, extents, vars))
}

fn bounds_stmt(
    gs: &gcr_ir::GuardedStmt,
    binding: &ParamBinding,
    extents: &[Vec<i64>],
    vars: &mut Vec<i64>,
) -> bool {
    match &gs.stmt {
        Stmt::Assign(a) => {
            bounds_ref(&a.lhs, binding, extents, vars)
                && bounds_expr(&a.rhs, binding, extents, vars)
        }
        Stmt::Loop(l) => {
            let lo = l.lo.eval(binding);
            let hi = l.hi.eval(binding);
            for t in lo..=hi {
                vars[l.var.index()] = t;
                for m in &l.body {
                    let active = m.guard.as_ref().is_none_or(|r| {
                        let (glo, ghi) = r.eval(binding);
                        (glo..=ghi).contains(&t)
                    }) && m.outer.iter().all(|(v, r)| {
                        let (rlo, rhi) = r.eval(binding);
                        (rlo..=rhi).contains(&vars[v.index()])
                    });
                    if active && !bounds_stmt(m, binding, extents, vars) {
                        return false;
                    }
                }
            }
            true
        }
    }
}

fn bounds_ref(
    r: &gcr_ir::ArrayRef,
    binding: &ParamBinding,
    extents: &[Vec<i64>],
    vars: &[i64],
) -> bool {
    let ext = &extents[r.array.index()];
    r.subs.iter().zip(ext).all(|(s, &e)| {
        let v = match s {
            Subscript::Var { var, offset } => vars[var.index()] + offset,
            Subscript::Invariant(le) => le.eval(binding),
        };
        (1..=e).contains(&v)
    })
}

fn bounds_expr(x: &Expr, binding: &ParamBinding, extents: &[Vec<i64>], vars: &[i64]) -> bool {
    match x {
        Expr::Read(r) => bounds_ref(r, binding, extents, vars),
        Expr::Bin(_, a, b) => {
            bounds_expr(a, binding, extents, vars) && bounds_expr(b, binding, extents, vars)
        }
        Expr::Unary(_, a) => bounds_expr(a, binding, extents, vars),
        Expr::Call(_, args) => args.iter().all(|a| bounds_expr(a, binding, extents, vars)),
        Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => true,
    }
}

/// Generates one program from the fusible chain family used by the
/// `O(k·m)` reuse-distance-bound oracle: `m = k` loops over `[2, N-1]`,
/// loop `j` computing `X_j[i] = f_j(X_{j-1}[i + o_j])` with `o_j ∈
/// {-1, 0, 1}` — constant-alignment dependences only, so reuse-based
/// fusion must merge the whole chain into one nest whose reuse distances
/// are independent of `N` (Section 3.1 of the paper).
pub fn generate_chain(rng: &mut Rng) -> Program {
    let k = rng.range(2, 4);
    let mut b = ProgramBuilder::new("chain");
    let n = b.param("N");
    let xs: Vec<ArrayId> =
        (0..=k).map(|j| b.array(format!("X{j}"), &[LinExpr::param(n)])).collect();
    for j in 1..=k as usize {
        let v = b.var(format!("i{j}"));
        let off = rng.range(-1, 1);
        let name = *rng.pick(&["f", "g", "h", "t", "relax", "wave"]);
        let read = b.read(xs[j - 1], vec![Subscript::var(v, off)]);
        let rhs = Expr::Call(name, vec![read]);
        let st = b.assign(xs[j], vec![Subscript::var(v, 0)], rhs);
        let lp = b.for_(v, LinExpr::konst(2), LinExpr::param(n).add_const(-1), vec![st]);
        b.push(lp);
    }
    let prog = b.finish();
    debug_assert!(gcr_ir::validate::validate(&prog).is_ok());
    canonicalize(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate_and_roundtrip() {
        for seed in 0..50u64 {
            let mut rng = Rng::new(seed);
            let prog = generate(&mut rng, &GenConfig::default());
            gcr_ir::validate::validate(&prog).expect("generated program must validate");
            let text = gcr_ir::print::print_program(&prog);
            let back = gcr_frontend::parse(&text)
                .unwrap_or_else(|e| panic!("printed program must parse: {e}\n{text}"));
            assert_eq!(gcr_ir::print::print_program(&back), text, "print must be a parse fixpoint");
        }
    }

    #[test]
    fn generated_programs_execute_in_bounds_at_min_n() {
        use gcr_exec::{Machine, NullSink};
        use gcr_ir::ParamBinding;
        for seed in 0..30u64 {
            let mut rng = Rng::new(seed ^ 0xabc);
            let prog = generate(&mut rng, &GenConfig::default());
            for n in [MIN_N, 12] {
                let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
                m.run_steps_guarded(&mut NullSink, 2, 10_000_000).expect("must run in fuel");
            }
        }
    }

    #[test]
    fn chain_family_validates() {
        for seed in 0..20u64 {
            let mut rng = Rng::new(seed);
            let prog = generate_chain(&mut rng);
            gcr_ir::validate::validate(&prog).expect("chain must validate");
            assert!(prog.count_loops() >= 2);
        }
    }
}
