//! `gcr-fuzz` — the conformance fuzzing driver.
//!
//! ```text
//! gcr-fuzz [--seed S] [--iters K] [--oracle NAME]... [--write-failures DIR]
//! ```
//!
//! Runs `K` iterations per oracle (default 200, overridable with the
//! `GCR_FUZZ_ITERS` environment variable), in parallel across
//! `GCR_THREADS` workers. Every failure is shrunk to a minimal reproducer;
//! reproducers are written to `--write-failures DIR` (default
//! `fuzz-failures/`) as `.loop` files ready to be committed to
//! `crates/conform/corpus/`. Exits nonzero when any oracle failed.

use gcr_conform::{fuzz, Oracle, ALL_ORACLES};

struct Args {
    seed: u64,
    iters: u64,
    oracles: Vec<Oracle>,
    out_dir: std::path::PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: gcr-fuzz [--seed S] [--iters K] [--oracle {{all|engine|optimize|sweep|profile|bound|static|assoc}}]... [--write-failures DIR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        iters: default_iters(),
        oracles: Vec::new(),
        out_dir: "fuzz-failures".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--iters" => {
                args.iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--oracle" => match it.next().as_deref() {
                Some("all") => args.oracles.extend(ALL_ORACLES),
                Some(name) => match Oracle::from_name(name) {
                    Some(o) => args.oracles.push(o),
                    None => usage(),
                },
                None => usage(),
            },
            "--write-failures" => {
                args.out_dir = it.next().map(Into::into).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.oracles.is_empty() {
        args.oracles.extend(ALL_ORACLES);
    }
    args.oracles.dedup();
    args
}

/// Default iteration count: `GCR_FUZZ_ITERS` when set and parsable, 200
/// otherwise.
fn default_iters() -> u64 {
    match std::env::var("GCR_FUZZ_ITERS") {
        Ok(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: ignoring unparsable GCR_FUZZ_ITERS={v:?}");
                200
            }
        },
        Err(_) => 200,
    }
}

fn main() {
    let args = parse_args();
    let names: Vec<&str> = args.oracles.iter().map(|o| o.name()).collect();
    eprintln!(
        "gcr-fuzz: seed {}, {} iterations, oracles [{}], {} threads",
        args.seed,
        args.iters,
        names.join(", "),
        gcr_par::thread_count()
    );
    let t0 = std::time::Instant::now();
    let failures = fuzz(args.seed, args.iters, &args.oracles);
    let secs = t0.elapsed().as_secs_f64();
    if failures.is_empty() {
        eprintln!(
            "gcr-fuzz: all {} iterations x {} oracles passed in {secs:.1}s",
            args.iters,
            args.oracles.len()
        );
        return;
    }
    std::fs::create_dir_all(&args.out_dir).expect("cannot create failure directory");
    for (k, f) in failures.iter().enumerate() {
        let stem = format!("fail-{}-{}-{}", f.oracle, args.seed, f.iter);
        eprintln!("\n=== failure {}/{} [{}] iteration {}", k + 1, failures.len(), f.oracle, f.iter);
        eprintln!("{}", f.message);
        eprintln!("--- minimized reproducer:\n{}", f.minimized);
        let path = args.out_dir.join(format!("{stem}.loop"));
        std::fs::write(&path, &f.minimized).expect("cannot write reproducer");
        std::fs::write(
            args.out_dir.join(format!("{stem}.txt")),
            format!("{}\n\n--- original program:\n{}", f.message, f.program),
        )
        .expect("cannot write diagnostic");
        eprintln!("--- written to {}", path.display());
    }
    eprintln!(
        "\ngcr-fuzz: {} failure(s) out of {} iterations in {secs:.1}s",
        failures.len(),
        args.iters
    );
    std::process::exit(1);
}
