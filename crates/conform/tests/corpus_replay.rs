//! Replays every committed corpus program through the conformance oracles.
//!
//! Run under every engine: `GCR_EXEC=interp cargo test -p gcr-conform`,
//! `GCR_EXEC=compiled …`, and `GCR_EXEC=vm …`.

use gcr_conform::corpus::{corpus_files, replay};

#[test]
fn corpus_is_populated() {
    assert!(
        corpus_files().len() >= 10,
        "regression corpus must hold at least 10 minimized programs"
    );
}

#[test]
fn corpus_replays_clean() {
    let files = corpus_files();
    assert!(!files.is_empty());
    let mut bad = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).unwrap();
        if let Err(e) = replay(&src) {
            bad.push(format!("{}: {e}", path.file_name().unwrap().to_string_lossy()));
        }
    }
    assert!(bad.is_empty(), "corpus replay failures:\n{}", bad.join("\n"));
}

/// Static≡simulated parity across the whole corpus under *every* execution
/// engine, explicitly — independent of whatever `GCR_EXEC` selects for
/// the rest of the suite. Exact-class models must match the simulator
/// byte-for-byte; bounded ones within their own documented tolerance.
#[test]
fn corpus_static_parity_under_all_engines() {
    use gcr_exec::{DataLayout, ExecEngine, Machine};
    use gcr_ir::ParamBinding;

    let (line, caps, steps, fuel) = (16u64, vec![64u64, 256], 2usize, 50_000_000u64);
    let mut bad = Vec::new();
    let mut analyzed = 0usize;
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = gcr_frontend::parse(&src).unwrap();
        if prog.params.len() > 1 {
            continue; // outside the univariate model's domain
        }
        for engine in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Vm] {
            let spec = gcr_static::SweepSpec::new(line, caps.clone(), steps);
            let analyzer =
                match gcr_static::Analyzer::analyze_with(&prog, spec, engine, fuel, |b| {
                    DataLayout::column_major(&prog, b, 0)
                }) {
                    Ok(a) => a,
                    Err(gcr_static::StaticError::NotAnalyzable { .. })
                        if gcr_static::has_guards(&prog) =>
                    {
                        continue
                    }
                    Err(e) => {
                        bad.push(format!("{name} [{engine:?}]: analyze failed: {e}"));
                        continue;
                    }
                };
            analyzed += 1;
            let n = analyzer.model().base + 5;
            let p = analyzer.predict(n).unwrap();
            let mut sink = gcr_cache::CapacitySweepSink::new(line, &caps);
            let binding = ParamBinding::new(vec![n; prog.params.len()]);
            let mut m = Machine::new(&prog, binding).with_engine(engine);
            m.run_steps_guarded(&mut sink, steps, fuel).unwrap();
            let tol = analyzer.model().tolerance + 0.02;
            for cp in &p.capacities {
                let want = sink.misses(cp.capacity) as u128;
                let exact = p.class == gcr_static::Class::Exact;
                let err = (cp.misses as f64 - want as f64).abs() / (want as f64).max(1.0);
                if (exact && cp.misses != want) || (!exact && err > tol) {
                    bad.push(format!(
                        "{name} [{engine:?}] N={n} cap {}B: model {} vs simulated {want} \
                         ({} class)",
                        cp.capacity,
                        cp.misses,
                        p.class.name()
                    ));
                }
            }
        }
    }
    assert!(analyzed > 0, "no corpus program was analyzable — the parity test is vacuous");
    assert!(bad.is_empty(), "corpus static-parity failures:\n{}", bad.join("\n"));
}

/// The `assoc` oracle (single-set ≡ FA byte equality + way monotonicity
/// at fixed set count) must hold on every corpus program under every
/// engine — the set-associative `record_batch` fast path included.
#[test]
fn corpus_assoc_parity_under_all_engines() {
    use gcr_exec::ExecEngine;

    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = gcr_frontend::parse(&src).unwrap();
        for engine in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Vm] {
            if let Err(e) = gcr_conform::assoc_parity(&prog, engine) {
                panic!("{}: assoc oracle failed under {engine:?}: {e}", path.display());
            }
        }
    }
}
