//! Replays every committed corpus program through the conformance oracles.
//!
//! Run under both engines: `GCR_EXEC=interp cargo test -p gcr-conform` and
//! `GCR_EXEC=compiled cargo test -p gcr-conform`.

use gcr_conform::corpus::{corpus_files, replay};

#[test]
fn corpus_is_populated() {
    assert!(
        corpus_files().len() >= 10,
        "regression corpus must hold at least 10 minimized programs"
    );
}

#[test]
fn corpus_replays_clean() {
    let files = corpus_files();
    assert!(!files.is_empty());
    let mut bad = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).unwrap();
        if let Err(e) = replay(&src) {
            bad.push(format!("{}: {e}", path.file_name().unwrap().to_string_lossy()));
        }
    }
    assert!(bad.is_empty(), "corpus replay failures:\n{}", bad.join("\n"));
}
