//! A small fixed-seed fuzzing run over every oracle: the same harness the
//! CI `fuzz-smoke` job runs at higher iteration counts.

use gcr_conform::{fuzz, ALL_ORACLES};

#[test]
fn smoke_all_oracles() {
    let failures = fuzz(7, 40, &ALL_ORACLES);
    let msgs: Vec<String> = failures
        .iter()
        .map(|f| format!("[{}] iter {}: {}\n{}", f.oracle, f.iter, f.message, f.minimized))
        .collect();
    assert!(msgs.is_empty(), "fuzz smoke failures:\n{}", msgs.join("\n---\n"));
}
