//! Structured per-pass tracing for the optimizer pipeline.
//!
//! Every pass the fail-safe driver runs ([`crate::checked::optimize_checked_traced`])
//! can be recorded as a [`PassEvent`]: which pass ran, whether its
//! checkpoint accepted the result, how long it took, and how it changed the
//! IR (loop / statement / array counts). Together with the fallback rungs
//! of the [`crate::checked::RobustnessReport`], the event stream is the raw
//! material of the `gcrc --trace` output and the JSON reports every
//! experiment binary writes (see `gcr_cli::report`).
//!
//! The API is **zero-cost when disabled**: a [`Tracer::disabled`] tracer
//! never materializes an event, takes no timestamps and counts no IR nodes
//! — every recording site is guarded by [`Tracer::is_enabled`], so the
//! disabled path reduces to one branch on an `Option` discriminant. The
//! checked pipeline's fuel accounting is unaffected either way (tracing
//! runs no extra interpreter work), which `crates/core/tests/trace.rs`
//! pins down.
//!
//! ```
//! use gcr_core::trace::Tracer;
//! let mut t = Tracer::disabled();
//! t.record(|| unreachable!("closure never runs when disabled"));
//! assert!(t.events().is_empty());
//!
//! let mut t = Tracer::enabled();
//! t.record(|| gcr_core::trace::PassEvent::new("fusion@1"));
//! assert_eq!(t.events()[0].pass, "fusion@1");
//! ```

use gcr_ir::Program;

/// IR size snapshot taken before and after each traced pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrSize {
    /// Total loops in the program.
    pub loops: usize,
    /// Top-level loop nests.
    pub nests: usize,
    /// Assignment statements.
    pub stmts: usize,
    /// Declared arrays (including scalars).
    pub arrays: usize,
}

impl IrSize {
    /// Measures a program.
    pub fn of(prog: &Program) -> IrSize {
        IrSize {
            loops: prog.count_loops(),
            nests: prog.count_nests(),
            stmts: prog.count_assigns(),
            arrays: prog.arrays.len(),
        }
    }
}

/// One recorded pipeline pass.
#[derive(Clone, Debug, PartialEq)]
pub struct PassEvent {
    /// Pass label (`orient`, `prelim`, `fusion@1`, `regroup`, `baseline`).
    pub pass: String,
    /// Whether the pass's checkpoint accepted the result. A `false` event
    /// means the program was rolled back to its pre-pass state (the
    /// `after` sizes then equal `before`).
    pub ok: bool,
    /// Wall time of the pass plus its checkpoint, in nanoseconds.
    pub wall_ns: u64,
    /// IR size before the pass.
    pub before: IrSize,
    /// IR size after the pass (post-rollback when `ok` is false).
    pub after: IrSize,
    /// Pass-specific outcome: fused-loop counts, regrouped allocations, or
    /// the checkpoint's rejection cause.
    pub detail: String,
}

impl PassEvent {
    /// A blank event for a pass label (sizes and timing zeroed).
    pub fn new(pass: impl Into<String>) -> PassEvent {
        PassEvent {
            pass: pass.into(),
            ok: true,
            wall_ns: 0,
            before: IrSize::default(),
            after: IrSize::default(),
            detail: String::new(),
        }
    }

    /// One human-readable line, the `gcrc --trace` format.
    pub fn describe(&self) -> String {
        let status = if self.ok { "ok" } else { "FAIL" };
        let mut line = format!(
            "{:<10} {:>6} {:>9.3} ms  loops {}->{} stmts {}->{} arrays {}->{}",
            self.pass,
            status,
            self.wall_ns as f64 / 1e6,
            self.before.loops,
            self.after.loops,
            self.before.stmts,
            self.after.stmts,
            self.before.arrays,
            self.after.arrays,
        );
        if !self.detail.is_empty() {
            line.push_str("  ");
            line.push_str(&self.detail);
        }
        line
    }
}

/// Collector of [`PassEvent`]s.
///
/// `Tracer::disabled()` is the default everywhere; callers that want a
/// trace pass `Tracer::enabled()` into
/// [`crate::checked::optimize_checked_traced`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Tracer {
    events: Option<Vec<PassEvent>>,
}

impl Tracer {
    /// A tracer that records nothing and evaluates nothing.
    pub fn disabled() -> Tracer {
        Tracer { events: None }
    }

    /// A tracer that records every pass.
    pub fn enabled() -> Tracer {
        Tracer { events: Some(Vec::new()) }
    }

    /// True when events are being recorded. Recording sites use this to
    /// skip timestamping and IR measurement entirely on the disabled path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Records one event; the closure only runs when enabled.
    #[inline]
    pub fn record(&mut self, f: impl FnOnce() -> PassEvent) {
        if let Some(events) = &mut self.events {
            events.push(f());
        }
    }

    /// Appends pass-specific detail to the most recent event (no-op when
    /// disabled or empty).
    pub fn annotate_last(&mut self, f: impl FnOnce() -> String) {
        if let Some(ev) = self.events.as_mut().and_then(|v| v.last_mut()) {
            let extra = f();
            if ev.detail.is_empty() {
                ev.detail = extra;
            } else {
                ev.detail.push_str("; ");
                ev.detail.push_str(&extra);
            }
        }
    }

    /// The recorded events (empty when disabled).
    pub fn events(&self) -> &[PassEvent] {
        self.events.as_deref().unwrap_or(&[])
    }

    /// Consumes the tracer, returning its events.
    pub fn into_events(self) -> Vec<PassEvent> {
        self.events.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_evaluates() {
        let mut t = Tracer::disabled();
        t.record(|| panic!("must not run"));
        t.annotate_last(|| panic!("must not run"));
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert!(t.into_events().is_empty());
    }

    #[test]
    fn enabled_records_and_annotates() {
        let mut t = Tracer::enabled();
        t.record(|| PassEvent::new("prelim"));
        t.annotate_last(|| "unrolled 2".into());
        t.annotate_last(|| "split 3".into());
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].detail, "unrolled 2; split 3");
        assert!(t.events()[0].describe().contains("prelim"));
    }

    #[test]
    fn describe_marks_failures() {
        let mut ev = PassEvent::new("regroup");
        ev.ok = false;
        ev.detail = "oracle mismatch".into();
        let line = ev.describe();
        assert!(line.contains("FAIL"), "{line}");
        assert!(line.contains("oracle mismatch"), "{line}");
    }
}
