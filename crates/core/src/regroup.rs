//! Inter-array multi-level data regrouping (Section 3, Figures 7–8).
//!
//! After fusion, a loop touches many arrays and the scattered access wastes
//! cache blocks. Regrouping places data used by the same computation
//! contiguously:
//!
//! 1. the program is partitioned into **computation phases** — for the
//!    element level, the innermost loops; for outer data dimensions, the
//!    loops at the corresponding outer levels;
//! 2. arrays are classified into **compatible** classes (identical shape,
//!    accessed in matching storage order);
//! 3. within a class, arrays are grouped **at data dimension d** iff they
//!    are *always accessed together* by the loops that iterate dimension
//!    `d`'s sub-blocks — two arrays read by the same innermost loops group
//!    at the element level; arrays sharing only the outer loop group at the
//!    row level (exactly the Figure 7 example);
//! 4. grouping is applied dimension by dimension from the outermost; the
//!    paper's correctness condition (grouped at a dimension ⇒ grouped at
//!    every outer dimension) holds by construction because the per-level
//!    togetherness keys are cumulative.
//!
//! The result is an affine [`DataLayout`]: a group interleaved at the
//! element level has members at adjacent bases with `k`-fold strides
//! (`A[j,i] → D[1,j,i]`, `B[j,i] → D[2,j,i]`), and a group grouped only at
//! an outer dimension concatenates member sub-blocks per index of that
//! dimension (`C[j,i] → D[j,2,i]`). No useless data is ever introduced
//! into a cache block (the paper's profitability guarantee): every byte of
//! a group's block belongs to an array accessed by the same phases.

use gcr_analysis::access::collect_accesses;
use gcr_exec::layout::{ArrayLayout, DataLayout, ELEM_BYTES};
use gcr_ir::{ArrayId, ParamBinding, Program, Stmt, Subscript, VarId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How aggressively to regroup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RegroupLevel {
    /// Full multi-level regrouping (the paper's contribution).
    #[default]
    Multi,
    /// Group only fully-together arrays at the element level (the earlier
    /// workshop-paper behaviour; ablation A3).
    ElementOnly,
    /// Multi-level, but never interleave at the innermost dimension (the
    /// paper's workaround for the SGI compiler's poor code generation,
    /// Section 4.1).
    AvoidInnermost,
}

/// Regrouping options.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegroupOptions {
    /// Grouping aggressiveness.
    pub level: RegroupLevel,
    /// Padding in bytes between top-level allocations (0 = dense).
    pub pad_bytes: usize,
}

/// Statistics of a regrouping decision.
#[derive(Clone, Debug, Default)]
pub struct RegroupReport {
    /// Arrays considered (rank ≥ 1).
    pub arrays: usize,
    /// Number of top-level allocations after grouping ("new arrays").
    pub allocations: usize,
    /// Groups with ≥ 2 members: (member names, innermost grouped level).
    pub groups: Vec<(Vec<String>, String)>,
}

/// The symbolic regrouping decision.
#[derive(Clone, Debug)]
pub struct RegroupPlan {
    /// Top-level groups (each becomes one allocation); members in
    /// declaration order.
    pub groups: Vec<GroupPlan>,
}

/// One top-level allocation.
#[derive(Clone, Debug)]
pub struct GroupPlan {
    /// Member arrays, declaration order.
    pub members: Vec<ArrayId>,
    /// `keys[m][d]` — member `m`'s cumulative togetherness key at data
    /// dimension `d` (0 = innermost). Members with equal keys at `d` are
    /// interleaved at `d`'s sub-block granularity; equal keys at `0` mean
    /// element-level interleaving. Index `rank` is a sentinel outer key.
    pub keys: Vec<Vec<u64>>,
    /// Rank of the member arrays.
    pub rank: usize,
}

/// Computes the regrouping plan for a (fused) program.
pub fn plan(prog: &Program, opts: &RegroupOptions) -> RegroupPlan {
    let n = prog.arrays.len();
    // --- phase membership per loop level ------------------------------------
    let max_rank = prog.arrays.iter().map(|a| a.rank()).max().unwrap_or(0);
    let mut phases_per_level: Vec<Vec<Vec<bool>>> = Vec::new();
    collect_phases(prog, max_rank, &mut phases_per_level);
    // Hash each array's phase membership at each level.
    let mut phase_sets: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (lvl, phases) in phases_per_level.iter().enumerate() {
        for (arr, sets) in phase_sets.iter_mut().enumerate() {
            let mut h = DefaultHasher::new();
            for (pi, ph) in phases.iter().enumerate() {
                if ph[arr] {
                    (lvl, pi).hash(&mut h);
                }
            }
            sets.push(h.finish());
        }
    }
    // --- storage-order (transposed traversal) marks -------------------------
    let ungroupable = transposed_marks(prog);
    // --- compatible classes: identical shape, rank >= 1 ----------------------
    let mut classes: HashMap<Vec<gcr_ir::LinExpr>, Vec<ArrayId>> = HashMap::new();
    for (i, decl) in prog.arrays.iter().enumerate() {
        if decl.rank() > 0 {
            classes.entry(decl.dims.clone()).or_default().push(ArrayId::from_index(i));
        }
    }
    let mut class_list: Vec<(Vec<gcr_ir::LinExpr>, Vec<ArrayId>)> = classes.into_iter().collect();
    class_list.sort_by_key(|(_, m)| m[0]);

    let mut groups = Vec::new();
    for (_, members) in class_list {
        let rank = prog.array(members[0]).rank();
        let mut keys: Vec<Vec<u64>> = Vec::new();
        for &m in &members {
            let mut kv = vec![0u64; rank + 1];
            for (d, key) in kv.iter_mut().enumerate().take(rank) {
                // Grouping at dim d needs togetherness down to loop level
                // rank − d (level 1 = outermost loops).
                let depth_needed = rank - d;
                let mut h = DefaultHasher::new();
                for phases in phase_sets[m.index()].iter().take(depth_needed) {
                    phases.hash(&mut h);
                }
                if ungroupable.contains(&(m, d)) {
                    (m.index() as u64, u64::MAX).hash(&mut h);
                }
                *key = h.finish();
            }
            keys.push(kv);
        }
        // Enforce cumulativity: mix each outer key into the next inner one.
        for kv in &mut keys {
            for d in (0..rank).rev() {
                let outer = kv[d + 1];
                let mut h = DefaultHasher::new();
                (outer, kv[d]).hash(&mut h);
                kv[d] = h.finish();
            }
        }
        match opts.level {
            RegroupLevel::Multi => {}
            RegroupLevel::ElementOnly => {
                // All-or-nothing grouping at the element level.
                for kv in &mut keys {
                    let inner = kv[0];
                    kv.fill(inner);
                }
            }
            RegroupLevel::AvoidInnermost => {
                for (m, kv) in keys.iter_mut().enumerate() {
                    let mut h = DefaultHasher::new();
                    (kv[0], m as u64, 0xbeefu64).hash(&mut h);
                    kv[0] = h.finish();
                }
            }
        }
        // Split into top-level groups by the outermost dimension's key.
        let mut by_top: Vec<(u64, Vec<usize>)> = Vec::new();
        for (mi, kv) in keys.iter().enumerate() {
            let k = kv[rank - 1];
            match by_top.iter_mut().find(|(kk, _)| *kk == k) {
                Some((_, v)) => v.push(mi),
                None => by_top.push((k, vec![mi])),
            }
        }
        for (_, idxs) in by_top {
            groups.push(GroupPlan {
                members: idxs.iter().map(|&mi| members[mi]).collect(),
                keys: idxs.iter().map(|&mi| keys[mi].clone()).collect(),
                rank,
            });
        }
    }
    // Scalars become singleton allocations at the end.
    for (i, decl) in prog.arrays.iter().enumerate() {
        if decl.rank() == 0 {
            groups.push(GroupPlan {
                members: vec![ArrayId::from_index(i)],
                keys: vec![vec![0]],
                rank: 0,
            });
        }
    }
    RegroupPlan { groups }
}

/// Records, per loop level, which arrays each loop (phase) accesses.
fn collect_phases(prog: &Program, max_levels: usize, out: &mut Vec<Vec<Vec<bool>>>) {
    let n = prog.arrays.len();
    out.clear();
    out.resize(max_levels.max(1), Vec::new());
    fn walk(stmts: &[gcr_ir::GuardedStmt], depth: usize, n: usize, out: &mut Vec<Vec<Vec<bool>>>) {
        for gs in stmts {
            if let Stmt::Loop(l) = &gs.stmt {
                if depth < out.len() {
                    let mut touched = vec![false; n];
                    let mut accs = Vec::new();
                    collect_accesses(&gs.stmt, &mut accs);
                    for a in accs {
                        touched[a.aref.array.index()] = true;
                    }
                    out[depth].push(touched);
                }
                walk(&l.body, depth + 1, n, out);
            }
        }
    }
    walk(&prog.body, 0, n, out);
}

/// Figure 8, first step: in an access `A(..., i, ..., j, ...)` where `i`'s
/// loop encloses `j`'s loop, `A` cannot be grouped at `j`'s dimension
/// (the traversal is transposed relative to storage order).
fn transposed_marks(prog: &Program) -> std::collections::HashSet<(ArrayId, usize)> {
    let mut depth_of: HashMap<VarId, usize> = HashMap::new();
    fn walk(stmts: &[gcr_ir::GuardedStmt], depth: usize, out: &mut HashMap<VarId, usize>) {
        for gs in stmts {
            if let Stmt::Loop(l) = &gs.stmt {
                out.insert(l.var, depth);
                walk(&l.body, depth + 1, out);
            }
        }
    }
    walk(&prog.body, 0, &mut depth_of);
    let mut marks = std::collections::HashSet::new();
    let mut accs = Vec::new();
    for gs in &prog.body {
        collect_accesses(&gs.stmt, &mut accs);
    }
    for a in &accs {
        let subs = &a.aref.subs;
        for p in 0..subs.len() {
            for q in p + 1..subs.len() {
                if let (Subscript::Var { var: vp, .. }, Subscript::Var { var: vq, .. }) =
                    (&subs[p], &subs[q])
                {
                    if let (Some(dp), Some(dq)) = (depth_of.get(vp), depth_of.get(vq)) {
                        if dp < dq {
                            marks.insert((a.aref.array, q));
                        }
                    }
                }
            }
        }
    }
    marks
}

/// Builds the concrete data layout for a plan.
pub fn layout(
    prog: &Program,
    plan: &RegroupPlan,
    binding: &ParamBinding,
    pad: usize,
) -> DataLayout {
    let mut arrays: Vec<Option<ArrayLayout>> = vec![None; prog.arrays.len()];
    let mut cursor = 0usize;
    for g in &plan.groups {
        let extents: Vec<i64> =
            prog.array(g.members[0]).dims.iter().map(|d| d.eval(binding)).collect();
        let idxs: Vec<usize> = (0..g.members.len()).collect();
        let size = place_group(g, &idxs, g.rank as isize - 1, cursor, &extents, &mut arrays);
        cursor += size + pad;
    }
    let arrays: Vec<ArrayLayout> = arrays
        .into_iter()
        .enumerate()
        .map(|(i, a)| a.unwrap_or_else(|| panic!("array {i} not placed by regrouping")))
        .collect();
    DataLayout { arrays, total_bytes: cursor }
}

/// Recursively lays out the sub-blocks spanning dimensions `0..=d` of the
/// given members (for one fixed index of the outer dimensions). Returns the
/// block size in bytes and fills in bases and strides.
fn place_group(
    g: &GroupPlan,
    members: &[usize],
    d: isize,
    base: usize,
    extents: &[i64],
    arrays: &mut [Option<ArrayLayout>],
) -> usize {
    if d < 0 {
        // Element level: members still together interleave elements.
        for (pos, &mi) in members.iter().enumerate() {
            let a = g.members[mi];
            arrays[a.index()] = Some(ArrayLayout {
                base: base + pos * ELEM_BYTES,
                strides: vec![0; g.rank],
                extents: extents.to_vec(),
            });
        }
        return members.len() * ELEM_BYTES;
    }
    // Partition members by key at dimension d (order preserving).
    let mut subgroups: Vec<(u64, Vec<usize>)> = Vec::new();
    for &mi in members {
        let k = g.keys[mi][d as usize];
        match subgroups.iter_mut().find(|(kk, _)| *kk == k) {
            Some((_, v)) => v.push(mi),
            None => subgroups.push((k, vec![mi])),
        }
    }
    let n_d = extents[d as usize] as usize;
    let mut offset = base;
    for (_, sg) in &subgroups {
        let inner = place_group(g, sg, d - 1, offset, extents, arrays);
        for &mi in sg {
            let a = g.members[mi];
            let al = arrays[a.index()].as_mut().expect("placed by recursion");
            al.strides[d as usize] = inner;
        }
        offset += n_d * inner;
    }
    offset - base
}

/// Convenience wrapper: plan + layout + report.
///
/// ```
/// let prog = gcr_frontend::parse("
/// program pair
/// param N
/// array X[N], Y[N]
///
/// for i = 1, N {
///   X[i] = f(X[i], Y[i])
/// }
/// ").unwrap();
/// let bind = gcr_ir::ParamBinding::new(vec![8]);
/// let (layout, report) = gcr_core::regroup(&prog, &bind, &Default::default());
/// // X and Y are always used together: element-level interleave.
/// assert_eq!(report.groups.len(), 1);
/// assert_eq!(layout.arrays[0].strides[0], 16);
/// assert_eq!(layout.arrays[1].base, layout.arrays[0].base + 8);
/// ```
pub fn regroup(
    prog: &Program,
    binding: &ParamBinding,
    opts: &RegroupOptions,
) -> (DataLayout, RegroupReport) {
    let p = plan(prog, opts);
    let mut report = RegroupReport {
        arrays: prog.arrays.iter().filter(|a| !a.is_scalar()).count(),
        allocations: p.groups.iter().filter(|g| g.rank > 0).count(),
        groups: Vec::new(),
    };
    for g in &p.groups {
        if g.members.len() >= 2 {
            let names = g.members.iter().map(|&m| prog.array(m).name.clone()).collect();
            let mut innermost = g.rank;
            for d in (0..g.rank).rev() {
                if g.keys.iter().all(|kv| kv[d] == g.keys[0][d]) {
                    innermost = d;
                } else {
                    break;
                }
            }
            let desc = if innermost == 0 {
                "element".to_string()
            } else {
                format!("dimension {innermost}")
            };
            report.groups.push((names, desc));
        }
    }
    (layout(prog, &p, binding, opts.pad_bytes), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_frontend::parse;

    /// The Figure 7 program: A and B used by the same inner loop, C by a
    /// different inner loop of the same outer loop.
    fn fig7() -> Program {
        parse(
            "
program fig7
param N
array A[N, N], B[N, N], C[N, N]

for i = 1, N {
  for j = 1, N {
    A[j, i] = g(A[j, i], B[j, i])
  }
  for j = 1, N {
    C[j, i] = t(C[j, i])
  }
}
",
        )
        .unwrap()
    }

    #[test]
    fn fig7_multi_level_layout() {
        let p = fig7();
        let (layout, report) = regroup(&p, &ParamBinding::new(vec![4]), &RegroupOptions::default());
        let n = 4usize;
        let (a, b, c) = (&layout.arrays[0], &layout.arrays[1], &layout.arrays[2]);
        // A and B interleave at the element level: adjacent bases, 2x
        // strides in dim 0.
        assert_eq!(b.base, a.base + 8);
        assert_eq!(a.strides[0], 16);
        assert_eq!(b.strides[0], 16);
        // C is grouped at the outer dimension only: its column block sits
        // after the AB block within each outer index.
        assert_eq!(c.base, a.base + 2 * n * 8);
        assert_eq!(c.strides[0], 8);
        // All three share the outer stride = one 3-column super-block.
        assert_eq!(a.strides[1], 3 * n * 8);
        assert_eq!(c.strides[1], a.strides[1]);
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].0, vec!["A", "B", "C"]);
        assert_eq!(report.allocations, 1);
        assert_eq!(layout.total_bytes, 3 * n * n * 8);
    }

    #[test]
    fn fig7_element_only_keeps_c_separate() {
        let p = fig7();
        let opts = RegroupOptions { level: RegroupLevel::ElementOnly, ..Default::default() };
        let (layout, report) = regroup(&p, &ParamBinding::new(vec![4]), &opts);
        let (a, b, c) = (&layout.arrays[0], &layout.arrays[1], &layout.arrays[2]);
        assert_eq!(b.base, a.base + 8, "A,B still element-interleaved");
        assert_eq!(a.strides[1], 2 * 4 * 8, "AB column holds only A and B");
        assert_eq!(c.strides[0], 8);
        assert_eq!(c.strides[1], 4 * 8);
        assert_eq!(report.allocations, 2);
    }

    #[test]
    fn avoid_innermost_concatenates_columns() {
        let p = fig7();
        let opts = RegroupOptions { level: RegroupLevel::AvoidInnermost, ..Default::default() };
        let (layout, _) = regroup(&p, &ParamBinding::new(vec![4]), &opts);
        let (a, b) = (&layout.arrays[0], &layout.arrays[1]);
        // No element interleave: A's column is contiguous, B's follows.
        assert_eq!(a.strides[0], 8);
        assert_eq!(b.strides[0], 8);
        assert_eq!(b.base, a.base + 4 * 8);
        assert_eq!(a.strides[1], 3 * 4 * 8);
    }

    #[test]
    fn unrelated_arrays_stay_apart() {
        let p = parse(
            "
program sep
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(B[i])
}
",
        )
        .unwrap();
        let (layout, report) = regroup(&p, &ParamBinding::new(vec![8]), &RegroupOptions::default());
        assert_eq!(report.groups.len(), 0);
        assert_eq!(report.allocations, 2);
        let (a, b) = (&layout.arrays[0], &layout.arrays[1]);
        assert_eq!(a.strides[0], 8);
        assert_eq!(b.strides[0], 8);
        assert_eq!(b.base, 8 * 8);
    }

    #[test]
    fn always_together_arrays_interleave() {
        let p = parse(
            "
program tog
param N
array X[N], Y[N], Z[N]

for i = 2, N {
  X[i] = f(X[i], Y[i])
  Y[i] = g(Y[i-1])
  Z[i] = h(X[i], Z[i])
}
",
        )
        .unwrap();
        let (layout, report) = regroup(&p, &ParamBinding::new(vec![8]), &RegroupOptions::default());
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].1, "element");
        let (x, y, z) = (&layout.arrays[0], &layout.arrays[1], &layout.arrays[2]);
        assert_eq!(x.strides[0], 24);
        assert_eq!(y.base, x.base + 8);
        assert_eq!(z.base, x.base + 16);
        assert_eq!(layout.total_bytes, 3 * 8 * 8);
    }

    #[test]
    fn different_shapes_never_group() {
        let p = parse(
            "
program shapes
param N
array A[N], B[N, N]

for i = 1, N {
  A[i] = f(B[i, 1])
}
",
        )
        .unwrap();
        let (_, report) = regroup(&p, &ParamBinding::new(vec![4]), &RegroupOptions::default());
        assert_eq!(report.groups.len(), 0);
    }

    #[test]
    fn transposed_access_blocks_grouping() {
        // B is traversed transposed: the outer loop indexes its inner dim.
        let p = parse(
            "
program transp
param N
array A[N, N], B[N, N]

for i = 1, N {
  for j = 1, N {
    A[j, i] = f(B[i, j])
  }
}
",
        )
        .unwrap();
        let (layout, report) = regroup(&p, &ParamBinding::new(vec![4]), &RegroupOptions::default());
        assert!(report.groups.is_empty(), "{report:?}");
        let (a, b) = (&layout.arrays[0], &layout.arrays[1]);
        assert_eq!(a.strides[0], 8);
        assert_eq!(b.strides[0], 8);
    }

    #[test]
    fn scalars_get_slots() {
        let p = parse(
            "
program sc
param N
array A[N]
scalar s

for i = 1, N {
  s sum= A[i]
}
",
        )
        .unwrap();
        let (layout, _) = regroup(&p, &ParamBinding::new(vec![4]), &RegroupOptions::default());
        assert_eq!(layout.arrays[1].strides.len(), 0);
        assert_eq!(layout.total_bytes, 4 * 8 + 8);
    }

    /// Execution under a regrouped layout must produce identical logical
    /// results to the default layout.
    #[test]
    fn regrouped_layout_preserves_semantics() {
        let p = fig7();
        let bind = ParamBinding::new(vec![6]);
        let (layout, _) = regroup(&p, &bind, &RegroupOptions::default());
        let mut m1 = gcr_exec::Machine::new(&p, bind.clone());
        let mut m2 = gcr_exec::Machine::with_layout(&p, bind, layout);
        m1.run_steps(&mut gcr_exec::NullSink, 2);
        m2.run_steps(&mut gcr_exec::NullSink, 2);
        for ai in 0..p.arrays.len() {
            let a = gcr_ir::ArrayId::from_index(ai);
            assert_eq!(m1.read_array(a), m2.read_array(a), "array {ai}");
        }
    }

    #[test]
    fn padding_between_allocations() {
        let p = parse(
            "
program pad2
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(B[i])
}
",
        )
        .unwrap();
        let opts = RegroupOptions { pad_bytes: 128, ..Default::default() };
        let (layout, _) = regroup(&p, &ParamBinding::new(vec![4]), &opts);
        assert_eq!(layout.arrays[1].base, 4 * 8 + 128);
    }
}
