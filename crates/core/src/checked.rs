//! Fail-safe pipeline driver: [`optimize_checked`] runs the same passes as
//! [`crate::pipeline::optimize`], but validates the program and re-runs a
//! differential semantic oracle after every pass, rolling back to the last
//! good program and degrading to a weaker strategy when anything goes wrong.
//!
//! The degradation ladder follows the strength ordering of the paper's
//! evaluation strategies:
//!
//! ```text
//! fusion + regrouping  →  fusion only  →  SGI-like baseline  →  original
//! ```
//!
//! * a **regrouping** fault drops the regrouping plan (one rung);
//! * a **fusion** fault at level 1 abandons fusion and retries the
//!   conservative baseline; if that also fails the original program is
//!   used untouched;
//! * a fusion fault at a deeper level keeps the shallower levels already
//!   proven good and stops fusing deeper;
//! * **preliminary** pass faults skip the pass.
//!
//! Every rollback is recorded in a [`RobustnessReport`] carried on the
//! returned [`OptimizedProgram`], so drivers can print exactly what was
//! given up and why.

use crate::baseline::{baseline_fuse, BaselineReport, BASELINE_PAD_BYTES};
use crate::fusion::{fuse_one_level, loops_per_level, FusionReport};
use crate::pipeline::{OptimizeOptions, OptimizedProgram, Strategy};
use crate::prelim::{preliminary, PrelimReport};
use crate::regroup::{self, RegroupLevel, RegroupPlan, RegroupReport};
use crate::trace::{IrSize, PassEvent, Tracer};
use gcr_exec::{DataLayout, Machine, NullSink};
use gcr_ir::{BinOp, Expr, GcrError, GuardedStmt, ParamBinding, Program, Resource, Stmt};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Oracle fuel when the `fuel` option of [`SafetyOptions`] is unset:
/// enough for every
/// bundled kernel at the oracle size, small enough to stop degenerate
/// trip counts quickly.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Default cap on the simulated memory image of any oracle machine.
pub const DEFAULT_MAX_BYTES: usize = 1 << 28; // 256 MiB

/// A pipeline pass, as identified in fallback records and fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Loop interchange (`orient_nests`).
    Orient,
    /// Preliminary transformations (unroll/split/distribute/fold).
    Prelim,
    /// Reuse-based fusion of one loop level.
    Fusion {
        /// Loop level fused (1 = outermost).
        level: usize,
    },
    /// Multi-level data regrouping.
    Regroup,
    /// The SGI-like conservative baseline (fallback rung only).
    Baseline,
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pass::Orient => write!(f, "orient"),
            Pass::Prelim => write!(f, "prelim"),
            Pass::Fusion { level } => write!(f, "fusion@{level}"),
            Pass::Regroup => write!(f, "regroup"),
            Pass::Baseline => write!(f, "baseline"),
        }
    }
}

/// One recorded degradation step.
#[derive(Clone, Debug, PartialEq)]
pub struct Fallback {
    /// The pass that failed.
    pub pass: Pass,
    /// Strategy label before the fallback.
    pub from: String,
    /// Strategy label after the fallback.
    pub to: String,
    /// Why the pass was rejected.
    pub cause: GcrError,
}

/// What the fail-safe pipeline had to give up, and why.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RobustnessReport {
    /// Every degradation step, in order.
    pub fallbacks: Vec<Fallback>,
    /// Post-pass checkpoints executed (validation, plus the oracle when
    /// enabled).
    pub checks: usize,
    /// Label of the strategy actually delivered.
    pub strategy: String,
    /// Set when the *original* program could not be executed as the
    /// semantic reference (e.g. out-of-bounds subscripts, fuel exhaustion):
    /// passes were then vetted by structural validation only.
    pub oracle_disabled: Option<GcrError>,
}

impl RobustnessReport {
    /// True when any pass had to be rolled back.
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty()
    }

    /// Human-readable one-line-per-fallback diagnostics (for stderr).
    pub fn describe(&self) -> Vec<String> {
        let mut lines = Vec::new();
        if let Some(cause) = &self.oracle_disabled {
            lines.push(format!(
                "warning: semantic oracle disabled ({cause}); passes checked by validation only"
            ));
        }
        for f in &self.fallbacks {
            if f.from == f.to {
                lines.push(format!(
                    "warning: pass {} skipped ({}); strategy stays {}",
                    f.pass, f.cause, f.to
                ));
            } else {
                lines.push(format!(
                    "warning: pass {} failed ({}); degraded {} -> {}",
                    f.pass, f.cause, f.from, f.to
                ));
            }
        }
        lines
    }
}

/// Knobs of the fail-safe driver.
#[derive(Clone, Copy, Debug)]
pub struct SafetyOptions {
    /// Treat the first pass failure as fatal instead of degrading.
    pub strict: bool,
    /// Degrade to weaker strategies on failure. When `false` (and not
    /// strict), the pipeline stops at the last good program without trying
    /// weaker rungs.
    pub fallback: bool,
    /// Run the differential oracle after each pass (otherwise checkpoints
    /// only validate structure).
    pub oracle: bool,
    /// Value bound to every size parameter for oracle runs.
    pub oracle_n: i64,
    /// Second parameter size the oracle also checks (`None` disables the
    /// extra run). Checking two sizes catches transforms that are only
    /// accidentally correct at one size — e.g. a wrong boundary statement
    /// masked at small `N` by an overlapping constant-guard write.
    pub oracle_n2: Option<i64>,
    /// Time steps the oracle executes each version for.
    pub oracle_steps: usize,
    /// Interpreter fuel per oracle run ([`DEFAULT_FUEL`] when `None`).
    pub fuel: Option<u64>,
    /// Memory-image cap for oracle machines ([`DEFAULT_MAX_BYTES`] when
    /// `None`; `Some(usize::MAX)` disables).
    pub max_bytes: Option<usize>,
    /// Test hook: corrupt the program right after this pass runs, so the
    /// checkpoint and the degradation ladder can be exercised
    /// deterministically.
    pub inject_fault: Option<Pass>,
}

impl Default for SafetyOptions {
    fn default() -> Self {
        SafetyOptions {
            strict: false,
            fallback: true,
            oracle: true,
            oracle_n: 12,
            oracle_n2: Some(18),
            oracle_steps: 2,
            fuel: None,
            max_bytes: None,
            inject_fault: None,
        }
    }
}

impl SafetyOptions {
    fn fuel(&self) -> u64 {
        self.fuel.unwrap_or(DEFAULT_FUEL)
    }

    fn max_bytes(&self) -> usize {
        self.max_bytes.unwrap_or(DEFAULT_MAX_BYTES)
    }
}

/// Reference results of the original program: per-array initial and final
/// contents under one or two small bindings, in logical element order.
struct Oracle {
    runs: Vec<OracleRun>,
    steps: usize,
    fuel: u64,
}

/// Reference data at one parameter size.
struct OracleRun {
    binding: ParamBinding,
    entries: Vec<OracleEntry>,
}

struct OracleEntry {
    name: String,
    rank: usize,
    /// First-dimension constant (candidate split component count).
    comps: Option<usize>,
    initial: Vec<f64>,
    final_: Vec<f64>,
}

/// Post-pass checkpoint state: the oracle plus bookkeeping.
struct Checker {
    safety: SafetyOptions,
    oracle: Option<Oracle>,
    checks: usize,
}

// The panic-containment helpers moved to `gcr_par::isolate` so the ladder
// here, the conformance fuzzer, and the `gcr-serve` request boundary all
// share one hook installation and one payload-to-text convention. The
// `catch_unwind` sites below treat a panic as a recoverable oracle verdict
// (reported through the degradation ladder), so the hook's stderr message
// would be noise; the suppression flag is thread-local, so concurrent
// pipelines on `gcr-par` workers don't silence each other's genuine
// panics.
use gcr_par::isolate::{panic_msg, quiet_panics};

/// Elementwise comparison with a relative tolerance (reductions inside one
/// loop keep their order, so everything else must match almost exactly).
fn compare(stage: &str, array: &str, want: &[f64], got: &[f64]) -> Result<(), GcrError> {
    if want.len() != got.len() {
        return Err(GcrError::OracleMismatch {
            stage: stage.to_string(),
            array: array.to_string(),
            detail: format!("length {} vs {}", want.len(), got.len()),
        });
    }
    for (i, (&x, &y)) in want.iter().zip(got).enumerate() {
        let ok = (x - y).abs() <= 1e-9 * x.abs().max(1.0);
        if !ok {
            return Err(GcrError::OracleMismatch {
                stage: stage.to_string(),
                array: array.to_string(),
                detail: format!("element {i}: {x} vs {y}"),
            });
        }
    }
    Ok(())
}

fn build_oracle(prog: &Program, safety: &SafetyOptions) -> Result<Option<Oracle>, GcrError> {
    if !safety.oracle {
        return Ok(None);
    }
    let mut sizes = vec![safety.oracle_n];
    if let Some(n2) = safety.oracle_n2 {
        if n2 != safety.oracle_n {
            sizes.push(n2);
        }
    }
    let fuel = safety.fuel();
    let max_bytes = safety.max_bytes();
    let steps = safety.oracle_steps;
    let built = quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| -> Result<Oracle, GcrError> {
            let mut runs = Vec::with_capacity(sizes.len());
            for n in sizes {
                let binding = ParamBinding::new(vec![n; prog.params.len()]);
                let layout = DataLayout::column_major(prog, &binding, 0);
                let mut m =
                    Machine::try_with_layout(prog, binding.clone(), layout, Some(max_bytes))?;
                let mut entries: Vec<OracleEntry> = prog
                    .arrays
                    .iter()
                    .enumerate()
                    .map(|(ai, decl)| OracleEntry {
                        name: decl.name.clone(),
                        rank: decl.rank(),
                        comps: decl.dims.first().and_then(|d| d.as_const()).map(|c| c as usize),
                        initial: m.read_array(gcr_ir::ArrayId::from_index(ai)),
                        final_: Vec::new(),
                    })
                    .collect();
                m.run_steps_guarded(&mut NullSink, steps, fuel)?;
                for (ai, e) in entries.iter_mut().enumerate() {
                    e.final_ = m.read_array(gcr_ir::ArrayId::from_index(ai));
                }
                runs.push(OracleRun { binding, entries });
            }
            Ok(Oracle { runs, steps, fuel })
        }))
    });
    match built {
        Ok(Ok(o)) => Ok(Some(o)),
        Ok(Err(e)) => Err(e),
        Err(p) => Err(GcrError::Exec { why: format!("original program: {}", panic_msg(p)) }),
    }
}

impl Checker {
    /// Validates `prog` and, when the oracle is on, executes it under
    /// `mk_layout` and compares every array against the reference.
    fn check(
        &mut self,
        stage: &str,
        prog: &Program,
        mk_layout: &dyn Fn(&Program, &ParamBinding) -> DataLayout,
    ) -> Result<(), GcrError> {
        self.checks += 1;
        gcr_ir::validate::validate(prog)
            .map_err(|errors| GcrError::Validate { stage: stage.to_string(), errors })?;
        let Some(o) = &self.oracle else { return Ok(()) };
        let max_bytes = self.safety.max_bytes();
        let run = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| -> Result<(), GcrError> {
                for r in &o.runs {
                    let layout = mk_layout(prog, &r.binding);
                    let mut m =
                        Machine::try_with_layout(prog, r.binding.clone(), layout, Some(max_bytes))?;
                    // Equalize initial data with the reference: same-name arrays
                    // get the reference contents directly; arrays split by the
                    // preliminary passes (`u` -> `u__1..u__k`, interleaved
                    // innermost) get their component slices.
                    for e in &r.entries {
                        if let Some(t) = prog.array_by_name(&e.name) {
                            if prog.array(t).rank() == e.rank {
                                m.write_array(t, &e.initial)?;
                                continue;
                            }
                        }
                        let comps = split_comps(e, stage)?;
                        for c in 0..comps {
                            let part = split_part(prog, e, c, stage)?;
                            let slice: Vec<f64> =
                                e.initial.iter().skip(c).step_by(comps).copied().collect();
                            m.write_array(part, &slice)?;
                        }
                    }
                    m.run_steps_guarded(&mut NullSink, o.steps, o.fuel)?;
                    for e in &r.entries {
                        if e.rank == 0 {
                            continue; // scalar reductions may reassociate across fusion
                        }
                        if let Some(t) = prog.array_by_name(&e.name) {
                            if prog.array(t).rank() == e.rank {
                                compare(stage, &e.name, &e.final_, &m.read_array(t))?;
                                continue;
                            }
                        }
                        let comps = split_comps(e, stage)?;
                        for c in 0..comps {
                            let part = split_part(prog, e, c, stage)?;
                            let want: Vec<f64> =
                                e.final_.iter().skip(c).step_by(comps).copied().collect();
                            compare(
                                stage,
                                &format!("{}__{}", e.name, c + 1),
                                &want,
                                &m.read_array(part),
                            )?;
                        }
                    }
                }
                Ok(())
            }))
        });
        match run {
            Ok(res) => res,
            Err(p) => Err(GcrError::Exec { why: format!("after {stage}: {}", panic_msg(p)) }),
        }
    }
}

fn split_comps(e: &OracleEntry, stage: &str) -> Result<usize, GcrError> {
    e.comps.filter(|&c| c > 0).ok_or_else(|| GcrError::Exec {
        why: format!("array {} disappeared after {stage}", e.name),
    })
}

fn split_part(
    prog: &Program,
    e: &OracleEntry,
    c: usize,
    stage: &str,
) -> Result<gcr_ir::ArrayId, GcrError> {
    prog.array_by_name(&format!("{}__{}", e.name, c + 1)).ok_or_else(|| GcrError::Exec {
        why: format!("array {} lost component {} after {stage}", e.name, c + 1),
    })
}

/// Test hook: makes the first assignment compute a different value, so the
/// semantic oracle is guaranteed to reject the program.
fn corrupt(prog: &mut Program) {
    fn walk(list: &mut [GuardedStmt]) -> bool {
        for gs in list {
            match &mut gs.stmt {
                Stmt::Assign(a) => {
                    let old = std::mem::replace(&mut a.rhs, Expr::Const(0.0));
                    a.rhs = Expr::Bin(BinOp::Add, Box::new(old), Box::new(Expr::Const(1.0)));
                    return true;
                }
                Stmt::Loop(l) => {
                    if walk(&mut l.body) {
                        return true;
                    }
                }
            }
        }
        false
    }
    walk(&mut prog.body);
}

/// Runs one pass under full protection: panics become [`GcrError::Exec`],
/// the optional fault hook fires, the checkpoint runs, and on any failure
/// the program is restored to its pre-pass state. When the tracer is
/// enabled, the pass (plus its checkpoint) is timed and its IR size delta
/// recorded; a disabled tracer skips all measurement.
fn attempt<T>(
    program: &mut Program,
    checker: &mut Checker,
    tracer: &mut Tracer,
    pass: Pass,
    mk_layout: &dyn Fn(&Program, &ParamBinding) -> DataLayout,
    f: impl FnOnce(&mut Program) -> Result<T, GcrError>,
) -> Result<T, GcrError> {
    let snapshot = program.clone();
    let stage = pass.to_string();
    let before = tracer.is_enabled().then(|| IrSize::of(program));
    let t0 = tracer.is_enabled().then(std::time::Instant::now);
    let out = quiet_panics(|| catch_unwind(AssertUnwindSafe(|| f(program))));
    let res = match out {
        Ok(Ok(v)) => {
            if checker.safety.inject_fault == Some(pass) {
                corrupt(program);
            }
            checker.check(&stage, program, mk_layout).map(|_| v)
        }
        Ok(Err(e)) => Err(e),
        Err(p) => Err(GcrError::Exec { why: format!("{stage}: {}", panic_msg(p)) }),
    };
    if res.is_err() {
        *program = snapshot;
    }
    tracer.record(|| PassEvent {
        pass: stage.clone(),
        ok: res.is_ok(),
        wall_ns: t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
        before: before.unwrap_or_default(),
        after: IrSize::of(program),
        detail: match &res {
            Ok(_) => String::new(),
            Err(e) => e.to_string(),
        },
    });
    res
}

fn default_layout(prog: &Program, binding: &ParamBinding) -> DataLayout {
    DataLayout::column_major(prog, binding, 0)
}

/// Label of the strategy a (levels, regroup, baseline) state delivers,
/// matching [`Strategy::label`].
fn state_label(
    levels: usize,
    regroup: bool,
    regroup_level: RegroupLevel,
    baseline: bool,
) -> String {
    if baseline {
        return "sgi-like".into();
    }
    match (levels, regroup) {
        (0, false) => "original".into(),
        (0, true) => "group-only".into(),
        (n, false) => format!("fuse{n}"),
        (n, true) => {
            let suffix = match regroup_level {
                RegroupLevel::Multi => "+group",
                RegroupLevel::ElementOnly => "+elem",
                RegroupLevel::AvoidInnermost => "+outer",
            };
            format!("fuse{n}{suffix}")
        }
    }
}

fn merge_fusion(total: &mut FusionReport, level: usize, rep: FusionReport) {
    if total.fused.len() < level {
        total.fused.resize(level, 0);
    }
    total.fused[level - 1] += rep.fused.iter().sum::<usize>();
    total.embedded += rep.embedded;
    total.peeled += rep.peeled;
    total.loops_after = rep.loops_after;
    for w in rep.infusible {
        if !total.infusible.contains(&w) {
            total.infusible.push(w);
        }
    }
    total.budget_exhausted |= rep.budget_exhausted;
}

/// The fail-safe counterpart of [`crate::pipeline::optimize`].
///
/// Fatal errors (`Err`) are limited to: an invalid *input* program, a
/// failure to execute the *original* program (it is the semantic
/// reference), and — under [`SafetyOptions::strict`] — the first pass
/// failure. Everything else degrades per the ladder and is recorded in the
/// returned program's [`RobustnessReport`].
///
/// ```
/// use gcr_core::{optimize_checked, OptimizeOptions, SafetyOptions};
/// let prog = gcr_frontend::parse("
/// program demo
/// param N
/// array A[N], B[N]
/// for i = 1, N { A[i] = f(A[i]) }
/// for i = 1, N { B[i] = g(A[i], B[i]) }
/// ").unwrap();
/// let opt = optimize_checked(&prog, &OptimizeOptions::default(),
///                            &SafetyOptions::default()).unwrap();
/// assert!(!opt.robustness.degraded());
/// assert_eq!(opt.program.count_nests(), 1); // the two loops fused
/// ```
pub fn optimize_checked(
    prog: &Program,
    opts: &OptimizeOptions,
    safety: &SafetyOptions,
) -> Result<OptimizedProgram, GcrError> {
    optimize_checked_traced(prog, opts, safety, &mut Tracer::disabled())
}

/// [`optimize_checked`] with per-pass tracing: every pass attempt is
/// recorded as a [`PassEvent`] on `tracer` (see [`crate::trace`]). Passing
/// [`Tracer::disabled`] makes this identical to [`optimize_checked`] — no
/// timestamps are taken and no IR nodes are counted.
pub fn optimize_checked_traced(
    prog: &Program,
    opts: &OptimizeOptions,
    safety: &SafetyOptions,
    tracer: &mut Tracer,
) -> Result<OptimizedProgram, GcrError> {
    gcr_ir::validate::validate(prog)
        .map_err(|errors| GcrError::Validate { stage: "input".into(), errors })?;
    let mut report = RobustnessReport::default();
    let oracle = match build_oracle(prog, safety) {
        Ok(o) => o,
        Err(e) if !safety.strict => {
            // The reference itself cannot run; vet passes structurally.
            report.oracle_disabled = Some(e);
            None
        }
        Err(e) => return Err(e),
    };
    let mut checker = Checker { safety: *safety, oracle, checks: 0 };
    let mut program = prog.clone();

    let mut want_levels = if opts.fusion { opts.fusion_opts.max_levels } else { 0 };
    let mut want_regroup = opts.regroup;
    let rl = opts.regroup_opts.level;
    let mut baseline = false;
    let mut stopped = false;
    let mut prelim_rep = PrelimReport::default();
    let mut fusion_rep = FusionReport::default();
    let mut baseline_rep = BaselineReport::default();

    // A failure of a pass that is merely preparatory (orient, prelim) skips
    // the pass without changing the strategy.
    let skip_or_stop = |pass: Pass,
                        cause: GcrError,
                        report: &mut RobustnessReport,
                        stopped: &mut bool|
     -> Result<(), GcrError> {
        if safety.strict {
            return Err(cause);
        }
        let here = state_label(want_levels, want_regroup, rl, baseline);
        report.fallbacks.push(Fallback { pass, from: here.clone(), to: here, cause });
        if !safety.fallback {
            *stopped = true;
        }
        Ok(())
    };

    if opts.orient && !stopped {
        if let Err(cause) =
            attempt(&mut program, &mut checker, tracer, Pass::Orient, &default_layout, |p| {
                crate::interchange::orient_nests(p);
                Ok(())
            })
        {
            skip_or_stop(Pass::Orient, cause, &mut report, &mut stopped)?;
        }
    }

    if opts.prelim && !stopped {
        match attempt(&mut program, &mut checker, tracer, Pass::Prelim, &default_layout, |p| {
            Ok(preliminary(p, opts.small_dim_limit))
        }) {
            Ok(rep) => {
                tracer.annotate_last(|| {
                    format!(
                        "unrolled {}, split {}, distributed {}",
                        rep.unrolled, rep.split_arrays, rep.distributed
                    )
                });
                prelim_rep = rep;
            }
            Err(cause) => skip_or_stop(Pass::Prelim, cause, &mut report, &mut stopped)?,
        }
    }

    if want_levels > 0 && !stopped {
        fusion_rep.loops_before = loops_per_level(&program);
        let mut level = 1;
        while level <= want_levels && !stopped {
            let res = attempt(
                &mut program,
                &mut checker,
                tracer,
                Pass::Fusion { level },
                &default_layout,
                |p| {
                    let rep = fuse_one_level(p, &opts.fusion_opts, level);
                    if rep.budget_exhausted {
                        return Err(GcrError::BudgetExceeded {
                            resource: Resource::FusionWorklist,
                            limit: opts.fusion_opts.max_steps as u64,
                        });
                    }
                    Ok(rep)
                },
            );
            match res {
                Ok(rep) => {
                    tracer.annotate_last(|| {
                        format!(
                            "fused {}, embedded {}, peeled {}",
                            rep.fused.iter().sum::<usize>(),
                            rep.embedded,
                            rep.peeled
                        )
                    });
                    merge_fusion(&mut fusion_rep, level, rep);
                    level += 1;
                }
                Err(cause) => {
                    if safety.strict {
                        return Err(cause);
                    }
                    let from = state_label(want_levels, want_regroup, rl, baseline);
                    if level == 1 {
                        // Fusion is unusable: drop to the SGI-like baseline,
                        // then to the original program.
                        want_levels = 0;
                        want_regroup = false;
                        if !safety.fallback {
                            report.fallbacks.push(Fallback {
                                pass: Pass::Fusion { level },
                                from,
                                to: state_label(0, false, rl, false),
                                cause,
                            });
                            stopped = true;
                        } else {
                            report.fallbacks.push(Fallback {
                                pass: Pass::Fusion { level },
                                from,
                                to: "sgi-like".into(),
                                cause,
                            });
                            match attempt(
                                &mut program,
                                &mut checker,
                                tracer,
                                Pass::Baseline,
                                &default_layout,
                                |p| Ok(baseline_fuse(p)),
                            ) {
                                Ok(rep) => {
                                    baseline = true;
                                    baseline_rep = rep;
                                }
                                Err(cause2) => {
                                    report.fallbacks.push(Fallback {
                                        pass: Pass::Baseline,
                                        from: "sgi-like".into(),
                                        to: "original".into(),
                                        cause: cause2,
                                    });
                                }
                            }
                        }
                    } else {
                        // Keep the levels already proven good.
                        let kept = level - 1;
                        report.fallbacks.push(Fallback {
                            pass: Pass::Fusion { level },
                            from,
                            to: state_label(kept, want_regroup, rl, baseline),
                            cause,
                        });
                        want_levels = kept;
                        if !safety.fallback {
                            stopped = true;
                        }
                    }
                    break;
                }
            }
        }
    }

    let mut plan: Option<RegroupPlan> = None;
    let mut regroup_rep = RegroupReport::default();
    if want_regroup && !stopped {
        let pad = opts.regroup_opts.pad_bytes;
        let regroup_opts = opts.regroup_opts;
        let res = attempt(
            &mut program,
            &mut checker,
            tracer,
            Pass::Regroup,
            &{
                // The checkpoint must execute under the *regrouped* layout:
                // that is the artifact being vetted.
                let opts_for_layout = regroup_opts;
                move |p: &Program, b: &ParamBinding| {
                    let plan = regroup::plan(p, &opts_for_layout);
                    regroup::layout(p, &plan, b, pad)
                }
            },
            |p| Ok(regroup::plan(p, &regroup_opts)),
        );
        match res {
            Ok(p) => {
                tracer.annotate_last(|| {
                    format!(
                        "{} arrays -> {} allocations",
                        program.arrays.iter().filter(|a| !a.is_scalar()).count(),
                        p.groups.iter().filter(|g| g.rank > 0).count()
                    )
                });
                regroup_rep = RegroupReport {
                    arrays: program.arrays.iter().filter(|a| !a.is_scalar()).count(),
                    allocations: p.groups.iter().filter(|g| g.rank > 0).count(),
                    groups: Vec::new(),
                };
                for g in &p.groups {
                    if g.members.len() >= 2 {
                        let names =
                            g.members.iter().map(|&m| program.array(m).name.clone()).collect();
                        regroup_rep.groups.push((names, String::new()));
                    }
                }
                plan = Some(p);
            }
            Err(cause) => {
                if safety.strict {
                    return Err(cause);
                }
                let from = state_label(want_levels, true, rl, baseline);
                want_regroup = false;
                report.fallbacks.push(Fallback {
                    pass: Pass::Regroup,
                    from,
                    to: state_label(want_levels, false, rl, baseline),
                    cause,
                });
            }
        }
    }

    report.checks = checker.checks;
    report.strategy = state_label(want_levels, want_regroup, rl, baseline);
    Ok(OptimizedProgram {
        program,
        prelim: prelim_rep,
        fusion: fusion_rep,
        baseline: baseline_rep,
        plan,
        regroup: regroup_rep,
        pad_bytes: if baseline { BASELINE_PAD_BYTES } else { opts.regroup_opts.pad_bytes },
        robustness: report,
    })
}

/// Fail-safe counterpart of [`crate::pipeline::apply_strategy`].
pub fn apply_strategy_checked(
    prog: &Program,
    strategy: Strategy,
    safety: &SafetyOptions,
) -> Result<OptimizedProgram, GcrError> {
    apply_strategy_checked_traced(prog, strategy, safety, &mut Tracer::disabled())
}

/// [`apply_strategy_checked`] with per-pass tracing (see [`crate::trace`]).
pub fn apply_strategy_checked_traced(
    prog: &Program,
    strategy: Strategy,
    safety: &SafetyOptions,
    tracer: &mut Tracer,
) -> Result<OptimizedProgram, GcrError> {
    // `GCR_FAULT=panic_in_pass` chaos hook: a panic *here*, at the
    // pipeline entry, is deliberately outside the per-pass `attempt`
    // containment below — it models the pass whose unwind escapes the
    // ladder, which only a caller-side isolation boundary (the `gcr-serve`
    // per-request `catch_unwind`) can absorb. Inert unless the environment
    // arms it.
    gcr_par::fault::maybe_panic(gcr_par::fault::FaultPoint::PanicInPass);
    if strategy == Strategy::Sgi {
        gcr_ir::validate::validate(prog)
            .map_err(|errors| GcrError::Validate { stage: "input".into(), errors })?;
        let mut report = RobustnessReport::default();
        let oracle = match build_oracle(prog, safety) {
            Ok(o) => o,
            Err(e) if !safety.strict => {
                report.oracle_disabled = Some(e);
                None
            }
            Err(e) => return Err(e),
        };
        let mut checker = Checker { safety: *safety, oracle, checks: 0 };
        let mut program = prog.clone();
        let mut baseline_rep = BaselineReport::default();
        let mut pad = BASELINE_PAD_BYTES;
        match attempt(&mut program, &mut checker, tracer, Pass::Baseline, &default_layout, |p| {
            Ok(baseline_fuse(p))
        }) {
            Ok(rep) => {
                baseline_rep = rep;
                report.strategy = "sgi-like".into();
            }
            Err(cause) => {
                if safety.strict {
                    return Err(cause);
                }
                report.fallbacks.push(Fallback {
                    pass: Pass::Baseline,
                    from: "sgi-like".into(),
                    to: "original".into(),
                    cause,
                });
                report.strategy = "original".into();
                pad = 0;
            }
        }
        report.checks = checker.checks;
        return Ok(OptimizedProgram {
            program,
            prelim: PrelimReport::default(),
            fusion: FusionReport::default(),
            baseline: baseline_rep,
            plan: None,
            regroup: RegroupReport::default(),
            pad_bytes: pad,
            robustness: report,
        });
    }
    optimize_checked_traced(prog, &strategy.options(), safety, tracer)
}
