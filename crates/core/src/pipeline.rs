//! End-to-end optimization pipeline (Section 4.1's implementation order):
//! preliminary transformations → reuse-based loop fusion (level by level)
//! → multi-level data regrouping.
//!
//! [`optimize`] produces the transformed program plus a regrouping plan;
//! the concrete [`DataLayout`] is materialized per parameter binding with
//! [`OptimizedProgram::layout`]. [`Strategy`] names the program versions
//! the paper's evaluation compares (original, SGI-like baseline, fusion
//! only, fusion + regrouping, and the ablations).

use crate::baseline::{baseline_fuse, BaselineReport, BASELINE_PAD_BYTES};
use crate::fusion::{fuse_program, FusionOptions, FusionReport};
use crate::prelim::{preliminary, PrelimReport};
use crate::regroup::{self, RegroupLevel, RegroupOptions, RegroupPlan, RegroupReport};
use gcr_exec::DataLayout;
use gcr_ir::{ParamBinding, Program};

/// Pipeline options.
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Re-orient transposed two-deep nests before fusion (the paper's hand
    /// "level ordering" for Tomcatv, automated). Off by default: the
    /// bundled kernels are authored post-interchange, like the code the
    /// paper's compiler saw.
    pub orient: bool,
    /// Run the preliminary passes (unroll/split/distribute/fold).
    pub prelim: bool,
    /// Small-dimension limit for unrolling and array splitting.
    pub small_dim_limit: i64,
    /// Run reuse-based fusion.
    pub fusion: bool,
    /// Fusion parameters.
    pub fusion_opts: FusionOptions,
    /// Run data regrouping (otherwise the default column-major layout).
    pub regroup: bool,
    /// Regrouping parameters.
    pub regroup_opts: RegroupOptions,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            orient: false,
            prelim: true,
            small_dim_limit: 8,
            fusion: true,
            fusion_opts: FusionOptions::default(),
            regroup: true,
            regroup_opts: RegroupOptions::default(),
        }
    }
}

/// A named program version from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Unoptimized program, plain column-major layout.
    Original,
    /// Local strategies: adjacent conforming fusion + inter-array padding.
    Sgi,
    /// Reuse-based fusion only (default layout) — "computation fusion".
    FusionOnly {
        /// Loop levels fused.
        levels: usize,
    },
    /// Fusion + multi-level regrouping — the paper's full strategy.
    FusionRegroup {
        /// Loop levels fused.
        levels: usize,
        /// Regrouping aggressiveness.
        regroup: RegroupLevel,
    },
    /// Ablation: regrouping without fusion.
    RegroupOnly,
    /// Ablation: fusion with reuse-driven alignment disabled (loops fuse
    /// only when alignment 0 is legal).
    FusionNoAlign {
        /// Loop levels fused.
        levels: usize,
    },
}

impl Strategy {
    /// Parses the user-facing strategy names shared by the `gcrc` command
    /// line and the `gcr-serve` request protocol. `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Strategy> {
        Some(match name {
            "original" => Strategy::Original,
            "sgi" => Strategy::Sgi,
            "fuse" => Strategy::FusionOnly { levels: 3 },
            "fuse1" => Strategy::FusionOnly { levels: 1 },
            "fuse+group" => Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
            "group" => Strategy::RegroupOnly,
            _ => return None,
        })
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            Strategy::Original => "original".into(),
            Strategy::Sgi => "sgi-like".into(),
            Strategy::FusionOnly { levels } => format!("fuse{levels}"),
            Strategy::FusionRegroup { levels, regroup: RegroupLevel::Multi } => {
                format!("fuse{levels}+group")
            }
            Strategy::FusionRegroup { levels, regroup: RegroupLevel::ElementOnly } => {
                format!("fuse{levels}+elem")
            }
            Strategy::FusionRegroup { levels, regroup: RegroupLevel::AvoidInnermost } => {
                format!("fuse{levels}+outer")
            }
            Strategy::RegroupOnly => "group-only".into(),
            Strategy::FusionNoAlign { levels } => format!("fuse{levels}-noalign"),
        }
    }

    /// The pipeline options implementing this strategy.
    pub fn options(&self) -> OptimizeOptions {
        let mut o = OptimizeOptions::default();
        match *self {
            Strategy::Original => {
                o.prelim = false;
                o.fusion = false;
                o.regroup = false;
            }
            Strategy::Sgi => {
                o.prelim = false;
                o.fusion = false;
                o.regroup = false;
            }
            Strategy::FusionOnly { levels } => {
                o.fusion_opts.max_levels = levels;
                o.regroup = false;
            }
            Strategy::FusionRegroup { levels, regroup } => {
                o.fusion_opts.max_levels = levels;
                o.regroup_opts.level = regroup;
            }
            Strategy::RegroupOnly => {
                o.fusion = false;
            }
            Strategy::FusionNoAlign { levels } => {
                o.fusion_opts.max_levels = levels;
                o.fusion_opts.align = false;
                o.regroup = false;
            }
        }
        o
    }
}

/// Result of the pipeline.
#[derive(Clone, Debug)]
pub struct OptimizedProgram {
    /// The transformed program.
    pub program: Program,
    /// Preliminary-pass statistics.
    pub prelim: PrelimReport,
    /// Fusion statistics.
    pub fusion: FusionReport,
    /// Baseline statistics (only for [`Strategy::Sgi`]).
    pub baseline: BaselineReport,
    /// Regrouping decision (`None` when regrouping is off).
    pub plan: Option<RegroupPlan>,
    /// Regrouping statistics.
    pub regroup: RegroupReport,
    /// Padding for the default layout (baseline uses one L2 line).
    pub pad_bytes: usize,
    /// What the fail-safe driver had to give up (empty for the unchecked
    /// [`optimize`] path).
    pub robustness: crate::checked::RobustnessReport,
}

impl OptimizedProgram {
    /// Materializes the data layout for a concrete input size.
    pub fn layout(&self, binding: &ParamBinding) -> DataLayout {
        match &self.plan {
            Some(plan) => regroup::layout(&self.program, plan, binding, self.pad_bytes),
            None => DataLayout::column_major(&self.program, binding, self.pad_bytes),
        }
    }
}

/// Runs the pipeline.
pub fn optimize(prog: &Program, opts: &OptimizeOptions) -> OptimizedProgram {
    let mut program = prog.clone();
    if opts.orient {
        crate::interchange::orient_nests(&mut program);
    }
    let prelim_rep = if opts.prelim {
        preliminary(&mut program, opts.small_dim_limit)
    } else {
        PrelimReport::default()
    };
    let fusion_rep = if opts.fusion {
        fuse_program(&mut program, &opts.fusion_opts)
    } else {
        FusionReport::default()
    };
    let (plan, regroup_rep) = if opts.regroup {
        let p = regroup::plan(&program, &opts.regroup_opts);
        // Report derives from a throwaway binding-free pass.
        let mut report = RegroupReport {
            arrays: program.arrays.iter().filter(|a| !a.is_scalar()).count(),
            allocations: p.groups.iter().filter(|g| g.rank > 0).count(),
            groups: Vec::new(),
        };
        for g in &p.groups {
            if g.members.len() >= 2 {
                let names = g.members.iter().map(|&m| program.array(m).name.clone()).collect();
                report.groups.push((names, String::new()));
            }
        }
        (Some(p), report)
    } else {
        (None, RegroupReport::default())
    };
    OptimizedProgram {
        program,
        prelim: prelim_rep,
        fusion: fusion_rep,
        baseline: BaselineReport::default(),
        plan,
        regroup: regroup_rep,
        pad_bytes: opts.regroup_opts.pad_bytes,
        robustness: crate::checked::RobustnessReport::default(),
    }
}

/// Produces the program version for a named strategy.
pub fn apply_strategy(prog: &Program, strategy: Strategy) -> OptimizedProgram {
    let mut out = optimize(prog, &strategy.options());
    if strategy == Strategy::Sgi {
        let rep = baseline_fuse(&mut out.program);
        out.baseline = rep;
        out.pad_bytes = BASELINE_PAD_BYTES;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};
    use gcr_frontend::parse;

    const SRC: &str = "
program pipe
param N
array A[N, N], B[N, N], C[N, N]

for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = 0.25 * (A[j-1, i] + A[j+1, i] + B[j, i-1] + B[j, i+1])
  }
}
for i = 2, N - 1 {
  for j = 2, N - 1 {
    B[j, i] = f(A[j, i])
  }
}
for i = 2, N - 1 {
  for j = 2, N - 1 {
    C[j, i] = g(B[j, i], C[j, i])
  }
}
";

    #[test]
    fn full_pipeline_preserves_semantics() {
        let orig = parse(SRC).unwrap();
        for strategy in [
            Strategy::Original,
            Strategy::Sgi,
            Strategy::FusionOnly { levels: 1 },
            Strategy::FusionOnly { levels: 3 },
            Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
            Strategy::RegroupOnly,
        ] {
            let opt = apply_strategy(&orig, strategy);
            gcr_ir::validate::validate(&opt.program)
                .unwrap_or_else(|e| panic!("{strategy:?}: {e:?}"));
            let bind = ParamBinding::new(vec![10]);
            let mut m1 = Machine::new(&orig, bind.clone());
            m1.run_steps(&mut NullSink, 2);
            let layout = opt.layout(&bind);
            let mut m2 = Machine::with_layout(&opt.program, bind, layout);
            m2.run_steps(&mut NullSink, 2);
            for (ai, decl) in orig.arrays.iter().enumerate() {
                let a1 = gcr_ir::ArrayId::from_index(ai);
                let a2 = opt.program.array_by_name(&decl.name).unwrap();
                assert_eq!(
                    m1.read_array(a1),
                    m2.read_array(a2),
                    "{strategy:?} array {}",
                    decl.name
                );
            }
        }
    }

    #[test]
    fn strategies_have_distinct_labels() {
        let labels: Vec<String> = [
            Strategy::Original,
            Strategy::Sgi,
            Strategy::FusionOnly { levels: 1 },
            Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
            Strategy::RegroupOnly,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }

    #[test]
    fn fusion_strategy_reduces_nests() {
        let orig = parse(SRC).unwrap();
        let opt = apply_strategy(&orig, Strategy::FusionOnly { levels: 3 });
        assert_eq!(opt.program.count_nests(), 1, "{}", gcr_ir::print::print_program(&opt.program));
    }

    #[test]
    fn regroup_strategy_produces_interleaved_layout() {
        let orig = parse(SRC).unwrap();
        let opt = apply_strategy(
            &orig,
            Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
        );
        let bind = ParamBinding::new(vec![8]);
        let layout = opt.layout(&bind);
        // Multi-variable guards let every inner loop fuse despite differing
        // outer alignments, so all three arrays share the single innermost
        // loop and interleave at the element level.
        let a = &layout.arrays[orig.array_by_name("A").unwrap().index()];
        let b = &layout.arrays[orig.array_by_name("B").unwrap().index()];
        let c = &layout.arrays[orig.array_by_name("C").unwrap().index()];
        assert_eq!(a.strides[0], 24, "{layout:?}");
        assert_eq!(b.base, a.base + 8);
        assert_eq!(c.base, a.base + 16);
        assert_eq!(c.strides[1], a.strides[1]);
    }

    #[test]
    fn sgi_baseline_pads() {
        let orig = parse(SRC).unwrap();
        let opt = apply_strategy(&orig, Strategy::Sgi);
        let bind = ParamBinding::new(vec![8]);
        let layout = opt.layout(&bind);
        let a = &layout.arrays[0];
        let b = &layout.arrays[1];
        assert_eq!(b.base - (a.base + 8 * 8 * 8), BASELINE_PAD_BYTES);
    }
}
