//! Preliminary transformations (Section 4.1).
//!
//! "An input program is processed by four preliminary transformations
//! before applying loop fusion": procedure inlining (a no-op here — the
//! kernels are single-procedure), **array splitting and loop unrolling**
//! (eliminate data dimensions of small constant size and the loops that
//! iterate them), **loop distribution**, and **constant propagation**
//! (constant folding in our expression-level IR).

use gcr_analysis::footprint::{var_ranges, VarRanges};
use gcr_analysis::level::classify_level_refs;
use gcr_ir::{
    subst, ArrayDecl, ArrayId, BinOp, Expr, GuardedStmt, LinExpr, Loop, Program, Stmt, Subscript,
    UnOp,
};

/// Statistics from the preliminary passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrelimReport {
    /// Additional loops created by distribution.
    pub distributed: usize,
    /// Loops unrolled away.
    pub unrolled: usize,
    /// Arrays added by splitting constant dimensions (new − removed).
    pub split_arrays: usize,
}

/// Runs all preliminary passes in the paper's order: unrolling + splitting,
/// then distribution, then constant folding.
pub fn preliminary(prog: &mut Program, small_dim_limit: i64) -> PrelimReport {
    let rep = PrelimReport {
        unrolled: unroll_const_loops(prog, small_dim_limit),
        split_arrays: split_const_dims(prog, small_dim_limit),
        distributed: distribute(prog),
    };
    fold_constants(prog);
    rep
}

// --------------------------------------------------------------------------
// Loop unrolling of small constant-trip loops
// --------------------------------------------------------------------------

/// Fully unrolls loops whose trip count is a constant ≤ `limit`. Returns the
/// number of loops unrolled.
pub fn unroll_const_loops(prog: &mut Program, limit: i64) -> usize {
    let mut count = 0;
    let mut body = std::mem::take(&mut prog.body);
    unroll_list(&mut body, limit, &mut count);
    prog.body = body;
    count
}

fn unroll_list(stmts: &mut Vec<GuardedStmt>, limit: i64, count: &mut usize) {
    let mut out = Vec::with_capacity(stmts.len());
    for mut gs in stmts.drain(..) {
        if let Stmt::Loop(l) = &mut gs.stmt {
            unroll_list(&mut l.body, limit, count);
            if let (Some(lo), Some(hi)) = (l.lo.as_const(), l.hi.as_const()) {
                if hi >= lo && hi - lo < limit && unrollable(l) {
                    *count += 1;
                    for x in lo..=hi {
                        for m in &l.body {
                            // A member guard ranges over the unrolled
                            // variable and resolves statically at `x`
                            // (`unrollable` guarantees constant bounds).
                            if let Some(g) = &m.guard {
                                let (glo, ghi) =
                                    (g.lo.as_const().unwrap(), g.hi.as_const().unwrap());
                                if x < glo || x > ghi {
                                    continue;
                                }
                            }
                            let mut stmt = m.stmt.clone();
                            subst::instantiate_var(&mut stmt, l.var, &LinExpr::konst(x));
                            let mut outer = gs.outer.clone();
                            outer.extend(m.outer.iter().cloned());
                            out.push(GuardedStmt { stmt, guard: gs.guard.clone(), outer });
                        }
                    }
                    continue;
                }
            }
        }
        out.push(gs);
    }
    *stmts = out;
}

/// Whether a constant-trip loop can be unrolled without changing meaning:
/// every member guard must resolve statically (constant bounds, checked
/// against each instantiated value), and no statement anywhere inside may
/// condition on the loop's variable through an `outer` range —
/// instantiation replaces the variable in subscripts only and would leave
/// such conditions dangling.
fn unrollable(l: &Loop) -> bool {
    fn no_outer_on(list: &[GuardedStmt], v: gcr_ir::VarId) -> bool {
        list.iter().all(|m| {
            m.outer.iter().all(|(u, _)| *u != v)
                && match &m.stmt {
                    Stmt::Loop(inner) => no_outer_on(&inner.body, v),
                    Stmt::Assign(_) => true,
                }
        })
    }
    l.body.iter().all(|m| {
        m.guard.as_ref().is_none_or(|g| g.lo.as_const().is_some() && g.hi.as_const().is_some())
    }) && no_outer_on(&l.body, l.var)
}

// --------------------------------------------------------------------------
// Array splitting of small constant dimensions
// --------------------------------------------------------------------------

/// Splits every array dimension of constant extent ≤ `limit` into separate
/// arrays (`U[5, N, N] → U__1..U__5[N, N]`), provided every reference
/// subscripts that dimension with a constant (run unrolling first). Returns
/// the net number of arrays added.
pub fn split_const_dims(prog: &mut Program, limit: i64) -> usize {
    let before = prog.arrays.len();
    while let Some((target, dim, extent)) = find_splittable(prog, limit) {
        apply_split(prog, target, dim, extent);
    }
    prog.arrays.len() - before
}

fn find_splittable(prog: &Program, limit: i64) -> Option<(ArrayId, usize, i64)> {
    for (i, decl) in prog.arrays.iter().enumerate() {
        if decl.rank() < 2 {
            continue; // splitting a 1-D array to scalars helps nothing
        }
        for (d, dimsize) in decl.dims.iter().enumerate() {
            let Some(s) = dimsize.as_const() else { continue };
            if s < 1 || s > limit {
                continue;
            }
            let a = ArrayId::from_index(i);
            if all_refs_const_at(prog, a, d) {
                return Some((a, d, s));
            }
        }
    }
    None
}

fn all_refs_const_at(prog: &Program, a: ArrayId, d: usize) -> bool {
    let mut ok = true;
    prog.walk(|gs, _| {
        if let Stmt::Assign(asg) = &gs.stmt {
            let mut check = |r: &gcr_ir::ArrayRef| {
                if r.array == a {
                    match r.subs.get(d) {
                        Some(Subscript::Invariant(e)) if e.as_const().is_some() => {}
                        _ => ok = false,
                    }
                }
            };
            check(&asg.lhs);
            asg.rhs.visit_reads(&mut |r| check(r));
        }
    });
    ok
}

fn apply_split(prog: &mut Program, a: ArrayId, d: usize, extent: i64) {
    // New arrays A__1..A__extent with dimension d removed.
    let decl = prog.array(a).clone();
    let mut new_dims = decl.dims.clone();
    new_dims.remove(d);
    let first_new = prog.arrays.len();
    for k in 1..=extent {
        prog.arrays.push(ArrayDecl { name: format!("{}__{k}", decl.name), dims: new_dims.clone() });
    }
    // Rewrite every reference.
    let remap = |r: &mut gcr_ir::ArrayRef| {
        if r.array == a {
            let Subscript::Invariant(e) = &r.subs[d] else { unreachable!("checked const") };
            let k = e.as_const().expect("checked const");
            assert!(k >= 1 && k <= extent, "split subscript {k} out of 1..={extent}");
            r.array = ArrayId::from_index(first_new + (k - 1) as usize);
            r.subs.remove(d);
        }
    };
    fn rewrite(stmts: &mut [GuardedStmt], remap: &dyn Fn(&mut gcr_ir::ArrayRef)) {
        for gs in stmts {
            match &mut gs.stmt {
                Stmt::Assign(asg) => {
                    remap(&mut asg.lhs);
                    asg.rhs.visit_reads_mut(&mut |r| remap(r));
                }
                Stmt::Loop(l) => rewrite(&mut l.body, remap),
            }
        }
    }
    rewrite(&mut prog.body, &remap);
    // Shrink the old declaration to zero cost; it is no longer referenced.
    // (Ids are positional, so it cannot be removed without a global remap —
    // give it rank 0 so the layout allocates a single element.)
    prog.arrays[a.index()].dims.clear();
    prog.arrays[a.index()].name = format!("{}__dead", decl.name);
}

// --------------------------------------------------------------------------
// Loop distribution
// --------------------------------------------------------------------------

/// Maximally distributes every loop: body statements end up in separate
/// loops except where a backward dependence forces them together. Returns
/// the number of additional loops created.
pub fn distribute(prog: &mut Program) -> usize {
    let ranges = var_ranges(prog);
    let mut created = 0;
    let mut body = std::mem::take(&mut prog.body);
    distribute_list(&mut body, prog, &ranges, &mut created);
    prog.body = body;
    created
}

fn distribute_list(
    stmts: &mut Vec<GuardedStmt>,
    prog: &mut Program,
    ranges: &VarRanges,
    created: &mut usize,
) {
    let mut out: Vec<GuardedStmt> = Vec::with_capacity(stmts.len());
    for gs in stmts.drain(..) {
        match gs.stmt {
            Stmt::Loop(l) => {
                let pieces = distribute_loop(l, prog, ranges, created);
                for p in pieces {
                    out.push(GuardedStmt {
                        stmt: Stmt::Loop(p),
                        guard: gs.guard.clone(),
                        outer: gs.outer.clone(),
                    });
                }
            }
            other => out.push(GuardedStmt { stmt: other, guard: gs.guard, outer: gs.outer }),
        }
    }
    *stmts = out;
}

fn distribute_loop(
    mut l: Loop,
    prog: &mut Program,
    ranges: &VarRanges,
    created: &mut usize,
) -> Vec<Loop> {
    // Recurse into nested loops first.
    let mut inner = std::mem::take(&mut l.body);
    distribute_list(&mut inner, prog, ranges, created);
    l.body = inner;
    let n = l.body.len();
    if n <= 1 {
        return vec![l];
    }
    // Union statements connected by backward dependences.
    let range = l.range();
    let refs: Vec<Vec<gcr_analysis::LevelRef>> =
        l.body.iter().map(|m| classify_level_refs(m, l.var, &range, ranges)).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    for a in 0..n {
        for b in a + 1..n {
            if backward_dep(&refs[a], &refs[b]) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra.max(rb)] = ra.min(rb);
                }
            }
        }
    }
    // Emit groups in original order of their first member.
    let mut groups: Vec<(usize, Vec<GuardedStmt>)> = Vec::new();
    for (idx, m) in l.body.drain(..).enumerate() {
        let root = find(&mut parent, idx);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, v)) => v.push(m),
            None => groups.push((root, vec![m])),
        }
    }
    if groups.len() == 1 {
        let (_, body) = groups.pop().unwrap();
        l.body = body;
        return vec![l];
    }
    *created += groups.len() - 1;
    let mut out = Vec::with_capacity(groups.len());
    let base_name = prog.var(l.var).name.clone();
    for (gi, (_, body)) in groups.into_iter().enumerate() {
        if gi == 0 {
            out.push(Loop { var: l.var, lo: l.lo.clone(), hi: l.hi.clone(), body });
        } else {
            let v = prog.fresh_var(format!("{base_name}_{gi}"));
            let mut body = body;
            for m in &mut body {
                subst::rename_shift_var(&mut m.stmt, l.var, v, 0);
            }
            out.push(Loop { var: v, lo: l.lo.clone(), hi: l.hi.clone(), body });
        }
    }
    out
}

/// True when splitting `a` (earlier) and `b` (later) into separate loops
/// would violate a dependence — i.e. some instance of `b` must precede an
/// instance of `a`.
fn backward_dep(a: &[gcr_analysis::LevelRef], b: &[gcr_analysis::LevelRef]) -> bool {
    use gcr_analysis::LevelPos;
    for ra in a {
        for rb in b {
            if ra.access.aref.array != rb.access.aref.array {
                continue;
            }
            if !ra.access.kind.conflicts(rb.access.kind) {
                continue;
            }
            if !ra.dims_may_overlap(rb) {
                continue;
            }
            match (ra.pos, rb.pos) {
                (
                    LevelPos::Variant { dim: d1, offset: c1 },
                    LevelPos::Variant { dim: d2, offset: c2 },
                ) => {
                    // b touches element e at e − c2, a at e − c1; backward
                    // iff b's touch comes first: c2 > c1. Transposed
                    // conflicts are conservatively backward.
                    if d1 != d2 || c2 > c1 {
                        return true;
                    }
                }
                // Invariant locations couple all iterations: keep together.
                _ => return true,
            }
        }
    }
    false
}

// --------------------------------------------------------------------------
// Constant folding
// --------------------------------------------------------------------------

/// Folds constant arithmetic in every right-hand side.
pub fn fold_constants(prog: &mut Program) {
    fn fold(e: &mut Expr) {
        match e {
            Expr::Unary(op, a) => {
                fold(a);
                if let Expr::Const(x) = **a {
                    let v = match op {
                        UnOp::Neg => -x,
                        UnOp::Sqrt => x.abs().sqrt(),
                        UnOp::Abs => x.abs(),
                    };
                    *e = Expr::Const(v);
                }
            }
            Expr::Bin(op, a, b) => {
                fold(a);
                fold(b);
                if let (Expr::Const(x), Expr::Const(y)) = (&**a, &**b) {
                    let v = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if y.abs() < 1e-300 {
                                *x
                            } else {
                                x / y
                            }
                        }
                        BinOp::Max => x.max(*y),
                        BinOp::Min => x.min(*y),
                    };
                    *e = Expr::Const(v);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    fold(a);
                }
            }
            Expr::Lin(l) => {
                if let Some(k) = l.as_const() {
                    *e = Expr::Const(k as f64);
                }
            }
            _ => {}
        }
    }
    fn walk(stmts: &mut [GuardedStmt]) {
        for gs in stmts {
            match &mut gs.stmt {
                Stmt::Assign(a) => fold(&mut a.rhs),
                Stmt::Loop(l) => walk(&mut l.body),
            }
        }
    }
    walk(&mut prog.body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};
    use gcr_frontend::parse;
    use gcr_ir::ParamBinding;

    fn equivalent(orig: &Program, xformed: &Program, n: i64) {
        let bind = ParamBinding::new(vec![n]);
        let mut m1 = Machine::new(orig, bind.clone());
        m1.run_steps(&mut NullSink, 2);
        let mut m2 = Machine::new(xformed, bind);
        m2.run_steps(&mut NullSink, 2);
        // Compare arrays that exist in both (by name).
        for (ai, decl) in orig.arrays.iter().enumerate() {
            if decl.is_scalar() {
                continue;
            }
            let a1 = gcr_ir::ArrayId::from_index(ai);
            let v1 = m1.read_array(a1);
            if let Some(a2) = xformed.array_by_name(&decl.name) {
                if !xformed.array(a2).is_scalar() {
                    let v2 = m2.read_array(a2);
                    assert_eq!(v1, v2, "array {}", decl.name);
                }
            }
        }
    }

    #[test]
    fn unrolls_small_constant_loop() {
        let src = "
program u
param N
array A[N, N]

for i = 1, N {
  for m = 1, 3 {
    A[i, m] = f(A[i, m])
  }
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let n = unroll_const_loops(&mut p, 8);
        assert_eq!(n, 1);
        assert_eq!(p.count_loops(), 1);
        assert_eq!(p.count_assigns(), 3);
        equivalent(&orig, &p, 6);
    }

    #[test]
    fn unroll_respects_limit() {
        let src = "
program u
param N
array A[N, N]

for i = 1, N {
  for m = 1, 6 {
    A[i, m] = f(A[i, m])
  }
}
";
        let mut p = parse(src).unwrap();
        assert_eq!(unroll_const_loops(&mut p, 4), 0);
        assert_eq!(p.count_loops(), 2);
    }

    #[test]
    fn splits_constant_dimension() {
        // Every U read is of a value written earlier in the same run, so
        // the comparison is independent of initial memory contents (split
        // arrays necessarily start with different deterministic init data).
        let src = "
program s
param N
array U[3, N], V[N]

for i = 1, N {
  U[1, i] = f(V[i])
  U[2, i] = g(V[i], U[1, i])
  U[3, i] = h(U[1, i], U[2, i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let added = split_const_dims(&mut p, 8);
        assert_eq!(added, 3);
        assert!(p.array_by_name("U__1").is_some());
        assert!(p.array_by_name("U__3").is_some());
        // All refs retargeted; U itself dead.
        let mut accs = Vec::new();
        for gs in &p.body {
            gcr_analysis::access::collect_accesses(&gs.stmt, &mut accs);
        }
        assert!(accs
            .iter()
            .all(|a| p.array(a.aref.array).name.starts_with("U__")
                || p.array(a.aref.array).name == "V"));
        gcr_ir::validate::validate(&p).unwrap();
        // Semantics: compare split arrays against original slices.
        let bind = ParamBinding::new(vec![5]);
        let mut m1 = Machine::new(&orig, bind.clone());
        m1.run(&mut NullSink);
        let mut m2 = Machine::new(&p, bind);
        m2.run(&mut NullSink);
        let u = m1.read_array(gcr_ir::ArrayId::from_index(0));
        for k in 0..3usize {
            let uk = m2.read_array(p.array_by_name(&format!("U__{}", k + 1)).unwrap());
            let slice: Vec<f64> = (0..5).map(|i| u[i * 3 + k]).collect();
            assert_eq!(uk, slice, "U__{}", k + 1);
        }
        // The dead original declaration takes one padding slot only.
        assert!(p.array(gcr_ir::ArrayId::from_index(0)).is_scalar());
    }

    #[test]
    fn split_skips_variable_subscripts() {
        let src = "
program s
param N
array U[3, N]

for i = 1, N {
  for m = 1, 3 {
    U[m, i] = f(U[m, i])
  }
}
";
        let mut p = parse(src).unwrap();
        // Without unrolling, the m subscript blocks splitting.
        assert_eq!(split_const_dims(&mut p, 8), 0);
        // After unrolling it works.
        assert_eq!(unroll_const_loops(&mut p, 8), 1);
        assert_eq!(split_const_dims(&mut p, 8), 3);
    }

    #[test]
    fn distributes_independent_statements() {
        let src = "
program d
param N
array A[N], B[N], C[N]

for i = 1, N {
  A[i] = f(A[i])
  B[i] = g(B[i])
  C[i] = h(A[i], C[i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let created = distribute(&mut p);
        assert_eq!(created, 2, "{}", gcr_ir::print::print_program(&p));
        assert_eq!(p.count_nests(), 3);
        gcr_ir::validate::validate(&p).unwrap();
        equivalent(&orig, &p, 10);
    }

    #[test]
    fn backward_dep_keeps_statements_together() {
        // s2 writes A[i+1] read by s1 in the NEXT iteration: splitting
        // would break the interleaving.
        let src = "
program d
param N
array A[N], B[N]

for i = 2, N - 1 {
  B[i] = f(A[i+1])
  A[i] = g(B[i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        // s1 reads A[i+1], s2 writes A[i]: b touches elem e at e, a at e-1:
        // backward (c2=0 > c1=... wait c1=+1, c2=0: c2 > c1 false -> check
        // the real semantics by equivalence instead.
        distribute(&mut p);
        gcr_ir::validate::validate(&p).unwrap();
        equivalent(&orig, &p, 12);
    }

    #[test]
    fn distribution_then_fusion_round_trips() {
        let src = "
program rt
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
  B[i] = g(A[i], B[i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        distribute(&mut p);
        assert_eq!(p.count_nests(), 2);
        let rep = crate::fusion::fuse_program(&mut p, &crate::fusion::FusionOptions::default());
        assert_eq!(rep.total_fused(), 1);
        assert_eq!(p.count_nests(), 1);
        equivalent(&orig, &p, 9);
    }

    #[test]
    fn folds_constant_expressions() {
        let src = "
program c
param N
array A[N]

for i = 1, N {
  A[i] = 2.0 * 3.0 + A[i] * (1.0 - 1.0)
}
";
        let mut p = parse(src).unwrap();
        fold_constants(&mut p);
        let l = p.body[0].stmt.as_loop().unwrap();
        let a = l.body[0].stmt.as_assign().unwrap();
        // 2*3 folded; A[i]*(0) keeps the read (not algebraically simplified).
        match &a.rhs {
            Expr::Bin(BinOp::Add, x, _) => assert_eq!(**x, Expr::Const(6.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preliminary_composes() {
        let src = "
program all
param N
array U[2, N], V[N]

for i = 2, N {
  for m = 1, 2 {
    U[m, i] = f(U[m, i-1])
  }
  V[i] = g(V[i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let rep = preliminary(&mut p, 8);
        assert_eq!(rep.unrolled, 1);
        assert_eq!(rep.split_arrays, 2);
        assert!(rep.distributed >= 1);
        gcr_ir::validate::validate(&p).unwrap();
        // V's results unchanged.
        let bind = ParamBinding::new(vec![7]);
        let mut m1 = Machine::new(&orig, bind.clone());
        m1.run(&mut NullSink);
        let mut m2 = Machine::new(&p, bind);
        m2.run(&mut NullSink);
        assert_eq!(
            m1.read_array(orig.array_by_name("V").unwrap()),
            m2.read_array(p.array_by_name("V").unwrap())
        );
    }
}
