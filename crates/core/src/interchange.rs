//! Loop interchange ("level ordering").
//!
//! The paper performed "level ordering (loop interchange) by hand" for
//! Tomcatv so that all nests present the same loop level for fusion. This
//! module automates the transformation for perfectly nested loop pairs:
//! [`try_interchange`] swaps a nest when every dependence allows it, and
//! [`orient_nests`] flips minority-oriented two-deep nests so that the
//! outer level of every nest iterates the same data dimension — which is
//! what level-by-level fusion needs.
//!
//! Legality is the classic direction-vector condition: interchange of a
//! perfect pair is illegal iff some dependence is carried by the outer
//! loop with a negative inner component (a `(<, >)` direction).

use gcr_analysis::access::{collect_accesses, AccessInfo};
use gcr_ir::{Loop, Program, Stmt, Subscript, VarId};

/// Offsets of one reference with respect to an (outer, inner) variable
/// pair; `None` when the variable does not appear.
fn offsets(a: &AccessInfo, outer: VarId, inner: VarId) -> (Option<i64>, Option<i64>) {
    let mut o = None;
    let mut i = None;
    for s in &a.aref.subs {
        if let Subscript::Var { var, offset } = s {
            if *var == outer {
                o = Some(*offset);
            } else if *var == inner {
                i = Some(*offset);
            }
        }
    }
    (o, i)
}

/// Decides whether the perfect nest `outer { inner { … } }` may be
/// interchanged: `true` iff no dependence has direction `(<, >)`.
pub fn interchange_legal(outer: &Loop, inner: &Loop) -> bool {
    let mut accs = Vec::new();
    for gs in &inner.body {
        if gs.guard.is_some() || !gs.outer.is_empty() {
            return false; // guarded bodies arise only after fusion
        }
        collect_accesses(&gs.stmt, &mut accs);
    }
    for (x, a) in accs.iter().enumerate() {
        for b in &accs[x..] {
            if a.aref.array != b.aref.array || !a.kind.conflicts(b.kind) {
                continue;
            }
            let (ao, ai) = offsets(a, outer.var, inner.var);
            let (bo, bi) = offsets(b, outer.var, inner.var);
            let (Some(ao), Some(ai), Some(bo), Some(bi)) = (ao, ai, bo, bi) else {
                // A conflicting reference not indexed by both loops:
                // conservative refusal.
                if a.aref.subs.iter().zip(&b.aref.subs).any(|(x, y)| x != y) {
                    return false;
                }
                continue;
            };
            // Same-element instances differ by v = (bo − ao, bi − ai);
            // the dependence vector is v or −v, whichever is
            // lexicographically non-negative.
            let v = (bo - ao, bi - ai);
            let d = if v > (0, i64::MIN) || (v.0 == 0 && v.1 >= 0) { v } else { (-v.0, -v.1) };
            let d = if d.0 > 0 || (d.0 == 0 && d.1 >= 0) { d } else { (-d.0, -d.1) };
            if d.0 > 0 && d.1 < 0 {
                return false; // (<, >): interchange would reverse it
            }
        }
    }
    true
}

/// Attempts to interchange a two-deep perfect nest in place. Returns
/// `true` on success. The statement must be a loop whose entire body is a
/// single unguarded inner loop.
pub fn try_interchange(stmt: &mut Stmt) -> bool {
    let Stmt::Loop(outer) = stmt else { return false };
    if outer.body.len() != 1 || outer.body[0].guard.is_some() || !outer.body[0].outer.is_empty() {
        return false;
    }
    let Stmt::Loop(inner) = &outer.body[0].stmt else { return false };
    if !interchange_legal(outer, inner) {
        return false;
    }
    // Swap the loop headers; bodies and subscripts move untouched (each
    // variable keeps its identity, only the nesting order changes).
    let Stmt::Loop(inner_owned) =
        std::mem::replace(&mut outer.body[0].stmt, Stmt::Assign(placeholder()))
    else {
        unreachable!()
    };
    let new_inner =
        Loop { var: outer.var, lo: outer.lo.clone(), hi: outer.hi.clone(), body: inner_owned.body };
    outer.var = inner_owned.var;
    outer.lo = inner_owned.lo;
    outer.hi = inner_owned.hi;
    outer.body[0].stmt = Stmt::Loop(new_inner);
    true
}

fn placeholder() -> gcr_ir::Assign {
    gcr_ir::Assign {
        id: gcr_ir::StmtId::from_index(0),
        lhs: gcr_ir::ArrayRef {
            id: gcr_ir::RefId::from_index(0),
            array: gcr_ir::ArrayId::from_index(0),
            subs: Vec::new(),
        },
        rhs: gcr_ir::Expr::Const(0.0),
        kind: gcr_ir::AssignKind::Normal,
    }
}

/// Which data dimension a nest's *outer* loop indexes (majority vote over
/// its references), or `None` when mixed/unknown.
fn outer_dim(l: &Loop) -> Option<usize> {
    let mut accs = Vec::new();
    collect_accesses(&Stmt::Loop(l.clone()), &mut accs);
    let mut votes: Vec<usize> = Vec::new();
    for a in &accs {
        for (d, s) in a.aref.subs.iter().enumerate() {
            if s.var_id() == Some(l.var) {
                votes.push(d);
            }
        }
    }
    votes.sort_unstable();
    votes.first().copied().map(|_| {
        let mut best = (0usize, 0usize);
        let mut k = 0;
        while k < votes.len() {
            let mut e = k;
            while e < votes.len() && votes[e] == votes[k] {
                e += 1;
            }
            if e - k > best.1 {
                best = (votes[k], e - k);
            }
            k = e;
        }
        best.0
    })
}

/// Re-orients two-deep nests so that every nest's outer loop indexes the
/// majority data dimension (the paper's Tomcatv "level ordering" step).
/// Returns the number of nests interchanged.
pub fn orient_nests(prog: &mut Program) -> usize {
    // Majority outer dimension over all two-deep nests.
    let mut dims: Vec<usize> = Vec::new();
    for gs in &prog.body {
        if let Stmt::Loop(l) = &gs.stmt {
            if let Some(d) = outer_dim(l) {
                dims.push(d);
            }
        }
    }
    if dims.is_empty() {
        return 0;
    }
    dims.sort_unstable();
    let majority = {
        let mut best = (dims[0], 0usize);
        let mut k = 0;
        while k < dims.len() {
            let mut e = k;
            while e < dims.len() && dims[e] == dims[k] {
                e += 1;
            }
            if e - k > best.1 {
                best = (dims[k], e - k);
            }
            k = e;
        }
        best.0
    };
    let mut flipped = 0;
    for gs in &mut prog.body {
        if let Stmt::Loop(l) = &gs.stmt {
            if outer_dim(l) != Some(majority) && try_interchange(&mut gs.stmt) {
                flipped += 1;
            }
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};
    use gcr_frontend::parse;
    use gcr_ir::ParamBinding;

    fn equivalent(a: &Program, b: &Program, n: i64) {
        let mut m1 = Machine::new(a, ParamBinding::new(vec![n]));
        m1.run_steps(&mut NullSink, 2);
        let mut m2 = Machine::new(b, ParamBinding::new(vec![n]));
        m2.run_steps(&mut NullSink, 2);
        assert_eq!(m1.checksum(), m2.checksum());
    }

    #[test]
    fn interchange_swaps_headers() {
        let src = "
program t
param N
array A[N, N]
for i = 1, N {
  for j = 2, N - 1 {
    A[j, i] = f(A[j, i])
  }
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        assert!(try_interchange(&mut p.body[0].stmt));
        let outer = p.body[0].stmt.as_loop().unwrap();
        assert_eq!(p.var(outer.var).name, "j");
        assert_eq!(outer.lo.as_const(), Some(2));
        gcr_ir::validate::validate(&p).unwrap();
        equivalent(&orig, &p, 8);
    }

    #[test]
    fn negative_inner_dependence_blocks_interchange() {
        // Dependence vector (1, -1): carried by i, backward on j —
        // interchange would reverse it.
        let src = "
program t
param N
array A[N, N]
for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = f(A[j+1, i-1])
  }
}
";
        let mut p = parse(src).unwrap();
        assert!(!try_interchange(&mut p.body[0].stmt));
    }

    #[test]
    fn forward_dependences_allow_interchange() {
        // Dependence vector (1, 1): stays lexicographically positive.
        let src = "
program t
param N
array A[N, N]
for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = f(A[j-1, i-1])
  }
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        assert!(try_interchange(&mut p.body[0].stmt));
        equivalent(&orig, &p, 10);
    }

    #[test]
    fn imperfect_nest_refused() {
        let src = "
program t
param N
array A[N, N], B[N]
for i = 1, N {
  B[i] = f(B[i])
  for j = 1, N {
    A[j, i] = f(A[j, i])
  }
}
";
        let mut p = parse(src).unwrap();
        assert!(!try_interchange(&mut p.body[0].stmt));
    }

    #[test]
    fn orient_flips_the_transposed_nest() {
        // Two nests iterate dim 1 outermost; one is transposed. After
        // orientation all three match and fusion merges them.
        let src = "
program t
param N
array A[N, N], B[N, N]
for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i])
  }
}
for jj = 1, N {
  for ii = 1, N {
    B[jj, ii] = g(A[jj, ii], B[jj, ii])
  }
}
for i2 = 1, N {
  for j2 = 1, N {
    A[j2, i2] = h(B[j2, i2])
  }
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let flipped = orient_nests(&mut p);
        assert_eq!(flipped, 1);
        equivalent(&orig, &p, 9);
        let rep = crate::fusion::fuse_program(&mut p, &crate::fusion::FusionOptions::default());
        assert_eq!(rep.fused[0], 2, "{rep:?}");
        assert_eq!(p.count_nests(), 1);
        // Without orientation, the transposed nest is a fusion barrier.
        let mut q = orig.clone();
        let rep2 = crate::fusion::fuse_program(&mut q, &crate::fusion::FusionOptions::default());
        assert!(q.count_nests() > 1, "{rep2:?}");
    }
}
