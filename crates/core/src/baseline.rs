//! The "SGI MIPSpro"-like baseline: local optimization strategies.
//!
//! The paper's Section 6 table compares its global strategy against the SGI
//! compiler at `-Ofast`, whose relevant locality optimizations are *local*:
//! conventional loop fusion of adjacent conforming loops (equal bounds, no
//! fusion-preventing dependences — the McKinley et al. style fusion the
//! paper cites, which fused only 6% of candidate loops) and inter-array
//! padding to break cache-conflict alignment. This module reproduces that
//! baseline so the NoOpt / SGI / New comparison can be regenerated.

use gcr_analysis::align::AlignConstraint;
use gcr_analysis::footprint::var_ranges;
use gcr_analysis::level::classify_level_refs;
use gcr_analysis::pairwise_constraint;
use gcr_ir::{subst, GuardedStmt, Program, Stmt};

/// Baseline statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineReport {
    /// Adjacent loop pairs fused.
    pub fused: usize,
}

/// Padding the baseline layout inserts between arrays (one L2 line).
pub const BASELINE_PAD_BYTES: usize = 128;

/// Applies conservative, local loop fusion: only *directly adjacent* loops
/// with *identical bounds* and *no fusion-preventing dependences* (every
/// dependence satisfiable at alignment 0) are merged, at every nesting
/// level. No alignment, no embedding, no peeling.
pub fn baseline_fuse(prog: &mut Program) -> BaselineReport {
    let mut report = BaselineReport::default();
    let ranges = var_ranges(prog);
    let mut body = std::mem::take(&mut prog.body);
    fuse_adjacent(&mut body, &ranges, &mut report);
    prog.body = body;
    report
}

fn fuse_adjacent(
    stmts: &mut Vec<GuardedStmt>,
    ranges: &gcr_analysis::VarRanges,
    report: &mut BaselineReport,
) {
    let mut i = 0;
    while i + 1 < stmts.len() {
        let fusible = {
            let (a, b) = (&stmts[i], &stmts[i + 1]);
            match (&a.stmt, &b.stmt) {
                (Stmt::Loop(la), Stmt::Loop(lb))
                    if la.lo == lb.lo && la.hi == lb.hi && a.guard == b.guard =>
                {
                    let ra = la.range();
                    let fa: Vec<_> = la
                        .body
                        .iter()
                        .flat_map(|m| classify_level_refs(m, la.var, &ra, ranges))
                        .collect();
                    let rb = lb.range();
                    let fb: Vec<_> = lb
                        .body
                        .iter()
                        .flat_map(|m| classify_level_refs(m, lb.var, &rb, ranges))
                        .collect();
                    fa.iter().all(|x| {
                        fb.iter().all(|y| match pairwise_constraint(x, y) {
                            AlignConstraint::None | AlignConstraint::ReuseTarget(_) => true,
                            AlignConstraint::Lower(k) => k <= 0,
                            _ => false,
                        })
                    })
                }
                _ => false,
            }
        };
        if fusible {
            let second = stmts.remove(i + 1);
            let Stmt::Loop(mut lb) = second.stmt else { unreachable!() };
            let Stmt::Loop(la) = &mut stmts[i].stmt else { unreachable!() };
            for m in &mut lb.body {
                subst::rename_shift_var(&mut m.stmt, lb.var, la.var, 0);
            }
            la.body.append(&mut lb.body);
            report.fused += 1;
            // Stay at i: maybe the next loop also conforms.
        } else {
            i += 1;
        }
    }
    // Recurse into bodies.
    for gs in stmts.iter_mut() {
        if let Stmt::Loop(l) = &mut gs.stmt {
            fuse_adjacent(&mut l.body, ranges, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};
    use gcr_frontend::parse;
    use gcr_ir::ParamBinding;

    #[test]
    fn fuses_adjacent_conforming_loops() {
        let src = "
program b
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let rep = baseline_fuse(&mut p);
        assert_eq!(rep.fused, 1);
        assert_eq!(p.count_nests(), 1);
        let bind = ParamBinding::new(vec![10]);
        let mut m1 = Machine::new(&orig, bind.clone());
        m1.run(&mut NullSink);
        let mut m2 = Machine::new(&p, bind);
        m2.run(&mut NullSink);
        assert_eq!(m1.checksum(), m2.checksum());
    }

    #[test]
    fn different_bounds_block_baseline() {
        let src = "
program b
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 2, N {
  B[i] = g(A[i], B[i])
}
";
        let mut p = parse(src).unwrap();
        let rep = baseline_fuse(&mut p);
        assert_eq!(rep.fused, 0, "bounds differ by one: the paper's cited baselines give up");
        assert_eq!(p.count_nests(), 2);
    }

    #[test]
    fn fusion_preventing_dependence_blocks_baseline() {
        // Second loop reads A[i+1]: fusing at alignment 0 would read the
        // updated value.
        let src = "
program b
param N
array A[N], B[N]

for i = 1, N - 1 {
  A[i] = f(A[i])
}
for i = 1, N - 1 {
  B[i] = g(A[i+1])
}
";
        let orig = parse(src).unwrap();
        let mut p = orig.clone();
        let rep = baseline_fuse(&mut p);
        assert_eq!(rep.fused, 0);
        // Reuse-based fusion handles it (alignment +1).
        let mut p2 = orig.clone();
        let rep2 = crate::fusion::fuse_program(&mut p2, &crate::fusion::FusionOptions::default());
        assert_eq!(rep2.total_fused(), 1);
    }

    #[test]
    fn intervening_statement_blocks_baseline() {
        let src = "
program b
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
A[1] = 0.0
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";
        let mut p = parse(src).unwrap();
        assert_eq!(baseline_fuse(&mut p).fused, 0);
    }

    #[test]
    fn chains_of_conforming_loops_all_merge() {
        let src = "
program b
param N
array A[N], B[N], C[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
for i = 1, N {
  C[i] = h(B[i], C[i])
}
";
        let mut p = parse(src).unwrap();
        let rep = baseline_fuse(&mut p);
        assert_eq!(rep.fused, 2);
        assert_eq!(p.count_nests(), 1);
        gcr_ir::validate::validate(&p).unwrap();
    }
}
