//! Reuse-based loop fusion (Section 2.3, Figure 6 of the paper).
//!
//! The algorithm processes the statement list in order; each statement is
//! greedily fused *upwards* into the closest predecessor that shares data
//! with it (`GreedilyFuse`). `FusibleTest` decides whether two loops can be
//! fused and with what alignment factor, using the pairwise constraints of
//! [`gcr_analysis::align`]; fusion is enabled by three transformations:
//!
//! * **statement embedding** — a non-loop statement is scheduled into one
//!   iteration of the fused loop (a single-iteration guard range, possibly
//!   outside the loop's previous bounds — the hull simply extends);
//! * **loop alignment** — the incoming loop is shifted by the largest of
//!   all per-pair alignment factors (negative shifts allowed), which both
//!   satisfies every dependence and brings reuses closest;
//! * **iteration reordering** — boundary iterations of the incoming loop
//!   whose dependences cannot be satisfied by any constant alignment are
//!   peeled into standalone statements placed after the fused loop (legal
//!   only when the incoming loop has no loop-carried self dependence),
//!   mirroring the paper's "splitting at boundary loop iterations".
//!
//! Fused programs are expressed with per-member **guard ranges** rather than
//! generated code: member statements carry their active iteration range in
//! the fused iteration space, and the interpreter honours the guards.
//!
//! Multi-dimensional loops are fused level by level from the outermost
//! (Section 4.1). Inner loops whose *outer* activity ranges differ (their
//! outer alignments or original bounds were unequal) can still fuse: the
//! merged loop takes the hull of the activity ranges and each member keeps
//! an exact outer-variable guard entry, so which outer iterations execute
//! it never changes.

use gcr_analysis::access::touched_arrays;
use gcr_analysis::align::{has_loop_carried_self_dep, AlignConstraint};
use gcr_analysis::footprint::DimSet;
use gcr_analysis::footprint::{var_ranges, VarRanges};
use gcr_analysis::level::{classify_level_refs, LevelPos, LevelRef};
use gcr_analysis::pairwise_constraint;
use gcr_ir::{subst, ArrayId, GuardedStmt, LinExpr, Loop, Program, Range, Stmt};
use std::collections::BTreeSet;
use std::collections::HashSet;

/// Options controlling fusion.
#[derive(Clone, Copy, Debug)]
pub struct FusionOptions {
    /// How many loop levels to fuse, outermost first (the paper evaluates
    /// 1-level vs 3-level fusion on NAS/SP).
    pub max_levels: usize,
    /// Maximum number of head iterations that may be peeled to enable a
    /// fusion.
    pub peel_limit: i64,
    /// Ablation: when `false`, reuse-driven alignment is disabled — loops
    /// fuse only when alignment factor 0 satisfies every dependence, and 0
    /// is used (mere loop fusion without alignment).
    pub align: bool,
    /// Budget on `GreedilyFuse` worklist steps across the whole run. When
    /// it runs out, fusion stops where it is and the report's
    /// `budget_exhausted` flag is set; `optimize_checked` surfaces this as
    /// [`gcr_ir::GcrError::BudgetExceeded`]. The default is far above any
    /// real program's needs.
    pub max_steps: usize,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions { max_levels: 4, peel_limit: 8, align: true, max_steps: 100_000 }
    }
}

/// Statistics of one fusion run.
#[derive(Clone, Debug, Default)]
pub struct FusionReport {
    /// Loop fusions performed (pairs merged), per level.
    pub fused: Vec<usize>,
    /// Non-loop statements embedded into loops.
    pub embedded: usize,
    /// Iterations peeled off to enable fusions.
    pub peeled: usize,
    /// Loop counts per level before fusion (level 1 first).
    pub loops_before: Vec<usize>,
    /// Loop counts per level after fusion.
    pub loops_after: Vec<usize>,
    /// Reasons fusion attempts failed (deduplicated).
    pub infusible: Vec<String>,
    /// True when the `max_steps` worklist budget ran out before the
    /// worklist drained; the program is still valid but may be under-fused.
    pub budget_exhausted: bool,
}

impl FusionReport {
    fn note_infusible(&mut self, why: &str) {
        if !self.infusible.iter().any(|w| w == why) {
            self.infusible.push(why.to_string());
        }
    }

    /// Total fusions across levels.
    pub fn total_fused(&self) -> usize {
        self.fused.iter().sum()
    }
}

/// Counts loops at each nesting level (level 1 = outermost).
pub fn loops_per_level(prog: &Program) -> Vec<usize> {
    let mut counts = Vec::new();
    prog.walk(|gs, depth| {
        if matches!(gs.stmt, Stmt::Loop(_)) {
            if counts.len() <= depth {
                counts.resize(depth + 1, 0);
            }
            counts[depth] += 1;
        }
    });
    counts
}

/// Applies reuse-based loop fusion to a whole program, level by level.
///
/// ```
/// let mut prog = gcr_frontend::parse("
/// program demo
/// param N
/// array A[N], B[N]
///
/// for i = 1, N {
///   A[i] = f(A[i])
/// }
/// for i = 3, N {
///   B[i] = g(A[i-2])
/// }
/// ").unwrap();
/// let report = gcr_core::fuse_program(&mut prog, &gcr_core::FusionOptions::default());
/// assert_eq!(report.total_fused(), 1);
/// assert_eq!(prog.count_nests(), 1);
/// // The second loop was aligned by −2 to meet its producer:
/// let text = gcr_ir::print::print_program(&prog);
/// assert!(text.contains("B[i+2] = g(A[i])"), "{text}");
/// ```
pub fn fuse_program(prog: &mut Program, opts: &FusionOptions) -> FusionReport {
    let mut report = FusionReport {
        loops_before: loops_per_level(prog),
        fused: vec![0; opts.max_levels.max(1)],
        ..Default::default()
    };
    let ranges = var_ranges(prog);
    let mut fuser = Fuser {
        ranges,
        opts: *opts,
        report: &mut report,
        next_ident: 0,
        memo: HashSet::new(),
        level: 0,
        enclosing: None,
        steps: 0,
    };
    let body = std::mem::take(&mut prog.body);
    prog.body = fuser.fuse_level(body);
    if opts.max_levels > 1 {
        let mut body = std::mem::take(&mut prog.body);
        fuser.recurse(&mut body, 2);
        prog.body = body;
    }
    normalize(prog);
    report.loops_after = loops_per_level(prog);
    report
}

/// Fuses exactly one loop level (1 = outermost), leaving other levels
/// untouched. `optimize_checked` uses this to checkpoint the program after
/// every level and roll back just the level that went wrong.
pub fn fuse_one_level(prog: &mut Program, opts: &FusionOptions, level: usize) -> FusionReport {
    let mut report = FusionReport {
        loops_before: loops_per_level(prog),
        fused: vec![0; level.max(1)],
        ..Default::default()
    };
    let ranges = var_ranges(prog);
    let mut fuser = Fuser {
        ranges,
        opts: *opts,
        report: &mut report,
        next_ident: 0,
        memo: HashSet::new(),
        level: level.saturating_sub(1),
        enclosing: None,
        steps: 0,
    };
    if level <= 1 {
        let body = std::mem::take(&mut prog.body);
        prog.body = fuser.fuse_level(body);
    } else {
        let mut body = std::mem::take(&mut prog.body);
        fuser.fuse_at_depth(&mut body, 2, level);
        prog.body = body;
    }
    normalize(prog);
    report.loops_after = loops_per_level(prog);
    report
}

struct Fuser<'r> {
    ranges: VarRanges,
    opts: FusionOptions,
    report: &'r mut FusionReport,
    next_ident: u32,
    /// Pairs (outer ident, inner ident) proven infusible.
    memo: HashSet<(u32, u32)>,
    /// Current level (0-based) for per-level statistics.
    level: usize,
    /// Enclosing loop variable and range when fusing an inner level.
    enclosing: Option<(gcr_ir::VarId, Range)>,
    /// Worklist steps consumed (against `opts.max_steps`).
    steps: usize,
}

struct Slot {
    ident: u32,
    gs: Option<GuardedStmt>,
    arrays: BTreeSet<ArrayId>,
}

/// Result of `FusibleTest`.
enum Fusible {
    No(&'static str),
    /// Fuse with this alignment after peeling `peel_head` iterations.
    Yes {
        align: i64,
        peel_head: i64,
    },
}

impl<'r> Fuser<'r> {
    fn new_ident(&mut self) -> u32 {
        self.next_ident += 1;
        self.next_ident
    }

    /// Descends to loops at exactly `target` depth and fuses their bodies
    /// (the one-level counterpart of [`Fuser::recurse`]).
    fn fuse_at_depth(&mut self, members: &mut [GuardedStmt], current: usize, target: usize) {
        for gs in members.iter_mut() {
            if let Stmt::Loop(l) = &mut gs.stmt {
                if current == target {
                    self.level = target - 1;
                    let saved = self.enclosing.take();
                    self.enclosing = Some((l.var, l.range()));
                    let body = std::mem::take(&mut l.body);
                    l.body = self.fuse_level(body);
                    self.enclosing = saved;
                } else {
                    self.fuse_at_depth(&mut l.body, current + 1, target);
                }
            }
        }
    }

    fn recurse(&mut self, members: &mut [GuardedStmt], level: usize) {
        for gs in members.iter_mut() {
            if let Stmt::Loop(l) = &mut gs.stmt {
                self.level = level - 1;
                let saved = self.enclosing.take();
                self.enclosing = Some((l.var, l.range()));
                let body = std::mem::take(&mut l.body);
                l.body = self.fuse_level(body);
                self.enclosing = saved;
                if level < self.opts.max_levels {
                    self.recurse(&mut l.body, level + 1);
                }
            }
        }
    }

    /// Fuses one statement list (the body of a loop, or the program's
    /// top-level list).
    fn fuse_level(&mut self, members: Vec<GuardedStmt>) -> Vec<GuardedStmt> {
        let mut slots: Vec<Slot> = Vec::with_capacity(members.len());
        for gs in members {
            let ident = self.new_ident();
            let arrays = touched_arrays(&gs.stmt);
            slots.push(Slot { ident, gs: Some(gs), arrays });
            self.greedily_fuse(&mut slots, ident);
        }
        slots.into_iter().filter_map(|s| s.gs).collect()
    }

    /// The paper's `GreedilyFuse`, driven by a worklist of slot identities.
    fn greedily_fuse(&mut self, slots: &mut Vec<Slot>, start: u32) {
        let mut work = vec![start];
        while let Some(id) = work.pop() {
            if self.steps >= self.opts.max_steps {
                self.report.budget_exhausted = true;
                return;
            }
            self.steps += 1;
            let Some(i) = slots.iter().position(|s| s.ident == id && s.gs.is_some()) else {
                continue;
            };
            // Closest predecessor sharing data.
            let Some(j) = (0..i)
                .rev()
                .find(|&j| slots[j].gs.is_some() && !slots[j].arrays.is_disjoint(&slots[i].arrays))
            else {
                continue;
            };
            let pair = (slots[j].ident, slots[i].ident);
            if self.memo.contains(&pair) {
                continue;
            }
            let gj = slots[j].gs.as_ref().unwrap();
            let gi = slots[i].gs.as_ref().unwrap();
            match (&gj.stmt, &gi.stmt) {
                (Stmt::Loop(_), Stmt::Assign(_)) => {
                    if self.embed(slots, j, i) {
                        self.report.embedded += 1;
                        let jid = slots[j].ident;
                        work.push(jid);
                    } else {
                        self.memo.insert(pair);
                    }
                }
                (Stmt::Loop(_), Stmt::Loop(_)) => match self.fusible_test(slots, j, i) {
                    Fusible::No(why) => {
                        self.report.note_infusible(why);
                        self.memo.insert(pair);
                    }
                    Fusible::Yes { align, peel_head } => {
                        if peel_head > 0 {
                            let peeled = self.peel_head(slots, i, peel_head);
                            self.report.peeled += peel_head as usize;
                            // Retry the shrunk loop, then process the peels.
                            let iid = slots[i].ident;
                            let mut peel_ids = Vec::new();
                            for (off, p) in peeled.into_iter().enumerate() {
                                let ident = self.new_ident();
                                let arrays = touched_arrays(&p.stmt);
                                slots.insert(i + 1 + off, Slot { ident, gs: Some(p), arrays });
                                peel_ids.push(ident);
                            }
                            // LIFO: retry loop first, peels afterwards.
                            for &pid in peel_ids.iter().rev() {
                                work.push(pid);
                            }
                            work.push(iid);
                        } else {
                            self.fuse_loops(slots, j, i, align);
                            let lvl = self.level.min(self.report.fused.len() - 1);
                            self.report.fused[lvl] += 1;
                            let jid = slots[j].ident;
                            work.push(jid);
                        }
                    }
                },
                // A plain statement as the closest data-sharing predecessor
                // is a fusion barrier: hoisting past it is unsafe without
                // further analysis, and embedding it backwards would move it
                // across statements it may share data with.
                (Stmt::Assign(_), _) => {
                    self.memo.insert(pair);
                }
            }
        }
    }

    /// Level refs of a member list seen as members of loop `l`.
    fn member_refs(&self, l: &Loop) -> Vec<LevelRef> {
        let range = l.range();
        l.body.iter().flat_map(|m| classify_level_refs(m, l.var, &range, &self.ranges)).collect()
    }

    /// The paper's `FusibleTest`: can the loop in slot `i` fuse into the
    /// fused loop in slot `j`, and with what alignment?
    fn fusible_test(&mut self, slots: &[Slot], j: usize, i: usize) -> Fusible {
        let lf = slots[j].gs.as_ref().unwrap().stmt.as_loop().unwrap();
        let lg = slots[i].gs.as_ref().unwrap().stmt.as_loop().unwrap();
        let f_refs = self.member_refs(lf);
        let g_refs = self.member_refs(lg);
        let Some(lo2) = lg.lo.as_const() else {
            // Symbolic lower bound: peeling positions can't be compared.
            return self.constraints_to_fusible(&f_refs, &g_refs, lf, lg, None);
        };
        self.constraints_to_fusible(&f_refs, &g_refs, lf, lg, Some(lo2))
    }

    fn constraints_to_fusible(
        &mut self,
        f_refs: &[LevelRef],
        g_refs: &[LevelRef],
        lf: &Loop,
        lg: &Loop,
        lo2: Option<i64>,
    ) -> Fusible {
        let mut lower: Option<i64> = None;
        let mut targets: Vec<i64> = Vec::new();
        let mut peel_head: i64 = 0;
        for f in f_refs {
            for g in g_refs {
                match pairwise_constraint(f, g) {
                    AlignConstraint::None => {}
                    AlignConstraint::Lower(k) => lower = Some(lower.map_or(k, |l| l.max(k))),
                    AlignConstraint::ReuseTarget(k) => targets.push(k),
                    AlignConstraint::PeelIteration(pos) => {
                        let Some(lo2) = lo2 else {
                            return Fusible::No("peel needed under a symbolic lower bound");
                        };
                        match pos.as_const() {
                            Some(p) if p < lo2 => {} // iteration doesn't exist
                            Some(p) if p - lo2 < self.opts.peel_limit => {
                                peel_head = peel_head.max(p - lo2 + 1);
                            }
                            _ => return Fusible::No("conflicting iteration too deep to peel"),
                        }
                    }
                    AlignConstraint::Infusible(why) => return Fusible::No(why),
                }
            }
        }
        if peel_head > 0 {
            if has_loop_carried_self_dep(g_refs) {
                return Fusible::No("peel blocked by a loop-carried self dependence");
            }
            if lg.body.iter().any(|m| {
                m.outer.iter().any(|(v, _)| *v == lg.var)
                    || subst::has_outer_entry_for(&m.stmt, lg.var)
            }) {
                return Fusible::No("peel under nested outer guards unsupported");
            }
            // Peeling must leave a non-empty loop.
            let remaining_lo = lg.lo.add_const(peel_head);
            if matches!(
                remaining_lo.cmp_for_large_params(&lg.hi),
                Some(std::cmp::Ordering::Greater) | None
            ) {
                return Fusible::No("peel would consume the whole loop");
            }
            return Fusible::Yes { align: 0, peel_head };
        }
        // "The smallest alignment factor that satisfies data dependence and
        // has the closest reuse": dependence bounds dominate (a flow pair's
        // bound is also its closest-reuse alignment). Pure read-read reuse
        // targets only decide the alignment when there is no dependence at
        // all, and then as the *median* target — taking the maximum would
        // ratchet successive stencil members further and further apart.
        let align = if self.opts.align {
            match lower {
                Some(l) => l,
                None => {
                    if targets.is_empty() {
                        0
                    } else {
                        let mut t = targets.clone();
                        t.sort_unstable();
                        t[t.len() / 2]
                    }
                }
            }
        } else {
            match lower {
                Some(l) if l > 0 => return Fusible::No("alignment disabled and a > 0 required"),
                _ => 0,
            }
        };
        // The fused hull must be expressible.
        let lo = lf.lo.min_large(&lg.lo.add_const(align));
        let hi = lf.hi.max_large(&lg.hi.add_const(align));
        if lo.is_none() || hi.is_none() {
            return Fusible::No("fused bounds are incomparable");
        }
        // Fusion folds each loop's iteration-range constraint into the
        // member guards; a member whose own guard cannot be intersected
        // with its loop's range statically would lose the range constraint
        // and execute iterations the original loop never ran.
        let absorbs = |l: &Loop| {
            let range = l.range();
            l.body.iter().all(|m| m.guard.as_ref().is_none_or(|g| intersect(g, &range).is_some()))
        };
        if !absorbs(lf) || !absorbs(lg) {
            return Fusible::No("member guard incomparable with loop range");
        }
        Fusible::Yes { align, peel_head: 0 }
    }

    /// Peels the first `head` iterations of the loop in slot `i` into
    /// standalone statements (returned in iteration order) and shrinks the
    /// loop. The peeled statements carry the loop slot's own outer guard.
    fn peel_head(&mut self, slots: &mut [Slot], i: usize, head: i64) -> Vec<GuardedStmt> {
        let slot_guard = slots[i].gs.as_ref().unwrap().guard.clone();
        let slot_outer = slots[i].gs.as_ref().unwrap().outer.clone();
        let gs = slots[i].gs.as_mut().unwrap();
        let Stmt::Loop(l) = &mut gs.stmt else { unreachable!() };
        let lo = l.lo.as_const().expect("peel requires a constant lower bound");
        let mut out = Vec::new();
        for x in lo..lo + head {
            let at = LinExpr::konst(x);
            for m in &l.body {
                if let Some(g) = &m.guard {
                    let (glo, ghi) = (g.lo.as_const(), g.hi.as_const());
                    // Skip members provably inactive at iteration x.
                    if matches!(glo, Some(v) if v > x) || matches!(ghi, Some(v) if v < x) {
                        continue;
                    }
                }
                let mut stmt = m.stmt.clone();
                subst::instantiate_var(&mut stmt, l.var, &at);
                // Member outer entries for vars other than l.var survive;
                // (FusibleTest refuses to peel when nested entries mention
                // l.var, so no entry needs resolving here.)
                let mut outer = slot_outer.clone();
                outer.extend(m.outer.iter().filter(|(v, _)| *v != l.var).cloned());
                out.push(GuardedStmt { stmt, guard: slot_guard.clone(), outer });
            }
        }
        l.lo = l.lo.add_const(head);
        out
    }

    /// Performs the fusion of slot `i` into slot `j` with alignment `a`.
    /// When the two slots' own guards (activity over *outer* loop
    /// variables) differ, the merged slot takes the hull and each side's
    /// members receive exact outer-guard entries.
    fn fuse_loops(&mut self, slots: &mut [Slot], j: usize, i: usize, a: i64) {
        let gi_wrap = slots[i].gs.take().unwrap();
        let Stmt::Loop(mut lg) = gi_wrap.stmt else { unreachable!() };
        let arrays_i = std::mem::take(&mut slots[i].arrays);
        let gj_wrap = slots[j].gs.as_mut().unwrap();
        let (merged_guard, merged_outer, extra_j, extra_i) = merge_slot_meta(
            &self.enclosing,
            (&gj_wrap.guard, &gj_wrap.outer),
            (&gi_wrap.guard, &gi_wrap.outer),
        );
        let Stmt::Loop(lf) = &mut gj_wrap.stmt else { unreachable!() };
        let g_range = lg.range();
        for m in &mut lg.body {
            subst::rename_shift_var(&mut m.stmt, lg.var, lf.var, -a);
            // The member stays restricted to the iterations its original
            // loop ran: its own guard intersected with the loop range.
            let guard = match m.guard.take() {
                Some(g) => intersect(&g, &g_range).expect("checked in FusibleTest"),
                None => g_range.clone(),
            };
            m.guard = Some(guard.shift(a));
            m.outer.extend(extra_i.iter().cloned());
        }
        let f_range = lf.range();
        for m in &mut lf.body {
            m.guard = Some(match m.guard.take() {
                Some(g) => intersect(&g, &f_range).expect("checked in FusibleTest"),
                None => f_range.clone(),
            });
            m.outer.extend(extra_j.iter().cloned());
        }
        lf.lo = lf.lo.min_large(&lg.lo.add_const(a)).expect("checked in FusibleTest");
        lf.hi = lf.hi.max_large(&lg.hi.add_const(a)).expect("checked in FusibleTest");
        // Update the recorded range of the fused loop's variable so later
        // footprint queries (Span sets for inner vars, etc.) stay accurate.
        self.ranges.insert(lf.var, lf.range());
        lf.body.append(&mut lg.body);
        gj_wrap.guard = merged_guard;
        gj_wrap.outer = merged_outer;
        slots[j].arrays.extend(arrays_i);
    }

    /// Embeds the non-loop statement in slot `i` into the loop in slot `j`.
    /// Returns `false` when no legal single-iteration position exists.
    fn embed(&mut self, slots: &mut [Slot], j: usize, i: usize) -> bool {
        let lf = slots[j].gs.as_ref().unwrap().stmt.as_loop().unwrap();
        let f_refs = self.member_refs(lf);
        // Classify the statement's refs with a throwaway time range.
        let member = GuardedStmt::bare(slots[i].gs.as_ref().unwrap().stmt.clone());
        let s_refs = classify_level_refs(&member, lf.var, &lf.range(), &self.ranges);
        let mut pos: Option<LinExpr> = None;
        for f in &f_refs {
            for s in &s_refs {
                if f.access.aref.array != s.access.aref.array {
                    continue;
                }
                if !f.dims_may_overlap(s) {
                    continue;
                }
                let conflict = f.access.kind.conflicts(s.access.kind);
                let bound = match f.pos {
                    LevelPos::Variant { dim, offset: c1 } => match s.dims.get(dim) {
                        Some(DimSet::Point(k)) => Some(k.add_const(-c1)),
                        Some(_) if conflict => return false, // spans the level dim
                        _ => None,
                    },
                    LevelPos::Invariant => {
                        if conflict {
                            Some(f.time.hi.clone())
                        } else {
                            None
                        }
                    }
                };
                if let Some(b) = bound {
                    // Reuse targets and dependences both want `pos ≥ b`.
                    pos = Some(match pos {
                        None => b,
                        Some(p) => match p.max_large(&b) {
                            Some(m) => m,
                            None => return false,
                        },
                    });
                }
            }
        }
        let pos = pos.unwrap_or_else(|| lf.lo.clone());
        // Extend the hull if needed.
        let (Some(new_lo), Some(new_hi)) = (lf.lo.min_large(&pos), lf.hi.max_large(&pos)) else {
            return false;
        };
        // Existing member guards must absorb the (possibly extended) range
        // constraint; incomparable bounds make that inexpressible.
        let range = lf.range();
        if !lf.body.iter().all(|m| m.guard.as_ref().is_none_or(|g| intersect(g, &range).is_some()))
        {
            return false;
        }
        let gi = slots[i].gs.take().unwrap();
        let arrays_i = std::mem::take(&mut slots[i].arrays);
        let gj = slots[j].gs.as_mut().unwrap();
        let (merged_guard, merged_outer, extra_j, extra_i) =
            merge_slot_meta(&self.enclosing, (&gj.guard, &gj.outer), (&gi.guard, &gi.outer));
        let Stmt::Loop(lf) = &mut gj.stmt else { unreachable!() };
        let f_range = lf.range();
        for m in &mut lf.body {
            m.guard = Some(match m.guard.take() {
                Some(g) => intersect(&g, &f_range).expect("checked above"),
                None => f_range.clone(),
            });
            m.outer.extend(extra_j.iter().cloned());
        }
        lf.lo = new_lo;
        lf.hi = new_hi;
        self.ranges.insert(lf.var, lf.range());
        lf.body.push(GuardedStmt {
            stmt: gi.stmt,
            guard: Some(Range::single(pos)),
            outer: extra_i,
        });
        gj.guard = merged_guard;
        gj.outer = merged_outer;
        slots[j].arrays.extend(arrays_i);
        true
    }
}

/// Intersection of two activity ranges over the same variable. `None` when
/// the bounds cannot be compared statically (e.g. `7` vs `N - 2`).
fn intersect(a: &Range, b: &Range) -> Option<Range> {
    Some(Range::new(a.lo.max_large(&b.lo)?, a.hi.min_large(&b.hi)?))
}

/// Activity ranges over outer loop variables: `(variable, active range)`.
type OuterGuards = Vec<(gcr_ir::VarId, Range)>;

/// Computes the merged slot guard/outer metadata when combining two slots
/// of the same (inner) level, plus the exact outer-guard entries each
/// side's members must receive to preserve their activity sets.
fn merge_slot_meta(
    enclosing: &Option<(gcr_ir::VarId, Range)>,
    (gj, oj): (&Option<Range>, &OuterGuards),
    (gi, oi): (&Option<Range>, &OuterGuards),
) -> (Option<Range>, OuterGuards, OuterGuards, OuterGuards) {
    let mut extra_j = Vec::new();
    let mut extra_i = Vec::new();
    // Enclosing-variable guard: hull when comparable, else unrestricted;
    // each side whose guard is narrower gets an exact member entry.
    let merged_guard = match (gj, gi) {
        (Some(a), Some(b)) if a == b => Some(a.clone()),
        (Some(a), Some(b)) => match (a.lo.min_large(&b.lo), a.hi.max_large(&b.hi)) {
            (Some(lo), Some(hi)) => Some(Range::new(lo, hi)),
            _ => None,
        },
        _ => None,
    };
    if let Some((var, _)) = enclosing {
        if *gj != merged_guard {
            if let Some(r) = gj {
                extra_j.push((*var, r.clone()));
            }
        }
        if *gi != merged_guard {
            if let Some(r) = gi {
                extra_i.push((*var, r.clone()));
            }
        }
    }
    // Outer entries common to both sides stay on the slot; the rest move to
    // the members (conjunction semantics allow duplicates).
    let common: Vec<(gcr_ir::VarId, Range)> =
        oj.iter().filter(|e| oi.contains(e)).cloned().collect();
    extra_j.extend(oj.iter().filter(|e| !common.contains(e)).cloned());
    extra_i.extend(oi.iter().filter(|e| !common.contains(e)).cloned());
    (merged_guard, common, extra_j, extra_i)
}

/// Cleans up after fusion: guards equal to the enclosing loop's range are
/// dropped (likewise outer entries equal to their loop's full range), and
/// loops with provably empty ranges are removed.
pub fn normalize(prog: &mut Program) {
    let ranges = var_ranges(prog);
    fn clean(members: &mut Vec<GuardedStmt>, range: Option<&Range>, ranges: &VarRanges) {
        members.retain(|gs| match &gs.stmt {
            Stmt::Loop(l) => !l.range().is_empty_large(),
            _ => true,
        });
        for gs in members.iter_mut() {
            if let (Some(g), Some(r)) = (&gs.guard, range) {
                if g == r {
                    gs.guard = None;
                }
            }
            gs.outer.retain(|(v, r)| ranges.get(v) != Some(r));
            if let Stmt::Loop(l) = &mut gs.stmt {
                let r = l.range();
                clean(&mut l.body, Some(&r), ranges);
            }
        }
    }
    clean(&mut prog.body, None, &ranges);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};
    use gcr_frontend::parse;
    use gcr_ir::ParamBinding;

    fn check_equivalent(src: &str, opts: &FusionOptions, n: i64) -> (Program, FusionReport) {
        let orig = parse(src).unwrap();
        let mut fused = orig.clone();
        let report = fuse_program(&mut fused, opts);
        gcr_ir::validate::validate(&fused).unwrap_or_else(|e| {
            panic!("fused program invalid: {:?}\n{}", e, gcr_ir::print::print_program(&fused))
        });
        let bind = ParamBinding::new(vec![n]);
        let mut m1 = Machine::new(&orig, bind.clone());
        m1.run_steps(&mut NullSink, 2);
        let mut m2 = Machine::new(&fused, bind);
        m2.run_steps(&mut NullSink, 2);
        for ai in 0..orig.arrays.len() {
            let a = gcr_ir::ArrayId::from_index(ai);
            let v1 = m1.read_array(a);
            let v2 = m2.read_array(a);
            assert_eq!(v1.len(), v2.len());
            for (k, (x, y)) in v1.iter().zip(&v2).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "array {} elem {k}: {x} vs {y}\n{}",
                    orig.arrays[ai].name,
                    gcr_ir::print::print_program(&fused)
                );
            }
        }
        (fused, report)
    }

    /// Figure 4(a): fusible via embedding + alignment (+ peeling in the
    /// paper's rendition; guards make the peel implicit here).
    #[test]
    fn fig4a_fuses_into_one_loop() {
        let src = "
program fig4a
param N
array A[N], B[N]

for i = 3, N - 2 {
  A[i] = f(A[i-1])
}
A[1] = A[N]
A[2] = 0.0
for i = 3, N {
  B[i] = g(A[i-2])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 30);
        assert_eq!(
            fused.count_nests(),
            1,
            "one fused nest:\n{}",
            gcr_ir::print::print_program(&fused)
        );
        assert_eq!(report.total_fused(), 1);
        assert_eq!(report.embedded, 2);
    }

    /// Figure 4(b): the intervening statement reads the last element the
    /// first loop writes — infusible.
    #[test]
    fn fig4b_stays_two_loops() {
        let src = "
program fig4b
param N
array A[N]

for i = 2, N {
  A[i] = f(A[i-1])
}
A[1] = A[N]
for i = 2, N {
  A[i] = f(A[i-1])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 24);
        assert_eq!(fused.count_nests(), 2, "{}", gcr_ir::print::print_program(&fused));
        assert_eq!(report.total_fused(), 0);
        assert!(!report.infusible.is_empty());
    }

    #[test]
    fn simple_producer_consumer_alignment() {
        // Second loop reads what the first wrote two iterations ago: fuse
        // with alignment −2, giving reuse distance O(1).
        let src = "
program pc
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 3, N {
  B[i] = g(A[i-2])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 40);
        assert_eq!(fused.count_nests(), 1);
        assert_eq!(report.total_fused(), 1);
        // Find the B statement's guard: alignment −2 puts it at [1, N-2].
        let l = fused.body[0].stmt.as_loop().unwrap();
        let b_member = l
            .body
            .iter()
            .find(|m| matches!(&m.stmt, Stmt::Assign(a) if fused.array(a.lhs.array).name == "B"))
            .unwrap();
        let g = b_member.guard.as_ref().unwrap();
        assert_eq!(g.lo.as_const(), Some(1));
    }

    #[test]
    fn read_read_sharing_fuses_for_reuse() {
        let src = "
program rr
param N
array A[N], B[N], C[N]

for i = 1, N {
  B[i] = f(A[i])
}
for i = 1, N {
  C[i] = g(A[i])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 16);
        assert_eq!(fused.count_nests(), 1);
        assert_eq!(report.total_fused(), 1);
    }

    #[test]
    fn two_dim_fusion_at_both_levels() {
        let src = "
program twod
param N
array A[N, N], B[N, N]

for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = f(A[j, i])
  }
}
for i = 2, N - 1 {
  for j = 2, N - 1 {
    B[j, i] = g(A[j, i], B[j, i])
  }
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 12);
        assert_eq!(fused.count_nests(), 1);
        // After level-1 fusion the two inner loops are siblings; level-2
        // fusion merges them.
        let outer = fused.body[0].stmt.as_loop().unwrap();
        let inner_loops = outer.body.iter().filter(|m| matches!(m.stmt, Stmt::Loop(_))).count();
        assert_eq!(inner_loops, 1, "{}", gcr_ir::print::print_program(&fused));
        assert_eq!(report.total_fused(), 2);
    }

    #[test]
    fn one_level_option_keeps_inner_loops_apart() {
        let src = "
program twod
param N
array A[N, N], B[N, N]

for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i])
  }
}
for i = 1, N {
  for j = 1, N {
    B[j, i] = g(A[j, i])
  }
}
";
        let opts = FusionOptions { max_levels: 1, ..Default::default() };
        let (fused, _) = check_equivalent(src, &opts, 10);
        assert_eq!(fused.count_nests(), 1);
        let outer = fused.body[0].stmt.as_loop().unwrap();
        let inner_loops = outer.body.iter().filter(|m| matches!(m.stmt, Stmt::Loop(_))).count();
        assert_eq!(inner_loops, 2);
    }

    #[test]
    fn peeling_enables_fusion_past_boundary_statement() {
        // The boundary statement writes A[1]; the second loop reads A[i-1]
        // so only its first iteration (i=2) depends on it. That iteration
        // peels off; the rest fuses.
        let src = "
program peel
param N
array A[N], B[N], C[N]

for i = 1, N {
  A[i] = f(C[i])
}
A[1] = A[N]
for i = 2, N {
  B[i] = g(A[i-1])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 20);
        // The A[1]=A[N] statement embeds at position N; the B loop's first
        // iteration peels and embeds after it; everything lands in one nest.
        assert_eq!(report.total_fused(), 1, "{}", gcr_ir::print::print_program(&fused));
        assert!(report.peeled >= 1);
    }

    #[test]
    fn zero_align_ablation_blocks_negative_shift() {
        let src = "
program pc
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i])
}
";
        // offset 0 deps: a >= 0 is satisfiable even with align disabled.
        let opts = FusionOptions { align: false, ..Default::default() };
        let (fused, _) = check_equivalent(src, &opts, 10);
        assert_eq!(fused.count_nests(), 1);
    }

    #[test]
    fn scalar_dependence_blocks_fusion() {
        let src = "
program sc
param N
array A[N], B[N]
scalar s

for i = 1, N {
  A[i] = f(A[i])
  s sum= A[i]
}
for i = 1, N {
  B[i] = g(B[i]) + s
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 10);
        assert_eq!(fused.count_nests(), 2, "{}", gcr_ir::print::print_program(&fused));
        assert_eq!(report.total_fused(), 0);
    }

    #[test]
    fn normalize_drops_trivial_guards() {
        let src = "
program nrm
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i])
}
";
        let mut p = parse(src).unwrap();
        fuse_program(&mut p, &FusionOptions::default());
        let l = p.body[0].stmt.as_loop().unwrap();
        assert!(l.body.iter().all(|m| m.guard.is_none()), "{}", gcr_ir::print::print_program(&p));
    }

    /// The paper's worst case: reuse distance after fusion is Θ(k·m) but
    /// constant in N. Build the chain B=A shift, B=B shift ×m, A=B and
    /// verify everything fuses into one loop.
    #[test]
    fn worst_case_chain_still_fuses() {
        let src = "
program chain
param N
array A[N], B[N]

for i = 1, N - 1 {
  B[i] = f(A[i+1])
}
for i = 2, N {
  B[i] = g(B[i-1])
}
for i = 2, N {
  A[i] = h(B[i-1])
}
";
        let (fused, report) = check_equivalent(src, &FusionOptions::default(), 18);
        assert_eq!(fused.count_nests(), 1, "{}", gcr_ir::print::print_program(&fused));
        assert_eq!(report.total_fused(), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use gcr_frontend::parse;

    /// Embedding at a symbolic position extends the fused loop's hull: a
    /// statement reading the last element a loop writes lands at iteration
    /// `N` (after the producer), not outside the loop.
    #[test]
    fn embedding_at_symbolic_position() {
        let src = "
program sym
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(B[i])
}
B[1] = A[N]
";
        let mut p = parse(src).unwrap();
        let rep = fuse_program(&mut p, &FusionOptions::default());
        assert_eq!(rep.embedded, 1, "{rep:?}");
        let l = p.body[0].stmt.as_loop().unwrap();
        // Hull stays [1, N]; the embedded statement sits at [N, N].
        assert_eq!(l.lo.as_const(), Some(1));
        let emb = l
            .body
            .iter()
            .find(|m| matches!(&m.stmt, Stmt::Assign(a) if p.array(a.lhs.array).name == "B"))
            .unwrap();
        let g = emb.guard.as_ref().unwrap();
        assert!(g.lo.as_const().is_none(), "symbolic position: {g:?}");
        assert_eq!(g.lo, g.hi);
    }

    /// The infusible memo prevents repeated FusibleTests but not later
    /// fusions of other pairs.
    #[test]
    fn infusible_pair_does_not_block_others() {
        let src = "
program memo
param N
array A[N], B[N], C[N]

for i = 2, N {
  A[i] = f(A[i-1])
}
A[1] = A[N]
for i = 2, N {
  A[i] = f(A[i-1])
}
for i = 1, N {
  C[i] = g(B[i])
}
for i = 1, N {
  B[i] = h(B[i], C[i])
}
";
        let mut p = parse(src).unwrap();
        let rep = fuse_program(&mut p, &FusionOptions::default());
        // The two A-loops stay apart (Figure 4(b)), the B/C pair fuses.
        assert_eq!(rep.fused[0], 1, "{rep:?}");
        assert_eq!(p.count_nests(), 3);
    }

    /// Disabled alignment refuses fusions that need a positive shift.
    #[test]
    fn no_align_refuses_positive_shift() {
        let src = "
program na
param N
array A[N], B[N]

for i = 1, N - 1 {
  A[i] = f(A[i])
}
for i = 1, N - 1 {
  B[i] = g(A[i+1])
}
";
        let mut p = parse(src).unwrap();
        let opts = FusionOptions { align: false, ..Default::default() };
        let rep = fuse_program(&mut p, &opts);
        assert_eq!(rep.total_fused(), 0, "{rep:?}");
        assert!(rep.infusible.iter().any(|r| r.contains("alignment disabled")), "{rep:?}");
        // With alignment it fuses (shift +1).
        let mut q = parse(src).unwrap();
        let rep2 = fuse_program(&mut q, &FusionOptions::default());
        assert_eq!(rep2.total_fused(), 1);
    }

    /// Infusible reasons surface in the report with stable wording.
    #[test]
    fn infusible_reasons_are_reported() {
        let src = "
program why
param N
array A[N]

for i = 2, N {
  A[i] = f(A[i-1])
}
A[1] = A[N]
for i = 2, N {
  A[i] = f(A[i-1])
}
";
        let mut p = parse(src).unwrap();
        let rep = fuse_program(&mut p, &FusionOptions::default());
        assert!(
            rep.infusible.iter().any(|r| r.contains("loop-carried self dependence")
                || r.contains("serializing")
                || r.contains("depends on a late element")),
            "{:?}",
            rep.infusible
        );
    }
}
