#![warn(missing_docs)]

//! `gcr-core` — the paper's contribution: reuse-based loop fusion and
//! multi-level data regrouping, plus the preliminary transformations and the
//! SGI-like local-optimization baseline.
//!
//! The two-step global strategy (Ding & Kennedy, IPPS 2001):
//!
//! 1. **Fuse computations on the same data** ([`fusion`]) — greedy,
//!    incremental loop fusion enabled by statement embedding, loop
//!    alignment and boundary splitting, applied level by level. After
//!    fusion, the reuse distances of fused accesses are bounded by a
//!    constant independent of the input size.
//! 2. **Group data used by the same computation** ([`mod@regroup`]) —
//!    partition the program into computation phases and regroup arrays that
//!    are always accessed together, dimension by dimension from the
//!    outermost, emitting an interleaved [`gcr_exec::DataLayout`].
//!
//! [`prelim`] holds the Section 4.1 preliminary passes (loop distribution,
//! array splitting + loop unrolling, constant folding); [`interchange`]
//! automates the paper's hand "level ordering" (loop interchange);
//! [`baseline`] the conservative fusion + padding stand-in for the SGI
//! MIPSpro compiler; [`pipeline`] the end-to-end driver.

pub mod baseline;
pub mod checked;
pub mod fusion;
pub mod interchange;
pub mod pipeline;
pub mod prelim;
pub mod regroup;

pub use checked::{
    apply_strategy_checked, optimize_checked, Fallback, Pass, RobustnessReport, SafetyOptions,
};
pub use fusion::{fuse_program, FusionOptions, FusionReport};
pub use pipeline::{optimize, OptimizeOptions, OptimizedProgram};
pub use regroup::{regroup, RegroupOptions, RegroupReport};
