#![warn(missing_docs)]

//! `gcr-core` — the paper's contribution: reuse-based loop fusion and
//! multi-level data regrouping, plus the preliminary transformations and the
//! SGI-like local-optimization baseline.
//!
//! The two-step global strategy (Ding & Kennedy, IPPS 2001):
//!
//! 1. **Fuse computations on the same data** ([`fusion`]) — greedy,
//!    incremental loop fusion enabled by statement embedding, loop
//!    alignment and boundary splitting, applied level by level. After
//!    fusion, the reuse distances of fused accesses are bounded by a
//!    constant independent of the input size.
//! 2. **Group data used by the same computation** ([`mod@regroup`]) —
//!    partition the program into computation phases and regroup arrays that
//!    are always accessed together, dimension by dimension from the
//!    outermost, emitting an interleaved [`gcr_exec::DataLayout`].
//!
//! [`prelim`] holds the Section 4.1 preliminary passes (loop distribution,
//! array splitting + loop unrolling, constant folding); [`interchange`]
//! automates the paper's hand "level ordering" (loop interchange);
//! [`baseline`] the conservative fusion + padding stand-in for the SGI
//! MIPSpro compiler; [`pipeline`] the end-to-end driver.
//!
//! The fail-safe entry point is [`optimize_checked`] (and its
//! [`Tracer`]-carrying variant [`optimize_checked_traced`], which records a
//! [`PassEvent`] per attempted pass):
//!
//! ```
//! use gcr_core::checked::{optimize_checked_traced, SafetyOptions};
//! use gcr_core::{OptimizeOptions, Tracer};
//!
//! let prog = gcr_frontend::parse("
//! program demo
//! param N
//! array A[N], B[N]
//! for i = 1, N {
//!   A[i] = f(A[i])
//! }
//! for i = 1, N {
//!   B[i] = g(A[i], B[i])
//! }
//! ").unwrap();
//! let mut tracer = Tracer::enabled();
//! let opt = optimize_checked_traced(&prog, &OptimizeOptions::default(),
//!                                   &SafetyOptions::default(), &mut tracer)
//!     .unwrap();
//! assert!(!opt.robustness.degraded());
//! assert_eq!(opt.program.count_nests(), 1); // the two loops fused
//! let events = tracer.into_events();
//! assert_eq!(events[0].pass, "prelim");
//! assert!(events.iter().any(|e| e.pass == "fusion@1" && e.ok));
//! ```

pub mod baseline;
pub mod checked;
pub mod fusion;
pub mod interchange;
pub mod pipeline;
pub mod prelim;
pub mod regroup;
pub mod trace;

pub use checked::{
    apply_strategy_checked, apply_strategy_checked_traced, optimize_checked,
    optimize_checked_traced, Fallback, Pass, RobustnessReport, SafetyOptions,
};
pub use fusion::{fuse_program, FusionOptions, FusionReport};
pub use pipeline::{optimize, OptimizeOptions, OptimizedProgram};
pub use regroup::{regroup, RegroupOptions, RegroupReport};
pub use trace::{IrSize, PassEvent, Tracer};
