//! Degradation-ladder tests: a deliberately-broken pass (via the
//! `SafetyOptions::inject_fault` hook) must make `optimize_checked` fall
//! back exactly one rung, report the cause, and still deliver a program
//! semantically equal to the original.

use gcr_core::checked::{apply_strategy_checked, optimize_checked, Pass, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use gcr_exec::{Machine, NullSink};
use gcr_frontend::parse;
use gcr_ir::{GcrError, ParamBinding};

const SRC: &str = "
program ladder
param N
array A[N, N], B[N, N], C[N, N]

for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = 0.25 * (A[j-1, i] + A[j+1, i] + B[j, i-1] + B[j, i+1])
  }
}
for i = 2, N - 1 {
  for j = 2, N - 1 {
    B[j, i] = f(A[j, i])
  }
}
for i = 2, N - 1 {
  for j = 2, N - 1 {
    C[j, i] = g(B[j, i], C[j, i])
  }
}
";

const FULL: Strategy = Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi };

/// The transformed program must compute the same array contents as the
/// original at a size the oracle never saw.
fn assert_same_semantics(orig: &gcr_ir::Program, opt: &gcr_core::OptimizedProgram) {
    let bind = ParamBinding::new(vec![9]);
    let mut m1 = Machine::new(orig, bind.clone());
    m1.run_steps(&mut NullSink, 2);
    let layout = opt.layout(&bind);
    let mut m2 = Machine::with_layout(&opt.program, bind, layout);
    m2.run_steps(&mut NullSink, 2);
    for (ai, decl) in orig.arrays.iter().enumerate() {
        let a1 = gcr_ir::ArrayId::from_index(ai);
        let a2 = opt.program.array_by_name(&decl.name).unwrap();
        assert_eq!(m1.read_array(a1), m2.read_array(a2), "array {}", decl.name);
    }
}

#[test]
fn clean_run_reports_no_fallbacks() {
    let prog = parse(SRC).unwrap();
    let opt = apply_strategy_checked(&prog, FULL, &SafetyOptions::default()).unwrap();
    assert!(!opt.robustness.degraded(), "{:?}", opt.robustness);
    assert_eq!(opt.robustness.strategy, "fuse3+group");
    assert!(opt.plan.is_some());
    // One checkpoint per pass: prelim, fusion levels 1..3, regroup.
    assert_eq!(opt.robustness.checks, 5);
    assert_same_semantics(&prog, &opt);
}

#[test]
fn regroup_fault_drops_one_rung_to_fusion_only() {
    let prog = parse(SRC).unwrap();
    let safety = SafetyOptions { inject_fault: Some(Pass::Regroup), ..Default::default() };
    let opt = apply_strategy_checked(&prog, FULL, &safety).unwrap();
    assert_eq!(opt.robustness.fallbacks.len(), 1, "{:?}", opt.robustness);
    let fb = &opt.robustness.fallbacks[0];
    assert_eq!(fb.pass, Pass::Regroup);
    assert_eq!(fb.from, "fuse3+group");
    assert_eq!(fb.to, "fuse3");
    assert!(
        matches!(fb.cause, GcrError::OracleMismatch { .. }),
        "cause should be the oracle: {}",
        fb.cause
    );
    assert_eq!(opt.robustness.strategy, "fuse3");
    assert!(opt.plan.is_none(), "regrouping plan must be dropped");
    // Fusion survived: the rung below, not a collapse to the original.
    assert!(opt.fusion.total_fused() > 0);
    assert_same_semantics(&prog, &opt);
}

#[test]
fn fusion_fault_falls_back_to_baseline() {
    let prog = parse(SRC).unwrap();
    let safety =
        SafetyOptions { inject_fault: Some(Pass::Fusion { level: 1 }), ..Default::default() };
    let opt = apply_strategy_checked(&prog, FULL, &safety).unwrap();
    let fb = &opt.robustness.fallbacks[0];
    assert_eq!(fb.pass, Pass::Fusion { level: 1 });
    assert_eq!(fb.from, "fuse3+group");
    assert_eq!(fb.to, "sgi-like");
    assert_eq!(opt.robustness.strategy, "sgi-like");
    assert!(opt.plan.is_none());
    assert_same_semantics(&prog, &opt);
}

#[test]
fn deep_fusion_fault_keeps_proven_levels() {
    let prog = parse(SRC).unwrap();
    let safety =
        SafetyOptions { inject_fault: Some(Pass::Fusion { level: 2 }), ..Default::default() };
    let opt = apply_strategy_checked(&prog, FULL, &safety).unwrap();
    let fb = &opt.robustness.fallbacks[0];
    assert_eq!(fb.pass, Pass::Fusion { level: 2 });
    assert_eq!(fb.from, "fuse3+group");
    assert_eq!(fb.to, "fuse1+group");
    // Level-1 fusion kept, regrouping still ran on the good program.
    assert_eq!(opt.robustness.strategy, "fuse1+group");
    assert!(opt.plan.is_some());
    assert_same_semantics(&prog, &opt);
}

#[test]
fn strict_mode_surfaces_the_first_error() {
    let prog = parse(SRC).unwrap();
    let safety =
        SafetyOptions { strict: true, inject_fault: Some(Pass::Regroup), ..Default::default() };
    let err = apply_strategy_checked(&prog, FULL, &safety).unwrap_err();
    assert!(matches!(err, GcrError::OracleMismatch { .. }), "{err}");
}

#[test]
fn no_fallback_stops_at_last_good_program() {
    let prog = parse(SRC).unwrap();
    let safety = SafetyOptions {
        fallback: false,
        inject_fault: Some(Pass::Fusion { level: 1 }),
        ..Default::default()
    };
    let opt = apply_strategy_checked(&prog, FULL, &safety).unwrap();
    // No baseline retry: straight to the original program.
    assert_eq!(opt.robustness.strategy, "original");
    assert!(opt.plan.is_none());
    assert_eq!(opt.fusion.total_fused(), 0);
    assert_same_semantics(&prog, &opt);
}

#[test]
fn fusion_budget_zero_reports_budget_exceeded() {
    let prog = parse(SRC).unwrap();
    let mut opts = FULL.options();
    opts.fusion_opts.max_steps = 0;
    let safety = SafetyOptions { strict: true, ..Default::default() };
    let err = optimize_checked(&prog, &opts, &safety).unwrap_err();
    assert!(
        matches!(
            err,
            GcrError::BudgetExceeded { resource: gcr_ir::Resource::FusionWorklist, limit: 0 }
        ),
        "{err}"
    );
    // Without strict mode the same exhaustion degrades instead of failing.
    let opt = optimize_checked(&prog, &opts, &SafetyOptions::default()).unwrap();
    assert!(opt.robustness.degraded());
    assert_same_semantics(&prog, &opt);
}

#[test]
fn unrunnable_reference_disables_oracle_but_still_optimizes() {
    // A[i+1] walks past the end: the original cannot serve as a semantic
    // reference, so the pipeline falls back to validation-only checks.
    let prog = parse(
        "
program oob
param N
array A[N]
for i = 1, N {
  A[i+1] = f(A[i])
}
",
    )
    .unwrap();
    let opt = optimize_checked(&prog, &FULL.options(), &SafetyOptions::default()).unwrap();
    assert!(opt.robustness.oracle_disabled.is_some(), "{:?}", opt.robustness);
    assert!(!opt.robustness.describe().is_empty());
    // Strict mode refuses instead.
    let strict = SafetyOptions { strict: true, ..Default::default() };
    assert!(optimize_checked(&prog, &FULL.options(), &strict).is_err());
}

#[test]
fn invalid_input_is_fatal_not_degraded() {
    let mut prog = parse(SRC).unwrap();
    // Break the program: a guard on a top-level statement is invalid.
    prog.body[0].guard = Some(gcr_ir::Range::consts(1, 2));
    let err = optimize_checked(&prog, &FULL.options(), &SafetyOptions::default()).unwrap_err();
    assert!(matches!(err, GcrError::Validate { .. }), "{err}");
}

#[test]
fn sgi_strategy_checked_matches_unchecked() {
    let prog = parse(SRC).unwrap();
    let opt = apply_strategy_checked(&prog, Strategy::Sgi, &SafetyOptions::default()).unwrap();
    assert_eq!(opt.robustness.strategy, "sgi-like");
    assert!(!opt.robustness.degraded());
    assert_same_semantics(&prog, &opt);
}

#[test]
fn oracle_fuel_exhaustion_degrades_gracefully() {
    let prog = parse(SRC).unwrap();
    // Starve only the checkpoint runs: the original (3 nests, N=12, 2
    // steps) needs ~2.4k fuel; the fully fused version spends about the
    // same, so pick a budget between "original fits" and "checks fit".
    // Find how much the original needs, then give the checks just that.
    let fuel = {
        let mut m = Machine::new(&prog, ParamBinding::new(vec![12]));
        let mut f = 0u64;
        while m.run_steps_guarded(&mut NullSink, 2, f).is_err() {
            f += 200;
            m = Machine::new(&prog, ParamBinding::new(vec![12]));
        }
        Some(f)
    };
    let safety = SafetyOptions { fuel, ..Default::default() };
    // Must never panic; whether it degrades depends on the transformed
    // programs' instance counts, but the result must stay correct.
    let opt = apply_strategy_checked(&prog, FULL, &safety).unwrap();
    assert_same_semantics(&prog, &opt);
}
