//! Zero-cost-when-disabled guarantees of the pass tracer: a disabled
//! tracer records nothing, perturbs nothing, and costs no interpreter
//! fuel — the fuel counter is the one deterministic "clock" the pipeline
//! has, so identical minimal-fuel boundaries are a measurable-zero
//! overhead check.

use gcr_core::checked::SafetyOptions;
use gcr_core::pipeline::OptimizeOptions;
use gcr_core::{optimize_checked, optimize_checked_traced, Tracer};
use gcr_ir::GcrError;

const SRC: &str = "
program demo
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

#[test]
fn disabled_tracer_records_nothing_and_changes_nothing() {
    let prog = gcr_frontend::parse(SRC).unwrap();
    let opts = OptimizeOptions::default();
    let safety = SafetyOptions::default();
    let base = optimize_checked(&prog, &opts, &safety).unwrap();
    let mut tracer = Tracer::disabled();
    let traced = optimize_checked_traced(&prog, &opts, &safety, &mut tracer).unwrap();
    assert!(!tracer.is_enabled());
    assert!(tracer.events().is_empty(), "disabled tracer must record zero events");
    assert_eq!(
        gcr_ir::print::print_program(&traced.program),
        gcr_ir::print::print_program(&base.program),
        "tracing must not perturb the delivered program"
    );
    assert_eq!(traced.robustness.checks, base.robustness.checks);
    assert_eq!(traced.robustness.strategy, base.robustness.strategy);
    assert!(traced.robustness.fallbacks.is_empty());
}

#[test]
fn enabled_tracer_sees_every_pass() {
    let prog = gcr_frontend::parse(SRC).unwrap();
    let mut tracer = Tracer::enabled();
    let opt = optimize_checked_traced(
        &prog,
        &OptimizeOptions::default(),
        &SafetyOptions::default(),
        &mut tracer,
    )
    .unwrap();
    let passes: Vec<&str> = tracer.events().iter().map(|e| e.pass.as_str()).collect();
    assert_eq!(passes.first(), Some(&"prelim"), "{passes:?}");
    assert_eq!(passes.get(1), Some(&"fusion@1"), "{passes:?}");
    assert_eq!(passes.last(), Some(&"regroup"), "{passes:?}");
    assert!(tracer.events().iter().all(|e| e.ok));
    // Fusion is visible in the IR deltas the events carry.
    let fused = &tracer.events()[1];
    assert!(fused.after.loops < fused.before.loops, "{fused:?}");
    assert!(!opt.robustness.degraded());
}

/// Smallest fuel budget at which the checked pipeline succeeds, found by
/// bisection; `Err` outcomes must be fuel exhaustion to count as "below".
fn min_fuel(prog: &gcr_ir::Program, enabled: bool) -> u64 {
    let attempt = |fuel: u64| -> bool {
        let safety = SafetyOptions { fuel: Some(fuel), strict: true, ..Default::default() };
        let mut tracer = if enabled { Tracer::enabled() } else { Tracer::disabled() };
        match optimize_checked_traced(prog, &OptimizeOptions::default(), &safety, &mut tracer) {
            Ok(_) => true,
            Err(GcrError::BudgetExceeded { .. }) => false,
            Err(e) => panic!("unexpected error at fuel {fuel}: {e}"),
        }
    };
    let (mut lo, mut hi) = (0u64, 1u64 << 24);
    assert!(attempt(hi), "pipeline should succeed with generous fuel");
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if attempt(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[test]
fn tracing_costs_zero_interpreter_fuel() {
    let prog = gcr_frontend::parse(SRC).unwrap();
    let disabled = min_fuel(&prog, false);
    let enabled = min_fuel(&prog, true);
    assert!(disabled > 0, "oracle checks must consume fuel");
    assert_eq!(
        disabled, enabled,
        "an enabled tracer must not move the minimal-fuel success boundary"
    );
}
