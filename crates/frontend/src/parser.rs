//! Recursive-descent parser for LoopLang.

use crate::lexer::{lex, Token, TokenKind};
use gcr_ir::{
    ArrayId, ArrayRef, Assign, AssignKind, BinOp, Expr, GuardedStmt, LinExpr, Loop, ParamId,
    Program, ProgramBuilder, Range, ReduceOp, Stmt, Subscript, UnOp, VarId,
};
use std::fmt;

/// Parse (or lex) error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for gcr_ir::GcrError {
    fn from(e: ParseError) -> Self {
        gcr_ir::GcrError::Parse { line: e.line, col: e.col, msg: e.message }
    }
}

/// Intrinsic function names the interpreter knows how to evaluate. The
/// paper's examples use opaque `f`, `g`, `t`; the kernels use a few more.
pub(crate) const INTRINSICS: &[&str] = &["f", "g", "h", "t", "u", "w", "relax", "flux", "wave"];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    b: ProgramBuilder,
    scope: Vec<(String, VarId)>,
}

type PResult<T> = Result<T, ParseError>;

/// Parses LoopLang source text into a validated program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError { message: e.message, line: e.line, col: e.col })?;
    let mut p = Parser { toks, pos: 0, b: ProgramBuilder::new(""), scope: Vec::new() };
    let prog = p.program()?;
    gcr_ir::validate::validate(&prog).map_err(|errs| ParseError {
        message: format!("ill-formed program: {}", errs[0]),
        line: 0,
        col: 0,
    })?;
    Ok(prog)
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        let (line, col) = self.here();
        Err(ParseError { message: msg.into(), line, col })
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, k: &TokenKind) -> PResult<()> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {k}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn program(&mut self) -> PResult<Program> {
        if !self.is_kw("program") {
            return self.err("expected `program`");
        }
        self.bump();
        let name = self.ident()?;
        self.b = ProgramBuilder::new(name);
        // Declarations in any order.
        loop {
            if self.is_kw("param") {
                self.bump();
                loop {
                    let n = self.ident()?;
                    if self.b.program().param_by_name(&n).is_some() {
                        return self.err(format!("duplicate parameter `{n}`"));
                    }
                    self.b.param(n);
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.is_kw("array") {
                self.bump();
                loop {
                    let n = self.ident()?;
                    self.expect(&TokenKind::LBracket)?;
                    let mut dims = Vec::new();
                    loop {
                        dims.push(self.lin_expr_params_only()?);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBracket)?;
                    if self.b.program().array_by_name(&n).is_some() {
                        return self.err(format!("duplicate array `{n}`"));
                    }
                    self.b.array(n, &dims);
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.is_kw("scalar") {
                self.bump();
                loop {
                    let n = self.ident()?;
                    if self.b.program().array_by_name(&n).is_some() {
                        return self.err(format!("duplicate scalar `{n}`"));
                    }
                    self.b.scalar(n);
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        // Statements until EOF.
        let mut body = Vec::new();
        while self.peek() != &TokenKind::Eof {
            body.push(self.guarded_stmt()?);
        }
        let mut prog = std::mem::replace(&mut self.b, ProgramBuilder::new("")).finish();
        prog.body = body;
        Ok(prog)
    }

    fn guarded_stmt(&mut self) -> PResult<GuardedStmt> {
        let mut guard = None;
        let mut outer = Vec::new();
        // `when [lo, hi]` guards on the enclosing loop variable;
        // `when v in [lo, hi]` guards on the named (outer) loop variable.
        while self.is_kw("when") {
            self.bump();
            let var = if matches!(self.peek(), TokenKind::Ident(_)) {
                let name = self.ident()?;
                let Some(v) = self.lookup_var(&name) else {
                    return self.err(format!("unknown loop variable `{name}` in guard"));
                };
                if !self.is_kw("in") {
                    return self.err("expected `in` after guard variable");
                }
                self.bump();
                Some(v)
            } else {
                None
            };
            self.expect(&TokenKind::LBracket)?;
            let lo = self.lin_expr_params_only()?;
            self.expect(&TokenKind::Comma)?;
            let hi = self.lin_expr_params_only()?;
            self.expect(&TokenKind::RBracket)?;
            let r = Range::new(lo, hi);
            match var {
                Some(v) if Some(v) != self.scope.last().map(|&(_, v)| v) => outer.push((v, r)),
                _ => guard = Some(r),
            }
        }
        let stmt = self.stmt()?;
        Ok(GuardedStmt { stmt, guard, outer })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.is_kw("for") {
            self.bump();
            let var_name = self.ident()?;
            if self.lookup_var(&var_name).is_some() {
                return self.err(format!("loop variable `{var_name}` shadows an outer loop"));
            }
            self.expect(&TokenKind::Eq)?;
            let lo = self.lin_expr_params_only()?;
            self.expect(&TokenKind::Comma)?;
            let hi = self.lin_expr_params_only()?;
            self.expect(&TokenKind::LBrace)?;
            let var = self.b.var(var_name.clone());
            self.scope.push((var_name, var));
            let mut body = Vec::new();
            while self.peek() != &TokenKind::RBrace {
                if self.peek() == &TokenKind::Eof {
                    return self.err("unexpected end of input inside loop body");
                }
                body.push(self.guarded_stmt()?);
            }
            self.bump(); // `}`
            self.scope.pop();
            Ok(Stmt::Loop(Loop { var, lo, hi, body }))
        } else {
            self.assign()
        }
    }

    fn assign(&mut self) -> PResult<Stmt> {
        let (array, subs) = self.lvalue()?;
        // Assignment operator: `=`, or `sum=` / `max=` / `min=`.
        let kind = match self.peek().clone() {
            TokenKind::Eq => {
                self.bump();
                AssignKind::Normal
            }
            TokenKind::Ident(s) if s == "sum" || s == "max" || s == "min" => {
                self.bump();
                self.expect(&TokenKind::Eq)?;
                AssignKind::Reduce(match s.as_str() {
                    "sum" => ReduceOp::Sum,
                    "max" => ReduceOp::Max,
                    _ => ReduceOp::Min,
                })
            }
            other => return self.err(format!("expected assignment operator, found {other}")),
        };
        let rhs = self.expr()?;
        let lhs = self.b.aref(array, subs);
        let id = {
            // `finish()` consumes, so reach into the builder via a fresh id.
            let prog_ref: &mut ProgramBuilder = &mut self.b;
            prog_ref.fresh_stmt_id()
        };
        Ok(Stmt::Assign(Assign { id, lhs, rhs, kind }))
    }

    fn lookup_var(&self, name: &str) -> Option<VarId> {
        self.scope.iter().rev().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn lookup_param(&self, name: &str) -> Option<ParamId> {
        self.b.program().param_by_name(name)
    }

    fn lookup_array(&self, name: &str) -> Option<ArrayId> {
        self.b.program().array_by_name(name)
    }

    /// Parses `A` or `A[sub, sub]`; scalars take no brackets.
    fn lvalue(&mut self) -> PResult<(ArrayId, Vec<Subscript>)> {
        let name = self.ident()?;
        let Some(array) = self.lookup_array(&name) else {
            return self.err(format!("unknown array `{name}`"));
        };
        let mut subs = Vec::new();
        if self.peek() == &TokenKind::LBracket {
            self.bump();
            loop {
                subs.push(self.subscript()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        Ok((array, subs))
    }

    /// Parses one subscript: a linear expression over at most one in-scope
    /// loop variable (with coefficient 1) plus parameters.
    fn subscript(&mut self) -> PResult<Subscript> {
        let at = self.here();
        let (vars, lin) = self.lin_expr()?;
        match vars.as_slice() {
            [] => Ok(Subscript::Invariant(lin)),
            [(v, 1)] => match lin.as_const() {
                Some(k) => Ok(Subscript::Var { var: *v, offset: k }),
                None => Err(ParseError {
                    message: "subscript mixes a loop variable with parameters".into(),
                    line: at.0,
                    col: at.1,
                }),
            },
            [(_, c)] => Err(ParseError {
                message: format!(
                    "loop variable has coefficient {c}; only `i + k` subscripts are allowed"
                ),
                line: at.0,
                col: at.1,
            }),
            _ => Err(ParseError {
                message: "subscript uses more than one loop variable".into(),
                line: at.0,
                col: at.1,
            }),
        }
    }

    /// Linear expression with no loop variables (bounds, dims, guards).
    fn lin_expr_params_only(&mut self) -> PResult<LinExpr> {
        let at = self.here();
        let (vars, lin) = self.lin_expr()?;
        if vars.is_empty() {
            Ok(lin)
        } else {
            Err(ParseError {
                message: "loop variables are not allowed here".into(),
                line: at.0,
                col: at.1,
            })
        }
    }

    /// Parses an additive linear expression; returns loop-variable
    /// coefficients plus the parameter-linear remainder.
    fn lin_expr(&mut self) -> PResult<(Vec<(VarId, i64)>, LinExpr)> {
        let mut vars: Vec<(VarId, i64)> = Vec::new();
        let mut lin = LinExpr::zero();
        let mut sign = 1i64;
        // Leading sign.
        if self.peek() == &TokenKind::Minus {
            self.bump();
            sign = -1;
        } else if self.peek() == &TokenKind::Plus {
            self.bump();
        }
        loop {
            self.lin_term(sign, &mut vars, &mut lin)?;
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    sign = 1;
                }
                TokenKind::Minus => {
                    self.bump();
                    sign = -1;
                }
                _ => break,
            }
        }
        vars.retain(|&(_, c)| c != 0);
        Ok((vars, lin))
    }

    fn lin_term(
        &mut self,
        sign: i64,
        vars: &mut Vec<(VarId, i64)>,
        lin: &mut LinExpr,
    ) -> PResult<()> {
        match self.peek().clone() {
            TokenKind::Int(k) => {
                self.bump();
                // Optional `* name`.
                if self.peek() == &TokenKind::Star {
                    self.bump();
                    let n = self.ident()?;
                    self.add_name(sign * k, &n, vars, lin)
                } else {
                    *lin = lin.add_const(sign * k);
                    Ok(())
                }
            }
            TokenKind::Ident(n) => {
                self.bump();
                self.add_name(sign, &n, vars, lin)
            }
            other => {
                self.err(format!("expected integer or name in linear expression, found {other}"))
            }
        }
    }

    fn add_name(
        &mut self,
        coeff: i64,
        name: &str,
        vars: &mut Vec<(VarId, i64)>,
        lin: &mut LinExpr,
    ) -> PResult<()> {
        if let Some(v) = self.lookup_var(name) {
            if let Some(e) = vars.iter_mut().find(|(w, _)| *w == v) {
                e.1 += coeff;
            } else {
                vars.push((v, coeff));
            }
            Ok(())
        } else if let Some(p) = self.lookup_param(name) {
            *lin = lin.add(&LinExpr::affine(p, coeff, 0));
            Ok(())
        } else {
            self.err(format!("unknown name `{name}` in linear expression"))
        }
    }

    // ---- value expressions -------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> PResult<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.factor()?)))
            }
            TokenKind::Int(k) => {
                self.bump();
                Ok(Expr::Const(k as f64))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.name_expr(name)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    fn name_expr(&mut self, name: String) -> PResult<Expr> {
        // Built-in functions.
        match name.as_str() {
            "sqrt" | "abs" if self.peek() == &TokenKind::LParen => {
                let mut args = self.call_args()?;
                if args.len() != 1 {
                    return self.err(format!("`{name}` takes one argument"));
                }
                let op = if name == "sqrt" { UnOp::Sqrt } else { UnOp::Abs };
                return Ok(Expr::Unary(op, Box::new(args.remove(0))));
            }
            "max" | "min" if self.peek() == &TokenKind::LParen => {
                let mut args = self.call_args()?;
                if args.len() < 2 {
                    return self.err(format!("`{name}` takes at least two arguments"));
                }
                let op = if name == "max" { BinOp::Max } else { BinOp::Min };
                let mut e = args.remove(0);
                for a in args {
                    e = Expr::Bin(op, Box::new(e), Box::new(a));
                }
                return Ok(e);
            }
            _ => {}
        }
        if self.peek() == &TokenKind::LParen {
            // Opaque intrinsic call.
            let Some(&static_name) = INTRINSICS.iter().find(|&&s| s == name) else {
                return self.err(format!("unknown function `{name}`"));
            };
            let args = self.call_args()?;
            return Ok(Expr::Call(static_name, args));
        }
        if let Some(v) = self.lookup_var(&name) {
            return Ok(Expr::Var { var: v, offset: 0 });
        }
        if let Some(p) = self.lookup_param(&name) {
            return Ok(Expr::Lin(LinExpr::param(p)));
        }
        if let Some(a) = self.lookup_array(&name) {
            let rank = self.b.program().array(a).rank();
            let mut subs = Vec::new();
            if self.peek() == &TokenKind::LBracket {
                self.bump();
                loop {
                    subs.push(self.subscript()?);
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::RBracket)?;
            }
            if subs.len() != rank {
                return self.err(format!(
                    "array `{name}` has rank {rank} but {} subscripts were given",
                    subs.len()
                ));
            }
            let r: ArrayRef = self.b.aref(a, subs);
            return Ok(Expr::Read(r));
        }
        self.err(format!("unknown name `{name}`"))
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::print::print_program;

    #[test]
    fn parses_figure4a() {
        let src = "
program fig4a
param N
array A[N], B[N]

for i = 3, N - 2 {
  A[i] = f(A[i-1])
}
A[1] = A[N]
A[2] = 0.0
for i = 3, N {
  B[i] = g(A[i-2])
}
";
        let p = parse(src).unwrap();
        assert_eq!(p.count_loops(), 2);
        assert_eq!(p.count_assigns(), 4);
        assert_eq!(p.count_nests(), 2);
        assert_eq!(p.name, "fig4a");
    }

    #[test]
    fn parses_two_dim() {
        let src = "
program twod
param N
array A[N, N], B[N, N], C[N, N]

for i = 1, N {
  for j = 1, N {
    A[j, i] = g(A[j, i], B[j, i])
  }
  for j = 1, N {
    C[j, i] = t(C[j, i])
  }
}
";
        let p = parse(src).unwrap();
        assert_eq!(p.count_loops(), 3);
        assert_eq!(p.max_depth(), 2);
    }

    #[test]
    fn parses_guards_and_reductions() {
        let src = "
program g
param N
array A[N]
scalar rmax

for i = 2, N {
  when [2, 2] A[i] = 0.0
  rmax max= abs(A[i] - A[i-1])
}
";
        let p = parse(src).unwrap();
        let l = p.body[0].stmt.as_loop().unwrap();
        assert!(l.body[0].guard.is_some());
        let a = l.body[1].stmt.as_assign().unwrap();
        assert_eq!(a.kind, AssignKind::Reduce(ReduceOp::Max));
    }

    #[test]
    fn subscript_forms() {
        let src = "
program s
param N
array A[N, N]

for i = 1, N {
  A[i+1, 2] = A[i-1, N-1] + A[i, N]
}
";
        let p = parse(src).unwrap();
        let l = p.body[0].stmt.as_loop().unwrap();
        let a = l.body[0].stmt.as_assign().unwrap();
        assert_eq!(a.lhs.subs[0], Subscript::var(l.var, 1));
        assert_eq!(a.lhs.subs[1], Subscript::konst(2));
    }

    #[test]
    fn rejects_nonunit_coefficient() {
        let src = "
program s
param N
array A[N]
for i = 1, N {
  A[2*i] = 0.0
}
";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("coefficient"), "{e}");
    }

    #[test]
    fn rejects_two_vars_in_subscript() {
        let src = "
program s
param N
array A[N]
for i = 1, N {
  for j = 1, N {
    A[i+j] = 0.0
  }
}
";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("more than one loop variable"), "{e}");
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(parse("program x\narray A[M]\n").is_err());
        assert!(parse("program x\nparam N\narray A[N]\nA[1] = q(2.0)\n").is_err());
        assert!(parse("program x\nparam N\nB[1] = 0.0\n").is_err());
    }

    #[test]
    fn rejects_rank_mismatch() {
        let src = "
program s
param N
array A[N, N]
for i = 1, N {
  A[i] = 1.0
}
";
        assert!(parse(src).is_err());
    }

    #[test]
    fn print_parse_fixpoint() {
        let src = "
program round
param N
array A[N, N], B[N, N]
scalar s

for i = 2, N - 1 {
  for j = 2, N - 1 {
    when [3, N - 2] A[j, i] = 0.25 * (B[j-1, i] + B[j+1, i]) - A[j, i] / 2.0
  }
  s sum= A[2, i]
}
B[1, 1] = A[N, N - 1]
";
        let p1 = parse(src).unwrap();
        let t1 = print_program(&p1);
        let p2 = parse(&t1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{t1}"));
        let t2 = print_program(&p2);
        assert_eq!(t1, t2, "printer/parser fixpoint");
    }

    #[test]
    fn value_position_names() {
        let src = "
program v
param N
array A[N]
for i = 1, N {
  A[i] = i + N
}
";
        let p = parse(src).unwrap();
        let l = p.body[0].stmt.as_loop().unwrap();
        let a = l.body[0].stmt.as_assign().unwrap();
        match &a.rhs {
            Expr::Bin(BinOp::Add, x, y) => {
                assert!(matches!(**x, Expr::Var { .. }));
                assert!(matches!(**y, Expr::Lin(_)));
            }
            other => panic!("unexpected rhs {other:?}"),
        }
    }
}
