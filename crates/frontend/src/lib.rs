#![warn(missing_docs)]

//! `gcr-frontend` — lexer and parser for **LoopLang**, the small Fortran-like
//! language in which the benchmark kernels are written.
//!
//! LoopLang is exactly the input model of the paper (Figure 5): a program is
//! a list of loops and non-loop assignments; subscripts are `i + k` or
//! loop-invariant; bounds are linear in size parameters. The printer in
//! `gcr-ir` emits LoopLang, so transformed programs round-trip through this
//! parser.
//!
//! ```
//! let src = "
//! program adi
//! param N
//! array A[N]
//!
//! for i = 3, N - 2 {
//!   A[i] = f(A[i-1])
//! }
//! A[1] = A[N]
//! ";
//! let prog = gcr_frontend::parse(src).unwrap();
//! assert_eq!(prog.count_loops(), 1);
//! assert_eq!(prog.count_assigns(), 2);
//! ```

mod lexer;
mod parser;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
