//! Hand-written lexer for LoopLang.

use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal (contains `.` or exponent).
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::Float(v) => write!(f, "`{v}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes LoopLang source. Comments run from `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'(' => {
                out.push(Token { kind: TokenKind::LParen, line: tl, col: tc });
                bump!();
            }
            b')' => {
                out.push(Token { kind: TokenKind::RParen, line: tl, col: tc });
                bump!();
            }
            b'[' => {
                out.push(Token { kind: TokenKind::LBracket, line: tl, col: tc });
                bump!();
            }
            b']' => {
                out.push(Token { kind: TokenKind::RBracket, line: tl, col: tc });
                bump!();
            }
            b'{' => {
                out.push(Token { kind: TokenKind::LBrace, line: tl, col: tc });
                bump!();
            }
            b'}' => {
                out.push(Token { kind: TokenKind::RBrace, line: tl, col: tc });
                bump!();
            }
            b',' => {
                out.push(Token { kind: TokenKind::Comma, line: tl, col: tc });
                bump!();
            }
            b'=' => {
                out.push(Token { kind: TokenKind::Eq, line: tl, col: tc });
                bump!();
            }
            b'+' => {
                out.push(Token { kind: TokenKind::Plus, line: tl, col: tc });
                bump!();
            }
            b'-' => {
                out.push(Token { kind: TokenKind::Minus, line: tl, col: tc });
                bump!();
            }
            b'*' => {
                out.push(Token { kind: TokenKind::Star, line: tl, col: tc });
                bump!();
            }
            b'/' => {
                out.push(Token { kind: TokenKind::Slash, line: tl, col: tc });
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let save = (i, line, col);
                    is_float = true;
                    bump!();
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        bump!();
                    }
                    if i < bytes.len() && bytes[i].is_ascii_digit() {
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            bump!();
                        }
                    } else {
                        // Not an exponent after all (e.g. identifier follows).
                        (i, line, col) = save;
                        is_float = src[start..i].contains('.');
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal `{text}`"),
                        line: tl,
                        col: tc,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal `{text}`"),
                        line: tl,
                        col: tc,
                    })?)
                };
                out.push(Token { kind, line: tl, col: tc });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    line: tl,
                    col: tc,
                })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_statement() {
        let k = kinds("A[i+1] = 0.25 * B[i]");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::LBracket,
                TokenKind::Ident("i".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::RBracket,
                TokenKind::Eq,
                TokenKind::Float(0.25),
                TokenKind::Star,
                TokenKind::Ident("B".into()),
                TokenKind::LBracket,
                TokenKind::Ident("i".into()),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("x // comment + * /\ny");
        assert_eq!(
            k,
            vec![TokenKind::Ident("x".into()), TokenKind::Ident("y".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn exponent_floats() {
        assert_eq!(kinds("1.5e3")[0], TokenKind::Float(1500.0));
        assert_eq!(kinds("2e2")[0], TokenKind::Float(200.0));
    }

    #[test]
    fn exponent_backtrack() {
        // `2elem` is Int(2) then ident `elem`, not a malformed float.
        let k = kinds("2elem");
        assert_eq!(k[0], TokenKind::Int(2));
        assert_eq!(k[1], TokenKind::Ident("elem".into()));
    }

    #[test]
    fn rejects_garbage() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains('$'));
        assert_eq!(e.col, 3);
    }
}
