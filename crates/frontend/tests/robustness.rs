//! Robustness: the lexer and parser must reject garbage gracefully (return
//! Err, never panic) and accept every printed program.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No input string can panic the frontend.
    #[test]
    fn parser_never_panics(s in "\\PC*") {
        let _ = gcr_frontend::parse(&s);
    }

    /// Token-shaped garbage doesn't panic either.
    #[test]
    fn token_soup_never_panics(words in proptest::collection::vec(
        prop_oneof![
            Just("program".to_string()), Just("param".to_string()),
            Just("array".to_string()), Just("for".to_string()),
            Just("when".to_string()), Just("=".to_string()),
            Just("{".to_string()), Just("}".to_string()),
            Just("[".to_string()), Just("]".to_string()),
            Just(",".to_string()), Just("+".to_string()),
            Just("N".to_string()), Just("i".to_string()),
            Just("A".to_string()), Just("1".to_string()),
            Just("max".to_string()), Just("f".to_string()),
            Just("(".to_string()), Just(")".to_string()),
        ], 0..40)) {
        let s = words.join(" ");
        let _ = gcr_frontend::parse(&s);
    }
}

#[test]
fn error_positions_are_reported() {
    let err = gcr_frontend::parse("program x\nparam N\narray A[N]\nA[1] = @").unwrap_err();
    assert_eq!(err.line, 4);
    assert!(err.col > 1);
}
