//! Printer/parser round-trip over the committed program corpora, plus
//! error-message snapshots for malformed input.
//!
//! Two round-trip strengths apply:
//!
//! * **Structural**: `parse(print(p)) == p` for any parse result — the
//!   printer must emit something the parser maps back to the identical IR.
//! * **Textual fixpoint**: conformance-corpus files are committed in the
//!   printer's canonical form, so for those `print(parse(src)) == src`
//!   exactly (modulo nothing — byte-for-byte).

use std::path::PathBuf;

fn loop_files(dir: &str) -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", root.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .loop files under {}", root.display());
    files
}

#[test]
fn examples_round_trip_structurally() {
    for path in loop_files("../../examples") {
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = gcr_frontend::parse(&src)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        let printed = gcr_ir::print::print_program(&prog);
        let back = gcr_frontend::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", path.display()));
        assert_eq!(back, prog, "{}: parse(print(p)) != p\n--- printed:\n{printed}", path.display());
    }
}

#[test]
fn conformance_corpus_is_a_printer_fixpoint() {
    for path in loop_files("../conform/corpus") {
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = gcr_frontend::parse(&src)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        let printed = gcr_ir::print::print_program(&prog);
        assert_eq!(
            printed,
            src,
            "{}: corpus file is not in canonical printed form",
            path.display()
        );
        let back = gcr_frontend::parse(&printed).unwrap();
        assert_eq!(back, prog, "{}: parse(print(p)) != p", path.display());
    }
}

/// Malformed inputs must fail with a stable, located, human-readable
/// message — these strings are load-bearing for `gcrc` diagnostics.
#[test]
fn malformed_input_error_snapshots() {
    let cases: &[(&str, &str)] = &[
        ("param N\narray A[N]\n", "1:1: expected `program`"),
        ("program p\nparam N, N\n", "3:1: duplicate parameter `N`"),
        ("program p\nparam N\nfor i = 1, N { B[i] = 1.0 }\n", "3:17: unknown array `B`"),
        (
            "program p\nparam N\narray A[N]\nfor i = 1, N { A[2*i] = 1.0 }\n",
            "4:18: loop variable has coefficient 2; only `i + k` subscripts are allowed",
        ),
        (
            "program p\nparam N\narray A[N, N]\nfor i = 1, N { for j = 1, N { A[i+j, 1] = 1.0 } }\n",
            "4:33: subscript uses more than one loop variable",
        ),
        (
            "program p\nparam N\narray A[N]\nfor i = 1, N { A[i] 1.0 }\n",
            "4:21: expected assignment operator, found `1`",
        ),
        (
            "program p\nparam N\narray A[N]\nfor i = 1, N { A[i] = 1.0\n",
            "5:1: unexpected end of input inside loop body",
        ),
        (
            "program p\nparam N\narray A[N]\nfor i = 1, N { when q in [1, 2] A[i] = 1.0 }\n",
            "4:23: unknown loop variable `q` in guard",
        ),
        ("program p\nparam N\narray A[N]\nA[1] = @\n", "4:8: unexpected character `@`"),
        (
            "program p\nparam N\narray A[N]\nfor i = 1, N { A[i] = nosuch(A[i]) }\n",
            "4:29: unknown function `nosuch`",
        ),
    ];
    for (src, want) in cases {
        let err = gcr_frontend::parse(src)
            .expect_err(&format!("malformed input parsed successfully:\n{src}"));
        assert_eq!(&err.to_string(), want, "for input:\n{src}");
    }
}
