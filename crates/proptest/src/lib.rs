#![warn(missing_docs)]

//! Offline drop-in subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors the small slice of proptest it actually uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/vec/option/string
//! strategies, [`Just`], weighted `prop_oneof!`, `prop_assert!`/
//! `prop_assert_eq!`, and the `proptest!` test macro.
//!
//! Differences from the real crate, on purpose:
//!
//! * generation is **deterministic**: the RNG is seeded from the test
//!   function's name, so every run explores the same cases (no
//!   `proptest-regressions` files are read or written);
//! * there is **no shrinking** — a failing case reports the original
//!   generated inputs;
//! * string strategies ignore their regex argument and produce arbitrary
//!   printable-plus-noise strings (the only pattern used here is `\PC*`).

use std::fmt::Debug;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic split-mix RNG driving all generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from a test name (FNV-1a), so runs are reproducible.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The associated value must be `Debug` so failing
/// cases can report their inputs.
pub trait Strategy {
    /// Type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies: the regex pattern is ignored; arbitrary short
/// strings of printable characters plus whitespace/unicode/control noise
/// are produced instead.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(81) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2 => ['λ', 'é', '日', '∀', '𝔄'][rng.below(5) as usize],
                3 => char::from_u32(rng.below(32) as u32).unwrap_or('\u{1}'),
                _ => (b' ' + rng.below(95) as u8) as char,
            };
            s.push(c);
        }
        s
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Object-safe strategy facade used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy {
    /// Type of generated values.
    type Value;
    /// Generates one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted choice between strategies of a common value type.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.below(total.max(1) as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate_dyn(rng);
            }
            pick -= w;
        }
        self.arms[0].1.generate_dyn(rng)
    }
}

/// Boxes one `prop_oneof!` arm (helper that lets the arms' distinct
/// strategy types unify through inference).
pub fn union_arm<S: Strategy + 'static>(
    weight: u32,
    strategy: S,
) -> (u32, Box<dyn DynStrategy<Value = S::Value>>) {
    (weight, Box::new(strategy))
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `elem` values with a length
    /// in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($weight as u32, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm(1u32, $strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
/// Failing cases print their generated inputs before propagating the
/// panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let __inputs = format!(
                        concat!($(concat!("  ", stringify!($arg), " = {:?}\n")),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(e) = __result {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs:\n{}",
                            stringify!($name), __case + 1, cfg.cases, __inputs
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..7, y in -3i64..=3, f in -1.0f64..1.0) {
            prop_assert!(x < 7);
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![4 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}
