//! Swim — SPEC95 shallow-water kernel.
//!
//! 14 global arrays and the three classic phases (flux computation, new
//! values, time smoothing) with periodic-boundary copy statements between
//! them. The inner-dimension boundary copies (`CU[1,i] = CU[N,i]`) read the
//! last element each column sweep writes — the situation that forces the
//! paper's *loop splitting* ("only one program (Swim) required splitting"):
//! fusion must peel the first iteration of the consuming loop. One
//! outer-dimension boundary loop is kept (real Swim wraps both dimensions),
//! which limits how far fusion reaches — matching the paper's modest 10%
//! gain on this program.

use gcr_frontend::parse;
use gcr_ir::Program;

/// LoopLang source of the kernel.
pub fn source() -> &'static str {
    "
program swim
param N
array U[N, N], V[N, N], P[N, N], UNEW[N, N], VNEW[N, N], PNEW[N, N]
array UOLD[N, N], VOLD[N, N], POLD[N, N], CU[N, N], CV[N, N], Z[N, N], H[N, N], PSI[N, N]

// --- calc1: fluxes and potential vorticity ---
for i = 2, N {
  for j = 2, N {
    CU[j, i] = 0.5 * (P[j, i] + P[j-1, i]) * U[j, i]
    CV[j, i] = 0.5 * (P[j, i] + P[j, i-1]) * V[j, i]
    Z[j, i] = (0.25 * (V[j, i] - V[j-1, i]) - 0.25 * (U[j, i] - U[j, i-1])) / (P[j-1, i-1] + P[j, i-1] + P[j-1, i] + P[j, i])
    H[j, i] = P[j, i] + 0.25 * (U[j, i] * U[j, i] + V[j, i] * V[j, i])
  }
}
// periodic boundary along the inner dimension
for i = 2, N {
  CU[1, i] = CU[N, i]
  Z[1, i] = Z[N, i]
  H[1, i] = H[N, i]
  CV[1, i] = CV[N, i]
}
// --- calc2: new velocity and pressure fields ---
for i = 2, N {
  for j = 2, N {
    UNEW[j, i] = 0.9 * UOLD[j, i] + 0.1 * Z[j, i] * (CV[j, i] + CV[j-1, i]) - 0.05 * (H[j, i] - H[j-1, i])
    VNEW[j, i] = 0.9 * VOLD[j, i] - 0.1 * Z[j, i] * (CU[j, i] + CU[j, i-1]) - 0.05 * (H[j, i] - H[j, i-1])
    PNEW[j, i] = 0.9 * POLD[j, i] - 0.05 * (CU[j, i] - CU[j-1, i]) - 0.05 * (CV[j, i] - CV[j, i-1])
  }
}
for i = 2, N {
  UNEW[1, i] = UNEW[N, i]
  VNEW[1, i] = VNEW[N, i]
  PNEW[1, i] = PNEW[N, i]
}
// --- calc3a: time smoothing of the old fields ---
for i = 2, N {
  for j = 2, N {
    UOLD[j, i] = 0.8 * U[j, i] + 0.1 * (UNEW[j, i] + UOLD[j, i])
    VOLD[j, i] = 0.8 * V[j, i] + 0.1 * (VNEW[j, i] + VOLD[j, i])
    POLD[j, i] = 0.8 * P[j, i] + 0.1 * (PNEW[j, i] + POLD[j, i])
  }
}
// --- calc3b: roll the new fields into the current ones ---
for i = 2, N {
  for j = 2, N {
    U[j, i] = UNEW[j, i]
    V[j, i] = VNEW[j, i]
    P[j, i] = 0.5 * PNEW[j, i] + 0.5
  }
}
// periodic boundary along the outer dimension (wraps whole rows; its
// transposed orientation is a fusion barrier, as in real Swim)
for j = 2, N {
  U[j, 1] = U[j, N]
  V[j, 1] = V[j, N]
  P[j, 1] = P[j, N]
}
// --- stream function diagnostic ---
for i = 2, N {
  for j = 2, N {
    PSI[j, i] = 0.25 * (U[j, i] + V[j, i]) + 0.5 * PSI[j, i]
  }
}
"
}

/// Parses the kernel.
pub fn program() -> Program {
    parse(source()).expect("Swim source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_analysis::stats::program_stats;

    #[test]
    fn matches_figure9_shape() {
        let st = program_stats(&program());
        assert_eq!(st.arrays, 14, "Figure 9: 14 arrays (paper lists 15 incl. a constants block)");
        assert_eq!(st.nests, 8, "Figure 9: 8 loop nests");
        assert_eq!(st.min_depth, 1);
        assert_eq!(st.max_depth, 2);
    }

    #[test]
    fn fusion_requires_peeling() {
        let mut p = program();
        let rep = gcr_core::fuse_program(&mut p, &gcr_core::FusionOptions::default());
        assert!(rep.total_fused() >= 1, "{rep:?}");
        assert!(rep.peeled >= 1, "Swim is the program that needs splitting: {rep:?}");
        // The transposed boundary loop stays a barrier.
        assert!(p.count_nests() >= 2, "{}", gcr_ir::print::print_program(&p));
    }

    #[test]
    fn fusion_preserves_swim_semantics() {
        let orig = program();
        let mut fused = orig.clone();
        gcr_core::fuse_program(&mut fused, &gcr_core::FusionOptions::default());
        let bind = gcr_ir::ParamBinding::new(vec![16]);
        let mut m1 = gcr_exec::Machine::new(&orig, bind.clone());
        m1.run_steps(&mut gcr_exec::NullSink, 2);
        let mut m2 = gcr_exec::Machine::new(&fused, bind);
        m2.run_steps(&mut gcr_exec::NullSink, 2);
        for ai in 0..orig.arrays.len() {
            let a = gcr_ir::ArrayId::from_index(ai);
            let (v1, v2) = (m1.read_array(a), m2.read_array(a));
            for (k, (x, y)) in v1.iter().zip(&v2).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "array {} elem {k}: {x} vs {y}\n{}",
                    orig.arrays[ai].name,
                    gcr_ir::print::print_program(&fused),
                );
            }
        }
    }
}
