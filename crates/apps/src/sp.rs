//! SP — a serial NAS/NPB SP (scalar pentadiagonal) application skeleton.
//!
//! The paper's largest test: 15 global arrays, hundreds of loops after
//! inlining, ADI structure (compute_rhs, then x/y/z sweeps, then add).
//! This skeleton reproduces the structural properties the transformations
//! act on:
//!
//! * six 4-D arrays with a **constant component dimension of 5**
//!   (`u[5,N,N,N]`, …) that the preliminary array splitting unrolls —
//!   the paper's 15 → 42 arrays step;
//! * small `for m = 1, 5` component loops that loop unrolling eliminates;
//! * a long sequence of 3-deep nests that all traverse the full 3-D grid,
//!   so in program order every phase streams the data set through cache
//!   (the evadable reuses of Figure 3);
//! * direction sweeps whose recurrences run along different dimensions,
//!   exercising multi-level fusion and its TLB blow-up without regrouping.
//!
//! The real solver's backward substitutions are authored as forward
//! recurrences (loop reversal is outside the IR's model); this preserves
//! the access pattern and dependence structure the study measures.

use gcr_frontend::parse;
use gcr_ir::Program;
use std::fmt::Write;

/// Generates the LoopLang source.
pub fn source() -> String {
    let mut s = String::new();
    s.push_str("program sp\nparam N\n");
    s.push_str("array u[5, N, N, N], rhs[5, N, N, N], forcing[5, N, N, N]\n");
    s.push_str("array lhs[5, N, N, N], lhsp[5, N, N, N], lhsm[5, N, N, N]\n");
    s.push_str("array dissip[5, N, N, N]\n");
    s.push_str("array us[N, N, N], vs[N, N, N], ws[N, N, N], qs[N, N, N]\n");
    s.push_str("array rho_i[N, N, N], speed[N, N, N], square[N, N, N], ainv[N, N, N]\n\n");

    let grid = "for k = 2, N - 1 {\n  for j = 2, N - 1 {\n    for i = 2, N - 1 {\n";
    let close = "    }\n  }\n}\n";

    // ---- compute_rhs: auxiliaries --------------------------------------
    s.push_str("// compute_rhs: auxiliary quantities\n");
    s.push_str(grid);
    s.push_str("      rho_i[i, j, k] = 1.0 / u[1, i, j, k]\n");
    s.push_str("      us[i, j, k] = u[2, i, j, k] * rho_i[i, j, k]\n");
    s.push_str("      vs[i, j, k] = u[3, i, j, k] * rho_i[i, j, k]\n");
    s.push_str("      ws[i, j, k] = u[4, i, j, k] * rho_i[i, j, k]\n");
    s.push_str("      square[i, j, k] = 0.5 * (u[2, i, j, k] * us[i, j, k] + u[3, i, j, k] * vs[i, j, k] + u[4, i, j, k] * ws[i, j, k])\n");
    s.push_str("      qs[i, j, k] = square[i, j, k] * rho_i[i, j, k]\n");
    s.push_str("      speed[i, j, k] = sqrt(0.4 * (u[5, i, j, k] - square[i, j, k]) * rho_i[i, j, k]) + 0.2\n");
    s.push_str("      ainv[i, j, k] = 1.0 / speed[i, j, k]\n");
    s.push_str(close);

    // ---- compute_rhs: initialize from forcing ---------------------------
    s.push_str("// compute_rhs: initialize rhs from the forcing term\n");
    s.push_str(grid);
    s.push_str("      for m = 1, 5 {\n        rhs[m, i, j, k] = forcing[m, i, j, k]\n      }\n");
    s.push_str(close);

    // ---- compute_rhs: fluxes per direction ------------------------------
    for (dir, aux) in [("i", "us"), ("j", "vs"), ("k", "ws")] {
        let p1 = shift("i, j, k", dir, 1);
        let m1 = shift("i, j, k", dir, -1);
        let _ = writeln!(s, "// compute_rhs: {dir}-direction flux differences");
        s.push_str("for k = 3, N - 2 {\n  for j = 3, N - 2 {\n    for i = 3, N - 2 {\n");
        let _ = writeln!(
            s,
            "      for m = 1, 5 {{\n        rhs[m, i, j, k] = rhs[m, i, j, k] + 0.05 * (u[m, {p1}] - 2.0 * u[m, i, j, k] + u[m, {m1}]) - 0.02 * ({aux}[{p1}] - {aux}[{m1}])\n      }}"
        );
        let _ = writeln!(
            s,
            "      rhs[1, i, j, k] = rhs[1, i, j, k] - 0.01 * (square[{p1}] - square[{m1}]) * ainv[i, j, k]"
        );
        s.push_str(close);
    }

    // ---- compute_rhs: fourth-order artificial dissipation ----------------
    s.push_str("// compute_rhs: fourth-order dissipation stencil\n");
    s.push_str("for k = 4, N - 3 {\n  for j = 4, N - 3 {\n    for i = 4, N - 3 {\n");
    s.push_str("      for m = 1, 5 {\n        dissip[m, i, j, k] = (u[m, i+2, j, k] - 4.0 * u[m, i+1, j, k] + 6.0 * u[m, i, j, k] - 4.0 * u[m, i-1, j, k] + u[m, i-2, j, k]) + (u[m, i, j+2, k] - 4.0 * u[m, i, j+1, k] + 6.0 * u[m, i, j, k] - 4.0 * u[m, i, j-1, k] + u[m, i, j-2, k]) + (u[m, i, j, k+2] - 4.0 * u[m, i, j, k+1] + 6.0 * u[m, i, j, k] - 4.0 * u[m, i, j, k-1] + u[m, i, j, k-2])\n      }\n");
    s.push_str(close);
    s.push_str("// compute_rhs: apply dissipation\n");
    s.push_str("for k = 4, N - 3 {\n  for j = 4, N - 3 {\n    for i = 4, N - 3 {\n");
    s.push_str("      for m = 1, 5 {\n        rhs[m, i, j, k] = rhs[m, i, j, k] - 0.005 * dissip[m, i, j, k]\n      }\n");
    s.push_str(close);

    // ---- x-solve: k,j outer, recurrence along i (innermost) -------------
    solve(&mut s, "x", "lhs", "k = 2, N - 1", "j = 2, N - 1", "i = 2, N - 1", "i");
    // ---- y-solve: k outer, recurrence along j (middle) ------------------
    solve(&mut s, "y", "lhsp", "k = 2, N - 1", "j = 2, N - 1", "i = 2, N - 1", "j");
    // ---- z-solve: j outer, recurrence along k (middle), i streaming —
    // NPB's z_solve iterates j outermost, which is transposed relative to
    // the k-outer sweeps above: the natural fusion barrier of the real code.
    solve(&mut s, "z", "lhsm", "j = 2, N - 1", "k = 2, N - 1", "i = 2, N - 1", "k");

    // ---- add -------------------------------------------------------------
    s.push_str("// add: apply the update\n");
    s.push_str(grid);
    s.push_str("      for m = 1, 5 {\n        u[m, i, j, k] = u[m, i, j, k] + 0.05 * rhs[m, i, j, k]\n      }\n");
    s.push_str(close);
    s
}

/// Emits one direction sweep: factor setup plus the forward elimination
/// with the recurrence along `rec` (one of i/j/k).
fn solve(s: &mut String, name: &str, lhsarr: &str, l0: &str, l1: &str, l2: &str, rec: &str) {
    let m1 = shift("i, j, k", rec, -1);
    let open = format!("for {l0} {{\n  for {l1} {{\n    for {l2} {{\n");
    let close = "    }\n  }\n}\n";
    let _ = writeln!(s, "// {name}-sweep: factor setup");
    s.push_str(&open);
    let _ = writeln!(s, "      {lhsarr}[1, i, j, k] = 0.1 * (rho_i[{m1}] + rho_i[i, j, k]) + 0.9");
    let _ = writeln!(s, "      {lhsarr}[2, i, j, k] = 0.05 * (speed[{m1}] + speed[i, j, k])");
    let _ = writeln!(
        s,
        "      {lhsarr}[3, i, j, k] = 1.0 / ({lhsarr}[1, i, j, k] + {lhsarr}[2, i, j, k])"
    );
    s.push_str(close);
    let _ = writeln!(s, "// {name}-sweep: forward elimination");
    s.push_str(&open);
    let _ = writeln!(
        s,
        "      for m = 1, 5 {{\n        rhs[m, i, j, k] = (rhs[m, i, j, k] - 0.3 * {lhsarr}[2, i, j, k] * rhs[m, {m1}]) * {lhsarr}[3, i, j, k]\n      }}"
    );
    s.push_str(close);
}

/// Replaces one of `i, j, k` in a subscript tuple by `name+off`.
fn shift(base: &str, dir: &str, off: i64) -> String {
    base.split(", ")
        .map(|v| {
            if v == dir {
                if off >= 0 {
                    format!("{v}+{off}")
                } else {
                    format!("{v}{off}")
                }
            } else {
                v.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses the generated source.
pub fn program() -> Program {
    parse(&source()).expect("SP source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_analysis::stats::program_stats;
    use gcr_core::prelim::preliminary;

    #[test]
    fn shape_before_prelim() {
        let st = program_stats(&program());
        assert_eq!(st.arrays, 15, "7 component arrays + 8 grid arrays (paper: 15)");
        assert_eq!(st.nests, 14, "aux, init, 3 fluxes, 2 dissipation, 3x2 solves, add");
        assert_eq!(st.max_depth, 4, "component loops nest to depth 4");
    }

    #[test]
    fn splitting_and_unrolling_multiply_arrays_and_loops() {
        let mut p = program();
        let before_loops = p.count_loops();
        let rep = preliminary(&mut p, 8);
        // 7 arrays x 5 components (paper: 15 -> 42 arrays; ours 15 -> 43).
        assert_eq!(rep.split_arrays, 35, "{rep:?}");
        assert!(rep.unrolled >= 5, "component loops unrolled: {rep:?}");
        assert!(rep.distributed > 10, "distribution separates statements: {rep:?}");
        let after = gcr_core::fusion::loops_per_level(&p);
        assert!(
            after[0] > 2 * before_loops / 3,
            "distribution creates many level-1 loops: {after:?} vs {before_loops}"
        );
        gcr_ir::validate::validate(&p).unwrap();
    }

    #[test]
    fn pipeline_fuses_sp() {
        let orig = program();
        let opt = gcr_core::pipeline::apply_strategy(
            &orig,
            gcr_core::pipeline::Strategy::FusionRegroup {
                levels: 3,
                regroup: gcr_core::regroup::RegroupLevel::Multi,
            },
        );
        let before = opt.fusion.loops_before.first().copied().unwrap_or(0);
        let after = opt.fusion.loops_after.first().copied().unwrap_or(0);
        assert!(
            after * 4 <= before,
            "level-1 loops should collapse substantially: {before} -> {after}\n{:?}",
            opt.fusion.infusible
        );
        // Regrouping merges the split component arrays back together.
        assert!(!opt.regroup.groups.is_empty(), "split components regroup: {:?}", opt.regroup);
    }

    #[test]
    fn pipeline_preserves_sp_semantics() {
        let orig = program();
        let opt = gcr_core::pipeline::apply_strategy(
            &orig,
            gcr_core::pipeline::Strategy::FusionRegroup {
                levels: 3,
                regroup: gcr_core::regroup::RegroupLevel::Multi,
            },
        );
        let bind = gcr_ir::ParamBinding::new(vec![10]);
        let mut m1 = gcr_exec::Machine::new(&orig, bind.clone());
        let layout = opt.layout(&bind);
        let mut m2 = gcr_exec::Machine::with_layout(&opt.program, bind, layout);
        // Equalize initial data: split arrays (u__k etc.) take the matching
        // component slice of the original array's initial contents.
        for (ai, decl) in orig.arrays.iter().enumerate() {
            let vals = m1.read_array(gcr_ir::ArrayId::from_index(ai));
            if let Some(target) = opt.program.array_by_name(&decl.name) {
                if opt.program.array(target).rank() == decl.rank() {
                    m2.write_array(target, &vals).unwrap();
                    continue;
                }
            }
            // Split array: components are interleaved innermost.
            let comps = decl.dims[0].as_const().unwrap() as usize;
            for c in 0..comps {
                let part = opt.program.array_by_name(&format!("{}__{}", decl.name, c + 1)).unwrap();
                let slice: Vec<f64> = vals.iter().skip(c).step_by(comps).copied().collect();
                m2.write_array(part, &slice).unwrap();
            }
        }
        m1.run_steps(&mut gcr_exec::NullSink, 2);
        m2.run_steps(&mut gcr_exec::NullSink, 2);
        // u was split into u__1..u__5: compare against the original slices.
        let u = m1.read_array(orig.array_by_name("u").unwrap());
        let n = 10usize;
        for c in 0..5usize {
            let uc = m2.read_array(opt.program.array_by_name(&format!("u__{}", c + 1)).unwrap());
            assert_eq!(uc.len(), n * n * n);
            let _ = n;
            for (flat, v) in uc.iter().enumerate() {
                let orig_v = u[flat * 5 + c];
                assert!(
                    (v - orig_v).abs() <= 1e-9 * orig_v.abs().max(1.0),
                    "u component {} elem {flat}: {v} vs {orig_v}",
                    c + 1
                );
            }
        }
    }
}
