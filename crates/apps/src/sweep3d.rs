//! Sweep3D — a wavefront transport-sweep kernel for the §2.2 limit study.
//!
//! DOE/Sweep3D performs discrete-ordinates neutron transport: for each
//! angle, a wavefront recurrence sweeps the 3-D grid and accumulates into
//! flux arrays. The paper reports that reuse-driven execution removes 67%
//! of its evadable reuses: the per-angle sweeps all re-read the same
//! source/cross-section data, and an ideal execution can interleave them.
//!
//! This kernel keeps that structure — `ANGLES` independent sweeps, each a
//! first-order recurrence in all three dimensions, sharing `SRC`, `SIG`
//! and accumulating into `FLUX` — with all octants oriented in the
//! positive direction (loop reversal is outside the IR model; orientation
//! does not change the cross-sweep reuse the study measures).

use gcr_frontend::parse;
use gcr_ir::Program;
use std::fmt::Write;

/// Number of simulated angles (sweeps per time step).
pub const ANGLES: usize = 4;

/// Generates the LoopLang source.
pub fn source() -> String {
    let mut s = String::new();
    s.push_str("program sweep3d\nparam N\n");
    s.push_str("array PHI[N, N, N], FLUX[N, N, N], SRC[N, N, N], SIG[N, N, N]\n\n");
    for a in 0..ANGLES {
        let w = 0.15 + 0.1 * a as f64;
        let _ = writeln!(s, "// angle {a}: wavefront sweep");
        s.push_str("for k = 2, N {\n  for j = 2, N {\n    for i = 2, N {\n");
        let _ = writeln!(
            s,
            "      PHI[i, j, k] = ({w:.2} * SRC[i, j, k] + 0.3 * PHI[i-1, j, k] + 0.2 * PHI[i, j-1, k] + 0.1 * PHI[i, j, k-1]) / SIG[i, j, k]"
        );
        s.push_str("    }\n  }\n}\n");
        let _ = writeln!(s, "// angle {a}: flux accumulation");
        s.push_str("for k = 2, N {\n  for j = 2, N {\n    for i = 2, N {\n");
        let _ = writeln!(s, "      FLUX[i, j, k] = 0.8 * FLUX[i, j, k] + {w:.2} * PHI[i, j, k]");
        s.push_str("    }\n  }\n}\n");
    }
    s
}

/// Parses the kernel.
pub fn program() -> Program {
    parse(&source()).expect("Sweep3D source parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_two_nests_per_angle() {
        let p = program();
        assert_eq!(p.count_nests(), 2 * ANGLES);
        assert_eq!(p.max_depth(), 3);
        gcr_ir::validate::validate(&p).unwrap();
    }

    #[test]
    fn runs_bounded() {
        let p = program();
        let mut m = gcr_exec::Machine::new(&p, gcr_ir::ParamBinding::new(vec![10]));
        m.run_steps(&mut gcr_exec::NullSink, 3);
        let c = m.checksum();
        assert!(c.is_finite() && c.abs() < 1e9, "{c}");
    }
}
