#![warn(missing_docs)]

//! `gcr-apps` — the benchmark kernels of the paper's evaluation (Figure 9)
//! plus the two §2.2 limit-study programs.
//!
//! | program | paper source | here |
//! |---------|--------------|------|
//! | Swim    | SPEC95, 513², 14 arrays, 8 nests | [`swim`] — shallow-water kernel with periodic boundary statements between nests |
//! | Tomcatv | SPEC95, 513², 7 arrays, 5 nests  | [`tomcatv`] — mesh relaxation with residual reductions and forward tridiagonal recurrences (authored post loop-interchange, the paper's hand "level ordering") |
//! | ADI     | self-written, 2K², 3 arrays, 8 loops in 4 nests | [`adi`] — alternating-direction sweeps with separate boundary loops |
//! | SP      | NAS/NPB serial v2.3, 15 arrays, 218 loops | [`sp`] — scaled ADI solver skeleton: compute_rhs, x/y/z sweeps, add; 15 arrays with constant-5 component dimensions that array splitting unrolls |
//! | FFT     | kernel (§2.2 only) | [`fft`] — strided butterfly sweeps at a concrete power-of-two size |
//! | Sweep3D | DOE (§2.2 only) | [`sweep3d`] — multi-angle wavefront transport sweeps |
//!
//! All kernels are written in LoopLang (or generated as LoopLang text) and
//! parsed through `gcr-frontend`, so the compiler sees exactly what a user
//! would write.

pub mod adi;
pub mod fft;
pub mod gallery;
pub mod sp;
pub mod sweep3d;
pub mod swim;
pub mod tomcatv;

pub use gallery::{gallery, gallery_kernel, GalleryKernel};

use gcr_ir::{ParamBinding, Program};

/// A named, size-parameterized benchmark.
#[derive(Clone, Copy)]
pub struct AppSpec {
    /// Program name.
    pub name: &'static str,
    /// Builds the program for a given linear size (arrays are `size`² or
    /// `size`³ depending on the kernel).
    pub build: fn(i64) -> (Program, ParamBinding),
    /// The paper's input size (for documentation).
    pub paper_size: &'static str,
    /// Default scaled size used by the experiment harness.
    pub default_size: i64,
    /// L1/TLB scale factor for the default size (tracks the linear problem
    /// dimension, preserving rows-in-L1 geometry vs the paper's machines).
    pub l1_scale: usize,
    /// L2 scale factor (tracks the data footprint, preserving the
    /// data-to-L2 ratio vs the paper's machines).
    pub l2_scale: usize,
}

/// The four evaluation applications (Figure 9 order).
pub fn evaluation_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "Swim",
            build: |n| (swim::program(), ParamBinding::new(vec![n])),
            paper_size: "513x513",
            default_size: 129,
            l1_scale: 4,
            l2_scale: 16,
        },
        AppSpec {
            name: "Tomcatv",
            build: |n| (tomcatv::program(), ParamBinding::new(vec![n])),
            paper_size: "513x513",
            default_size: 129,
            l1_scale: 4,
            l2_scale: 16,
        },
        AppSpec {
            name: "ADI",
            build: |n| (adi::program(), ParamBinding::new(vec![n])),
            paper_size: "2Kx2K",
            default_size: 257,
            l1_scale: 8,
            l2_scale: 64,
        },
        AppSpec {
            name: "SP",
            build: |n| (sp::program(), ParamBinding::new(vec![n])),
            paper_size: "class B (102^3), 3 iterations",
            default_size: 27,
            l1_scale: 4,
            l2_scale: 16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_exec::{Machine, NullSink};

    #[test]
    fn all_apps_build_validate_and_run() {
        for app in evaluation_apps() {
            let (p, bind) = (app.build)(16);
            gcr_ir::validate::validate(&p).unwrap_or_else(|e| panic!("{}: {e:?}", app.name));
            let mut m = Machine::new(&p, bind);
            m.run(&mut NullSink);
            assert!(m.stats().instances > 0, "{} executed nothing", app.name);
            assert!(m.checksum().is_finite(), "{} diverged", app.name);
        }
    }

    #[test]
    fn apps_stay_numerically_bounded_over_steps() {
        for app in evaluation_apps() {
            let (p, bind) = (app.build)(12);
            let mut m = Machine::new(&p, bind);
            m.run_steps(&mut NullSink, 5);
            let c = m.checksum();
            assert!(c.is_finite() && c.abs() < 1e12, "{}: checksum {c}", app.name);
        }
    }
}
