//! The workload gallery: every `examples/*.loop` kernel, embedded at
//! compile time and registered as a sweep job.
//!
//! The gallery complements [`crate::evaluation_apps`]: where the evaluation
//! apps reproduce the paper's Figure 9 programs, the gallery spans the
//! *space* of LoopLang shapes — dense stencils (Jacobi 2D/3D, 9-point),
//! split-array red-black relaxation, multigrid transfer analogues, an
//! O(N²) N-body force loop, guard-binned histogram reductions, an
//! irregular-guard stress case, transposition, and a wavefront recurrence.
//! Each kernel ships with a golden `gcr-report/v1` file (see
//! `gcr-bench/tests/gallery_golden.rs`), so any change to the simulator,
//! the engines, or the realistic cache models shows up as a reviewable
//! golden diff.
//!
//! Kernels whose paper counterpart needs grammar LoopLang rejects
//! (stride-2 subscripts for multigrid, value-dependent bins for the
//! histogram, a single checkerboard array for red-black) are *structural
//! analogues*: they preserve the reuse structure — gather/scatter between
//! two grids, index-binned reductions, alternating split-array sweeps —
//! under unit-coefficient subscripts and index-range guards.

use gcr_ir::{ParamBinding, Program};

/// A gallery kernel: embedded LoopLang source plus harness defaults.
#[derive(Clone, Copy)]
pub struct GalleryKernel {
    /// Kernel name (the `examples/<name>.loop` stem).
    pub name: &'static str,
    /// Embedded LoopLang source text.
    pub source: &'static str,
    /// Default problem size `N` used by the gallery harness and goldens.
    pub default_size: i64,
    /// Outer time steps to simulate.
    pub steps: usize,
}

impl GalleryKernel {
    /// Parses the embedded source and binds every parameter to
    /// [`Self::default_size`].
    pub fn build(&self) -> (Program, ParamBinding) {
        self.build_at(self.default_size)
    }

    /// Parses the embedded source and binds every parameter to `n`.
    pub fn build_at(&self, n: i64) -> (Program, ParamBinding) {
        let prog = gcr_frontend::parse(self.source)
            .unwrap_or_else(|e| panic!("gallery kernel {}: {e}", self.name));
        let binding = ParamBinding::new(vec![n; prog.params.len()]);
        (prog, binding)
    }
}

macro_rules! kernel {
    ($name:literal, $size:expr, $steps:expr) => {
        GalleryKernel {
            name: $name,
            source: include_str!(concat!("../../../examples/", $name, ".loop")),
            default_size: $size,
            steps: $steps,
        }
    };
}

/// Every gallery kernel, in stable (alphabetical) order.
///
/// Sizes are chosen so each kernel's footprint straddles the default
/// gallery hierarchy (4-way 8K L1, fully-associative 64K L2): big enough
/// that L1 misses are non-trivial, small enough that a full run stays in
/// test-suite time. The N-body kernel is O(N²) per step, so it runs at a
/// deliberately small N.
pub fn gallery() -> Vec<GalleryKernel> {
    vec![
        kernel!("adi", 40, 2),
        kernel!("guard_stress", 40, 2),
        kernel!("histogram", 512, 2),
        kernel!("jacobi2d", 40, 2),
        kernel!("jacobi3d", 14, 2),
        kernel!("laplace", 40, 2),
        kernel!("mg_prolong", 40, 2),
        kernel!("mg_restrict", 40, 2),
        kernel!("mmul", 24, 1),
        kernel!("nbody", 96, 2),
        kernel!("rbgs", 40, 2),
        kernel!("relax", 512, 2),
        kernel!("stencil9", 40, 2),
        kernel!("transpose", 48, 2),
        kernel!("wave2d", 40, 2),
        kernel!("wavefront", 48, 2),
    ]
}

/// Looks a kernel up by name.
pub fn gallery_kernel(name: &str) -> Option<GalleryKernel> {
    gallery().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_is_populated_and_names_are_unique() {
        let g = gallery();
        assert!(g.len() >= 15, "gallery must hold at least 15 kernels, got {}", g.len());
        let mut names: Vec<_> = g.iter().map(|k| k.name).collect();
        names.dedup();
        assert_eq!(names.len(), g.len(), "duplicate kernel names");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "gallery() must stay alphabetical");
    }

    #[test]
    fn every_kernel_parses_and_program_name_matches() {
        for k in gallery() {
            let (prog, _binding) = k.build();
            assert_eq!(prog.name, k.name, "program header disagrees with file stem");
            gcr_ir::validate::validate(&prog).unwrap_or_else(|e| panic!("{}: {e:?}", k.name));
        }
    }

    #[test]
    fn every_kernel_runs_under_every_engine() {
        use gcr_exec::{ExecEngine, Machine};

        for k in gallery() {
            for engine in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Vm] {
                let (prog, binding) = k.build();
                let mut sink = gcr_cache::CapacitySweepSink::new(64, &[8192]);
                let mut m = Machine::new(&prog, binding).with_engine(engine);
                m.run_steps_guarded(&mut sink, k.steps, 500_000_000)
                    .unwrap_or_else(|e| panic!("{} under {engine:?}: {e}", k.name));
                assert!(sink.refs() > 0, "{} made no accesses under {engine:?}", k.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(gallery_kernel("jacobi2d").is_some());
        assert!(gallery_kernel("no-such-kernel").is_none());
    }
}
