//! Tomcatv — SPEC95 vectorized mesh generation kernel.
//!
//! 7 arrays in five 2-level nests: geometry coefficients, residuals with
//! max-reductions, a forward tridiagonal elimination recurrence, the
//! residual update, and the mesh correction. The paper performed "level
//! ordering (loop interchange) by hand" for Tomcatv; this source is
//! authored in the post-interchange order (outer `i`, inner `j`, column
//! recurrences along `j`), like the code their compiler saw.

use gcr_frontend::parse;
use gcr_ir::Program;

/// LoopLang source of the kernel.
pub fn source() -> &'static str {
    "
program tomcatv
param N
array X[N, N], Y[N, N], RX[N, N], RY[N, N], AA[N, N], DD[N, N], D[N, N]
scalar rxm, rym

// --- nest 1: geometry coefficients ---
for i = 2, N - 1 {
  for j = 2, N - 1 {
    AA[j, i] = 0.25 * (X[j, i+1] - X[j, i-1]) * (Y[j+1, i] - Y[j-1, i]) - 1.0
    DD[j, i] = 0.5 * (X[j+1, i] - 2.0 * X[j, i] + X[j-1, i]) + 0.5 * (Y[j, i+1] - 2.0 * Y[j, i] + Y[j, i-1]) + 2.0
  }
}
// --- nest 2: residuals and their maxima ---
for i = 2, N - 1 {
  for j = 2, N - 1 {
    RX[j, i] = 0.125 * (AA[j, i] * (X[j, i+1] - X[j, i-1]) - DD[j, i] * (X[j+1, i] - X[j-1, i]))
    RY[j, i] = 0.125 * (AA[j, i] * (Y[j, i+1] - Y[j, i-1]) - DD[j, i] * (Y[j+1, i] - Y[j-1, i]))
    rxm max= abs(RX[j, i])
    rym max= abs(RY[j, i])
  }
}
// --- nest 3: forward elimination of the tridiagonal system ---
for i = 2, N - 1 {
  for j = 2, N - 1 {
    D[j, i] = 1.0 / (DD[j, i] - 0.25 * AA[j, i] * AA[j, i] * D[j-1, i])
  }
}
// --- nest 4: forward substitution on the residuals ---
for i = 2, N - 1 {
  for j = 2, N - 1 {
    RX[j, i] = (RX[j, i] + 0.5 * AA[j, i] * RX[j-1, i]) * D[j, i]
    RY[j, i] = (RY[j, i] + 0.5 * AA[j, i] * RY[j-1, i]) * D[j, i]
  }
}
// --- nest 5: mesh correction ---
for i = 2, N - 1 {
  for j = 2, N - 1 {
    X[j, i] = X[j, i] + RX[j, i]
    Y[j, i] = Y[j, i] + RY[j, i]
  }
}
"
}

/// Parses the kernel.
pub fn program() -> Program {
    parse(source()).expect("Tomcatv source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_analysis::stats::program_stats;

    #[test]
    fn matches_figure9_shape() {
        let st = program_stats(&program());
        assert_eq!(st.arrays, 7, "Figure 9: 7 arrays");
        assert_eq!(st.scalars, 2, "residual maxima");
        assert_eq!(st.nests, 5, "Figure 9: 5 nests");
        assert_eq!(st.max_depth, 2);
    }

    #[test]
    fn fuses_into_one_outer_nest() {
        let mut p = program();
        let rep = gcr_core::fuse_program(&mut p, &gcr_core::FusionOptions::default());
        assert_eq!(rep.fused[0], 4, "all five outer nests merge: {rep:?}");
        assert!(rep.fused[1] >= 1, "some inner loops merge too: {rep:?}");
        assert_eq!(p.count_nests(), 1, "{}", gcr_ir::print::print_program(&p));
    }

    #[test]
    fn reductions_do_not_block_fusion() {
        let mut p = program();
        let rep = gcr_core::fuse_program(&mut p, &gcr_core::FusionOptions::default());
        assert!(
            !rep.infusible.iter().any(|r| r.contains("invariant")),
            "max-reductions must not serialize: {:?}",
            rep.infusible
        );
    }

    #[test]
    fn fusion_preserves_tomcatv_semantics() {
        let orig = program();
        let mut fused = orig.clone();
        gcr_core::fuse_program(&mut fused, &gcr_core::FusionOptions::default());
        let bind = gcr_ir::ParamBinding::new(vec![14]);
        let mut m1 = gcr_exec::Machine::new(&orig, bind.clone());
        m1.run_steps(&mut gcr_exec::NullSink, 3);
        let mut m2 = gcr_exec::Machine::new(&fused, bind);
        m2.run_steps(&mut gcr_exec::NullSink, 3);
        for ai in 0..orig.arrays.len() {
            if orig.arrays[ai].is_scalar() {
                continue; // reductions reorder; values agree only approximately
            }
            let a = gcr_ir::ArrayId::from_index(ai);
            let (v1, v2) = (m1.read_array(a), m2.read_array(a));
            for (k, (x, y)) in v1.iter().zip(&v2).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "array {} elem {k}: {x} vs {y}",
                    orig.arrays[ai].name
                );
            }
        }
        // Max-reductions commute exactly.
        let rxm = orig.array_by_name("rxm").unwrap();
        assert_eq!(m1.read_array(rxm), m2.read_array(rxm));
    }
}
