//! ADI — alternating-direction implicit kernel.
//!
//! "A self-written kernel with separate loops processing boundary
//! conditions" (Figure 9): 3 arrays, four 2-level sweeps (8 loops) plus two
//! 1-D boundary loops. The row sweeps carry a recurrence along the outer
//! dimension, the column sweeps along the inner dimension; every nest
//! re-reads the coefficient arrays `A` and `B`, so in program order the
//! whole data set streams through cache four times per time step — the
//! evadable reuses that fusion removes.

use gcr_frontend::parse;
use gcr_ir::Program;

/// LoopLang source of the kernel.
pub fn source() -> &'static str {
    "
program adi
param N
array X[N, N], A[N, N], B[N, N]

// boundary condition on the first column
for j = 1, N {
  X[j, 1] = w(X[j, 1])
}
// forward sweep along rows (recurrence over i)
for i = 2, N {
  for j = 1, N {
    X[j, i] = X[j, i] - X[j, i-1] * A[j, i] / B[j, i-1]
  }
}
for i = 2, N {
  for j = 1, N {
    B[j, i] = B[j, i] - A[j, i] * A[j, i] / B[j, i-1]
  }
}
// boundary condition on the first row
for i = 1, N {
  X[1, i] = w(X[1, i])
}
// forward sweep along columns (recurrence over j)
for i = 1, N {
  for j = 2, N {
    X[j, i] = X[j, i] - X[j-1, i] * A[j, i] / B[j-1, i]
  }
}
for i = 1, N {
  for j = 2, N {
    B[j, i] = B[j, i] - A[j, i] * A[j, i] / B[j-1, i]
  }
}
"
}

/// Parses the kernel.
pub fn program() -> Program {
    parse(source()).expect("ADI source parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_analysis::stats::program_stats;

    #[test]
    fn matches_figure9_shape() {
        let p = program();
        let st = program_stats(&p);
        assert_eq!(st.arrays, 3, "Figure 9: 3 arrays");
        assert_eq!(st.nests, 6, "4 sweeps + 2 boundary loops");
        assert_eq!(st.loops, 10, "8 sweep loops + 2 boundary loops");
        assert_eq!(st.max_depth, 2);
    }

    #[test]
    fn fusion_merges_the_sweeps() {
        let mut p = program();
        let rep = gcr_core::fuse_program(&mut p, &gcr_core::FusionOptions::default());
        assert!(
            rep.total_fused() >= 3,
            "expected substantial fusion, got {rep:?}\n{}",
            gcr_ir::print::print_program(&p)
        );
        assert!(p.count_nests() <= 3, "{}", gcr_ir::print::print_program(&p));
    }

    #[test]
    fn fusion_preserves_adi_semantics() {
        let orig = program();
        let mut fused = orig.clone();
        gcr_core::fuse_program(&mut fused, &gcr_core::FusionOptions::default());
        let bind = gcr_ir::ParamBinding::new(vec![20]);
        let mut m1 = gcr_exec::Machine::new(&orig, bind.clone());
        m1.run_steps(&mut gcr_exec::NullSink, 2);
        let mut m2 = gcr_exec::Machine::new(&fused, bind);
        m2.run_steps(&mut gcr_exec::NullSink, 2);
        for ai in 0..orig.arrays.len() {
            let a = gcr_ir::ArrayId::from_index(ai);
            let (v1, v2) = (m1.read_array(a), m2.read_array(a));
            for (k, (x, y)) in v1.iter().zip(&v2).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "array {ai} elem {k}: {x} vs {y}"
                );
            }
        }
    }
}
