//! FFT — a strided butterfly kernel for the §2.2 limit study.
//!
//! The paper uses an FFT kernel only in the reuse-driven execution
//! experiment, where it is the one program the technique does *not* help
//! (evadable reuses grew by 6%). What matters for that result is the access
//! structure: log₂ N stages, each sweeping the whole array with a
//! different power-of-two stride, with dependence chains that cross the
//! array globally — no reordering can keep working sets small.
//!
//! The kernel is generated at a *concrete* power-of-two size (per-stage
//! strides are constants, which the paper's `i + k` subscript model
//! requires), without the bit-reversal permutation (not expressible as
//! `i + k`, and irrelevant to the reuse pattern). Programs generated for
//! two sizes share their leading stages, so statement/reference ids line
//! up for the evadable-reuse comparison.

use gcr_frontend::parse;
use gcr_ir::Program;
use std::fmt::Write;

/// Generates the LoopLang source for size `n` (a power of two).
pub fn source(n: u32) -> String {
    assert!(n.is_power_of_two() && n >= 4, "size must be a power of two >= 4");
    let mut s = String::new();
    let _ = writeln!(s, "program fft{n}");
    let _ = writeln!(s, "array RE[{n}], IM[{n}], WR[{n}], WI[{n}]\n");
    // Bit-reversal permutation, unrolled to constant subscripts (the global
    // scatter that defeats execution reordering in real FFTs). Only swaps
    // with rev(i) > i, like the standard in-place loop; swaps go through
    // the twiddle arrays' scratch tails to stay in the two-array model.
    let bits = n.trailing_zeros();
    let _ = writeln!(s, "// bit-reversal permutation");
    for i in 0..n {
        let r = i.reverse_bits() >> (32 - bits);
        if r > i {
            let (a, b) = (i + 1, r + 1); // 1-based
            let _ = writeln!(s, "WR[{a}] = RE[{a}]");
            let _ = writeln!(s, "RE[{a}] = RE[{b}]");
            let _ = writeln!(s, "RE[{b}] = WR[{a}]");
            let _ = writeln!(s, "WI[{a}] = IM[{a}]");
            let _ = writeln!(s, "IM[{a}] = IM[{b}]");
            let _ = writeln!(s, "IM[{b}] = WI[{a}]");
        }
    }
    let mut h = 1u32;
    while h < n {
        let _ = writeln!(s, "// stage with butterfly span {h}");
        let _ = writeln!(s, "for i = 1, {} {{", n - h);
        let _ = writeln!(s, "  RE[i] = RE[i] + WR[i] * RE[i+{h}] - WI[i] * IM[i+{h}]");
        let _ = writeln!(s, "  IM[i] = IM[i] + WR[i] * IM[i+{h}] + WI[i] * RE[i+{h}]");
        let _ = writeln!(s, "  RE[i+{h}] = 0.5 * (RE[i] - RE[i+{h}])");
        let _ = writeln!(s, "  IM[i+{h}] = 0.5 * (IM[i] - IM[i+{h}])");
        s.push_str("}\n");
        h *= 2;
    }
    s
}

/// Parses the kernel at size `n`.
pub fn program(n: u32) -> Program {
    parse(&source(n)).expect("FFT source parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_is_log2() {
        let p = program(64);
        assert_eq!(p.count_nests(), 6);
        // 24 butterfly statements + 6 per bit-reversal swap.
        let swaps = (0u32..64).filter(|&i| (i.reverse_bits() >> 26) > i).count();
        assert_eq!(p.count_assigns(), 24 + 6 * swaps);
        gcr_ir::validate::validate(&p).unwrap();
    }

    #[test]
    fn runs_and_stays_finite() {
        let p = program(64);
        let mut m = gcr_exec::Machine::new(&p, gcr_ir::ParamBinding::new(vec![]));
        m.run(&mut gcr_exec::NullSink);
        assert!(m.checksum().is_finite());
        let swaps = (0u32..64).filter(|&i| (i.reverse_bits() >> 26) > i).count() as u64;
        assert_eq!(m.stats().instances, {
            // 4 statements per butterfly iteration plus 6 per reversal swap.
            let mut t = 6 * swaps;
            let mut h = 1;
            while h < 64 {
                t += 4 * (64 - h);
                h *= 2;
            }
            t
        });
    }
}
