#![warn(missing_docs)]

//! Symbolic reuse-distance prediction: per-capacity miss counts as
//! closed-form polynomials in the size parameter `N`.
//!
//! The trace simulator (`gcr_cache::CapacitySweepSink`) answers
//! "how many misses does a fully-associative LRU cache of capacity *c*
//! take on this program at size *N*?" exactly — but its cost grows with
//! the trace, so a sweep at N = 10⁹ would need ~10¹⁸ simulated accesses.
//! This crate answers the same question *analytically*: every loop bound,
//! guard range and subscript in canonical `gcr-ir` form is integer-affine
//! in `N`, so once `N` is past a small regime threshold the miss count of
//! every capacity is a *quasi-polynomial* in `N` — one true polynomial of
//! degree at most the maximum loop-nest depth per residue class of
//! `N mod (line/8)`, the period that line-granular footprints (`⌊8N/32⌋`
//! terms and base-address alignment) introduce (see DESIGN.md §14 for the
//! derivation). The [`Analyzer`] recovers those polynomials by probing
//! the simulator at `degree + 3` *small* sizes per residue class —
//! thousands of accesses in total — fitting exact Newton forward
//! differences through the first `degree + 1` samples of each class and
//! validating every class on the two remaining held-out sizes.
//! Evaluating the fitted model at any `N`, including 10⁹, is then a
//! handful of 128-bit multiplications: microseconds, independent of `N`.
//!
//! Construct taxonomy (mirrored in the report `prediction.class` field):
//!
//! * **exact** — guard-free affine programs. Probe-regime counts
//!   interpolate with zero holdout error and predictions byte-match the
//!   simulator (enforced corpus-wide by `gcr-conform`'s `static` oracle).
//! * **bounded** — programs containing guarded statements (`guard`/`outer`
//!   ranges, as fusion and peeling introduce). Counts are still piecewise
//!   affine and in practice interpolate exactly, but the class is tagged
//!   `bounded` and carries a measured [`Model::tolerance`]; consumers
//!   compare within that bound instead of byte equality.
//!
//! Programs with more than one size parameter are rejected with
//! [`StaticError::NotAnalyzable`] (multivariate models are out of scope);
//! callers such as the `gcr-serve` `predict` verb fall back to plain
//! simulation.
//!
//! # Example: predict a sweep at N = 10⁹ in microseconds
//!
//! ```
//! use gcr_static::{Analyzer, SweepSpec};
//!
//! let src = "program axpy\nparam N\narray X[N], Y[N]\n\
//!            for i = 1, N { Y[i] = Y[i] + 2.0 * X[i] }\n";
//! let prog = gcr_frontend::parse(src).unwrap();
//!
//! // Build the model once: probes the simulator at a few tiny sizes.
//! let spec = SweepSpec::new(32, vec![256, 1024], 1);
//! let an = Analyzer::analyze(&prog, spec).unwrap();
//! assert_eq!(an.model().class.name(), "exact");
//!
//! // Evaluate it at any size — no simulation, just polynomial arithmetic.
//! let p = an.predict(1_000_000_000).unwrap();
//! assert_eq!(p.refs, 3_000_000_000); // 2 reads + 1 write per iteration
//! assert_eq!(p.method.name(), "polynomial");
//! // The fitted miss model itself is available in closed form:
//! assert_eq!(an.model().capacities[0].global.degree(), 1); // linear in N
//! ```

use gcr_exec::{AccessEvent, DataLayout, ExecEngine, Machine, TraceSink};
use gcr_ir::{GcrError, ParamBinding, Program};
use gcr_reuse::distance::ReuseDistanceAnalyzer;
use gcr_reuse::CapacityCounter;
use std::fmt;

/// Default interpreter fuel for probe simulations: probes run at sizes
/// near the regime floor, so this is rarely the binding constraint — it
/// exists so a pathological program surfaces `BudgetExceeded` instead of
/// hanging the analyzer.
pub const DEFAULT_PROBE_FUEL: u64 = 200_000_000;

/// Errors from the static analyzer.
#[derive(Clone, Debug, PartialEq)]
pub enum StaticError {
    /// The program is outside the analyzable domain (multiple size
    /// parameters, or miss counts that fail polynomial validation).
    NotAnalyzable {
        /// Human-readable reason.
        reason: String,
    },
    /// A probe simulation failed (fuel, bounds, execution fault...).
    Gcr(GcrError),
}

impl fmt::Display for StaticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticError::NotAnalyzable { reason } => {
                write!(f, "not statically analyzable: {reason}")
            }
            StaticError::Gcr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StaticError {}

impl From<GcrError> for StaticError {
    fn from(e: GcrError) -> Self {
        StaticError::Gcr(e)
    }
}

fn not_analyzable(reason: impl Into<String>) -> StaticError {
    StaticError::NotAnalyzable { reason: reason.into() }
}

/// The capacity sweep a model answers: line size, capacity ladder, and
/// how many times the program body runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Cache line size in bytes (a power of two).
    pub line: u64,
    /// Cache capacities in bytes, ascending (positive multiples of
    /// `line`, deduplicated).
    pub capacities: Vec<u64>,
    /// Time steps: how many times the program body executes per run.
    pub steps: usize,
}

impl SweepSpec {
    /// A sweep over `capacities` bytes with `line`-byte lines.
    ///
    /// # Panics
    /// Panics if `line` is not a power of two, `capacities` is empty, or
    /// any capacity is not a positive multiple of `line` — the same
    /// contract as `gcr_cache::CapacitySweepSink`.
    pub fn new(line: u64, mut capacities: Vec<u64>, steps: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(!capacities.is_empty(), "capacity sweep must not be empty");
        for &c in &capacities {
            assert!(
                c >= line && c % line == 0,
                "capacity {c} is not a positive multiple of line {line}"
            );
        }
        capacities.sort_unstable();
        capacities.dedup();
        SweepSpec { line, capacities, steps }
    }

    /// The documented default ladder used by `gcrc --static`: 32-byte
    /// lines, capacities 256 B / 1 KB / 4 KB / 16 KB, one time step.
    pub fn standard() -> Self {
        SweepSpec::new(32, vec![256, 1024, 4096, 16384], 1)
    }
}

/// Exactness class of a model (the construct taxonomy of DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Guard-free affine program: predictions are bit-identical to the
    /// simulator in the polynomial regime.
    Exact,
    /// Guarded program: predictions are validated within
    /// [`Model::tolerance`] relative error rather than byte equality.
    Bounded,
}

impl Class {
    /// Stable lower-case tag used in reports and oracles.
    pub fn name(self) -> &'static str {
        match self {
            Class::Exact => "exact",
            Class::Bounded => "bounded",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An integer-valued polynomial over the arithmetic progression
/// `{base, base + stride, base + 2·stride, …}`, stored in Newton
/// forward-difference form: `p(base + k·stride) = Σⱼ Δʲ · C(k, j)`.
///
/// The Newton form is what interpolation through equally spaced integer
/// samples produces *exactly* (the differences are integers), so no
/// rational arithmetic is needed to fit, and [`Poly::eval`] is exact
/// 128-bit integer arithmetic — the sequential `·(k−j+1)/j` binomial
/// update divides evenly at every step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    base: i64,
    stride: i64,
    deltas: Vec<i128>,
}

impl Poly {
    /// Fits the unique degree-`samples.len()-1` polynomial through
    /// `p(base + k·stride) = samples[k]` via forward differences.
    fn fit(base: i64, stride: i64, samples: &[u64]) -> Poly {
        debug_assert!(stride >= 1);
        let mut col: Vec<i128> = samples.iter().map(|&v| v as i128).collect();
        let mut deltas = Vec::with_capacity(col.len());
        while !col.is_empty() {
            deltas.push(col[0]);
            for i in 0..col.len() - 1 {
                col[i] = col[i + 1] - col[i];
            }
            col.pop();
        }
        // Trim trailing zero differences so `degree` is meaningful.
        while deltas.len() > 1 && *deltas.last().unwrap() == 0 {
            deltas.pop();
        }
        Poly { base, stride, deltas }
    }

    /// Degree of the polynomial (trailing zero differences trimmed).
    pub fn degree(&self) -> usize {
        self.deltas.len() - 1
    }

    /// Exact evaluation at `n` (must lie on the progression: `n ≥ base`
    /// and `n ≡ base (mod stride)`). Returns `None` off the progression
    /// or if the value does not fit in 128-bit arithmetic (use
    /// [`Poly::eval_f64`] then) or comes out negative (a fit artifact
    /// outside the regime).
    pub fn eval(&self, n: i64) -> Option<u128> {
        let x = (n as i128).checked_sub(self.base as i128)?;
        if x < 0 || x % self.stride as i128 != 0 {
            return None;
        }
        let k = x / self.stride as i128;
        let mut acc: i128 = 0;
        let mut binom: i128 = 1; // C(k, j), exact at every step
        for (j, &d) in self.deltas.iter().enumerate() {
            if j > 0 {
                binom = binom.checked_mul(k - (j as i128) + 1)? / (j as i128);
            }
            acc = acc.checked_add(d.checked_mul(binom)?)?;
        }
        u128::try_from(acc).ok()
    }

    /// Approximate evaluation for display when exact 128-bit evaluation
    /// overflows.
    pub fn eval_f64(&self, n: i64) -> f64 {
        let k = (n as f64 - self.base as f64) / self.stride as f64;
        let mut acc = 0.0;
        let mut binom = 1.0;
        for (j, &d) in self.deltas.iter().enumerate() {
            if j > 0 {
                binom *= (k - j as f64 + 1.0) / j as f64;
            }
            acc += d as f64 * binom;
        }
        acc
    }

    /// Renders the polynomial in monomial form over `var`, with exact
    /// rational coefficients — e.g. `3*N^2 - 2*N` or `(N^2 + N)/2`.
    /// Falls back to the Newton form if the conversion overflows i128.
    pub fn render(&self, var: &str) -> String {
        match self.monomial_coeffs() {
            Some((num, den)) => render_monomials(&num, den, var),
            None => {
                let mut s = String::new();
                for (j, &d) in self.deltas.iter().enumerate() {
                    if j > 0 {
                        s.push_str(" + ");
                    }
                    s.push_str(&format!("{d}*C(({var}-{})/{}, {j})", self.base, self.stride));
                }
                s
            }
        }
    }

    /// Monomial coefficients `(numerators ascending by power, denominator)`
    /// such that `p(n) = Σᵢ numᵢ·nⁱ / den`. `None` on i128 overflow.
    fn monomial_coeffs(&self) -> Option<(Vec<i128>, i128)> {
        let deg = self.degree();
        let fact: i128 = (1..=deg as i128).product::<i128>().max(1); // deg!
                                                                     // Accumulate fact·p as an integer polynomial in k = (n − base)/stride.
        let mut acc = vec![0i128; deg + 1];
        for (j, &d) in self.deltas.iter().enumerate() {
            // fact/j! · k·(k−1)···(k−j+1), coefficients ascending in k.
            let scale = fact / (1..=j as i128).product::<i128>().max(1);
            let mut term = vec![0i128; deg + 1];
            term[0] = scale;
            for t in 0..j as i128 {
                // term *= (k − t)
                let mut next = vec![0i128; deg + 1];
                for (p, &c) in term.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if p < deg {
                        next[p + 1] = next[p + 1].checked_add(c)?;
                    }
                    next[p] = next[p].checked_add(c.checked_mul(-t)?)?;
                }
                term = next;
            }
            for (p, &c) in term.iter().enumerate() {
                acc[p] = acc[p].checked_add(d.checked_mul(c)?)?;
            }
        }
        // Substitute k = (n − base)/stride: common denominator becomes
        // fact·stride^deg; the k^p term contributes stride^(deg−p)·(n−b)^p.
        let s = self.stride as i128;
        let b = self.base as i128;
        let den = (0..deg).try_fold(fact, |d, _| d.checked_mul(s))?;
        let mut out = vec![0i128; deg + 1];
        for (p, &c0) in acc.iter().enumerate() {
            if c0 == 0 {
                continue;
            }
            let c = (p..deg).try_fold(c0, |c, _| c.checked_mul(s))?;
            // c·(n − b)^p
            let mut binom: i128 = 1;
            let mut pow: i128 = 1; // b^k
            for k in 0..=p {
                // coefficient of n^(p−k): c · C(p,k) · (−b)^k
                let sign = if k % 2 == 0 { 1 } else { -1 };
                let contrib = c.checked_mul(binom)?.checked_mul(pow.checked_mul(sign)?)?;
                out[p - k] = out[p - k].checked_add(contrib)?;
                binom = binom.checked_mul((p - k) as i128)? / (k as i128 + 1);
                pow = pow.checked_mul(b)?;
            }
        }
        // Reduce by the gcd of all numerators and the denominator.
        let mut g = den;
        for &c in &out {
            g = gcd(g, c.abs());
        }
        if g > 1 {
            for c in &mut out {
                *c /= g;
            }
            return Some((out, den / g));
        }
        Some((out, den))
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

fn render_monomials(num: &[i128], den: i128, var: &str) -> String {
    let mut body = String::new();
    for (p, &c) in num.iter().enumerate().rev() {
        if c == 0 {
            continue;
        }
        let mag = c.abs();
        if body.is_empty() {
            if c < 0 {
                body.push('-');
            }
        } else {
            body.push_str(if c < 0 { " - " } else { " + " });
        }
        match p {
            0 => body.push_str(&mag.to_string()),
            _ => {
                if mag != 1 {
                    body.push_str(&format!("{mag}*"));
                }
                body.push_str(var);
                if p > 1 {
                    body.push_str(&format!("^{p}"));
                }
            }
        }
    }
    if body.is_empty() {
        body.push('0');
    }
    if den != 1 {
        format!("({body})/{den}")
    } else {
        body
    }
}

/// A quasi-polynomial: one [`Poly`] per residue class of `N mod period`.
/// The period comes from line granularity — with 8-byte elements and
/// `line`-byte lines, footprints in lines and base-address alignments
/// repeat with period `line/8` in `N`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuasiPoly {
    period: i64,
    /// `branches[r]` answers sizes with `n mod period == r`.
    branches: Vec<Poly>,
}

impl QuasiPoly {
    /// The residue period (1 for a plain polynomial).
    pub fn period(&self) -> i64 {
        self.period
    }

    /// Maximum branch degree.
    pub fn degree(&self) -> usize {
        self.branches.iter().map(Poly::degree).max().unwrap_or(0)
    }

    /// Exact evaluation at any `n` at or above the model's regime floor.
    pub fn eval(&self, n: i64) -> Option<u128> {
        self.branches[(n.rem_euclid(self.period)) as usize].eval(n)
    }

    /// Approximate evaluation (display fallback on 128-bit overflow).
    pub fn eval_f64(&self, n: i64) -> f64 {
        self.branches[(n.rem_euclid(self.period)) as usize].eval_f64(n)
    }

    /// Renders the closed form over `var`. When every residue class fits
    /// the same polynomial the common form is printed once; otherwise one
    /// branch per residue is shown.
    pub fn render(&self, var: &str) -> String {
        let forms: Vec<String> = self.branches.iter().map(|p| p.render(var)).collect();
        if forms.windows(2).all(|w| w[0] == w[1]) {
            return forms.into_iter().next().unwrap_or_else(|| "0".into());
        }
        forms
            .iter()
            .enumerate()
            .map(|(r, f)| format!("{f} [{var}≡{r} mod {}]", self.period))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Renders the branch that answers size `n`.
    pub fn render_at(&self, var: &str, n: i64) -> String {
        self.branches[(n.rem_euclid(self.period)) as usize].render(var)
    }
}

/// The fitted miss model for one cache capacity.
#[derive(Clone, Debug)]
pub struct CapacityModel {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Total misses (cold + capacity) across all arrays.
    pub global: QuasiPoly,
    /// Misses attributed to each array, indexed by `ArrayId`. Scalars are
    /// never traced, so their model is identically zero; the per-array
    /// models always sum to `global`.
    pub per_array: Vec<QuasiPoly>,
}

/// A complete symbolic reuse model: one quasi-polynomial per
/// (capacity × array) plus reference counts, with its exactness class and
/// validity regime.
#[derive(Clone, Debug)]
pub struct Model {
    /// The sweep this model answers.
    pub spec: SweepSpec,
    /// Exactness class (see [`Class`]).
    pub class: Class,
    /// Maximum relative error observed on the held-out validation sizes:
    /// `0.0` for exact fits; positive only for `bounded` models that
    /// interpolate approximately.
    pub tolerance: f64,
    /// Fitted polynomial degree (≤ the program's maximum nest depth).
    pub degree: usize,
    /// Residue period of the quasi-polynomials (`line/8`, possibly
    /// escalated).
    pub period: i64,
    /// Regime floor: predictions at `N ≥ base` use the polynomials;
    /// smaller sizes are simulated directly (they are cheap by
    /// definition — the probes themselves run there).
    pub base: i64,
    /// Per-capacity miss models, ascending by capacity.
    pub capacities: Vec<CapacityModel>,
    /// Total traced references.
    pub refs: QuasiPoly,
    /// Traced references per array, indexed by `ArrayId`.
    pub refs_per_array: Vec<QuasiPoly>,
    /// Probe simulations spent building (and validating) the model.
    pub probe_sims: u32,
}

/// How a [`Prediction`] was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Quasi-polynomial evaluation in the regime `N ≥ base`.
    Polynomial,
    /// Direct probe simulation for sub-regime sizes (exact by
    /// construction).
    Direct,
}

impl Method {
    /// Stable lower-case tag used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Polynomial => "polynomial",
            Method::Direct => "direct",
        }
    }
}

/// Predicted miss counts for one capacity at a concrete size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityPrediction {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Predicted total misses.
    pub misses: u128,
    /// Predicted misses per array, indexed by `ArrayId`.
    pub per_array: Vec<u128>,
}

/// A concrete evaluation of a [`Model`] at one size.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// The size parameter value.
    pub size: i64,
    /// Time steps (copied from the sweep spec).
    pub steps: usize,
    /// Polynomial evaluation or direct simulation.
    pub method: Method,
    /// Exactness class of the underlying model.
    pub class: Class,
    /// Documented relative-error bound (0 for exact).
    pub tolerance: f64,
    /// Predicted total traced references.
    pub refs: u128,
    /// Per-capacity predictions, ascending by capacity.
    pub capacities: Vec<CapacityPrediction>,
}

/// Everything one probe simulation measures. Field order mirrors the
/// series order used when fitting.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ProbeCounts {
    refs: u64,
    refs_per_array: Vec<u64>,
    /// `misses[c]` = total misses at `spec.capacities[c]`.
    misses: Vec<u64>,
    /// `misses_per_array[c][a]`.
    misses_per_array: Vec<Vec<u64>>,
}

/// Trace sink mirroring `gcr_cache::CapacitySweepSink` exactly for the
/// global counts (one analyzer, one capacity counter, misses = cold +
/// at-least) while additionally attributing every access to its array —
/// so the per-array models sum to the global one by construction.
struct ProbeSink {
    analyzer: ReuseDistanceAnalyzer,
    counter: CapacityCounter,
    per_array: Vec<(CapacityCounter, u64)>, // (distances, cold) per array
    line: u64,
    refs: u64,
    refs_per_array: Vec<u64>,
    caps: Vec<u64>, // bytes, ascending
}

impl ProbeSink {
    fn new(spec: &SweepSpec, arrays: usize) -> Self {
        let caps_lines: Vec<u64> = spec.capacities.iter().map(|&c| c / spec.line).collect();
        ProbeSink {
            analyzer: ReuseDistanceAnalyzer::new(spec.line),
            counter: CapacityCounter::new(caps_lines.clone()),
            per_array: (0..arrays).map(|_| (CapacityCounter::new(caps_lines.clone()), 0)).collect(),
            line: spec.line,
            refs: 0,
            refs_per_array: vec![0; arrays],
            caps: spec.capacities.clone(),
        }
    }

    fn counts(&self) -> ProbeCounts {
        let mut misses = Vec::with_capacity(self.caps.len());
        let mut misses_per_array = Vec::with_capacity(self.caps.len());
        for &cap in &self.caps {
            let lines = cap / self.line;
            misses.push(self.analyzer.hist.cold + self.counter.at_least(lines));
            misses_per_array.push(
                self.per_array.iter().map(|(cnt, cold)| cold + cnt.at_least(lines)).collect(),
            );
        }
        ProbeCounts {
            refs: self.refs,
            refs_per_array: self.refs_per_array.clone(),
            misses,
            misses_per_array,
        }
    }
}

impl TraceSink for ProbeSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        self.refs += 1;
        let a = ev.array.index();
        self.refs_per_array[a] += 1;
        match self.analyzer.access(ev.addr) {
            Some(d) => {
                self.counter.record(d);
                self.per_array[a].0.record(d);
            }
            None => self.per_array[a].1 += 1,
        }
    }
}

/// True if any statement carries a guard or outer-iteration condition —
/// the construct boundary between the `exact` and `bounded` classes.
pub fn has_guards(prog: &Program) -> bool {
    let mut guarded = false;
    prog.walk(|gs, _| {
        if gs.guard.is_some() || !gs.outer.is_empty() {
            guarded = true;
        }
    });
    guarded
}

type LayoutFor<'p> = Box<dyn Fn(&ParamBinding) -> DataLayout + 'p>;

/// A fitted symbolic model bound to its program, ready to answer
/// predictions at any size. Build with [`Analyzer::analyze`] (default
/// column-major layout) or [`Analyzer::analyze_with`] (custom layout,
/// engine and fuel — e.g. the regrouped layout of an optimized program).
pub struct Analyzer<'p> {
    prog: &'p Program,
    layout_for: LayoutFor<'p>,
    engine: ExecEngine,
    fuel: u64,
    model: Model,
}

impl<'p> Analyzer<'p> {
    /// Fits a model using the default column-major layout, the default
    /// execution engine and [`DEFAULT_PROBE_FUEL`].
    pub fn analyze(prog: &'p Program, spec: SweepSpec) -> Result<Self, StaticError> {
        let layout = move |b: &ParamBinding| DataLayout::column_major(prog, b, 0);
        Self::analyze_with(prog, spec, ExecEngine::default(), DEFAULT_PROBE_FUEL, layout)
    }

    /// Fits a model with full control over layout, engine and probe fuel.
    /// `layout_for` is consulted once per probe binding — pass the
    /// optimizer's regrouped layout to model the transformed program.
    pub fn analyze_with(
        prog: &'p Program,
        spec: SweepSpec,
        engine: ExecEngine,
        fuel: u64,
        layout_for: impl Fn(&ParamBinding) -> DataLayout + 'p,
    ) -> Result<Self, StaticError> {
        if prog.params.len() > 1 {
            return Err(not_analyzable(format!(
                "{} size parameters (the symbolic model is univariate)",
                prog.params.len()
            )));
        }
        let layout_for: LayoutFor<'p> = Box::new(layout_for);
        let model = fit_model(prog, &spec, engine, fuel, &layout_for)?;
        Ok(Analyzer { prog, layout_for, engine, fuel, model })
    }

    /// The fitted model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Predicts the full sweep at size `n`: polynomial evaluation for
    /// `n ≥ base` (microseconds, independent of `n`), direct probe
    /// simulation below the regime floor (cheap by definition).
    pub fn predict(&self, n: i64) -> Result<Prediction, StaticError> {
        if n < 1 {
            return Err(StaticError::Gcr(GcrError::Usage(format!(
                "prediction size must be positive, got {n}"
            ))));
        }
        let m = &self.model;
        if !self.prog.params.is_empty() && n < m.base {
            let c = probe(self.prog, &m.spec, self.engine, self.fuel, &self.layout_for, n)?;
            return Ok(Prediction {
                size: n,
                steps: m.spec.steps,
                method: Method::Direct,
                class: Class::Exact,
                tolerance: 0.0,
                refs: c.refs as u128,
                capacities: m
                    .spec
                    .capacities
                    .iter()
                    .enumerate()
                    .map(|(ci, &cap)| CapacityPrediction {
                        capacity: cap,
                        misses: c.misses[ci] as u128,
                        per_array: c.misses_per_array[ci].iter().map(|&v| v as u128).collect(),
                    })
                    .collect(),
            });
        }
        let eval = |p: &QuasiPoly| {
            p.eval(n).ok_or_else(|| {
                not_analyzable(format!("prediction at N={n} overflows 128-bit arithmetic"))
            })
        };
        let mut capacities = Vec::with_capacity(m.capacities.len());
        for cm in &m.capacities {
            let per_array =
                cm.per_array.iter().map(&eval).collect::<Result<Vec<_>, StaticError>>()?;
            capacities.push(CapacityPrediction {
                capacity: cm.capacity,
                misses: eval(&cm.global)?,
                per_array,
            });
        }
        Ok(Prediction {
            size: n,
            steps: m.spec.steps,
            method: Method::Polynomial,
            class: m.class,
            tolerance: m.tolerance,
            refs: eval(&m.refs)?,
            capacities,
        })
    }
}

/// Runs one probe simulation of `prog` at size `n` and collects every
/// tracked series.
fn probe(
    prog: &Program,
    spec: &SweepSpec,
    engine: ExecEngine,
    fuel: u64,
    layout_for: &LayoutFor<'_>,
    n: i64,
) -> Result<ProbeCounts, StaticError> {
    let binding = ParamBinding::new(vec![n; prog.params.len()]);
    let layout = layout_for(&binding);
    let mut m = Machine::with_layout(prog, binding, layout).with_engine(engine);
    let mut sink = ProbeSink::new(spec, prog.arrays.len());
    m.run_steps_guarded(&mut sink, spec.steps, fuel)?;
    Ok(sink.counts())
}

/// Fits quasi-polynomials through per-residue probe samples:
/// `samples[r][k]` measured at `n = base + r + k·period`.
fn build_model(spec: &SweepSpec, base: i64, period: i64, samples: &[Vec<ProbeCounts>]) -> Model {
    let arrays = samples[0][0].refs_per_array.len();
    let quasi = |f: &dyn Fn(&ProbeCounts) -> u64| -> QuasiPoly {
        let branches = samples
            .iter()
            .enumerate()
            .map(|(r, branch)| {
                let vals: Vec<u64> = branch.iter().map(f).collect();
                Poly::fit(base + r as i64, period, &vals)
            })
            .collect();
        QuasiPoly { period, branches }
    };
    let refs = quasi(&|c| c.refs);
    let refs_per_array: Vec<QuasiPoly> =
        (0..arrays).map(|a| quasi(&move |c: &ProbeCounts| c.refs_per_array[a])).collect();
    let capacities: Vec<CapacityModel> = spec
        .capacities
        .iter()
        .enumerate()
        .map(|(ci, &cap)| CapacityModel {
            capacity: cap,
            global: quasi(&move |c: &ProbeCounts| c.misses[ci]),
            per_array: (0..arrays)
                .map(|a| quasi(&move |c: &ProbeCounts| c.misses_per_array[ci][a]))
                .collect(),
        })
        .collect();
    let degree = capacities
        .iter()
        .flat_map(|c| c.per_array.iter().chain(std::iter::once(&c.global)))
        .chain(std::iter::once(&refs))
        .map(QuasiPoly::degree)
        .max()
        .unwrap_or(0);
    Model {
        spec: spec.clone(),
        class: Class::Exact, // caller overwrites
        tolerance: 0.0,
        degree,
        period,
        // Public regime floor: every residue branch starts at or below
        // base + period − 1, so any n ≥ base + period evaluates cleanly.
        base: base + period,
        capacities,
        refs,
        refs_per_array,
        probe_sims: 0,
    }
}

/// Maximum relative error of the model against one measured probe.
fn holdout_err(model: &Model, n: i64, actual: &ProbeCounts) -> f64 {
    let rel = |p: &QuasiPoly, a: u64| -> f64 {
        match p.eval(n) {
            Some(v) => {
                let diff = v.abs_diff(a as u128) as f64;
                diff / (a as f64).max(1.0)
            }
            None => 1.0,
        }
    };
    let mut e = rel(&model.refs, actual.refs);
    for (a, p) in model.refs_per_array.iter().enumerate() {
        e = e.max(rel(p, actual.refs_per_array[a]));
    }
    for (ci, cm) in model.capacities.iter().enumerate() {
        e = e.max(rel(&cm.global, actual.misses[ci]));
        for (a, p) in cm.per_array.iter().enumerate() {
            e = e.max(rel(p, actual.misses_per_array[ci][a]));
        }
    }
    e
}

/// Relative-error ceiling beyond which a guarded program is rejected
/// instead of tagged `bounded`.
const BOUNDED_TOLERANCE_CEILING: f64 = 0.25;

fn fit_model(
    prog: &Program,
    spec: &SweepSpec,
    engine: ExecEngine,
    fuel: u64,
    layout_for: &LayoutFor<'_>,
) -> Result<Model, StaticError> {
    let guarded = has_guards(prog);
    let class = if guarded { Class::Bounded } else { Class::Exact };

    if prog.params.is_empty() {
        // No size parameter: every count is a constant; one probe fits it.
        let c = probe(prog, spec, engine, fuel, layout_for, 0)?;
        let mut model = build_model(spec, 8, 1, &[vec![c]]);
        model.class = class;
        model.probe_sims = 1;
        return Ok(model);
    }

    // Residue period of line-granular counts: with 8-byte elements,
    // footprints in lines and array base alignments repeat with period
    // line/8 in N.
    let mut period = (spec.line / 8).max(1) as i64;
    let deg = prog.max_depth();
    // Regime floor: an N-growing reuse distance gains at least one
    // element — 1/(line/8) lines — per unit of N, so every growing
    // distance class has crossed the largest capacity threshold (in
    // lines) by N ≈ period·c_max, plus a safety margin (DESIGN.md §14).
    let cmax_lines = (spec.capacities.last().unwrap() / spec.line) as i64;
    let floor = |period: i64| (period * (cmax_lines + 2 * deg as i64 + 4)).max(8);
    let mut base = floor(period);
    let mut probe_sims = 0u32;
    let mut last: Option<(Model, f64)> = None;

    for attempt in 0..3 {
        let mut samples: Vec<Vec<ProbeCounts>> = Vec::with_capacity(period as usize);
        for r in 0..period {
            let mut branch = Vec::with_capacity(deg + 1);
            for k in 0..=deg as i64 {
                branch.push(probe(prog, spec, engine, fuel, layout_for, base + r + k * period)?);
                probe_sims += 1;
            }
            samples.push(branch);
        }
        let mut model = build_model(spec, base, period, &samples);
        let mut max_rel = 0.0f64;
        for r in 0..period {
            for h in 1..=2i64 {
                let n = base + r + (deg as i64 + h) * period;
                let actual = probe(prog, spec, engine, fuel, layout_for, n)?;
                probe_sims += 1;
                max_rel = max_rel.max(holdout_err(&model, n, &actual));
            }
        }
        model.class = class;
        model.probe_sims = probe_sims;
        if max_rel == 0.0 {
            return Ok(model);
        }
        model.tolerance = max_rel;
        last = Some((model, max_rel));
        // The regime floor was too low (a distance class had not crossed
        // its threshold yet) or the period too short: escalate and refit.
        if attempt == 1 {
            period *= 2;
        }
        base = (base * 2).max(floor(period));
    }

    let (mut model, tol) = last.expect("at least one fit attempt ran");
    if guarded && tol <= BOUNDED_TOLERANCE_CEILING {
        model.probe_sims = probe_sims;
        Ok(model)
    } else {
        Err(not_analyzable(format!(
            "miss counts fail polynomial holdout validation (relative error {tol:.3})"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        gcr_frontend::parse(src).unwrap()
    }

    const STREAM: &str = "program stream\nparam N\narray X[N], Y[N]\n\
                          for i = 1, N { Y[i] = Y[i] + 2.0 * X[i] }\n";

    const LAPLACE: &str = "program laplace\nparam N\narray A[N, N], B[N, N]\n\
        for i = 2, N - 1 { for j = 2, N - 1 {\
            A[j, i] = 0.25 * (B[j-1, i] + B[j+1, i] + B[j, i-1] + B[j, i+1]) } }\n\
        for i = 2, N - 1 { for j = 2, N - 1 { B[j, i] = f(A[j, i]) } }\n";

    fn simulate(prog: &Program, spec: &SweepSpec, n: i64) -> ProbeCounts {
        let layout: LayoutFor<'_> = Box::new(|b| DataLayout::column_major(prog, b, 0));
        probe(prog, spec, ExecEngine::default(), u64::MAX, &layout, n).unwrap()
    }

    #[test]
    fn poly_fit_and_eval_are_exact() {
        // p(n) = 3n² − 2n + 1 sampled at 10, 11, 12.
        let p = |n: i64| (3 * n * n - 2 * n + 1) as u64;
        let poly = Poly::fit(10, 1, &[p(10), p(11), p(12)]);
        assert_eq!(poly.degree(), 2);
        for n in [10, 13, 100, 1_000_000_000] {
            assert_eq!(poly.eval(n), Some(p(n) as u128));
        }
        assert_eq!(poly.render("N"), "3*N^2 - 2*N + 1");
    }

    #[test]
    fn poly_fit_on_strided_samples() {
        // p(n) = n² + 5 sampled at 8, 12, 16 (stride 4).
        let p = |n: i64| (n * n + 5) as u64;
        let poly = Poly::fit(8, 4, &[p(8), p(12), p(16)]);
        assert_eq!(poly.eval(40), Some(p(40) as u128));
        assert_eq!(poly.eval(41), None, "off the progression");
        assert_eq!(poly.render("N"), "N^2 + 5");
    }

    #[test]
    fn poly_renders_rational_coefficients() {
        // p(n) = n(n−1)/2 — integer-valued with non-integer monomials.
        let tri = |n: i64| (n * (n - 1) / 2) as u64;
        let poly = Poly::fit(4, 1, &[tri(4), tri(5), tri(6)]);
        assert_eq!(poly.render("N"), "(N^2 - N)/2");
        assert_eq!(poly.eval(101), Some(tri(101) as u128));
    }

    #[test]
    fn poly_eval_overflow_is_none_not_wrong() {
        let poly = Poly { base: 0, stride: 1, deltas: vec![i128::MAX / 2, i128::MAX / 2] };
        assert_eq!(poly.eval(1_000_000), None);
        assert!(poly.eval_f64(1_000_000) > 0.0);
    }

    #[test]
    fn stream_kernel_matches_simulation_everywhere() {
        let prog = parse(STREAM);
        let spec = SweepSpec::new(32, vec![256, 1024], 1);
        let an = Analyzer::analyze(&prog, spec.clone()).unwrap();
        assert_eq!(an.model().class, Class::Exact);
        assert_eq!(an.model().tolerance, 0.0);
        for n in [3, 17, 64, 257, 999, 1000, 1001, 1002] {
            let pred = an.predict(n).unwrap();
            let sim = simulate(&prog, &spec, n);
            assert_eq!(pred.refs, sim.refs as u128, "refs at N={n}");
            for (ci, cp) in pred.capacities.iter().enumerate() {
                assert_eq!(
                    cp.misses, sim.misses[ci] as u128,
                    "misses at N={n} cap={}",
                    cp.capacity
                );
                let per: Vec<u128> = sim.misses_per_array[ci].iter().map(|&v| v as u128).collect();
                assert_eq!(cp.per_array, per, "per-array at N={n}");
            }
        }
    }

    #[test]
    fn laplace_matches_simulation_at_independent_sizes() {
        let prog = parse(LAPLACE);
        let spec = SweepSpec::new(32, vec![256, 1024], 2);
        let an = Analyzer::analyze(&prog, spec.clone()).unwrap();
        assert_eq!(an.model().class, Class::Exact);
        let base = an.model().base;
        for n in [base + 31, base + 32, base + 33, 2 * base + 5] {
            let pred = an.predict(n).unwrap();
            assert_eq!(pred.method, Method::Polynomial);
            let sim = simulate(&prog, &spec, n);
            assert_eq!(pred.refs, sim.refs as u128, "refs at N={n}");
            for (ci, cp) in pred.capacities.iter().enumerate() {
                assert_eq!(cp.misses, sim.misses[ci] as u128, "N={n} cap={}", cp.capacity);
            }
        }
    }

    #[test]
    fn per_array_counts_sum_to_global() {
        let prog = parse(LAPLACE);
        let spec = SweepSpec::new(32, vec![256, 1024], 1);
        let an = Analyzer::analyze(&prog, spec).unwrap();
        let pred = an.predict(1_000_000).unwrap();
        for cp in &pred.capacities {
            assert_eq!(cp.per_array.iter().sum::<u128>(), cp.misses);
        }
        let refs: u128 = an.model().refs_per_array.iter().map(|p| p.eval(1_000_000).unwrap()).sum();
        assert_eq!(refs, pred.refs);
    }

    #[test]
    fn small_sizes_use_direct_simulation() {
        let prog = parse(LAPLACE);
        let spec = SweepSpec::new(32, vec![1024], 1);
        let an = Analyzer::analyze(&prog, spec.clone()).unwrap();
        let n = 5;
        assert!(n < an.model().base);
        let pred = an.predict(n).unwrap();
        assert_eq!(pred.method, Method::Direct);
        let sim = simulate(&prog, &spec, n);
        assert_eq!(pred.refs, sim.refs as u128);
        assert_eq!(pred.capacities[0].misses, sim.misses[0] as u128);
    }

    #[test]
    fn multivariate_programs_are_rejected() {
        let prog =
            parse("program mv\nparam N\nparam M\narray A[N]\nfor i = 1, N { A[i] = f(A[i]) }\n");
        let r = Analyzer::analyze(&prog, SweepSpec::standard()).map(|a| a.model().degree);
        match r {
            Err(StaticError::NotAnalyzable { reason }) => {
                assert!(reason.contains("parameters"), "{reason}");
            }
            other => panic!("expected NotAnalyzable, got {other:?}"),
        }
    }

    #[test]
    fn nonpositive_sizes_are_usage_errors() {
        let prog = parse(STREAM);
        let an = Analyzer::analyze(&prog, SweepSpec::new(32, vec![256], 1)).unwrap();
        assert!(matches!(an.predict(0), Err(StaticError::Gcr(GcrError::Usage(_)))));
    }

    #[test]
    fn fuel_exhaustion_surfaces_budget_error() {
        let prog = parse(STREAM);
        let layout = |b: &ParamBinding| DataLayout::column_major(&prog, b, 0);
        let r = Analyzer::analyze_with(
            &prog,
            SweepSpec::new(32, vec![256], 1),
            ExecEngine::default(),
            3,
            layout,
        );
        assert!(matches!(r, Err(StaticError::Gcr(GcrError::BudgetExceeded { .. }))));
    }

    #[test]
    fn zero_param_programs_are_constant() {
        let prog = parse("program fixed\narray A[16]\nfor i = 1, 16 { A[i] = f(A[i]) }\n");
        let spec = SweepSpec::new(32, vec![64], 1);
        let an = Analyzer::analyze(&prog, spec).unwrap();
        assert_eq!(an.model().degree, 0);
        let a = an.predict(10).unwrap();
        let b = an.predict(1_000_000_000).unwrap();
        assert_eq!(a.refs, b.refs);
        assert_eq!(a.capacities[0].misses, b.capacities[0].misses);
    }

    #[test]
    fn guard_detection_drives_class() {
        assert!(!has_guards(&parse(STREAM)));
        // Fusing the chain introduces guarded members.
        let chain = parse(
            "program chain\nparam N\narray A[N], B[N]\n\
             for i = 1, N { A[i] = f(A[i]) }\n\
             for j = 2, N - 1 { B[j] = A[j-1] + A[j+1] }\n",
        );
        let fused = gcr_core::optimize_checked(
            &chain,
            &gcr_core::OptimizeOptions::default(),
            &gcr_core::checked::SafetyOptions::default(),
        )
        .unwrap();
        if has_guards(&fused.program) {
            let an = Analyzer::analyze(&fused.program, SweepSpec::new(32, vec![256], 1)).unwrap();
            assert_eq!(an.model().class, Class::Bounded);
        }
    }
}
