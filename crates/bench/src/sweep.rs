//! The parallel sweep engine: every experiment binary is a list of
//! independent (app × strategy) measurement jobs, so the harness runs them
//! on the [`gcr_par`] worker pool and memoizes each measurement under a
//! content key.
//!
//! Two redundancy killers compose here:
//!
//! * **Parallelism** — [`run_jobs`] fans a job list out over
//!   [`gcr_par::scope_map_with`]; results come back in input order, so the
//!   printed tables and the JSON report sets are byte-identical to a
//!   serial run for any thread count (`GCR_THREADS`, `--threads`).
//! * **Memoization** — a [`MeasureCache`] keys each cache simulation by
//!   the *content* of what determines it: the printed optimized program,
//!   the concrete data layout, the parameter binding, the step count and
//!   the hierarchy scales. Strategies that degrade to identical IR (the
//!   fail-safe ladder collapses them), and points shared between `fig10`
//!   and its `--ablation` superset, reuse the measurement instead of
//!   re-simulating. Set `GCR_MEASURE_CACHE=<file>` to persist the cache
//!   across processes (how `reproduce.sh` shares the base `fig10` points
//!   with the ablation pass).
//!
//! Only the expensive part — interpreting the program through the cache
//! hierarchy — is memoized. The per-strategy pass trace, fallback rungs
//! and labels are recomputed on every call, so a report produced from a
//! cache hit differs from a cold one only in pass wall-clocks (which
//! [`gcr_cli::ReportSet::normalized`] strips).

use crate::{Measurement, MEASURE_FUEL};
use gcr_apps::AppSpec;
use gcr_cache::{CostModel, MemoryHierarchy, MissCounts, PhasedHierarchySink};
use gcr_cli::report::SimSection;
use gcr_cli::Report;
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_core::Tracer;
use gcr_exec::{DataLayout, ExecEngine, ExecStats, Machine};
use gcr_ir::{GcrError, ParamBinding};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Content keys
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a. The standard library's `DefaultHasher` is only promised
/// stable within one compiler release; cache files persisted via
/// `GCR_MEASURE_CACHE` must outlive that, so the key hash is pinned here.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content key of one measurement: everything the simulated counters
/// depend on. Two strategy requests that optimize to the same program
/// text, layout and binding produce the same address stream, hence the
/// same measurement.
pub fn measurement_key(
    program_text: &str,
    layout: &DataLayout,
    bind: &ParamBinding,
    steps: usize,
    l1_scale: usize,
    l2_scale: usize,
) -> u64 {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(program_text.len() + 256);
    key.push_str(program_text);
    let _ = write!(key, "|bind={bind:?}|steps={steps}|l1={l1_scale}|l2={l2_scale}|layout=");
    let _ = write!(key, "total:{};", layout.total_bytes);
    for a in &layout.arrays {
        let _ = write!(key, "{}/{:?}/{:?};", a.base, a.strides, a.extents);
    }
    fnv1a(key.as_bytes())
}

// ---------------------------------------------------------------------------
// Measurement cache
// ---------------------------------------------------------------------------

/// The memoized portion of one measured run: exactly the data that is a
/// pure function of the [`measurement_key`] inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedRun {
    /// Interpreter statistics.
    pub stats: ExecStats,
    /// Total miss counters.
    pub misses: MissCounts,
    /// Modeled cycles.
    pub cycles: f64,
    /// Per-phase miss counters.
    pub phases: Vec<(String, MissCounts)>,
}

/// Header line of the on-disk cache format.
const DISK_SCHEMA: &str = "gcr-measure-cache/v1";

/// A concurrent content-keyed measurement cache, optionally persisted to a
/// file so separate processes (the base `fig10` run and its `--ablation`
/// superset) share points.
#[derive(Default)]
pub struct MeasureCache {
    map: Mutex<HashMap<u64, CachedRun>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk: Option<String>,
}

impl MeasureCache {
    /// An empty in-memory cache.
    pub fn new() -> MeasureCache {
        MeasureCache::default()
    }

    /// A cache persisted at `path`: pre-loaded from the file when it
    /// exists (unreadable or mis-versioned files are ignored, not fatal),
    /// written back by [`MeasureCache::save`].
    pub fn with_disk(path: impl Into<String>) -> MeasureCache {
        let path = path.into();
        let mut cache = MeasureCache::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(entries) = parse_disk(&text) {
                cache.map = Mutex::new(entries);
            }
        }
        cache.disk = Some(path);
        cache
    }

    /// The cache configured by `GCR_MEASURE_CACHE` (a file path), or a
    /// plain in-memory cache when the variable is unset.
    pub fn from_env() -> MeasureCache {
        match std::env::var("GCR_MEASURE_CACHE") {
            Ok(path) if !path.is_empty() => MeasureCache::with_disk(path),
            _ => MeasureCache::new(),
        }
    }

    /// Looks up a key, counting the hit or miss.
    pub fn lookup(&self, key: u64) -> Option<CachedRun> {
        let got = self.map.lock().unwrap().get(&key).cloned();
        match got {
            Some(run) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a measurement under its key.
    pub fn insert(&self, key: u64, run: CachedRun) {
        self.map.lock().unwrap().insert(key, run);
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the measurement.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct measurements held.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no measurement is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the cache back to its configured file (no-op for in-memory
    /// caches). Entries are sorted by key so the file is deterministic.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.disk else { return Ok(()) };
        let map = self.map.lock().unwrap();
        let mut keys: Vec<&u64> = map.keys().collect();
        keys.sort();
        let mut out = String::new();
        out.push_str(DISK_SCHEMA);
        out.push('\n');
        for k in keys {
            let run = &map[k];
            render_entry(&mut out, *k, run);
        }
        std::fs::write(path, out)
    }
}

fn render_entry(out: &mut String, key: u64, run: &CachedRun) {
    use std::fmt::Write as _;
    let m = |out: &mut String, c: &MissCounts| {
        let _ = write!(out, "{} {} {} {} {}", c.refs, c.l1, c.l2, c.tlb, c.memory_traffic);
    };
    let _ = write!(
        out,
        "e {key:016x} {:016x} {} {} {} {} ",
        run.cycles.to_bits(),
        run.stats.instances,
        run.stats.flops,
        run.stats.reads,
        run.stats.writes
    );
    m(out, &run.misses);
    let _ = writeln!(out, " {}", run.phases.len());
    for (label, c) in &run.phases {
        out.push_str("p ");
        m(out, c);
        // Label last: it may contain spaces, the counters cannot.
        let _ = writeln!(out, " {label}");
    }
}

fn parse_disk(text: &str) -> Option<HashMap<u64, CachedRun>> {
    let mut lines = text.lines();
    if lines.next()? != DISK_SCHEMA {
        return None;
    }
    let mut map = HashMap::new();
    let mut lines = lines.peekable();
    while let Some(line) = lines.next() {
        let mut f = line.strip_prefix("e ")?.split_ascii_whitespace();
        let key = u64::from_str_radix(f.next()?, 16).ok()?;
        let cycles = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
        let mut n = || f.next()?.parse::<u64>().ok();
        let stats = ExecStats { instances: n()?, flops: n()?, reads: n()?, writes: n()? };
        let mut counts = || -> Option<MissCounts> {
            Some(MissCounts { refs: n()?, l1: n()?, l2: n()?, tlb: n()?, memory_traffic: n()? })
        };
        let misses = counts()?;
        let nphases = n()? as usize;
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            let pline = lines.next()?.strip_prefix("p ")?;
            let mut f = pline.splitn(6, ' ');
            let mut n = || f.next()?.parse::<u64>().ok();
            let c = MissCounts { refs: n()?, l1: n()?, l2: n()?, tlb: n()?, memory_traffic: n()? };
            phases.push((f.next()?.to_string(), c));
        }
        map.insert(key, CachedRun { stats, misses, cycles, phases });
    }
    Some(map)
}

// ---------------------------------------------------------------------------
// Cached measurement
// ---------------------------------------------------------------------------

/// [`crate::try_measure_strategy_report`] with the simulation memoized in
/// `cache`: optimization (cheap, and the source of the per-strategy pass
/// trace) always runs; the interpreter + hierarchy pass (expensive) is
/// skipped when an identical program/layout/binding was already measured.
pub fn measure_strategy_report_cached(
    cache: &MeasureCache,
    generator: &str,
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
) -> Result<(Measurement, Report, Vec<String>), GcrError> {
    let engine = ExecEngine::from_env();
    measure_strategy_report_cached_with(cache, generator, app, strategy, size, steps, engine)
}

/// [`measure_strategy_report_cached`] with an explicit execution engine.
/// Both engines produce the identical measurement (the compiled tape is
/// observationally equivalent to the interpreter), so the cache key is
/// engine-agnostic — the engine only changes how long a cold miss takes.
#[allow(clippy::too_many_arguments)]
pub fn measure_strategy_report_cached_with(
    cache: &MeasureCache,
    generator: &str,
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
    engine: ExecEngine,
) -> Result<(Measurement, Report, Vec<String>), GcrError> {
    let (prog, bind) = (app.build)(size);
    let mut tracer = Tracer::enabled();
    let opt =
        apply_strategy_checked_traced(&prog, strategy, &SafetyOptions::default(), &mut tracer)?;
    let layout = opt.layout(&bind);
    let key = measurement_key(
        &gcr_ir::print::print_program(&opt.program),
        &layout,
        &bind,
        steps,
        app.l1_scale,
        app.l2_scale,
    );
    let run = match cache.lookup(key) {
        Some(run) => run,
        None => {
            let mut machine = Machine::try_with_layout(
                &opt.program,
                bind,
                layout,
                Some(gcr_core::checked::DEFAULT_MAX_BYTES),
            )?
            .with_engine(engine);
            let mut sink = PhasedHierarchySink::new(
                MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale),
                &opt.program,
            );
            machine.run_steps_guarded(&mut sink, steps, MEASURE_FUEL)?;
            let misses = sink.hierarchy.counts();
            let stats = machine.stats();
            let cycles = CostModel::default().cycles(&stats, &misses);
            let run = CachedRun { stats, misses, cycles, phases: sink.phases() };
            cache.insert(key, run.clone());
            run
        }
    };
    let mut label = strategy.label();
    if opt.robustness.degraded() {
        label = format!("{} (degraded: {})", opt.robustness.strategy, label);
    }
    let mut report = Report::new(generator, &prog, strategy.label(), &opt, tracer.into_events());
    report.simulation = Some(SimSection {
        size,
        steps,
        cycles: run.cycles,
        flops: run.stats.flops,
        total: run.misses,
        phases: run.phases,
    });
    let measurement =
        Measurement { label, stats: run.stats, misses: run.misses, cycles: run.cycles };
    Ok((measurement, report, opt.robustness.describe()))
}

// ---------------------------------------------------------------------------
// Job fan-out
// ---------------------------------------------------------------------------

/// One independent measurement: an app, a strategy, and the run geometry.
#[derive(Clone, Copy)]
pub struct SweepJob<'a> {
    /// The application under measurement.
    pub app: &'a AppSpec,
    /// The program version.
    pub strategy: Strategy,
    /// Size parameter.
    pub size: i64,
    /// Time steps.
    pub steps: usize,
}

/// What one job produces: the measurement, its report, and any
/// degradation diagnostics — or the error that disqualified it.
pub type JobResult = Result<(Measurement, Report, Vec<String>), GcrError>;

/// Runs a job list on `threads` workers (0 = [`gcr_par::thread_count`],
/// which honours `GCR_THREADS`). Results are returned in input order and
/// each measurement is memoized in `cache`, so output is byte-identical
/// across thread counts and repeat runs.
pub fn run_jobs(
    threads: usize,
    cache: &MeasureCache,
    generator: &str,
    jobs: &[SweepJob<'_>],
) -> Vec<JobResult> {
    run_jobs_with(threads, cache, generator, jobs, ExecEngine::from_env())
}

/// [`run_jobs`] with an explicit execution engine for every job — how
/// `sweep_bench` times a cold interpreter sweep against a cold compiled
/// sweep without touching `GCR_EXEC` (env mutation is racy under threads).
pub fn run_jobs_with(
    threads: usize,
    cache: &MeasureCache,
    generator: &str,
    jobs: &[SweepJob<'_>],
    engine: ExecEngine,
) -> Vec<JobResult> {
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    gcr_par::scope_map_with(threads, jobs, |job| {
        measure_strategy_report_cached_with(
            cache,
            generator,
            job.app,
            job.strategy,
            job.size,
            job.steps,
            engine,
        )
    })
}

/// The jobs of one app under the given strategies (the common shape of the
/// experiment binaries' sweeps).
pub fn app_jobs<'a>(
    app: &'a AppSpec,
    strategies: &[Strategy],
    size: i64,
    steps: usize,
) -> Vec<SweepJob<'a>> {
    strategies.iter().map(|&strategy| SweepJob { app, strategy, size, steps }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig10_strategies;

    fn small_jobs(apps: &[AppSpec]) -> (Vec<SweepJob<'_>>, Vec<usize>) {
        let mut jobs = Vec::new();
        let mut per_app = Vec::new();
        for app in apps {
            let added = app_jobs(app, &fig10_strategies(app.name), 12, 1);
            per_app.push(added.len());
            jobs.extend(added);
        }
        (jobs, per_app)
    }

    #[test]
    fn cached_measurement_equals_uncached() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let cache = MeasureCache::new();
        let strategy = Strategy::FusionOnly { levels: 3 };
        let (cold, cold_report, _) =
            measure_strategy_report_cached(&cache, "t", adi, strategy, 16, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (warm, warm_report, _) =
            measure_strategy_report_cached(&cache, "t", adi, strategy, 16, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cold.misses, warm.misses);
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(cold.cycles, warm.cycles);
        let reference = crate::try_measure_strategy_report("t", adi, strategy, 16, 2).unwrap();
        assert_eq!(warm.misses, reference.0.misses, "memoized totals must match direct path");
        assert_eq!(
            warm_report.clone().normalized().to_json(),
            reference.1.clone().normalized().to_json(),
            "memoized report must match direct path modulo wall clocks"
        );
        assert_eq!(
            cold_report.normalized().to_json(),
            warm_report.normalized().to_json(),
            "hit and miss paths must serialize identically"
        );
    }

    #[test]
    fn parallel_jobs_match_serial_in_order() {
        let apps = gcr_apps::evaluation_apps();
        let (jobs, _) = small_jobs(&apps);
        let serial_cache = MeasureCache::new();
        let serial = run_jobs(1, &serial_cache, "t", &jobs);
        let par_cache = MeasureCache::new();
        let par = run_jobs(4, &par_cache, "t", &jobs);
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.0.label, p.0.label);
            assert_eq!(s.0.misses, p.0.misses);
            assert_eq!(s.0.cycles, p.0.cycles);
        }
    }

    #[test]
    fn engines_produce_identical_sweep_results() {
        let apps = gcr_apps::evaluation_apps();
        let (jobs, _) = small_jobs(&apps);
        let interp_cache = MeasureCache::new();
        let interp = run_jobs_with(2, &interp_cache, "t", &jobs, ExecEngine::Interp);
        let compiled_cache = MeasureCache::new();
        let compiled = run_jobs_with(2, &compiled_cache, "t", &jobs, ExecEngine::Compiled);
        assert_eq!(interp.len(), compiled.len());
        for (i, c) in interp.iter().zip(&compiled) {
            let (i, c) = (i.as_ref().unwrap(), c.as_ref().unwrap());
            assert_eq!(i.0.label, c.0.label);
            assert_eq!(i.0.stats, c.0.stats);
            assert_eq!(i.0.misses, c.0.misses);
            assert_eq!(i.0.cycles.to_bits(), c.0.cycles.to_bits());
            assert_eq!(
                i.1.clone().normalized().to_json(),
                c.1.clone().normalized().to_json(),
                "engine choice must not leak into the report body"
            );
        }
    }

    #[test]
    fn disk_cache_round_trips() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let dir = std::env::temp_dir().join(format!("gcr-measure-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let path_s = path.to_str().unwrap().to_string();
        let cache = MeasureCache::with_disk(path_s.clone());
        let (m1, _, _) =
            measure_strategy_report_cached(&cache, "t", adi, Strategy::Original, 14, 1).unwrap();
        assert_eq!(cache.misses(), 1);
        cache.save().unwrap();
        // A second process: loads the file, answers without simulating.
        let warm = MeasureCache::with_disk(path_s);
        assert_eq!(warm.len(), 1);
        let (m2, _, _) =
            measure_strategy_report_cached(&warm, "t", adi, Strategy::Original, 14, 1).unwrap();
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(m1.misses, m2.misses);
        assert_eq!(m1.cycles.to_bits(), m2.cycles.to_bits());
        assert_eq!(m1.stats, m2.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_rejects_foreign_files() {
        assert!(parse_disk("not-a-cache\n").is_none());
        assert!(parse_disk("gcr-measure-cache/v1\ngarbage line\n").is_none());
        assert!(parse_disk("gcr-measure-cache/v1\n").map(|m| m.is_empty()).unwrap_or(false));
    }

    #[test]
    fn key_distinguishes_every_input() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let (prog, bind) = (adi.build)(16);
        let opt = gcr_core::pipeline::apply_strategy(&prog, Strategy::Original);
        let layout = opt.layout(&bind);
        let text = gcr_ir::print::print_program(&opt.program);
        let base = measurement_key(&text, &layout, &bind, 2, 16, 64);
        assert_ne!(base, measurement_key(&text, &layout, &bind, 3, 16, 64), "steps");
        assert_ne!(base, measurement_key(&text, &layout, &bind, 2, 8, 64), "l1 scale");
        assert_ne!(base, measurement_key(&text, &layout, &bind, 2, 16, 32), "l2 scale");
        let (_, bind2) = (adi.build)(18);
        assert_ne!(base, measurement_key(&text, &layout, &bind2, 2, 16, 64), "binding");
        let mut text2 = text.clone();
        text2.push(' ');
        assert_ne!(base, measurement_key(&text2, &layout, &bind, 2, 16, 64), "program text");
    }
}
