//! The parallel sweep engine: every experiment binary is a list of
//! independent (app × strategy) measurement jobs, so the harness runs them
//! on the [`gcr_par`] worker pool and memoizes each measurement under a
//! content key.
//!
//! Two redundancy killers compose here:
//!
//! * **Parallelism** — [`run_jobs`] fans a job list out over
//!   [`gcr_par::scope_map_with`]; results come back in input order, so the
//!   printed tables and the JSON report sets are byte-identical to a
//!   serial run for any thread count (`GCR_THREADS`, `--threads`).
//! * **Memoization** — a [`MeasureCache`] keys each cache simulation by
//!   the *content* of what determines it: the printed optimized program,
//!   the concrete data layout, the parameter binding, the step count and
//!   the hierarchy scales. Strategies that degrade to identical IR (the
//!   fail-safe ladder collapses them), and points shared between `fig10`
//!   and its `--ablation` superset, reuse the measurement instead of
//!   re-simulating. Set `GCR_MEASURE_CACHE=<file>` to persist the cache
//!   across processes (how `reproduce.sh` shares the base `fig10` points
//!   with the ablation pass).
//!
//! Only the expensive part — interpreting the program through the cache
//! hierarchy — is memoized. The per-strategy pass trace, fallback rungs
//! and labels are recomputed on every call, so a report produced from a
//! cache hit differs from a cold one only in pass wall-clocks (which
//! [`gcr_cli::ReportSet::normalized`] strips).

use crate::{Measurement, MEASURE_FUEL};
use gcr_apps::AppSpec;
use gcr_cache::{CostModel, MemoryHierarchy, MissCounts, PhasedHierarchySink};
use gcr_cli::report::SimSection;
use gcr_cli::Report;
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_core::Tracer;
use gcr_exec::{DataLayout, ExecEngine, ExecStats, Machine};
use gcr_ir::{GcrError, ParamBinding};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Content keys
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a. The standard library's `DefaultHasher` is only promised
/// stable within one compiler release; cache files persisted via
/// `GCR_MEASURE_CACHE` must outlive that, so the key hash is pinned here.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content key of one measurement: everything the simulated counters
/// depend on. Two strategy requests that optimize to the same program
/// text, layout and binding produce the same address stream, hence the
/// same measurement.
pub fn measurement_key(
    program_text: &str,
    layout: &DataLayout,
    bind: &ParamBinding,
    steps: usize,
    l1_scale: usize,
    l2_scale: usize,
) -> u64 {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(program_text.len() + 256);
    key.push_str(program_text);
    let _ = write!(key, "|bind={bind:?}|steps={steps}|l1={l1_scale}|l2={l2_scale}|layout=");
    let _ = write!(key, "total:{};", layout.total_bytes);
    for a in &layout.arrays {
        let _ = write!(key, "{}/{:?}/{:?};", a.base, a.strides, a.extents);
    }
    fnv1a(key.as_bytes())
}

// ---------------------------------------------------------------------------
// Measurement cache
// ---------------------------------------------------------------------------

/// The memoized portion of one measured run: exactly the data that is a
/// pure function of the [`measurement_key`] inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedRun {
    /// Interpreter statistics.
    pub stats: ExecStats,
    /// Total miss counters.
    pub misses: MissCounts,
    /// Modeled cycles.
    pub cycles: f64,
    /// Per-phase miss counters.
    pub phases: Vec<(String, MissCounts)>,
}

/// Header line of the on-disk cache format. `v2` adds a per-entry
/// checksum trailer (`k <fnv64>`), which is what makes torn writes,
/// truncation, and bit flips *detectable* instead of silently poisoning
/// measurements.
const DISK_SCHEMA: &str = "gcr-measure-cache/v2";

/// Default capacity (entries) of the in-memory LRU; override with
/// `GCR_MEASURE_CACHE_CAP`. Entries are a few hundred bytes, so the
/// default bounds the cache at a few MiB while being far above any
/// one sweep's working set.
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// Snapshot of the cache's health counters, surfaced in report JSON
/// (`SweepTiming`) and in the `gcr-serve` `report` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the measurement.
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Corrupt disk entries (or whole quarantined files) detected.
    pub corrupt: u64,
    /// Poisoned-lock recoveries (a panicking request died mid-access).
    pub poisoned: u64,
}

struct Entry {
    run: CachedRun,
    /// LRU recency stamp: the global tick at last touch.
    tick: u64,
}

/// A concurrent, crash-safe, content-keyed measurement cache, optionally
/// persisted to a file so separate processes (the base `fig10` run and
/// its `--ablation` superset, or a restarted `gcr-serve` daemon) share
/// points.
///
/// Robustness properties:
///
/// * **Atomic persistence** — [`MeasureCache::save`] writes a temp file
///   and renames it over the target, so a crash mid-flush leaves the old
///   file intact, never a torn one.
/// * **Corruption detection & quarantine** — every on-disk entry carries
///   an FNV-64 checksum. A truncated, bit-flipped or otherwise mangled
///   entry is skipped (and counted) at load; a file with a wrong or
///   missing schema header is renamed to `<path>.quarantined` so the
///   evidence survives. Either way the affected measurements are simply
///   recomputed — corruption costs time, never correctness.
/// * **Bounded memory** — at most `capacity` entries are held; inserting
///   past the bound evicts the least-recently-used entry.
/// * **Panic tolerance** — a thread that dies while holding the map lock
///   poisons it; subsequent accesses recover (the map's invariants hold
///   across unwinds) and count the event instead of cascading the crash.
pub struct MeasureCache {
    map: Mutex<HashMap<u64, Entry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    poisoned: AtomicU64,
    capacity: usize,
    disk: Option<String>,
}

impl Default for MeasureCache {
    fn default() -> MeasureCache {
        MeasureCache {
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            capacity: capacity_from_env(),
            disk: None,
        }
    }
}

fn capacity_from_env() -> usize {
    std::env::var("GCR_MEASURE_CACHE_CAP")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_CAPACITY)
}

impl MeasureCache {
    /// An empty in-memory cache.
    pub fn new() -> MeasureCache {
        MeasureCache::default()
    }

    /// An empty in-memory cache holding at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> MeasureCache {
        MeasureCache { capacity: capacity.max(1), ..MeasureCache::default() }
    }

    /// A cache persisted at `path`: pre-loaded from the file when it
    /// exists (corrupt entries are skipped and counted, mis-versioned
    /// files are quarantined — never fatal), written back by
    /// [`MeasureCache::save`].
    pub fn with_disk(path: impl Into<String>) -> MeasureCache {
        let path = path.into();
        let cache = MeasureCache::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            match parse_disk(&text) {
                DiskParse::Entries { entries, corrupt } => {
                    let mut map = cache.map.lock().unwrap();
                    for (key, run) in entries {
                        let tick = cache.tick.fetch_add(1, Ordering::Relaxed);
                        map.insert(key, Entry { run, tick });
                    }
                    drop(map);
                    cache.corrupt.fetch_add(corrupt, Ordering::Relaxed);
                }
                DiskParse::WrongSchema => {
                    // Not ours (or a pre-checksum version): move the file
                    // aside so the bytes survive for inspection and the
                    // next save starts clean.
                    cache.corrupt.fetch_add(1, Ordering::Relaxed);
                    let quarantine = format!("{path}.quarantined");
                    if std::fs::rename(&path, &quarantine).is_ok() {
                        eprintln!(
                            "gcr-measure-cache: {path} has a foreign or outdated header; \
                             quarantined to {quarantine}"
                        );
                    }
                }
            }
        }
        MeasureCache { disk: Some(path), ..cache }
    }

    /// The cache configured by `GCR_MEASURE_CACHE` (a file path), or a
    /// plain in-memory cache when the variable is unset.
    pub fn from_env() -> MeasureCache {
        match std::env::var("GCR_MEASURE_CACHE") {
            Ok(path) if !path.is_empty() => MeasureCache::with_disk(path),
            _ => MeasureCache::new(),
        }
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
        gcr_par::isolate::lock_recover(&self.map, &self.poisoned)
    }

    /// Looks up a key, counting the hit or miss and refreshing the
    /// entry's LRU recency on a hit.
    pub fn lookup(&self, key: u64) -> Option<CachedRun> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map();
        let got = map.get_mut(&key).map(|e| {
            e.tick = tick;
            e.run.clone()
        });
        drop(map);
        match got {
            Some(run) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a measurement under its key, evicting the least-recently
    /// used entries if the capacity bound is exceeded.
    pub fn insert(&self, key: u64, run: CachedRun) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map();
        map.insert(key, Entry { run, tick });
        while map.len() > self.capacity {
            // O(n) victim scan; capacities are small enough (≤ tens of
            // thousands) that this stays invisible next to a simulation.
            let Some(victim) = map.iter().min_by_key(|(_, e)| e.tick).map(|(&k, _)| k) else {
                break;
            };
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the measurement.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Corrupt disk entries (or quarantined files) detected so far.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// All health counters as one snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            corrupt: self.corrupt(),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Distinct measurements held.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when no measurement is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the cache back to its configured file (no-op for in-memory
    /// caches). Entries are sorted by key so the file is deterministic,
    /// and the write is atomic: content goes to a sibling temp file which
    /// is renamed over the target, so a crash mid-flush can tear the temp
    /// file but never the cache. Carries the `io_error` and
    /// `torn_cache_write` `GCR_FAULT` injection points.
    pub fn save(&self) -> std::io::Result<()> {
        use gcr_par::fault;
        let Some(path) = &self.disk else { return Ok(()) };
        let map = self.map();
        let mut keys: Vec<&u64> = map.keys().collect();
        keys.sort();
        let mut out = String::new();
        out.push_str(DISK_SCHEMA);
        out.push('\n');
        for k in keys {
            render_entry(&mut out, *k, &map[k].run);
        }
        drop(map);
        fault::maybe_io_error(fault::FaultPoint::IoError, "measure-cache flush")?;
        if fault::fires(fault::FaultPoint::TornCacheWrite) {
            // Chaos hook: behave like the pre-v2 non-atomic writer dying
            // mid-write — half the bytes land in the *final* path. The
            // next load must detect this and self-heal.
            let torn = &out.as_bytes()[..out.len() / 2];
            return std::fs::write(path, torn);
        }
        let tmp = format!("{path}.tmp.{}", std::process::id());
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }
}

fn render_counts(out: &mut String, c: &MissCounts) {
    use std::fmt::Write as _;
    let _ = write!(out, "{} {} {} {} {}", c.refs, c.l1, c.l2, c.tlb, c.memory_traffic);
}

/// Renders one entry block: the `e` line, `p` phase lines, then a `k`
/// checksum line covering the exact bytes of the block above it.
fn render_entry(out: &mut String, key: u64, run: &CachedRun) {
    use std::fmt::Write as _;
    let mut block = String::new();
    let _ = write!(
        block,
        "e {key:016x} {:016x} {} {} {} {} ",
        run.cycles.to_bits(),
        run.stats.instances,
        run.stats.flops,
        run.stats.reads,
        run.stats.writes
    );
    render_counts(&mut block, &run.misses);
    let _ = writeln!(block, " {}", run.phases.len());
    for (label, c) in &run.phases {
        block.push_str("p ");
        render_counts(&mut block, c);
        // Label last: it may contain spaces, the counters cannot.
        let _ = writeln!(block, " {label}");
    }
    let _ = writeln!(block, "k {:016x}", fnv1a(block.as_bytes()));
    out.push_str(&block);
}

enum DiskParse {
    /// Parsed (possibly partially): intact entries plus the number of
    /// corrupt blocks that were skipped.
    Entries { entries: Vec<(u64, CachedRun)>, corrupt: u64 },
    /// The header is not this format's — quarantine the whole file.
    WrongSchema,
}

/// Parses one entry block starting at `lines[at]` (which begins with
/// `"e "`). Returns the parsed entry and the index one past its checksum
/// line, or `None` if the block is truncated, mangled, or fails its
/// checksum.
fn parse_entry(lines: &[&str], at: usize) -> Option<(u64, CachedRun, usize)> {
    let mut f = lines[at].strip_prefix("e ")?.split_ascii_whitespace();
    let key = u64::from_str_radix(f.next()?, 16).ok()?;
    let cycles = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
    let mut n = || f.next()?.parse::<u64>().ok();
    let stats = ExecStats { instances: n()?, flops: n()?, reads: n()?, writes: n()? };
    let mut counts = || -> Option<MissCounts> {
        Some(MissCounts { refs: n()?, l1: n()?, l2: n()?, tlb: n()?, memory_traffic: n()? })
    };
    let misses = counts()?;
    let nphases = n()? as usize;
    let mut phases = Vec::with_capacity(nphases);
    for i in 0..nphases {
        let pline = lines.get(at + 1 + i)?.strip_prefix("p ")?;
        let mut f = pline.splitn(6, ' ');
        let mut n = || f.next()?.parse::<u64>().ok();
        let c = MissCounts { refs: n()?, l1: n()?, l2: n()?, tlb: n()?, memory_traffic: n()? };
        phases.push((f.next()?.to_string(), c));
    }
    let kline = lines.get(at + 1 + nphases)?.strip_prefix("k ")?;
    let want = u64::from_str_radix(kline.trim(), 16).ok()?;
    // Recompute the checksum over the block's exact rendered bytes.
    let mut block = String::new();
    for line in &lines[at..at + 1 + nphases] {
        block.push_str(line);
        block.push('\n');
    }
    if fnv1a(block.as_bytes()) != want {
        return None;
    }
    Some((key, CachedRun { stats, misses, cycles, phases }, at + 2 + nphases))
}

fn parse_disk(text: &str) -> DiskParse {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&DISK_SCHEMA) {
        return DiskParse::WrongSchema;
    }
    let mut entries = Vec::new();
    let mut corrupt = 0u64;
    let mut at = 1;
    while at < lines.len() {
        if !lines[at].starts_with("e ") {
            // Stray line (torn phase list, garbage): count once and resync
            // at the next entry head.
            corrupt += 1;
            at += 1;
            while at < lines.len() && !lines[at].starts_with("e ") {
                at += 1;
            }
            continue;
        }
        match parse_entry(&lines, at) {
            Some((key, run, next)) => {
                entries.push((key, run));
                at = next;
            }
            None => {
                corrupt += 1;
                at += 1;
                while at < lines.len() && !lines[at].starts_with("e ") {
                    at += 1;
                }
            }
        }
    }
    DiskParse::Entries { entries, corrupt }
}

// ---------------------------------------------------------------------------
// Cached measurement
// ---------------------------------------------------------------------------

/// [`crate::try_measure_strategy_report`] with the simulation memoized in
/// `cache`: optimization (cheap, and the source of the per-strategy pass
/// trace) always runs; the interpreter + hierarchy pass (expensive) is
/// skipped when an identical program/layout/binding was already measured.
pub fn measure_strategy_report_cached(
    cache: &MeasureCache,
    generator: &str,
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
) -> Result<(Measurement, Report, Vec<String>), GcrError> {
    let engine = ExecEngine::from_env().unwrap_or_default();
    measure_strategy_report_cached_with(cache, generator, app, strategy, size, steps, engine)
}

/// [`measure_strategy_report_cached`] with an explicit execution engine.
/// Both engines produce the identical measurement (the compiled tape is
/// observationally equivalent to the interpreter), so the cache key is
/// engine-agnostic — the engine only changes how long a cold miss takes.
#[allow(clippy::too_many_arguments)]
pub fn measure_strategy_report_cached_with(
    cache: &MeasureCache,
    generator: &str,
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
    engine: ExecEngine,
) -> Result<(Measurement, Report, Vec<String>), GcrError> {
    let (prog, bind) = (app.build)(size);
    let mut tracer = Tracer::enabled();
    let opt =
        apply_strategy_checked_traced(&prog, strategy, &SafetyOptions::default(), &mut tracer)?;
    let layout = opt.layout(&bind);
    let key = measurement_key(
        &gcr_ir::print::print_program(&opt.program),
        &layout,
        &bind,
        steps,
        app.l1_scale,
        app.l2_scale,
    );
    let run = match cache.lookup(key) {
        Some(run) => run,
        None => {
            // `GCR_FAULT=slow_sim` chaos hook: stall the expensive path a
            // deadline-driven caller actually waits on. Inert unless the
            // environment arms it.
            gcr_par::fault::maybe_sleep(gcr_par::fault::FaultPoint::SlowSim);
            let mut machine = Machine::try_with_layout(
                &opt.program,
                bind,
                layout,
                Some(gcr_core::checked::DEFAULT_MAX_BYTES),
            )?
            .with_engine(engine);
            let mut sink = PhasedHierarchySink::new(
                MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale),
                &opt.program,
            );
            machine.run_steps_guarded(&mut sink, steps, MEASURE_FUEL)?;
            let misses = sink.hierarchy.counts();
            let stats = machine.stats();
            let cycles = CostModel::default().cycles(&stats, &misses);
            let run = CachedRun { stats, misses, cycles, phases: sink.phases() };
            cache.insert(key, run.clone());
            run
        }
    };
    let mut label = strategy.label();
    if opt.robustness.degraded() {
        label = format!("{} (degraded: {})", opt.robustness.strategy, label);
    }
    let mut report = Report::new(generator, &prog, strategy.label(), &opt, tracer.into_events());
    report.simulation = Some(SimSection {
        size,
        steps,
        cycles: run.cycles,
        flops: run.stats.flops,
        total: run.misses,
        phases: run.phases,
    });
    let measurement =
        Measurement { label, stats: run.stats, misses: run.misses, cycles: run.cycles };
    Ok((measurement, report, opt.robustness.describe()))
}

// ---------------------------------------------------------------------------
// Job fan-out
// ---------------------------------------------------------------------------

/// One independent measurement: an app, a strategy, and the run geometry.
#[derive(Clone, Copy)]
pub struct SweepJob<'a> {
    /// The application under measurement.
    pub app: &'a AppSpec,
    /// The program version.
    pub strategy: Strategy,
    /// Size parameter.
    pub size: i64,
    /// Time steps.
    pub steps: usize,
}

/// What one job produces: the measurement, its report, and any
/// degradation diagnostics — or the error that disqualified it.
pub type JobResult = Result<(Measurement, Report, Vec<String>), GcrError>;

/// Runs a job list on `threads` workers (0 = [`gcr_par::thread_count`],
/// which honours `GCR_THREADS`). Results are returned in input order and
/// each measurement is memoized in `cache`, so output is byte-identical
/// across thread counts and repeat runs.
pub fn run_jobs(
    threads: usize,
    cache: &MeasureCache,
    generator: &str,
    jobs: &[SweepJob<'_>],
) -> Vec<JobResult> {
    run_jobs_with(threads, cache, generator, jobs, ExecEngine::from_env().unwrap_or_default())
}

/// [`run_jobs`] with an explicit execution engine for every job — how
/// `sweep_bench` times a cold interpreter sweep against a cold compiled
/// sweep without touching `GCR_EXEC` (env mutation is racy under threads).
pub fn run_jobs_with(
    threads: usize,
    cache: &MeasureCache,
    generator: &str,
    jobs: &[SweepJob<'_>],
    engine: ExecEngine,
) -> Vec<JobResult> {
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    gcr_par::scope_map_with(threads, jobs, |job| {
        measure_strategy_report_cached_with(
            cache,
            generator,
            job.app,
            job.strategy,
            job.size,
            job.steps,
            engine,
        )
    })
}

/// The jobs of one app under the given strategies (the common shape of the
/// experiment binaries' sweeps).
pub fn app_jobs<'a>(
    app: &'a AppSpec,
    strategies: &[Strategy],
    size: i64,
    steps: usize,
) -> Vec<SweepJob<'a>> {
    strategies.iter().map(|&strategy| SweepJob { app, strategy, size, steps }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig10_strategies;

    fn small_jobs(apps: &[AppSpec]) -> (Vec<SweepJob<'_>>, Vec<usize>) {
        let mut jobs = Vec::new();
        let mut per_app = Vec::new();
        for app in apps {
            let added = app_jobs(app, &fig10_strategies(app.name), 12, 1);
            per_app.push(added.len());
            jobs.extend(added);
        }
        (jobs, per_app)
    }

    #[test]
    fn cached_measurement_equals_uncached() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let cache = MeasureCache::new();
        let strategy = Strategy::FusionOnly { levels: 3 };
        let (cold, cold_report, _) =
            measure_strategy_report_cached(&cache, "t", adi, strategy, 16, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (warm, warm_report, _) =
            measure_strategy_report_cached(&cache, "t", adi, strategy, 16, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cold.misses, warm.misses);
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(cold.cycles, warm.cycles);
        let reference = crate::try_measure_strategy_report("t", adi, strategy, 16, 2).unwrap();
        assert_eq!(warm.misses, reference.0.misses, "memoized totals must match direct path");
        assert_eq!(
            warm_report.clone().normalized().to_json(),
            reference.1.clone().normalized().to_json(),
            "memoized report must match direct path modulo wall clocks"
        );
        assert_eq!(
            cold_report.normalized().to_json(),
            warm_report.normalized().to_json(),
            "hit and miss paths must serialize identically"
        );
    }

    #[test]
    fn parallel_jobs_match_serial_in_order() {
        let apps = gcr_apps::evaluation_apps();
        let (jobs, _) = small_jobs(&apps);
        let serial_cache = MeasureCache::new();
        let serial = run_jobs(1, &serial_cache, "t", &jobs);
        let par_cache = MeasureCache::new();
        let par = run_jobs(4, &par_cache, "t", &jobs);
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.0.label, p.0.label);
            assert_eq!(s.0.misses, p.0.misses);
            assert_eq!(s.0.cycles, p.0.cycles);
        }
    }

    #[test]
    fn engines_produce_identical_sweep_results() {
        let apps = gcr_apps::evaluation_apps();
        let (jobs, _) = small_jobs(&apps);
        let interp_cache = MeasureCache::new();
        let interp = run_jobs_with(2, &interp_cache, "t", &jobs, ExecEngine::Interp);
        let compiled_cache = MeasureCache::new();
        let compiled = run_jobs_with(2, &compiled_cache, "t", &jobs, ExecEngine::Compiled);
        assert_eq!(interp.len(), compiled.len());
        for (i, c) in interp.iter().zip(&compiled) {
            let (i, c) = (i.as_ref().unwrap(), c.as_ref().unwrap());
            assert_eq!(i.0.label, c.0.label);
            assert_eq!(i.0.stats, c.0.stats);
            assert_eq!(i.0.misses, c.0.misses);
            assert_eq!(i.0.cycles.to_bits(), c.0.cycles.to_bits());
            assert_eq!(
                i.1.clone().normalized().to_json(),
                c.1.clone().normalized().to_json(),
                "engine choice must not leak into the report body"
            );
        }
    }

    #[test]
    fn disk_cache_round_trips() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let dir = std::env::temp_dir().join(format!("gcr-measure-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let path_s = path.to_str().unwrap().to_string();
        let cache = MeasureCache::with_disk(path_s.clone());
        let (m1, _, _) =
            measure_strategy_report_cached(&cache, "t", adi, Strategy::Original, 14, 1).unwrap();
        assert_eq!(cache.misses(), 1);
        cache.save().unwrap();
        // A second process: loads the file, answers without simulating.
        let warm = MeasureCache::with_disk(path_s);
        assert_eq!(warm.len(), 1);
        let (m2, _, _) =
            measure_strategy_report_cached(&warm, "t", adi, Strategy::Original, 14, 1).unwrap();
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(m1.misses, m2.misses);
        assert_eq!(m1.cycles.to_bits(), m2.cycles.to_bits());
        assert_eq!(m1.stats, m2.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_parse_quarantines_foreign_and_skips_garbage() {
        assert!(matches!(parse_disk("not-a-cache\n"), DiskParse::WrongSchema));
        // The pre-checksum v1 format is treated as foreign: its entries
        // carry no integrity information, so trusting them would defeat
        // the corruption detection the format migration paid for.
        assert!(matches!(parse_disk("gcr-measure-cache/v1\n"), DiskParse::WrongSchema));
        match parse_disk("gcr-measure-cache/v2\ngarbage line\n") {
            DiskParse::Entries { entries, corrupt } => {
                assert!(entries.is_empty());
                assert_eq!(corrupt, 1);
            }
            DiskParse::WrongSchema => panic!("v2 header must parse"),
        }
        match parse_disk("gcr-measure-cache/v2\n") {
            DiskParse::Entries { entries, corrupt } => {
                assert!(entries.is_empty());
                assert_eq!(corrupt, 0);
            }
            DiskParse::WrongSchema => panic!("v2 header must parse"),
        }
    }

    #[test]
    fn entry_round_trips_and_checksum_rejects_flips() {
        let run = CachedRun {
            stats: ExecStats { instances: 4, flops: 9, reads: 20, writes: 10 },
            misses: MissCounts { refs: 30, l1: 5, l2: 2, tlb: 1, memory_traffic: 256 },
            cycles: 123.5,
            phases: vec![(
                "phase with spaces".into(),
                MissCounts { refs: 30, l1: 5, l2: 2, tlb: 1, memory_traffic: 256 },
            )],
        };
        let mut text = String::from("gcr-measure-cache/v2\n");
        render_entry(&mut text, 0xabcd, &run);
        match parse_disk(&text) {
            DiskParse::Entries { entries, corrupt } => {
                assert_eq!(corrupt, 0);
                assert_eq!(entries, vec![(0xabcd, run.clone())]);
            }
            DiskParse::WrongSchema => panic!("round trip lost the header"),
        }
        // One flipped digit anywhere in the block must fail the checksum.
        let flipped = text.replacen("20", "21", 1);
        assert_ne!(flipped, text, "test must actually flip a byte");
        match parse_disk(&flipped) {
            DiskParse::Entries { entries, corrupt } => {
                assert!(entries.is_empty(), "corrupt entry must not load");
                assert_eq!(corrupt, 1);
            }
            DiskParse::WrongSchema => panic!("header untouched"),
        }
    }

    #[test]
    fn lru_evicts_oldest_and_hits_refresh() {
        let cache = MeasureCache::with_capacity(2);
        let run = |cycles: f64| CachedRun {
            stats: ExecStats::default(),
            misses: MissCounts::default(),
            cycles,
            phases: Vec::new(),
        };
        cache.insert(1, run(1.0));
        cache.insert(2, run(2.0));
        assert!(cache.lookup(1).is_some(), "touch 1 so 2 is the LRU victim");
        cache.insert(3, run(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(1).is_some(), "recently used survives");
        assert!(cache.lookup(3).is_some(), "new entry survives");
        assert!(cache.lookup(2).is_none(), "LRU victim evicted");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.corrupt), (3, 1, 1, 0));
    }

    #[test]
    fn key_distinguishes_every_input() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let (prog, bind) = (adi.build)(16);
        let opt = gcr_core::pipeline::apply_strategy(&prog, Strategy::Original);
        let layout = opt.layout(&bind);
        let text = gcr_ir::print::print_program(&opt.program);
        let base = measurement_key(&text, &layout, &bind, 2, 16, 64);
        assert_ne!(base, measurement_key(&text, &layout, &bind, 3, 16, 64), "steps");
        assert_ne!(base, measurement_key(&text, &layout, &bind, 2, 8, 64), "l1 scale");
        assert_ne!(base, measurement_key(&text, &layout, &bind, 2, 16, 32), "l2 scale");
        let (_, bind2) = (adi.build)(18);
        assert_ne!(base, measurement_key(&text, &layout, &bind2, 2, 16, 64), "binding");
        let mut text2 = text.clone();
        text2.push(' ');
        assert_ne!(base, measurement_key(&text2, &layout, &bind, 2, 16, 64), "program text");
    }
}
