//! Figure 3 — "Effect of reuse-driven execution".
//!
//! Reuse-distance histograms (log₂ bins, counts in thousands) for ADI at
//! 50² and 100² and SP at 14³ and 28³, comparing program order against
//! reuse-driven execution; the SP 28³ plot adds the third curve of the
//! paper, reuse-based fusion. The headline feature to look for is the
//! "elevated hills" at large distances in program order that shrink or
//! move left under reuse-driven execution, and how the hills move right as
//! the input grows (the evadable reuses).
//!
//! A machine-readable report set (schema `gcr-report-set/v1`, one entry
//! per plot; the curves ride in the profile section's `per_phase` list,
//! labelled by execution order) is written to `results/fig3.json`
//! (override with `--json <path>`).
//!
//! The four plots are independent, so they run as one job list on the
//! parallel sweep engine (`GCR_THREADS`/`--threads`); each worker renders
//! its text plot off-thread and the driver prints them in input order, so
//! stdout and the JSON are byte-identical across thread counts.
//!
//! Usage: `fig3 [--quick] [--threads N] [--json PATH]`

use gcr_bench::{capture_trace, histogram_text};
use gcr_cli::report::{ProfileSection, ProgramInfo};
use gcr_cli::{Report, ReportSet, SweepTiming};
use gcr_core::{fuse_program, FusionOptions};
use gcr_ir::ParamBinding;
use gcr_reuse::driven::{measure_order, measure_program_order, reuse_driven_order};
use gcr_reuse::{Histogram, ReuseProfile};
use std::time::Instant;

struct PlotJob {
    name: String,
    prog: gcr_ir::Program,
    size: i64,
    with_fusion: bool,
}

fn main() {
    // Fail fast on a bad GCR_EXEC instead of silently measuring under the
    // default engine.
    if let Err(e) = gcr_exec::ExecEngine::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let json_path = get("--json").unwrap_or_else(|| "results/fig3.json".into());
    let adi_sizes: &[i64] = if quick { &[26, 50] } else { &[50, 100] };
    let sp_sizes: &[i64] = if quick { &[8, 14] } else { &[14, 28] };
    let mut set = ReportSet::new("fig3", "Figure 3: effect of reuse-driven execution");

    let mut jobs: Vec<PlotJob> = Vec::new();
    for &n in adi_sizes {
        jobs.push(PlotJob {
            name: format!("ADI, {n}x{n}"),
            prog: gcr_apps::adi::program(),
            size: n,
            with_fusion: false,
        });
    }
    for &n in sp_sizes {
        jobs.push(PlotJob {
            name: format!("NAS/SP, {n}x{n}x{n}"),
            prog: gcr_apps::sp::program(),
            size: n,
            with_fusion: n == *sp_sizes.last().unwrap(),
        });
    }

    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    let start = Instant::now();
    let results = gcr_par::scope_map_with(threads, &jobs, plot);
    let wall_ns = start.elapsed().as_nanos() as u64;
    for (text, report) in results {
        print!("{text}");
        set.reports.push(report);
    }
    set.timing = Some(SweepTiming {
        threads,
        wall_ns,
        memo_misses: jobs.len() as u64,
        ..SweepTiming::default()
    });
    match set.write(&json_path) {
        Ok(()) => {
            println!("\nJSON report set ({} plots) written to {json_path}", set.reports.len())
        }
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}

fn plot(job: &PlotJob) -> (String, Report) {
    let PlotJob { name, prog, size, with_fusion } = job;
    let bind = ParamBinding::new(vec![*size]);
    let trace = capture_trace(prog, bind.clone());
    let (h_prog, _) = measure_program_order(&trace);
    let order = reuse_driven_order(&trace);
    let (h_driven, _) = measure_order(&trace, &order);
    let mut curves: Vec<(String, Histogram)> =
        vec![("program order".into(), h_prog.clone()), ("reuse-driven".into(), h_driven.clone())];
    let text = if *with_fusion {
        // Third curve: reuse-based fusion (source-level), program order.
        let opt = gcr_core::pipeline::OptimizeOptions::default();
        let mut fused = prog.clone();
        gcr_core::prelim::preliminary(&mut fused, opt.small_dim_limit);
        fuse_program(&mut fused, &FusionOptions::default());
        let ftrace = capture_trace(&fused, bind);
        let (h_fused, _) = measure_program_order(&ftrace);
        curves.insert(1, ("reuse-fusion".into(), h_fused.clone()));
        histogram_text(
            name,
            &[("program order", &h_prog), ("reuse-fusion", &h_fused), ("reuse-driven", &h_driven)],
        )
    } else {
        histogram_text(name, &[("program order", &h_prog), ("reuse-driven", &h_driven)])
    };
    let info = ProgramInfo::of(prog);
    let report = Report {
        generator: "fig3".into(),
        program: info.clone(),
        output: info,
        requested: name.clone(),
        delivered: name.clone(),
        checks: 0,
        oracle_disabled: None,
        trace: Vec::new(),
        fallbacks: Vec::new(),
        profile: Some(ProfileSection {
            size: *size,
            steps: 1,
            profile: ReuseProfile {
                granularity: 8,
                global: h_prog,
                per_array: Vec::new(),
                per_phase: curves,
            },
        }),
        simulation: None,
        hierarchy: None,
        prediction: None,
    };
    (text, report)
}
