//! Figure 3 — "Effect of reuse-driven execution".
//!
//! Reuse-distance histograms (log₂ bins, counts in thousands) for ADI at
//! 50² and 100² and SP at 14³ and 28³, comparing program order against
//! reuse-driven execution; the SP 28³ plot adds the third curve of the
//! paper, reuse-based fusion. The headline feature to look for is the
//! "elevated hills" at large distances in program order that shrink or
//! move left under reuse-driven execution, and how the hills move right as
//! the input grows (the evadable reuses).
//!
//! A machine-readable report set (schema `gcr-report-set/v1`, one entry
//! per plot; the curves ride in the profile section's `per_phase` list,
//! labelled by execution order) is written to `results/fig3.json`
//! (override with `--json <path>`).
//!
//! Usage: `fig3 [--quick] [--json PATH]`

use gcr_bench::{capture_trace, render_histogram};
use gcr_cli::report::{ProfileSection, ProgramInfo};
use gcr_cli::{Report, ReportSet};
use gcr_core::{fuse_program, FusionOptions};
use gcr_ir::ParamBinding;
use gcr_reuse::driven::{measure_order, measure_program_order, reuse_driven_order};
use gcr_reuse::{Histogram, ReuseProfile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/fig3.json".into());
    let adi_sizes: &[i64] = if quick { &[26, 50] } else { &[50, 100] };
    let sp_sizes: &[i64] = if quick { &[8, 14] } else { &[14, 28] };
    let mut set = ReportSet::new("fig3", "Figure 3: effect of reuse-driven execution");

    for &n in adi_sizes {
        let prog = gcr_apps::adi::program();
        plot(&mut set, &format!("ADI, {n}x{n}"), &prog, ParamBinding::new(vec![n]), n, false);
    }
    for &n in sp_sizes {
        let prog = gcr_apps::sp::program();
        let with_fusion = n == *sp_sizes.last().unwrap();
        plot(
            &mut set,
            &format!("NAS/SP, {n}x{n}x{n}"),
            &prog,
            ParamBinding::new(vec![n]),
            n,
            with_fusion,
        );
    }
    match set.write(&json_path) {
        Ok(()) => {
            println!("\nJSON report set ({} plots) written to {json_path}", set.reports.len())
        }
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}

fn plot(
    set: &mut ReportSet,
    name: &str,
    prog: &gcr_ir::Program,
    bind: ParamBinding,
    size: i64,
    with_fusion: bool,
) {
    let trace = capture_trace(prog, bind.clone());
    let (h_prog, _) = measure_program_order(&trace);
    let order = reuse_driven_order(&trace);
    let (h_driven, _) = measure_order(&trace, &order);
    let mut curves: Vec<(String, Histogram)> =
        vec![("program order".into(), h_prog.clone()), ("reuse-driven".into(), h_driven.clone())];
    if with_fusion {
        // Third curve: reuse-based fusion (source-level), program order.
        let mut fused = prog.clone();
        let opt = gcr_core::pipeline::OptimizeOptions::default();
        let mut f = fused.clone();
        gcr_core::prelim::preliminary(&mut f, opt.small_dim_limit);
        fuse_program(&mut f, &FusionOptions::default());
        fused = f;
        let ftrace = capture_trace(&fused, bind);
        let (h_fused, _) = measure_program_order(&ftrace);
        curves.insert(1, ("reuse-fusion".into(), h_fused.clone()));
        render_histogram(
            name,
            &[("program order", &h_prog), ("reuse-fusion", &h_fused), ("reuse-driven", &h_driven)],
        );
    } else {
        render_histogram(name, &[("program order", &h_prog), ("reuse-driven", &h_driven)]);
    }
    let info = ProgramInfo::of(prog);
    set.reports.push(Report {
        generator: "fig3".into(),
        program: info.clone(),
        output: info,
        requested: name.into(),
        delivered: name.into(),
        checks: 0,
        oracle_disabled: None,
        trace: Vec::new(),
        fallbacks: Vec::new(),
        profile: Some(ProfileSection {
            size,
            steps: 1,
            profile: ReuseProfile {
                granularity: 8,
                global: h_prog,
                per_array: Vec::new(),
                per_phase: curves,
            },
        }),
        simulation: None,
    });
}
