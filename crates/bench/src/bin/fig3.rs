//! Figure 3 — "Effect of reuse-driven execution".
//!
//! Reuse-distance histograms (log₂ bins, counts in thousands) for ADI at
//! 50² and 100² and SP at 14³ and 28³, comparing program order against
//! reuse-driven execution; the SP 28³ plot adds the third curve of the
//! paper, reuse-based fusion. The headline feature to look for is the
//! "elevated hills" at large distances in program order that shrink or
//! move left under reuse-driven execution, and how the hills move right as
//! the input grows (the evadable reuses).
//!
//! Usage: `fig3 [--quick]`

use gcr_bench::{capture_trace, render_histogram};
use gcr_core::{fuse_program, FusionOptions};
use gcr_ir::ParamBinding;
use gcr_reuse::driven::{measure_order, measure_program_order, reuse_driven_order};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let adi_sizes: &[i64] = if quick { &[26, 50] } else { &[50, 100] };
    let sp_sizes: &[i64] = if quick { &[8, 14] } else { &[14, 28] };

    for &n in adi_sizes {
        let prog = gcr_apps::adi::program();
        plot(&format!("ADI, {n}x{n}"), &prog, ParamBinding::new(vec![n]), false);
    }
    for &n in sp_sizes {
        let prog = gcr_apps::sp::program();
        let with_fusion = n == *sp_sizes.last().unwrap();
        plot(&format!("NAS/SP, {n}x{n}x{n}"), &prog, ParamBinding::new(vec![n]), with_fusion);
    }
}

fn plot(name: &str, prog: &gcr_ir::Program, bind: ParamBinding, with_fusion: bool) {
    let trace = capture_trace(prog, bind.clone());
    let (h_prog, _) = measure_program_order(&trace);
    let order = reuse_driven_order(&trace);
    let (h_driven, _) = measure_order(&trace, &order);
    if with_fusion {
        // Third curve: reuse-based fusion (source-level), program order.
        let mut fused = prog.clone();
        let opt = gcr_core::pipeline::OptimizeOptions::default();
        let mut f = fused.clone();
        gcr_core::prelim::preliminary(&mut f, opt.small_dim_limit);
        fuse_program(&mut f, &FusionOptions::default());
        fused = f;
        let ftrace = capture_trace(&fused, bind);
        let (h_fused, _) = measure_program_order(&ftrace);
        render_histogram(
            name,
            &[("program order", &h_prog), ("reuse-fusion", &h_fused), ("reuse-driven", &h_driven)],
        );
    } else {
        render_histogram(name, &[("program order", &h_prog), ("reuse-driven", &h_driven)]);
    }
}
