//! `static_bench` — analytic prediction vs trace simulation wall time.
//!
//! The symbolic reuse model ([`gcr_static`]) pays a one-time fitting cost
//! (a handful of probe simulations at small fixed sizes) and then answers
//! any capacity sweep by evaluating a few polynomials — microseconds,
//! independent of `N`. This benchmark makes that trade concrete on the
//! stream kernel: it times model construction once, then compares
//! per-size evaluation against a full [`gcr_cache::CapacitySweepSink`]
//! simulation at N ∈ {10³, 10⁴, 10⁶, 10⁹}. Simulation is skipped above
//! [`MAX_SIM_SIZE`] (a 10⁹-element simulation would take hours — which is
//! the point); prediction still answers there, exactly.
//!
//! Results merge into the `static_bench` section of `BENCH_sweep.json`
//! (`--json PATH` overrides), preserving every other section.
//!
//! Usage: `static_bench [--evals N] [--json PATH]`

use gcr_cache::CapacitySweepSink;
use gcr_cli::report::Json;
use gcr_ir::ParamBinding;
use std::time::Instant;

/// Largest size worth simulating interactively (5·10⁶ traced accesses at
/// this program's shape).
const MAX_SIM_SIZE: i64 = 1_000_000;

const LINE: u64 = 32;
const CAPACITIES: [u64; 3] = [256, 1024, 4096];
const SIZES: [i64; 4] = [1_000, 10_000, 1_000_000, 1_000_000_000];

const SRC: &str = "
program stream
param N
array A[N], B[N], C[N]

for i = 1, N {
  B[i] = f(A[i])
}
for i = 1, N {
  C[i] = g(B[i], C[i])
}
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let evals: u32 = get("--evals").map(|v| v.parse().unwrap()).unwrap_or(1000);
    let json_path = get("--json").unwrap_or_else(|| "BENCH_sweep.json".into());

    let prog = gcr_frontend::parse(SRC).expect("benchmark program parses");
    let spec = gcr_static::SweepSpec::new(LINE, CAPACITIES.to_vec(), 1);

    let t0 = Instant::now();
    let analyzer = gcr_static::Analyzer::analyze(&prog, spec).expect("stream is analyzable");
    let model_build_ns = t0.elapsed().as_nanos() as u64;
    let model = analyzer.model();
    println!(
        "model: {} class, degree {}, period {}, regime base {}, {} probe sims, built in {:.2} ms",
        model.class.name(),
        model.degree,
        model.period,
        model.base,
        model.probe_sims,
        model_build_ns as f64 / 1e6
    );

    let mut rows = Vec::new();
    for &n in &SIZES {
        // Evaluation cost: a single predict() is sub-microsecond, so time
        // a batch and report the mean.
        let t0 = Instant::now();
        let mut p = analyzer.predict(n).expect("prediction in regime");
        for _ in 1..evals {
            p = analyzer.predict(n).expect("prediction in regime");
        }
        let eval_ns = (t0.elapsed().as_nanos() as u64) / u64::from(evals.max(1));

        let sim = (n <= MAX_SIM_SIZE).then(|| {
            let binding = ParamBinding::new(vec![n; prog.params.len()]);
            let mut m = gcr_exec::Machine::new(&prog, binding);
            let mut sink = CapacitySweepSink::new(LINE, &CAPACITIES);
            let t0 = Instant::now();
            m.run(&mut sink);
            let ns = t0.elapsed().as_nanos() as u64;
            (ns, sink)
        });

        let (simulation_ns, speedup) = match &sim {
            Some((ns, sink)) => {
                // The benchmark is only honest if both sides agree.
                for cp in &p.capacities {
                    assert_eq!(
                        cp.misses,
                        sink.misses(cp.capacity) as u128,
                        "prediction diverged from simulation at N={n}, {}B",
                        cp.capacity
                    );
                }
                (Json::U(*ns), Json::F(*ns as f64 / (eval_ns.max(1)) as f64))
            }
            None => (Json::Null, Json::Null),
        };
        println!(
            "N={n:>10}: eval {:>8} ns ({}), simulation {}",
            eval_ns,
            p.method.name(),
            match &sim {
                Some((ns, _)) => format!(
                    "{:.1} ms ({:.0}x slower)",
                    *ns as f64 / 1e6,
                    *ns as f64 / eval_ns.max(1) as f64
                ),
                None => format!("skipped (> {MAX_SIM_SIZE} elements)"),
            }
        );

        let misses: Vec<Json> = p
            .capacities
            .iter()
            .map(|cp| {
                Json::O(vec![
                    ("capacity_bytes", Json::U(cp.capacity)),
                    ("misses", big_json(cp.misses)),
                ])
            })
            .collect();
        rows.push(Json::O(vec![
            ("n", Json::I(n)),
            ("method", Json::S(p.method.name().into())),
            ("eval_ns", Json::U(eval_ns)),
            ("simulation_ns", simulation_ns),
            ("speedup", speedup),
            ("refs", big_json(p.refs)),
            ("misses", Json::A(misses)),
        ]));
    }

    let section = Json::O(vec![
        ("program", Json::S("stream".into())),
        ("line_bytes", Json::U(LINE)),
        ("capacities", Json::A(CAPACITIES.iter().map(|&c| Json::U(c)).collect())),
        ("class", Json::S(model.class.name().into())),
        ("degree", Json::U(model.degree as u64)),
        ("probe_sims", Json::U(u64::from(model.probe_sims))),
        ("model_build_ns", Json::U(model_build_ns)),
        ("evals_per_point", Json::U(u64::from(evals))),
        ("sizes", Json::A(rows)),
    ]);
    merge_section(&json_path, "static_bench", section);
    println!("static_bench section merged into {json_path}");
}

fn big_json(v: u128) -> Json {
    if v <= u64::MAX as u128 {
        Json::U(v as u64)
    } else {
        Json::F(v as f64)
    }
}

/// Replaces (or appends) one top-level section of the benchmark JSON,
/// preserving everything the other benchmark binaries wrote.
fn merge_section(path: &str, key: &'static str, section: Json) {
    let base = std::fs::read_to_string(path).ok().and_then(|t| Json::parse(&t).ok());
    let json = match base {
        Some(Json::O(mut fields)) => {
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = section,
                None => fields.push((key, section)),
            }
            Json::O(fields)
        }
        _ => Json::O(vec![("schema", Json::S("gcr-bench-sweep/v1".into())), (key, section)]),
    };
    std::fs::write(path, json.render()).unwrap_or_else(|e| panic!("could not write {path}: {e}"));
}
