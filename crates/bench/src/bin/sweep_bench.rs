//! Sweep-engine benchmark: runs the Figure-10 measurement sweep serially
//! and in parallel, checks the outputs are byte-identical, and records
//! both wall times (plus the memoization effect of a warm content-keyed
//! cache) in `BENCH_sweep.json` at the repository root.
//!
//! This is the acceptance artifact for the parallel sweep engine: the
//! `speedup` field is honest wall clock on whatever host ran it (1.0-ish
//! on a single-core container), and `identical` proves the parallelism
//! changed nothing but time.
//!
//! Usage: `sweep_bench [--size-scale F] [--steps K] [--threads N]
//! [--json PATH]`

use gcr_bench::sweep::{app_jobs, run_jobs, JobResult, MeasureCache};
use gcr_bench::{fig10_strategies, STEPS};
use gcr_cli::report::Json;
use gcr_cli::ReportSet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scale: f64 = get("--size-scale").map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let steps: usize = get("--steps").map(|s| s.parse().unwrap()).unwrap_or(STEPS);
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    let json_path = get("--json").unwrap_or_else(|| "BENCH_sweep.json".into());

    let apps = gcr_apps::evaluation_apps();
    let mut jobs = Vec::new();
    for app in &apps {
        let size = ((app.default_size as f64 * scale) as i64).max(8);
        jobs.extend(app_jobs(app, &fig10_strategies(app.name), size, steps));
    }

    // Serial reference: one worker, cold cache.
    let serial_cache = MeasureCache::new();
    let t0 = Instant::now();
    let serial = run_jobs(1, &serial_cache, "sweep_bench", &jobs);
    let serial_ns = t0.elapsed().as_nanos() as u64;

    // Parallel run: cold cache again, so the comparison is pure threading.
    let par_cache = MeasureCache::new();
    let t1 = Instant::now();
    let parallel = run_jobs(threads, &par_cache, "sweep_bench", &jobs);
    let parallel_ns = t1.elapsed().as_nanos() as u64;

    let identical = normalized_json(&serial) == normalized_json(&parallel);

    // Warm re-run on the parallel cache: every measurement memoized.
    let warm_hits_before = par_cache.hits();
    let t2 = Instant::now();
    let _warm = run_jobs(threads, &par_cache, "sweep_bench", &jobs);
    let warm_ns = t2.elapsed().as_nanos() as u64;
    let warm_hits = par_cache.hits() - warm_hits_before;

    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    let memo_speedup = parallel_ns as f64 / warm_ns.max(1) as f64;
    println!(
        "sweep of {} jobs: serial {:.3}s, {} threads {:.3}s (speedup {:.2}x), \
         warm cache {:.3}s (memo speedup {:.2}x), outputs identical: {}",
        jobs.len(),
        serial_ns as f64 / 1e9,
        threads,
        parallel_ns as f64 / 1e9,
        speedup,
        warm_ns as f64 / 1e9,
        memo_speedup,
        identical,
    );

    let doc = Json::O(vec![
        ("schema", Json::S("gcr-bench-sweep/v1".into())),
        ("jobs", Json::U(jobs.len() as u64)),
        ("steps", Json::U(steps as u64)),
        ("threads", Json::U(threads as u64)),
        ("serial_wall_ns", Json::U(serial_ns)),
        ("parallel_wall_ns", Json::U(parallel_ns)),
        ("speedup", Json::F(speedup)),
        ("identical", Json::Bool(identical)),
        (
            "memo",
            Json::O(vec![
                ("warm_wall_ns", Json::U(warm_ns)),
                ("warm_hits", Json::U(warm_hits)),
                ("cold_misses", Json::U(par_cache.misses())),
                ("speedup", Json::F(memo_speedup)),
            ]),
        ),
    ]);
    match std::fs::write(&json_path, doc.render()) {
        Ok(()) => println!("benchmark written to {json_path}"),
        Err(e) => {
            eprintln!("could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if !identical {
        eprintln!("serial and parallel sweeps diverged — parallel engine is broken");
        std::process::exit(1);
    }
}

/// Normalized JSON of a job-result list: what the determinism guarantee is
/// stated over (wall clocks stripped, errors stringified).
fn normalized_json(results: &[JobResult]) -> String {
    let mut set = ReportSet::new("sweep_bench", "determinism check");
    let mut errors = String::new();
    for r in results {
        match r {
            Ok((_, report, _)) => set.reports.push(report.clone()),
            Err(e) => errors.push_str(&format!("{e}\n")),
        }
    }
    set.normalized().to_json() + &errors
}
