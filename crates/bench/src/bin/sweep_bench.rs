//! Sweep-engine benchmark: runs the Figure-10 measurement sweep serially
//! and in parallel, checks the outputs are byte-identical, and records
//! both wall times (plus the memoization effect of a warm content-keyed
//! cache) in `BENCH_sweep.json` at the repository root.
//!
//! This is the acceptance artifact for the parallel sweep engine: the
//! `speedup` field is honest wall clock on whatever host ran it (1.0-ish
//! on a single-core container), and `identical` proves the parallelism
//! changed nothing but time.
//!
//! It is also the acceptance artifact for the execution engines: the
//! `exec` section times cold runs of the Figure-3 job list (ADI
//! 50²/100², SP 14³/28³) under the tree-walking interpreter, the
//! compiled tape, and the register bytecode VM — pure execution and full
//! trace capture separately — hashes all three address streams, and
//! records the speedups.
//!
//! Usage: `sweep_bench [--size-scale F] [--steps K] [--threads N]
//! [--json PATH]`

use gcr_bench::sweep::{app_jobs, run_jobs, JobResult, MeasureCache};
use gcr_bench::{fig10_strategies, STEPS};
use gcr_cli::report::Json;
use gcr_cli::ReportSet;
use gcr_exec::{ExecEngine, Machine, NullSink};
use gcr_ir::ParamBinding;
use gcr_reuse::{FnvHasher, InstrTrace, TraceCapture};
use std::hash::Hasher;
use std::time::Instant;

fn main() {
    // Fail fast on a bad GCR_EXEC instead of silently benchmarking the
    // wrong engine.
    if let Err(e) = ExecEngine::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scale: f64 = get("--size-scale").map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let steps: usize = get("--steps").map(|s| s.parse().unwrap()).unwrap_or(STEPS);
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    let json_path = get("--json").unwrap_or_else(|| "BENCH_sweep.json".into());

    let apps = gcr_apps::evaluation_apps();
    let mut jobs = Vec::new();
    for app in &apps {
        let size = ((app.default_size as f64 * scale) as i64).max(8);
        jobs.extend(app_jobs(app, &fig10_strategies(app.name), size, steps));
    }

    // Serial reference: one worker, cold cache.
    let serial_cache = MeasureCache::new();
    let t0 = Instant::now();
    let serial = run_jobs(1, &serial_cache, "sweep_bench", &jobs);
    let serial_ns = t0.elapsed().as_nanos() as u64;

    // Parallel run: cold cache again, so the comparison is pure threading.
    let par_cache = MeasureCache::new();
    let t1 = Instant::now();
    let parallel = run_jobs(threads, &par_cache, "sweep_bench", &jobs);
    let parallel_ns = t1.elapsed().as_nanos() as u64;

    let identical = normalized_json(&serial) == normalized_json(&parallel);

    // Warm re-run on the parallel cache: every measurement memoized.
    let warm_hits_before = par_cache.hits();
    let t2 = Instant::now();
    let _warm = run_jobs(threads, &par_cache, "sweep_bench", &jobs);
    let warm_ns = t2.elapsed().as_nanos() as u64;
    let warm_hits = par_cache.hits() - warm_hits_before;

    // Execution-engine comparison: cold runs of the Figure-3 job list
    // under the interpreter and the compiled tape. "Cold" is the honest
    // number — the compiled time includes lowering the tape.
    let (exec_json, exec_identical) = exec_compare(scale);

    // Set-associative capture overhead: the same job set through the
    // batched `AssocSweepSink` vs the batched FA `CapacitySweepSink`.
    let assoc_json = assoc_compare(scale);

    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    let memo_speedup = parallel_ns as f64 / warm_ns.max(1) as f64;
    println!(
        "sweep of {} jobs: serial {:.3}s, {} threads {:.3}s (speedup {:.2}x), \
         warm cache {:.3}s (memo speedup {:.2}x), outputs identical: {}",
        jobs.len(),
        serial_ns as f64 / 1e9,
        threads,
        parallel_ns as f64 / 1e9,
        speedup,
        warm_ns as f64 / 1e9,
        memo_speedup,
        identical,
    );

    let doc = Json::O(vec![
        ("schema", Json::S("gcr-bench-sweep/v1".into())),
        ("jobs", Json::U(jobs.len() as u64)),
        ("steps", Json::U(steps as u64)),
        ("threads", Json::U(threads as u64)),
        ("host_cpus", Json::U(gcr_par::thread_count() as u64)),
        ("serial_wall_ns", Json::U(serial_ns)),
        ("parallel_wall_ns", Json::U(parallel_ns)),
        ("speedup", Json::F(speedup)),
        ("identical", Json::Bool(identical)),
        (
            "memo",
            Json::O(vec![
                ("warm_wall_ns", Json::U(warm_ns)),
                ("warm_hits", Json::U(warm_hits)),
                ("cold_misses", Json::U(par_cache.misses())),
                ("speedup", Json::F(memo_speedup)),
            ]),
        ),
        ("exec", exec_json),
        ("assoc", assoc_json),
    ]);
    match std::fs::write(&json_path, doc.render()) {
        Ok(()) => println!("benchmark written to {json_path}"),
        Err(e) => {
            eprintln!("could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if !identical {
        eprintln!("serial and parallel sweeps diverged — parallel engine is broken");
        std::process::exit(1);
    }
    if !exec_identical {
        eprintln!("execution engine traces diverged — an engine is broken");
        std::process::exit(1);
    }
}

/// One Figure-3 trace-capture job: an app program at a concrete size.
struct ExecJob {
    name: String,
    prog: gcr_ir::Program,
    size: i64,
}

/// Times cold runs of the Figure-3 job list under all three engines and
/// checks the address streams are identical. Two wall times are recorded per
/// engine: pure execution (`NullSink` — the interpreter overhead the
/// compiled engine exists to remove) and trace capture (execution plus the
/// sink's memory-bandwidth-bound trace writes, which are identical work in
/// both configurations and so dilute the visible ratio). Each time is the
/// best of three passes, which cuts scheduler noise without changing what
/// is measured. A missed speedup target is reported, not fatal (wall clock
/// on a loaded container is advisory), but divergent traces are a
/// correctness failure the caller turns into a non-zero exit.
fn exec_compare(scale: f64) -> (Json, bool) {
    const REPS: usize = 3;
    let sz = |s: i64| ((s as f64 * scale) as i64).max(8);
    let mut jobs = Vec::new();
    for n in [sz(50), sz(100)] {
        jobs.push(ExecJob {
            name: format!("ADI {n}x{n}"),
            prog: gcr_apps::adi::program(),
            size: n,
        });
    }
    for n in [sz(14), sz(28)] {
        jobs.push(ExecJob {
            name: format!("SP {n}x{n}x{n}"),
            prog: gcr_apps::sp::program(),
            size: n,
        });
    }

    fn machine<'p>(job: &'p ExecJob, engine: ExecEngine) -> Machine<'p> {
        let bind = ParamBinding::new(vec![job.size]);
        let mut m = Machine::new(&job.prog, bind).with_engine(engine);
        if engine != ExecEngine::Interp {
            assert!(m.compiles(), "{}: fig3 job left the compiled domain", job.name);
        }
        m
    }
    // One reusable capture buffer, pre-faulted by an untimed warm-up run
    // per job, so the timed region measures the engines rather than the
    // kernel zeroing fresh trace pages. "Cold" here means the measurement
    // executes (nothing memoized) — exactly what a MeasureCache miss pays.
    let mut cap = TraceCapture::new();
    let run = |job: &ExecJob, engine: ExecEngine| -> u64 {
        (0..REPS)
            .map(|_| {
                let mut m = machine(job, engine);
                let t = Instant::now();
                m.run(&mut NullSink);
                t.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap()
    };
    let capture = |job: &ExecJob, engine: ExecEngine, cap: &mut TraceCapture| -> (u64, u64) {
        let mut best = u64::MAX;
        let mut hash = 0;
        for _ in 0..REPS {
            let mut m = machine(job, engine);
            cap.clear();
            let t = Instant::now();
            m.run(cap);
            best = best.min(t.elapsed().as_nanos() as u64);
            hash = trace_hash(cap.trace());
        }
        (best, hash)
    };

    let mut run_i = 0u64;
    let mut run_c = 0u64;
    let mut run_v = 0u64;
    let mut cap_i = 0u64;
    let mut cap_c = 0u64;
    let mut cap_v = 0u64;
    let mut identical = true;
    for job in &jobs {
        // Warm-up: faults in the trace buffer (and compiles the tape).
        let (_, _) = capture(job, ExecEngine::Compiled, &mut cap);
        run_i += run(job, ExecEngine::Interp);
        run_c += run(job, ExecEngine::Compiled);
        run_v += run(job, ExecEngine::Vm);
        let (ni, hi) = capture(job, ExecEngine::Interp, &mut cap);
        let (nc, hc) = capture(job, ExecEngine::Compiled, &mut cap);
        let (nv, hv) = capture(job, ExecEngine::Vm, &mut cap);
        cap_i += ni;
        cap_c += nc;
        cap_v += nv;
        if hi != hc || hi != hv {
            eprintln!(
                "{}: engine traces differ (interp {hi:016x}, compiled {hc:016x}, vm {hv:016x})",
                job.name
            );
            identical = false;
        }
    }
    let speedup = run_i as f64 / run_c.max(1) as f64;
    let cap_speedup = cap_i as f64 / cap_c.max(1) as f64;
    let vm_speedup = run_i as f64 / run_v.max(1) as f64;
    // The headline VM number: capture wall time against the compiled tape
    // — the dispatch-per-event cost the VM's strip batching removes.
    let vm_cap_speedup = cap_c as f64 / cap_v.max(1) as f64;
    println!(
        "exec engines on {} fig3 jobs (cold): run interp {:.3}s vs compiled {:.3}s \
         ({speedup:.2}x) vs vm {:.3}s ({vm_speedup:.2}x over interp), \
         capture interp {:.3}s vs compiled {:.3}s ({cap_speedup:.2}x) vs vm {:.3}s \
         ({vm_cap_speedup:.2}x over compiled), traces identical: {identical}",
        jobs.len(),
        run_i as f64 / 1e9,
        run_c as f64 / 1e9,
        run_v as f64 / 1e9,
        cap_i as f64 / 1e9,
        cap_c as f64 / 1e9,
        cap_v as f64 / 1e9,
    );
    if speedup < 3.0 {
        println!("note: compiled-engine run speedup {speedup:.2}x is below the 3x target");
    }
    if vm_cap_speedup < 2.5 {
        println!("note: vm capture speedup {vm_cap_speedup:.2}x is below the 2.5x target");
    }
    let json = Json::O(vec![
        ("jobs", Json::U(jobs.len() as u64)),
        ("interp_run_ns", Json::U(run_i)),
        ("compiled_run_ns", Json::U(run_c)),
        ("vm_run_ns", Json::U(run_v)),
        ("speedup", Json::F(speedup)),
        ("vm_run_speedup", Json::F(vm_speedup)),
        ("interp_capture_ns", Json::U(cap_i)),
        ("compiled_capture_ns", Json::U(cap_c)),
        ("vm_capture_ns", Json::U(cap_v)),
        ("capture_speedup", Json::F(cap_speedup)),
        ("vm_capture_speedup", Json::F(vm_cap_speedup)),
        ("identical", Json::Bool(identical)),
    ]);
    (json, identical)
}

/// Times the batched set-associative sweep sink against the batched FA
/// capacity sweep on the Figure-3 job set, under the VM engine (the batch
/// producer both sinks' `record_batch` fast paths are written for). Same
/// capacities on both sides — 4-way geometries for the associative sink —
/// so the ratio isolates the per-access cost of set indexing plus bounded
/// LRU ways over the FA stack walk. The acceptance target is a ratio
/// within 1.5x; a miss is reported, not fatal (wall clock on a loaded
/// container is advisory). Reference counts must agree exactly — that part
/// *is* fatal, since it would mean a sink dropped accesses.
fn assoc_compare(scale: f64) -> Json {
    const REPS: usize = 3;
    const LINE: u64 = 64;
    const CAPS: [u64; 3] = [32 << 10, 256 << 10, 2 << 20];
    let sz = |s: i64| ((s as f64 * scale) as i64).max(8);
    let mut jobs = Vec::new();
    for n in [sz(50), sz(100)] {
        jobs.push(ExecJob {
            name: format!("ADI {n}x{n}"),
            prog: gcr_apps::adi::program(),
            size: n,
        });
    }
    for n in [sz(14), sz(28)] {
        jobs.push(ExecJob {
            name: format!("SP {n}x{n}x{n}"),
            prog: gcr_apps::sp::program(),
            size: n,
        });
    }
    let configs: Vec<gcr_cache::CacheConfig> = CAPS
        .iter()
        .map(|&size| gcr_cache::CacheConfig { size: size as usize, line: LINE as usize, assoc: 4 })
        .collect();

    let mut fa_ns = 0u64;
    let mut sa_ns = 0u64;
    for job in &jobs {
        let bind = ParamBinding::new(vec![job.size]);
        // Warm-up (untimed): faults pages, compiles the bytecode.
        Machine::new(&job.prog, bind.clone()).with_engine(ExecEngine::Vm).run(&mut NullSink);
        let mut fa_refs = 0u64;
        let mut sa_refs = 0u64;
        fa_ns += (0..REPS)
            .map(|_| {
                let mut sink = gcr_cache::CapacitySweepSink::new(LINE, &CAPS);
                let mut m = Machine::new(&job.prog, bind.clone()).with_engine(ExecEngine::Vm);
                let t = Instant::now();
                m.run(&mut sink);
                let ns = t.elapsed().as_nanos() as u64;
                fa_refs = sink.refs();
                ns
            })
            .min()
            .unwrap();
        sa_ns += (0..REPS)
            .map(|_| {
                let mut sink = gcr_cache::AssocSweepSink::new(&configs);
                let mut m = Machine::new(&job.prog, bind.clone()).with_engine(ExecEngine::Vm);
                let t = Instant::now();
                m.run(&mut sink);
                let ns = t.elapsed().as_nanos() as u64;
                sa_refs = sink.refs();
                ns
            })
            .min()
            .unwrap();
        assert_eq!(fa_refs, sa_refs, "{}: assoc sink dropped accesses", job.name);
    }
    let ratio = sa_ns as f64 / fa_ns.max(1) as f64;
    println!(
        "assoc capture on {} fig3 jobs (vm, batched): fa {:.3}s vs 4-way {:.3}s \
         (ratio {ratio:.2}x)",
        jobs.len(),
        fa_ns as f64 / 1e9,
        sa_ns as f64 / 1e9,
    );
    if ratio > 1.5 {
        println!("note: assoc capture ratio {ratio:.2}x is above the 1.5x target");
    }
    Json::O(vec![
        ("jobs", Json::U(jobs.len() as u64)),
        ("line", Json::U(LINE)),
        ("capacities", Json::A(CAPS.iter().map(|&c| Json::U(c)).collect())),
        ("ways", Json::U(4)),
        ("fa_capture_ns", Json::U(fa_ns)),
        ("assoc_capture_ns", Json::U(sa_ns)),
        ("ratio", Json::F(ratio)),
    ])
}

/// FNV-1a over every field of the trace — instance structure included, so
/// two traces hash equal only if the engines agreed on the whole stream.
fn trace_hash(t: &InstrTrace) -> u64 {
    let mut h = FnvHasher::default();
    for a in &t.accs {
        h.write_u64(a.addr);
        h.write_u32(a.ref_id.index() as u32);
        h.write(&[a.is_write as u8]);
    }
    for &s in &t.starts {
        h.write_u32(s);
    }
    for &s in &t.stmts {
        h.write_u32(s.index() as u32);
    }
    h.finish()
}

/// Normalized JSON of a job-result list: what the determinism guarantee is
/// stated over (wall clocks stripped, errors stringified).
fn normalized_json(results: &[JobResult]) -> String {
    let mut set = ReportSet::new("sweep_bench", "determinism check");
    let mut errors = String::new();
    for r in results {
        match r {
            Ok((_, report, _)) => set.reports.push(report.clone()),
            Err(e) => errors.push_str(&format!("{e}\n")),
        }
    }
    set.normalized().to_json() + &errors
}
