//! Workload-gallery runner: measures every `gcr_apps::gallery()` kernel
//! through the default realistic hierarchy (4-way 8K L1 over an FA 64K
//! L2) under the VM engine and writes the combined report set to
//! `results/gallery.json` plus one `results/gallery/<kernel>.json` per
//! kernel.
//!
//! With `--check`, each per-kernel report is also diffed against its
//! golden file under `tests/golden/gallery/` and the run exits nonzero on
//! drift — this is what CI's `gallery-smoke` job runs, uploading the
//! freshly produced `results/gallery/` as an artifact on failure so the
//! diff can be reviewed (and blessed) without reproducing locally.
//!
//! Usage: `gallery [--threads N] [--json PATH] [--check]`

use gcr_bench::gallery::{run_gallery, GALLERY_HIERARCHY};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    let json_path = get("--json").unwrap_or_else(|| "results/gallery.json".into());
    let check = args.iter().any(|a| a == "--check");

    println!("gallery: {GALLERY_HIERARCHY} on {threads} threads (VM engine)");
    let start = Instant::now();
    let set = match run_gallery(threads) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("gallery run failed: {e}");
            std::process::exit(2);
        }
    };
    println!("{} kernels measured in {:.2?}", set.reports.len(), start.elapsed());

    let dir = std::path::Path::new(&json_path).parent().map(|p| p.join("gallery"));
    let mut drifted = Vec::new();
    for (kernel, report) in gcr_apps::gallery().iter().zip(&set.reports) {
        let json = report.clone().normalized().to_json();
        if let Some(dir) = &dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("{}.json", kernel.name));
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("could not write {}: {e}", path.display());
            }
        }
        if check {
            let golden =
                format!("{}/tests/golden/gallery/{}.json", env!("CARGO_MANIFEST_DIR"), kernel.name);
            match std::fs::read_to_string(&golden) {
                Ok(want) if want == json => println!("  {:<12} ok", kernel.name),
                Ok(_) => {
                    println!("  {:<12} DRIFTED from {golden}", kernel.name);
                    drifted.push(kernel.name);
                }
                Err(e) => {
                    println!("  {:<12} golden unreadable ({e})", kernel.name);
                    drifted.push(kernel.name);
                }
            }
        }
    }

    match set.write(&json_path) {
        Ok(()) => println!("JSON report set written to {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
    if !drifted.is_empty() {
        eprintln!(
            "{} kernel(s) drifted from their goldens: {}\nbless with \
             GCR_BLESS=1 cargo test -p gcr-bench --test gallery_golden",
            drifted.len(),
            drifted.join(", ")
        );
        std::process::exit(1);
    }
}
