//! Section 2.3 — the reuse-distance bound of reuse-based fusion.
//!
//! After fusion, reuse distances are bounded by `O(k·m)` (`k` arrays, `m`
//! loops) **independent of the input size**; the paper proves the bound
//! tight with a worst-case chain: `B(i)=A(i+1)`, then `m` loops of
//! `B(i)=B(i+1)`, finally `A(i)=B(i)`. This binary builds those chains,
//! fuses them, and reports the maximum finite reuse distance at two input
//! sizes: constant across sizes for the fused program, growing ~linearly
//! for the original.

use gcr_bench::print_table;
use gcr_core::{fuse_program, FusionOptions};
use gcr_exec::Machine;
use gcr_ir::ParamBinding;
use gcr_reuse::DistanceSink;

/// Builds the worst-case chain with `m` middle loops.
fn chain(m: usize) -> gcr_ir::Program {
    let mut src = String::from("program chain\nparam N\narray A[N], B[N]\n\n");
    src.push_str("for i = 1, N - 1 {\n  B[i] = f(A[i+1])\n}\n");
    for _ in 0..m {
        src.push_str("for i = 1, N - 1 {\n  B[i] = g(B[i+1])\n}\n");
    }
    src.push_str("for i = 2, N {\n  A[i] = h(B[i-1])\n}\n");
    gcr_frontend::parse(&src).expect("chain parses")
}

/// Largest finite reuse distance observed when running `prog` at size `n`.
fn max_distance(prog: &gcr_ir::Program, n: i64) -> u64 {
    let mut machine = Machine::new(prog, ParamBinding::new(vec![n]));
    let mut sink = DistanceSink::elements();
    machine.run(&mut sink);
    let h = &sink.analyzer.hist;
    h.bins
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(b, _)| if b == 0 { 0u64 } else { 1u64 << b })
        .max()
        .unwrap_or(0)
}

fn main() {
    let mut rows = Vec::new();
    for m in [1usize, 4, 8] {
        let orig = chain(m);
        let mut fused = orig.clone();
        let rep = fuse_program(&mut fused, &FusionOptions::default());
        assert_eq!(fused.count_nests(), 1, "chain must fuse into one loop: {rep:?}");
        let (n1, n2) = (256i64, 1024);
        rows.push(vec![
            m.to_string(),
            format!("{}", max_distance(&orig, n1)),
            format!("{}", max_distance(&orig, n2)),
            format!("{}", max_distance(&fused, n1)),
            format!("{}", max_distance(&fused, n2)),
        ]);
    }
    print_table(
        "Section 2.3: max reuse distance (upper bin bound) of the worst-case chain \
         — original grows with N, fused stays constant at O(k*m)",
        &["m loops", "orig N=256", "orig N=1024", "fused N=256", "fused N=1024"],
        &rows,
    );
}
