//! Section 2.2 — evadable-reuse reductions under reuse-driven execution.
//!
//! An *evadable* reuse is one whose distance grows with the input size.
//! Operationally we count, at the larger input, the reuses whose distance
//! exceeds the number of distinct data items of the *smaller* input: a
//! distance can never exceed the data size, so any such distance provably
//! grew with the input. (A per-static-reference growth classifier is also
//! available in `gcr_reuse::evadable`; it is more sensitive to how the
//! reordering redistributes distances.)
//!
//! The paper reports the change in evadable reuses under reuse-driven
//! execution: ADI −33% (from 40% of references to 27%), NAS/SP −63%,
//! FFT **+6%** (the one program it does not help), DOE/Sweep3D −67%.
//!
//! Usage: `evadable [--quick]`

use gcr_bench::{capture_trace, print_table};
use gcr_ir::ParamBinding;
use gcr_reuse::distance::ReuseDistanceAnalyzer;
use gcr_reuse::driven::{
    measure_order, measure_program_order, reuse_driven_order_with, NextUsePolicy,
};

/// One benchmark case: name, program builder, small size, large size.
type Case = (&'static str, Box<dyn Fn(i64) -> (gcr_ir::Program, ParamBinding)>, i64, i64);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows = Vec::new();
    let cases: Vec<Case> = vec![
        ("ADI", Box::new(|n| (gcr_apps::adi::program(), ParamBinding::new(vec![n]))), 50, 100),
        (
            "NAS/SP",
            Box::new(|n| (gcr_apps::sp::program(), ParamBinding::new(vec![n]))),
            if quick { 8 } else { 14 },
            if quick { 14 } else { 28 },
        ),
        (
            "FFT",
            Box::new(|n| (gcr_apps::fft::program(n as u32), ParamBinding::new(vec![]))),
            if quick { 128 } else { 256 },
            if quick { 256 } else { 512 },
        ),
        (
            "Sweep3D",
            Box::new(|n| (gcr_apps::sweep3d::program(), ParamBinding::new(vec![n]))),
            if quick { 10 } else { 16 },
            if quick { 16 } else { 32 },
        ),
    ];
    for (name, build, s1, s2) in cases {
        // Distinct data of the small input = the growth threshold.
        let threshold = {
            let (prog, bind) = build(s1);
            let trace = capture_trace(&prog, bind);
            let mut a = ReuseDistanceAnalyzer::new(1);
            for k in 0..trace.len() {
                for (addr, _, _) in trace.accesses(k) {
                    a.access(addr);
                }
            }
            a.distinct() as u64
        };
        let (prog, bind) = build(s2);
        let trace = capture_trace(&prog, bind);
        let (h_prog, _) = measure_program_order(&trace);
        let mut cells =
            vec![name.to_string(), format!("{s1}/{s2}"), format!("{}k", threshold / 1000)];
        let total = trace.total_accesses() as f64;
        let ev_p = h_prog.at_least(threshold);
        cells.push(format!("{:.1}%", 100.0 * ev_p as f64 / total));
        for policy in [NextUsePolicy::IdealOrder, NextUsePolicy::TraceOrder] {
            let order = reuse_driven_order_with(&trace, policy);
            let (h_driven, _) = measure_order(&trace, &order);
            let ev_d = h_driven.at_least(threshold);
            let change = if ev_p == 0 { 0.0 } else { ev_d as f64 / ev_p as f64 - 1.0 };
            cells.push(format!("{:.1}% ({:+.0}%)", 100.0 * ev_d as f64 / total, 100.0 * change));
        }
        rows.push(cells);
    }
    print_table(
        "Section 2.2: evadable reuses, program order vs reuse-driven execution \
         (paper: ADI -33%, SP -63%, FFT +6%, Sweep3D -67%); both next-use \
         heuristics shown — the paper notes heuristic sensitivity",
        &["program", "sizes", "threshold", "evadable (prog)", "driven/ideal", "driven/trace"],
        &rows,
    );
}
