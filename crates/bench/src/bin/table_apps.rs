//! Figure 9 — "Applications tested": static characteristics of the four
//! evaluation programs (source, input size, lines, loop nests with nesting
//! depths, number of arrays).

use gcr_analysis::stats::program_stats;
use gcr_bench::print_table;

fn main() {
    let mut rows = Vec::new();
    let sources = [
        ("Swim", "SPEC95"),
        ("Tomcatv", "SPEC95"),
        ("ADI", "self-written"),
        ("SP", "NAS/NPB Serial v2.3"),
    ];
    for app in gcr_apps::evaluation_apps() {
        let (prog, _) = (app.build)(app.default_size);
        let st = program_stats(&prog);
        let source = sources.iter().find(|(n, _)| *n == app.name).map(|(_, s)| *s).unwrap();
        rows.push(vec![
            st.name.clone(),
            source.to_string(),
            app.paper_size.to_string(),
            st.lines.to_string(),
            format!("{} ({}-{})", st.nests, st.min_depth, st.max_depth),
            st.arrays.to_string(),
        ]);
    }
    print_table(
        "Figure 9: applications tested (paper: Swim 425 lines 8 nests 15 arrays; \
         Tomcatv 190/5/7; ADI 108/4/3; SP 2990/67/15)",
        &["name", "source", "input size", "lines", "nests (levels)", "arrays"],
        &rows,
    );
}
