//! Figure 10 — "Effect of Transformations".
//!
//! For each application, measures execution time (modeled cycles) and L1,
//! L2 and TLB miss counts for: the original program, fusion only, and
//! fusion + data regrouping; SP additionally gets the one-level-fusion bar.
//! Values are printed normalized to the original (the paper's bars) along
//! with absolute counts and the original miss rates. A machine-readable
//! report set (schema `gcr-report-set/v1`, one entry per app × strategy
//! with the full pass trace and per-phase miss breakdown) is written to
//! `results/fig10.json` (override with `--json <path>`).
//!
//! All app × strategy measurements run as one job list on the parallel
//! sweep engine: `GCR_THREADS`/`--threads` set the worker count (output is
//! byte-identical for any value), `GCR_MEASURE_CACHE=<file>` persists the
//! content-keyed measurement cache so the `--ablation` superset reuses the
//! base run's points, and the sweep wall clock lands in the report set's
//! `timing` section.
//!
//! Usage: `fig10 [--size-scale F] [--steps K] [--ablation] [--app NAME]
//! [--threads N] [--json PATH]`

use gcr_bench::sweep::{app_jobs, run_jobs, MeasureCache, SweepJob};
use gcr_bench::{fig10_strategies, print_table, STEPS};
use gcr_cli::{ReportSet, SweepTiming};
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use std::time::Instant;

fn main() {
    // Fail fast on a bad GCR_EXEC instead of silently measuring under the
    // default engine.
    if let Err(e) = gcr_exec::ExecEngine::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scale: f64 = get("--size-scale").map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let steps: usize = get("--steps").map(|s| s.parse().unwrap()).unwrap_or(STEPS);
    let ablation = args.iter().any(|a| a == "--ablation");
    let only = get("--app");
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let json_path = get("--json").unwrap_or_else(|| "results/fig10.json".into());
    let mut set = ReportSet::new("fig10", "Figure 10: effect of transformations");

    // One flat job list across apps and strategies, so the pool balances
    // the big kernels against the small ones.
    let apps = gcr_apps::evaluation_apps();
    let mut jobs: Vec<SweepJob<'_>> = Vec::new();
    let mut groups: Vec<(&gcr_apps::AppSpec, i64, usize)> = Vec::new(); // (app, size, #jobs)
    for app in &apps {
        if let Some(name) = &only {
            if !app.name.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let size = ((app.default_size as f64 * scale) as i64).max(8);
        let mut strategies = fig10_strategies(app.name);
        if ablation {
            strategies.push(Strategy::RegroupOnly);
            strategies.push(Strategy::FusionNoAlign { levels: 3 });
            strategies
                .push(Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::ElementOnly });
            strategies
                .push(Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::AvoidInnermost });
        }
        let added = app_jobs(app, &strategies, size, steps);
        groups.push((app, size, added.len()));
        jobs.extend(added);
    }

    let cache = MeasureCache::from_env();
    let start = Instant::now();
    let mut results = run_jobs(threads, &cache, "fig10", &jobs).into_iter();
    let wall_ns = start.elapsed().as_nanos() as u64;
    if let Err(e) = cache.save() {
        eprintln!("could not persist measurement cache: {e}");
    }

    let mut job_iter = jobs.iter();
    for (app, size, njobs) in groups {
        // One bad kernel (or one strategy the checked pipeline rejects)
        // must not kill the sweep: report it on stderr and keep going.
        let measurements: Vec<_> = results
            .by_ref()
            .take(njobs)
            .zip(job_iter.by_ref().take(njobs))
            .filter_map(|(res, job)| match res {
                Ok((m, report, diagnostics)) => {
                    for d in diagnostics {
                        eprintln!("{}/{}: {d}", app.name, job.strategy.label());
                    }
                    set.reports.push(report);
                    Some(m)
                }
                Err(e) => {
                    eprintln!("{}/{}: skipped: {e}", app.name, job.strategy.label());
                    None
                }
            })
            .collect();
        let Some(base) = measurements.first() else {
            eprintln!("{}: no strategy could be measured", app.name);
            continue;
        };
        let mut rows = Vec::new();
        for m in &measurements {
            let r = m.rel(base);
            rows.push(vec![
                m.label.clone(),
                format!("{:.3}", r[0]),
                format!("{:.3}", r[1]),
                format!("{:.3}", r[2]),
                format!("{:.3}", r[3]),
                format!("{:.2e}", m.cycles),
                format!("{:.1}", m.mflops()),
                m.misses.l1.to_string(),
                m.misses.l2.to_string(),
                m.misses.tlb.to_string(),
            ]);
        }
        print_table(
            &format!(
                "Figure 10: {} {}x (paper size {}), {} steps; original miss rates: L1 {:.2}% L2 {:.3}% TLB {:.4}%",
                app.name,
                size,
                app.paper_size,
                steps,
                100.0 * base.misses.l1_rate(),
                100.0 * base.misses.l2_rate(),
                100.0 * base.misses.tlb_rate(),
            ),
            &[
                "version", "time", "L1", "L2", "TLB", "cycles", "Mf/s", "L1 abs", "L2 abs",
                "TLB abs",
            ],
            &rows,
        );
    }
    set.timing = Some(SweepTiming {
        threads: if threads == 0 { gcr_par::thread_count() } else { threads },
        wall_ns,
        memo_hits: cache.hits(),
        memo_misses: cache.misses(),
        memo_evictions: cache.evictions(),
        memo_corrupt: cache.corrupt(),
    });
    match set.write(&json_path) {
        Ok(()) => println!("\nJSON report set ({} runs) written to {json_path}", set.reports.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
