//! Section 6 table — data transferred with no optimization, with the
//! SGI-like local strategies, and with the paper's global strategy.
//!
//! The paper normalizes L1, L2 and TLB miss counts to the unoptimized
//! program and reports per-program rows plus averages; its conclusion is
//! that the global strategy beats the commercial compiler's local
//! strategies "by factors of 9 for L1 misses, 3.4 for L2 misses, and 1.8
//! for TLB misses" in average miss reduction. A machine-readable report
//! set (schema `gcr-report-set/v1`) is written to `results/table6.json`
//! (override with `--json <path>`).
//!
//! The app × strategy cross-product runs as one job list on the parallel
//! sweep engine (`GCR_THREADS`/`--threads`, `GCR_MEASURE_CACHE`); averages
//! are accumulated serially in app order afterwards, so every printed
//! digit is byte-identical across thread counts.
//!
//! Usage: `table6 [--size-scale F] [--steps K] [--threads N] [--json PATH]`

use gcr_bench::sweep::{app_jobs, run_jobs, MeasureCache};
use gcr_bench::{print_table, Measurement, STEPS};
use gcr_cli::{ReportSet, SweepTiming};
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use std::time::Instant;

fn main() {
    // Fail fast on a bad GCR_EXEC instead of silently measuring under the
    // default engine.
    if let Err(e) = gcr_exec::ExecEngine::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let scale: f64 = get("--size-scale").map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let steps: usize = get("--steps").map(|s| s.parse().unwrap()).unwrap_or(STEPS);
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let json_path = get("--json").unwrap_or_else(|| "results/table6.json".into());
    let mut set = ReportSet::new(
        "table6",
        "Section 6: normalized misses and memory traffic (NoOpt / SGI-like / New)",
    );

    let new_strategy = Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi };
    let strategies = [Strategy::Original, Strategy::Sgi, new_strategy];
    let apps = gcr_apps::evaluation_apps();
    let mut jobs = Vec::new();
    for app in &apps {
        let size = ((app.default_size as f64 * scale) as i64).max(8);
        jobs.extend(app_jobs(app, &strategies, size, steps));
    }

    let cache = MeasureCache::from_env();
    let start = Instant::now();
    let mut results = run_jobs(threads, &cache, "table6", &jobs).into_iter();
    let wall_ns = start.elapsed().as_nanos() as u64;
    if let Err(e) = cache.save() {
        eprintln!("could not persist measurement cache: {e}");
    }

    let mut rows = Vec::new();
    let mut sums = [[0.0f64; 3]; 2]; // [sgi|new][l1|l2|tlb]
    let mut count = 0usize;
    for app in &apps {
        // Skip any app where a version cannot be optimized/measured, rather
        // than aborting the whole table.
        let mut take = |s: Strategy| -> Option<Measurement> {
            match results.next().expect("one result per job") {
                Ok((m, report, diagnostics)) => {
                    for d in diagnostics {
                        eprintln!("{}/{}: {d}", app.name, s.label());
                    }
                    set.reports.push(report);
                    Some(m)
                }
                Err(e) => {
                    eprintln!("{}/{}: skipped: {e}", app.name, s.label());
                    None
                }
            }
        };
        let (base, sgi, new) = (take(Strategy::Original), take(Strategy::Sgi), take(new_strategy));
        let (Some(base), Some(sgi), Some(new)) = (base, sgi, new) else {
            eprintln!("{}: skipped (a version failed)", app.name);
            continue;
        };
        let r_sgi = sgi.rel(&base);
        let r_new = new.rel(&base);
        for k in 0..3 {
            sums[0][k] += r_sgi[k + 1];
            sums[1][k] += r_new[k + 1];
        }
        count += 1;
        let traffic = |m: &Measurement| {
            m.misses.memory_traffic as f64 / base.misses.memory_traffic.max(1) as f64
        };
        rows.push(vec![
            app.name.to_string(),
            "1.00".into(),
            format!("{:.2}", r_sgi[1]),
            format!("{:.2}", r_new[1]),
            "1.00".into(),
            format!("{:.2}", r_sgi[2]),
            format!("{:.2}", r_new[2]),
            "1.00".into(),
            format!("{:.2}", r_sgi[3]),
            format!("{:.2}", r_new[3]),
            format!("{:.2}", traffic(&sgi)),
            format!("{:.2}", traffic(&new)),
        ]);
    }
    let avg = |v: f64| v / count as f64;
    rows.push(vec![
        "average".into(),
        "1.00".into(),
        format!("{:.2}", avg(sums[0][0])),
        format!("{:.2}", avg(sums[1][0])),
        "1.00".into(),
        format!("{:.2}", avg(sums[0][1])),
        format!("{:.2}", avg(sums[1][1])),
        "1.00".into(),
        format!("{:.2}", avg(sums[0][2])),
        format!("{:.2}", avg(sums[1][2])),
    ]);
    print_table(
        "Section 6: normalized misses and memory traffic (NoOpt / SGI-like / New)",
        &[
            "program",
            "L1 NoOpt",
            "L1 SGI",
            "L1 New",
            "L2 NoOpt",
            "L2 SGI",
            "L2 New",
            "TLB NoOpt",
            "TLB SGI",
            "TLB New",
            "traffic SGI",
            "traffic New",
        ],
        &rows,
    );
    // Reduction-ratio summary (paper: 9x L1, 3.4x L2, 1.8x TLB).
    let red = |s: f64| (1.0 - avg(s)).max(0.0);
    println!(
        "\n  average miss reduction New vs SGI-like: L1 {:.1}x, L2 {:.1}x, TLB {:.1}x",
        ratio(red(sums[1][0]), red(sums[0][0])),
        ratio(red(sums[1][1]), red(sums[0][1])),
        ratio(red(sums[1][2]), red(sums[0][2])),
    );
    set.timing = Some(SweepTiming {
        threads: if threads == 0 { gcr_par::thread_count() } else { threads },
        wall_ns,
        memo_hits: cache.hits(),
        memo_misses: cache.misses(),
        memo_evictions: cache.evictions(),
        memo_corrupt: cache.corrupt(),
    });
    match set.write(&json_path) {
        Ok(()) => println!("\nJSON report set ({} runs) written to {json_path}", set.reports.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}
