//! SP transformation statistics (Section 4.4 of the paper): loop counts
//! before/after the preliminary passes and per fusion level, and the array
//! splitting / regrouping inventory (15 -> 42 -> 17 in the paper).
//!
//! A machine-readable report set (schema `gcr-report-set/v1`, one entry
//! per fusion depth with the full pass trace) is written to
//! `results/sp_stats.json` (override with `--json <path>`).
//!
//! Usage: `sp_stats [--json PATH]`

use gcr_cli::{Report, ReportSet};
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::fusion::loops_per_level;
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use gcr_core::Tracer;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/sp_stats.json".into());
    let mut set = ReportSet::new("sp_stats", "Section 4.4: SP transformation statistics");

    let orig = gcr_apps::sp::program();
    println!(
        "SP original: {} loops in {} nests, {} arrays",
        orig.count_loops(),
        orig.count_nests(),
        orig.arrays.iter().filter(|a| !a.is_scalar()).count()
    );

    let mut prelim = orig.clone();
    let prep = gcr_core::prelim::preliminary(&mut prelim, 8);
    println!("after unroll+split+distribute: {:?}", prep);
    println!("  loops per level: {:?}", loops_per_level(&prelim));
    println!("  arrays: {}", prelim.arrays.iter().filter(|a| !a.is_scalar()).count());

    for levels in [1, 3] {
        let strategy = Strategy::FusionRegroup { levels, regroup: RegroupLevel::Multi };
        let mut tracer = Tracer::enabled();
        let opt = match apply_strategy_checked_traced(
            &orig,
            strategy,
            &SafetyOptions::default(),
            &mut tracer,
        ) {
            Ok(opt) => opt,
            Err(e) => {
                eprintln!("SP/{}: skipped: {e}", strategy.label());
                continue;
            }
        };
        println!("\n{}-level fusion:", levels);
        println!("  loops before: {:?}", opt.fusion.loops_before);
        println!("  loops after:  {:?}", opt.fusion.loops_after);
        println!(
            "  fused per level: {:?}, embedded {}, peeled {}",
            opt.fusion.fused, opt.fusion.embedded, opt.fusion.peeled
        );
        println!("  infusible reasons: {:?}", opt.fusion.infusible);
        println!(
            "  regroup: {} arrays -> {} allocations",
            opt.regroup.arrays, opt.regroup.allocations
        );
        for (names, _) in &opt.regroup.groups {
            println!("    group: {}", names.join(", "));
        }
        for d in opt.robustness.describe() {
            eprintln!("SP/{}: {d}", strategy.label());
        }
        set.reports.push(Report::new(
            "sp_stats",
            &orig,
            strategy.label(),
            &opt,
            tracer.into_events(),
        ));
    }
    match set.write(&json_path) {
        Ok(()) => println!("\nJSON report set ({} runs) written to {json_path}", set.reports.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
