//! SP transformation statistics (Section 4.4 of the paper): loop counts
//! before/after the preliminary passes and per fusion level, and the array
//! splitting / regrouping inventory (15 -> 42 -> 17 in the paper).
//!
//! A machine-readable report set (schema `gcr-report-set/v1`, one entry
//! per fusion depth with the full pass trace) is written to
//! `results/sp_stats.json` (override with `--json <path>`). The fusion
//! depths are optimized in parallel on the sweep engine
//! (`GCR_THREADS`/`--threads`); workers build their text off-thread and
//! the driver prints in input order.
//!
//! Usage: `sp_stats [--threads N] [--json PATH]`

use gcr_cli::{Report, ReportSet, SweepTiming};
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::fusion::loops_per_level;
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use gcr_core::Tracer;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads").map(|s| s.parse().unwrap()).unwrap_or(0);
    let json_path = get("--json").unwrap_or_else(|| "results/sp_stats.json".into());
    let mut set = ReportSet::new("sp_stats", "Section 4.4: SP transformation statistics");

    let orig = gcr_apps::sp::program();
    println!(
        "SP original: {} loops in {} nests, {} arrays",
        orig.count_loops(),
        orig.count_nests(),
        orig.arrays.iter().filter(|a| !a.is_scalar()).count()
    );

    let mut prelim = orig.clone();
    let prep = gcr_core::prelim::preliminary(&mut prelim, 8);
    println!("after unroll+split+distribute: {:?}", prep);
    println!("  loops per level: {:?}", loops_per_level(&prelim));
    println!("  arrays: {}", prelim.arrays.iter().filter(|a| !a.is_scalar()).count());

    let levels: Vec<usize> = vec![1, 3];
    let threads = if threads == 0 { gcr_par::thread_count() } else { threads };
    let start = Instant::now();
    let results = gcr_par::scope_map_with(threads, &levels, |&levels| {
        let strategy = Strategy::FusionRegroup { levels, regroup: RegroupLevel::Multi };
        let mut tracer = Tracer::enabled();
        let opt = match apply_strategy_checked_traced(
            &orig,
            strategy,
            &SafetyOptions::default(),
            &mut tracer,
        ) {
            Ok(opt) => opt,
            Err(e) => {
                let err = format!("SP/{}: skipped: {e}\n", strategy.label());
                return (String::new(), err, None);
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "\n{}-level fusion:", levels);
        let _ = writeln!(out, "  loops before: {:?}", opt.fusion.loops_before);
        let _ = writeln!(out, "  loops after:  {:?}", opt.fusion.loops_after);
        let _ = writeln!(
            out,
            "  fused per level: {:?}, embedded {}, peeled {}",
            opt.fusion.fused, opt.fusion.embedded, opt.fusion.peeled
        );
        let _ = writeln!(out, "  infusible reasons: {:?}", opt.fusion.infusible);
        let _ = writeln!(
            out,
            "  regroup: {} arrays -> {} allocations",
            opt.regroup.arrays, opt.regroup.allocations
        );
        for (names, _) in &opt.regroup.groups {
            let _ = writeln!(out, "    group: {}", names.join(", "));
        }
        let mut diag = String::new();
        for d in opt.robustness.describe() {
            let _ = writeln!(diag, "SP/{}: {d}", strategy.label());
        }
        let report = Report::new("sp_stats", &orig, strategy.label(), &opt, tracer.into_events());
        (out, diag, Some(report))
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let njobs = results.len() as u64;
    for (text, diag, report) in results {
        print!("{text}");
        eprint!("{diag}");
        if let Some(report) = report {
            set.reports.push(report);
        }
    }
    set.timing =
        Some(SweepTiming { threads, wall_ns, memo_misses: njobs, ..SweepTiming::default() });
    match set.write(&json_path) {
        Ok(()) => println!("\nJSON report set ({} runs) written to {json_path}", set.reports.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
