//! SP transformation statistics (Section 4.4 of the paper): loop counts
//! before/after the preliminary passes and per fusion level, and the array
//! splitting / regrouping inventory (15 -> 42 -> 17 in the paper).

use gcr_core::fusion::loops_per_level;
use gcr_core::pipeline::{apply_strategy, Strategy};
use gcr_core::regroup::RegroupLevel;

fn main() {
    let orig = gcr_apps::sp::program();
    println!(
        "SP original: {} loops in {} nests, {} arrays",
        orig.count_loops(),
        orig.count_nests(),
        orig.arrays.iter().filter(|a| !a.is_scalar()).count()
    );

    let mut prelim = orig.clone();
    let prep = gcr_core::prelim::preliminary(&mut prelim, 8);
    println!("after unroll+split+distribute: {:?}", prep);
    println!("  loops per level: {:?}", loops_per_level(&prelim));
    println!("  arrays: {}", prelim.arrays.iter().filter(|a| !a.is_scalar()).count());

    for levels in [1, 3] {
        let opt =
            apply_strategy(&orig, Strategy::FusionRegroup { levels, regroup: RegroupLevel::Multi });
        println!("\n{}-level fusion:", levels);
        println!("  loops before: {:?}", opt.fusion.loops_before);
        println!("  loops after:  {:?}", opt.fusion.loops_after);
        println!(
            "  fused per level: {:?}, embedded {}, peeled {}",
            opt.fusion.fused, opt.fusion.embedded, opt.fusion.peeled
        );
        println!("  infusible reasons: {:?}", opt.fusion.infusible);
        println!(
            "  regroup: {} arrays -> {} allocations",
            opt.regroup.arrays, opt.regroup.allocations
        );
        for (names, _) in &opt.regroup.groups {
            println!("    group: {}", names.join(", "));
        }
    }
}
