//! Inspect a transformed benchmark application.
//!
//! Usage: `inspect <Swim|Tomcatv|ADI|SP> [levels] [--skeleton]`
//!
//! Prints the program after preliminary passes + `levels`-deep fusion
//! (default 3); `--skeleton` shows only loop headers and guards, which is
//! the quickest way to see the fused structure.

use gcr_core::pipeline::{apply_strategy, Strategy};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map(|s| s.as_str()).unwrap_or("SP");
    let levels: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let skeleton = args.iter().any(|a| a == "--skeleton");
    let prog = match app.to_ascii_lowercase().as_str() {
        "sp" => gcr_apps::sp::program(),
        "adi" => gcr_apps::adi::program(),
        "swim" => gcr_apps::swim::program(),
        "tomcatv" => gcr_apps::tomcatv::program(),
        other => {
            eprintln!("unknown app `{other}` (Swim|Tomcatv|ADI|SP)");
            std::process::exit(1);
        }
    };
    let opt = apply_strategy(&prog, Strategy::FusionOnly { levels });
    let text = gcr_ir::print::print_program(&opt.program);
    // Write via a locked handle and ignore broken pipes (e.g. `| head`).
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in text.lines() {
        let t = line.trim_start();
        if skeleton && !(t.starts_with("for ") || t.starts_with("when") || t.starts_with('}')) {
            continue;
        }
        let shown = if skeleton && t.starts_with("when") {
            match line.rfind("] ") {
                Some(i) => &line[..=i],
                None => line,
            }
        } else {
            line
        };
        if writeln!(out, "{shown}").is_err() {
            return;
        }
    }
    let _ = writeln!(out, "// fused per level: {:?}", opt.fusion.fused);
}
