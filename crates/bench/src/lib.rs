#![warn(missing_docs)]

//! `gcr-bench` — experiment harness regenerating every table and figure of
//! the paper's evaluation. Each binary in `src/bin/` reproduces one
//! artifact (see DESIGN.md's per-experiment index); this library holds the
//! shared measurement machinery, and [`sweep`] holds the parallel sweep
//! engine (worker-pool fan-out + content-keyed measurement memoization)
//! those binaries run on.

pub mod gallery;
pub mod sweep;

use gcr_apps::AppSpec;
use gcr_cache::{CostModel, HierarchySink, MemoryHierarchy, MissCounts, PhasedHierarchySink};
use gcr_cli::report::SimSection;
use gcr_cli::Report;
use gcr_core::checked::{apply_strategy_checked, apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::{apply_strategy, Strategy};
use gcr_core::Tracer;
use gcr_exec::{ExecStats, Machine, TraceSink};
use gcr_ir::{GcrError, ParamBinding};
use gcr_reuse::distance::Histogram;
use gcr_reuse::{DistanceSink, InstrTrace, TraceCapture};

/// One measured run of one program version.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Strategy label.
    pub label: String,
    /// Interpreter statistics.
    pub stats: ExecStats,
    /// Miss counters.
    pub misses: MissCounts,
    /// Modeled cycles.
    pub cycles: f64,
}

/// Modeled clock rate for Mf/s reporting: the paper's 300 MHz R12K.
pub const CLOCK_MHZ: f64 = 300.0;

impl Measurement {
    /// Modeled megaflops per second (the paper quotes SP going from 64.5
    /// to 96.2 Mf/s).
    pub fn mflops(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.stats.flops as f64 * CLOCK_MHZ / self.cycles
        }
    }
}

impl Measurement {
    /// Normalizes against a baseline measurement.
    pub fn rel(&self, base: &Measurement) -> [f64; 4] {
        [
            self.cycles / base.cycles.max(1.0),
            ratio(self.misses.l1, base.misses.l1),
            ratio(self.misses.l2, base.misses.l2),
            ratio(self.misses.tlb, base.misses.tlb),
        ]
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// Default number of measured time steps.
pub const STEPS: usize = 3;

/// Runs one strategy on one app and measures it through the scaled
/// Origin2000 hierarchy.
pub fn measure_strategy(app: &AppSpec, strategy: Strategy, size: i64, steps: usize) -> Measurement {
    let (prog, bind) = (app.build)(size);
    let opt = apply_strategy(&prog, strategy);
    let layout = opt.layout(&bind);
    let mut machine = Machine::with_layout(&opt.program, bind, layout);
    let mut sink =
        HierarchySink::new(MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale));
    machine.run_steps(&mut sink, steps);
    let misses = sink.hierarchy.counts();
    let stats = machine.stats();
    let cycles = CostModel::default().cycles(&stats, &misses);
    Measurement { label: strategy.label(), stats, misses, cycles }
}

/// Fail-safe variant of [`measure_strategy`]: optimizes through the
/// checked pipeline (oracle-verified, degradation ladder) and runs the
/// measurement under a fuel guard, so one bad kernel cannot take down a
/// whole sweep. Returns any fallback diagnostics alongside the
/// measurement.
pub fn try_measure_strategy(
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
) -> Result<(Measurement, Vec<String>), GcrError> {
    let (prog, bind) = (app.build)(size);
    let opt = apply_strategy_checked(&prog, strategy, &SafetyOptions::default())?;
    let layout = opt.layout(&bind);
    let mut machine = Machine::try_with_layout(
        &opt.program,
        bind,
        layout,
        Some(gcr_core::checked::DEFAULT_MAX_BYTES),
    )?;
    let mut sink =
        HierarchySink::new(MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale));
    machine.run_steps_guarded(&mut sink, steps, MEASURE_FUEL)?;
    let misses = sink.hierarchy.counts();
    let stats = machine.stats();
    let cycles = CostModel::default().cycles(&stats, &misses);
    let mut label = strategy.label();
    if opt.robustness.degraded() {
        // The sweep should show what was actually measured.
        label = format!("{} (degraded: {})", opt.robustness.strategy, label);
    }
    Ok((Measurement { label, stats, misses, cycles }, opt.robustness.describe()))
}

/// Fuel for guarded measurement runs — generous for the evaluation sizes,
/// finite for runaway programs.
pub const MEASURE_FUEL: u64 = 2_000_000_000;

/// Observable variant of [`try_measure_strategy`]: same fail-safe
/// optimization and guarded measurement, but with per-pass tracing enabled
/// and per-phase miss attribution, packaged as a [`Report`] (schema
/// `gcr-report/v1`) so the experiment binaries can write self-describing
/// JSON artifacts into `results/` alongside their tables.
pub fn try_measure_strategy_report(
    generator: &str,
    app: &AppSpec,
    strategy: Strategy,
    size: i64,
    steps: usize,
) -> Result<(Measurement, Report, Vec<String>), GcrError> {
    let (prog, bind) = (app.build)(size);
    let mut tracer = Tracer::enabled();
    let opt =
        apply_strategy_checked_traced(&prog, strategy, &SafetyOptions::default(), &mut tracer)?;
    let layout = opt.layout(&bind);
    let mut machine = Machine::try_with_layout(
        &opt.program,
        bind,
        layout,
        Some(gcr_core::checked::DEFAULT_MAX_BYTES),
    )?;
    let mut sink = PhasedHierarchySink::new(
        MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale),
        &opt.program,
    );
    machine.run_steps_guarded(&mut sink, steps, MEASURE_FUEL)?;
    let misses = sink.hierarchy.counts();
    let stats = machine.stats();
    let cycles = CostModel::default().cycles(&stats, &misses);
    let mut label = strategy.label();
    if opt.robustness.degraded() {
        label = format!("{} (degraded: {})", opt.robustness.strategy, label);
    }
    let mut report = Report::new(generator, &prog, strategy.label(), &opt, tracer.into_events());
    report.simulation = Some(SimSection {
        size,
        steps,
        cycles,
        flops: stats.flops,
        total: misses,
        phases: sink.phases(),
    });
    Ok((Measurement { label, stats, misses, cycles }, report, opt.robustness.describe()))
}

/// The strategy set of Figure 10 for a given app (SP gets the extra
/// one-level-fusion bar).
pub fn fig10_strategies(app_name: &str) -> Vec<Strategy> {
    let mut v = vec![Strategy::Original];
    if app_name == "SP" {
        v.push(Strategy::FusionOnly { levels: 1 });
    }
    v.push(Strategy::FusionOnly { levels: 3 });
    v.push(Strategy::FusionRegroup { levels: 3, regroup: gcr_core::regroup::RegroupLevel::Multi });
    v
}

/// Measures the reuse-distance histogram of a program in program order.
pub fn program_order_histogram(prog: &gcr_ir::Program, bind: ParamBinding) -> Histogram {
    let mut m = Machine::new(prog, bind);
    let mut sink = DistanceSink::elements();
    m.run(&mut sink);
    sink.analyzer.hist.clone()
}

/// Captures a one-step instruction trace of a program. Capacity for the
/// whole trace is reserved up front from the interpreter's static
/// estimate, so multi-million-access captures do not reallocate.
pub fn capture_trace(prog: &gcr_ir::Program, bind: ParamBinding) -> InstrTrace {
    let mut m = Machine::new(prog, bind);
    let est = m.estimate();
    let mut cap = TraceCapture::with_capacity(est.instances, est.accesses);
    m.run(&mut cap);
    cap.finish()
}

/// Per-static-reference distance stats in program order.
pub fn per_ref_stats(prog: &gcr_ir::Program, bind: ParamBinding) -> gcr_reuse::RefStats {
    let mut m = Machine::new(prog, bind);
    let mut sink = DistanceSink::elements();
    m.run(&mut sink);
    sink.analyzer.per_ref.clone()
}

/// A sink that counts accesses but also forwards to another sink.
pub struct Tee<'a, A: TraceSink, B: TraceSink> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    #[inline]
    fn access(&mut self, ev: gcr_exec::AccessEvent) {
        self.a.access(ev);
        self.b.access(ev);
    }

    fn end_instance(&mut self, stmt: gcr_ir::StmtId) {
        self.a.end_instance(stmt);
        self.b.end_instance(stmt);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Forward the batch whole so both sides keep their fast paths.
        self.a.record_batch(batch);
        self.b.record_batch(batch);
    }
}

// ---------------------------------------------------------------------------
// Text-table helpers
// ---------------------------------------------------------------------------

/// Prints a plain-text table: header row plus data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", s.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for r in rows {
        line(r);
    }
}

/// Renders a histogram as a text "plot": one line per log₂ bin, in
/// thousands of references (the paper's Figure 3 axes).
pub fn render_histogram(name: &str, hists: &[(&str, &Histogram)]) {
    print!("{}", histogram_text(name, hists));
}

/// [`render_histogram`] into a string, so parallel sweep workers can
/// build their plots off-thread and the driver can print them in input
/// order.
pub fn histogram_text(name: &str, hists: &[(&str, &Histogram)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n-- {name}: references (thousands) per log2(reuse distance) bin --");
    let maxbin = hists.iter().map(|(_, h)| h.bins.len()).max().unwrap_or(0);
    let _ = write!(out, "{:>6}", "bin");
    for (label, _) in hists {
        let _ = write!(out, "{label:>16}");
    }
    out.push('\n');
    for b in 0..maxbin {
        let _ = write!(out, "{b:>6}");
        for (_, h) in hists {
            let v = h.bins.get(b).copied().unwrap_or(0);
            let _ = write!(out, "{:>16.1}", v as f64 / 1e3);
        }
        out.push('\n');
    }
    let _ = write!(out, "{:>6}", "cold");
    for (_, h) in hists {
        let _ = write!(out, "{:>16.1}", h.cold as f64 / 1e3);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_normalization() {
        let base = Measurement {
            label: "base".into(),
            stats: ExecStats::default(),
            misses: MissCounts { refs: 100, l1: 10, l2: 4, tlb: 2, memory_traffic: 0 },
            cycles: 1000.0,
        };
        let m = Measurement {
            label: "m".into(),
            stats: ExecStats::default(),
            misses: MissCounts { refs: 100, l1: 5, l2: 2, tlb: 2, memory_traffic: 0 },
            cycles: 500.0,
        };
        assert_eq!(m.rel(&base), [0.5, 0.5, 0.5, 1.0]);
    }

    #[test]
    fn tee_duplicates_events() {
        use gcr_exec::{CountingSink, Machine, TraceSink};
        let prog = gcr_apps::adi::program();
        let mut m = Machine::new(&prog, ParamBinding::new(vec![10]));
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        {
            let mut tee = Tee { a: &mut a, b: &mut b };
            m.run(&mut tee);
            // use the trait to silence the unused-import path
            tee.end_instance(gcr_ir::StmtId::from_index(0));
        }
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.writes, b.writes);
        assert!(a.reads > 0);
    }

    #[test]
    fn measure_runs_end_to_end() {
        let apps = gcr_apps::evaluation_apps();
        let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
        let m = measure_strategy(adi, Strategy::Original, 24, 1);
        assert!(m.misses.refs > 0);
        assert!(m.cycles > 0.0);
        let f = measure_strategy(
            adi,
            Strategy::FusionRegroup { levels: 3, regroup: gcr_core::regroup::RegroupLevel::Multi },
            24,
            1,
        );
        assert_eq!(f.stats.accesses(), m.stats.accesses(), "same work, different order");
    }
}
