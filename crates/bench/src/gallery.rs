//! The workload-gallery harness: runs every `gcr_apps::gallery()` kernel
//! through the realistic default hierarchy and packages each run as a
//! `gcr-report/v1` [`Report`] with a `hierarchy` section.
//!
//! The gallery is the regression net for the realistic cache models: each
//! kernel has a golden report under `tests/golden/gallery/` (blessed with
//! `GCR_BLESS=1 cargo test -p gcr-bench --test gallery_golden`), so a
//! change to the set-associative simulator, the multi-level model, the
//! prefetcher, or any engine shows up as a reviewable golden diff across
//! ~16 structurally distinct kernels at once.
//!
//! Runs use the VM engine explicitly — the fastest batch producer, and the
//! one CI's `gallery-smoke` job pins — and fan out with
//! [`gcr_par::scope_map_with`], which preserves input order, so the
//! rendered [`ReportSet`] is byte-identical for any thread count.

use gcr_apps::GalleryKernel;
use gcr_cli::report::HierarchySection;
use gcr_cli::{Report, ReportSet};
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_core::Tracer;
use gcr_exec::ExecEngine;
use gcr_ir::GcrError;

use crate::MEASURE_FUEL;

/// The gallery's default hierarchy: a 4-way 8K L1 over a fully-associative
/// 64K L2, 64-byte lines, inclusive, no prefetch. Small enough that the
/// gallery sizes stress both levels, canonical under
/// [`gcr_cache::HierarchySpec::describe`].
pub const GALLERY_HIERARCHY: &str = "l1=8K/64/4,l2=64K/64/fa,policy=inclusive,prefetch=none";

/// Optimizes one kernel (fail-safe pipeline, tracing on) and measures it
/// through [`GALLERY_HIERARCHY`] under `engine`.
pub fn kernel_report(kernel: &GalleryKernel, engine: ExecEngine) -> Result<Report, GcrError> {
    let spec =
        gcr_cache::HierarchySpec::parse(GALLERY_HIERARCHY).expect("GALLERY_HIERARCHY must parse");
    let (prog, bind) = kernel.build();
    let mut tracer = Tracer::enabled();
    let opt = apply_strategy_checked_traced(
        &prog,
        Strategy::Original,
        &SafetyOptions::default(),
        &mut tracer,
    )?;
    let layout = opt.layout(&bind);
    let run = gcr_cache::measure_hierarchy(
        &opt.program,
        bind,
        layout,
        engine,
        kernel.steps,
        MEASURE_FUEL,
        &spec,
    )?;
    let mut report = Report::new("gallery", &prog, "original", &opt, tracer.into_events());
    report.hierarchy =
        Some(HierarchySection { size: kernel.default_size, steps: kernel.steps, run });
    Ok(report)
}

/// Runs the whole gallery on `threads` workers (VM engine) and collects
/// the reports, in gallery order, into a [`ReportSet`].
pub fn run_gallery(threads: usize) -> Result<ReportSet, GcrError> {
    let kernels = gcr_apps::gallery();
    let results = gcr_par::scope_map_with(threads, &kernels, |k| kernel_report(k, ExecEngine::Vm));
    let mut set = ReportSet::new("gallery", "realistic-hierarchy workload gallery");
    for r in results {
        set.reports.push(r?);
    }
    Ok(set)
}
