//! Criterion benches mirroring the paper's experiments at reduced sizes —
//! one group per figure/table, so `cargo bench` exercises every
//! reproduction pipeline end to end. The experiment binaries (`fig3`,
//! `fig10`, `table6`, …) print the full-size tables; these benches track
//! the cost of regenerating them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcr_bench::{capture_trace, measure_strategy};
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use gcr_ir::ParamBinding;
use gcr_reuse::driven::{measure_program_order, reuse_driven_order};
use std::hint::black_box;

/// Figure 3 pipeline: trace capture + program-order histogram +
/// reuse-driven reorder, on ADI.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for n in [26i64, 50] {
        g.bench_with_input(BenchmarkId::new("adi_reuse_driven", n), &n, |b, &n| {
            let prog = gcr_apps::adi::program();
            b.iter(|| {
                let trace = capture_trace(&prog, ParamBinding::new(vec![n]));
                let (h, _) = measure_program_order(&trace);
                let order = reuse_driven_order(&trace);
                black_box((h.reuses, order.len()))
            });
        });
    }
    g.finish();
}

/// Figure 10 pipeline: optimize + simulate, per strategy, on ADI and SP.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let strategies = [
        Strategy::Original,
        Strategy::FusionOnly { levels: 3 },
        Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
    ];
    for app in gcr_apps::evaluation_apps() {
        if app.name != "ADI" && app.name != "SP" {
            continue;
        }
        let size = if app.name == "SP" { 12 } else { 48 };
        for s in strategies {
            g.bench_with_input(BenchmarkId::new(app.name, s.label()), &s, |b, &s| {
                b.iter(|| black_box(measure_strategy(&app, s, size, 1).cycles));
            });
        }
    }
    g.finish();
}

/// Section 6 pipeline: the SGI-like baseline vs the global strategy.
fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    let apps = gcr_apps::evaluation_apps();
    let tomcatv = apps.iter().find(|a| a.name == "Tomcatv").unwrap();
    for s in [Strategy::Sgi, Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi }] {
        g.bench_with_input(BenchmarkId::new("tomcatv", s.label()), &s, |b, &s| {
            b.iter(|| black_box(measure_strategy(tomcatv, s, 48, 1).misses.l2));
        });
    }
    g.finish();
}

/// The compiler itself (Section 4.1 reports compilation cost): preliminary
/// passes + fusion + regrouping on the SP application.
fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.bench_function("sp_full_pipeline", |b| {
        let orig = gcr_apps::sp::program();
        b.iter(|| {
            let opt = gcr_core::pipeline::apply_strategy(
                &orig,
                Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
            );
            black_box(opt.fusion.total_fused())
        });
    });
    g.bench_function("sp_parse", |b| {
        let src = gcr_apps::sp::source();
        b.iter(|| black_box(gcr_frontend::parse(&src).unwrap().count_loops()));
    });
    g.finish();
}

criterion_group!(benches, bench_fig3, bench_fig10, bench_table6, bench_compiler);
criterion_main!(benches);
