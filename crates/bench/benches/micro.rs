//! Microbenchmarks of the measurement substrates: reuse-distance analysis,
//! cache simulation, and the interpreter, in accesses per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gcr_cache::{CacheConfig, MemoryHierarchy, Tlb};
use gcr_exec::{Machine, NullSink};
use gcr_ir::ParamBinding;
use gcr_reuse::distance::ReuseDistanceAnalyzer;
use std::hint::black_box;

/// Deterministic pseudo-random address stream with a working-set mix.
fn addr_stream(n: usize) -> Vec<u64> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // 3/4 sequential within a 1 MB region, 1/4 random far.
            if i % 4 != 0 {
                ((i as u64) * 8) % (1 << 20)
            } else {
                (x % (1 << 28)) & !7
            }
        })
        .collect()
}

fn bench_reuse_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("reuse_distance");
    let n = 200_000usize;
    let addrs = addr_stream(n);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("analyzer", |b| {
        b.iter(|| {
            let mut a = ReuseDistanceAnalyzer::new(8);
            let mut sum = 0u64;
            for &x in &addrs {
                if let Some(d) = a.access(x) {
                    sum = sum.wrapping_add(d);
                }
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    let n = 500_000usize;
    let addrs = addr_stream(n);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("hierarchy", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(
                CacheConfig::l1_mips(),
                CacheConfig::l2_octane(),
                Tlb::mips_r10k(),
            );
            for &x in &addrs {
                h.access(x);
            }
            black_box(h.counts().l2)
        });
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    for (name, prog, n) in
        [("adi", gcr_apps::adi::program(), 128i64), ("swim", gcr_apps::swim::program(), 64)]
    {
        g.bench_with_input(BenchmarkId::new("run", name), &n, |b, &n| {
            let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
            b.iter(|| {
                m.run(&mut NullSink);
                black_box(m.stats().instances)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reuse_distance, bench_cache, bench_interpreter);
criterion_main!(benches);
