//! Microbenchmarks of the single-pass measurement path: the reuse-distance
//! analyzer feeding a capacity sweep versus one dedicated LRU simulation
//! per capacity, trace capture with versus without the up-front capacity
//! reservation from the interpreter's static estimate, the tree-walking
//! interpreter versus the compiled tape engine on the same program (which
//! also covers the hoisted `guards` scratch buffer in the interpreter's
//! loop entry), and the FNV hasher now used by the analyzer's maps against
//! the std SipHash it replaced.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcr_cache::{Cache, CacheConfig, CapacitySweepSink};
use gcr_exec::{AccessEvent, ExecEngine, Machine, NullSink, TraceSink};
use gcr_ir::{ArrayId, ParamBinding, RefId, StmtId};
use gcr_reuse::{FnvBuildHasher, ReuseDistanceAnalyzer, TraceCapture};
use std::collections::HashMap;
use std::hint::black_box;

/// Deterministic address stream mixing streaming and far reuse.
fn addr_stream(n: usize) -> Vec<u64> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 4 != 0 {
                ((i as u64) * 8) % (1 << 18)
            } else {
                (x % (1 << 24)) & !7
            }
        })
        .collect()
}

fn event(addr: u64) -> AccessEvent {
    AccessEvent {
        addr,
        array: ArrayId::from_index(0),
        ref_id: RefId::from_index(0),
        stmt: StmtId::from_index(0),
        is_write: false,
    }
}

/// One analyzer pass answering eight capacities at once, against eight
/// dedicated fully-associative LRU simulations of the same stream.
fn bench_capacity_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity_sweep");
    let n = 100_000usize;
    let addrs = addr_stream(n);
    let line = 32u64;
    let caps: Vec<u64> = (0..8).map(|k| line << k).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(5);
    g.bench_function("single_pass_all_capacities", |b| {
        b.iter(|| {
            let mut sweep = CapacitySweepSink::new(line, &caps);
            for &a in &addrs {
                sweep.access(event(a));
            }
            black_box(sweep.miss_counts().last().map(|&(_, m)| m))
        });
    });
    g.bench_function("one_simulation_per_capacity", |b| {
        b.iter(|| {
            let mut last = 0u64;
            for &cap in &caps {
                let assoc = (cap / line) as usize;
                let mut cache =
                    Cache::new(CacheConfig { size: cap as usize, line: line as usize, assoc });
                for &a in &addrs {
                    cache.access(a);
                }
                last = cache.misses;
            }
            black_box(last)
        });
    });
    g.finish();
}

/// Trace capture with the static-estimate reservation against the old
/// grow-as-you-go path.
fn bench_trace_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_capture");
    let prog = gcr_apps::adi::program();
    let n = 96i64;
    g.sample_size(5);
    g.bench_function("reserved_from_estimate", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
            let est = m.estimate();
            let mut cap = TraceCapture::with_capacity(est.instances, est.accesses);
            m.run(&mut cap);
            black_box(cap.finish().starts.len())
        });
    });
    g.bench_function("unreserved", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
            let mut cap = TraceCapture::new();
            m.run(&mut cap);
            black_box(cap.finish().starts.len())
        });
    });
    g.finish();
}

/// The tree-walking interpreter against the compiled tape engine on the
/// same program, both with the null sink so the engine is all that is
/// timed. The interpreter side also exercises the per-loop-entry `guards`
/// scratch buffer hoisted into `Ctx`.
fn bench_exec_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_engine");
    let prog = gcr_apps::adi::program();
    let n = 96i64;
    g.sample_size(10);
    g.bench_function("interp", |b| {
        b.iter(|| {
            let mut m =
                Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(ExecEngine::Interp);
            m.run(&mut NullSink);
            black_box(m.stats().instances)
        });
    });
    g.bench_function("compiled", |b| {
        b.iter(|| {
            let mut m =
                Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(ExecEngine::Compiled);
            m.run(&mut NullSink);
            black_box(m.stats().instances)
        });
    });
    g.finish();
}

/// The reuse-distance analyzer on a mixed stream (its `last` map now uses
/// FNV), plus the raw map workload — insert-or-update per access — under
/// FNV and under the std SipHash it replaced, so the hasher swap's delta
/// stays visible without reverting the analyzer.
fn bench_analyzer_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer_hashing");
    let n = 100_000usize;
    let addrs = addr_stream(n);
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("distance_analyzer_fnv", |b| {
        b.iter(|| {
            let mut a = ReuseDistanceAnalyzer::new(1);
            for &addr in &addrs {
                black_box(a.access(addr));
            }
            black_box(a.distinct())
        });
    });
    g.bench_function("map_fnv", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64, FnvBuildHasher> = HashMap::default();
            for (k, &addr) in addrs.iter().enumerate() {
                m.insert(addr, k as u64);
            }
            black_box(m.len())
        });
    });
    g.bench_function("map_siphash", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64> = HashMap::new();
            for (k, &addr) in addrs.iter().enumerate() {
                m.insert(addr, k as u64);
            }
            black_box(m.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_capacity_sweep,
    bench_trace_capture,
    bench_exec_engines,
    bench_analyzer_hashing
);
criterion_main!(benches);
