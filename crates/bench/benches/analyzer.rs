//! Microbenchmarks of the single-pass measurement path: the reuse-distance
//! analyzer feeding a capacity sweep versus one dedicated LRU simulation
//! per capacity, trace capture with versus without the up-front capacity
//! reservation from the interpreter's static estimate, the tree-walking
//! interpreter versus the compiled tape versus the register bytecode VM on
//! the same programs, the dispatch-per-event sink path against the VM's
//! batched-strip `record_batch` path, and the FNV hasher now used by the
//! analyzer's maps against the std SipHash it replaced.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcr_cache::{Cache, CacheConfig, CapacitySweepSink};
use gcr_exec::{AccessEvent, BatchSlot, ExecEngine, Machine, NullSink, TraceBatch, TraceSink};
use gcr_ir::{ArrayId, ParamBinding, RefId, StmtId};
use gcr_reuse::{FnvBuildHasher, ReuseDistanceAnalyzer, TraceCapture};
use std::collections::HashMap;
use std::hint::black_box;

/// Deterministic address stream mixing streaming and far reuse.
fn addr_stream(n: usize) -> Vec<u64> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 4 != 0 {
                ((i as u64) * 8) % (1 << 18)
            } else {
                (x % (1 << 24)) & !7
            }
        })
        .collect()
}

fn event(addr: u64) -> AccessEvent {
    AccessEvent {
        addr,
        array: ArrayId::from_index(0),
        ref_id: RefId::from_index(0),
        stmt: StmtId::from_index(0),
        is_write: false,
    }
}

/// One analyzer pass answering eight capacities at once, against eight
/// dedicated fully-associative LRU simulations of the same stream.
fn bench_capacity_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity_sweep");
    let n = 100_000usize;
    let addrs = addr_stream(n);
    let line = 32u64;
    let caps: Vec<u64> = (0..8).map(|k| line << k).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(5);
    g.bench_function("single_pass_all_capacities", |b| {
        b.iter(|| {
            let mut sweep = CapacitySweepSink::new(line, &caps);
            for &a in &addrs {
                sweep.access(event(a));
            }
            black_box(sweep.miss_counts().last().map(|&(_, m)| m))
        });
    });
    g.bench_function("one_simulation_per_capacity", |b| {
        b.iter(|| {
            let mut last = 0u64;
            for &cap in &caps {
                let assoc = (cap / line) as usize;
                let mut cache =
                    Cache::new(CacheConfig { size: cap as usize, line: line as usize, assoc });
                for &a in &addrs {
                    cache.access(a);
                }
                last = cache.misses;
            }
            black_box(last)
        });
    });
    g.finish();
}

/// Trace capture with the static-estimate reservation against the old
/// grow-as-you-go path.
fn bench_trace_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_capture");
    let prog = gcr_apps::adi::program();
    let n = 96i64;
    g.sample_size(5);
    g.bench_function("reserved_from_estimate", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
            let est = m.estimate();
            let mut cap = TraceCapture::with_capacity(est.instances, est.accesses);
            m.run(&mut cap);
            black_box(cap.finish().starts.len())
        });
    });
    g.bench_function("unreserved", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog, ParamBinding::new(vec![n]));
            let mut cap = TraceCapture::new();
            m.run(&mut cap);
            black_box(cap.finish().starts.len())
        });
    });
    g.finish();
}

/// The tree-walking interpreter against the compiled tape against the
/// register bytecode VM on the same program, all with the null sink so the
/// engine is all that is timed. The interpreter side also exercises the
/// per-loop-entry `guards` scratch buffer hoisted into `Ctx`.
fn bench_exec_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_engine");
    let prog = gcr_apps::adi::program();
    let n = 96i64;
    g.sample_size(10);
    for engine in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Vm] {
        g.bench_function(engine.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(engine);
                m.run(&mut NullSink);
                black_box(m.stats().instances)
            });
        });
    }
    g.finish();
}

/// A superinstruction-heavy workload (`examples/mmul.loop`: triple-nested
/// inner product, one fused load-load-mul-reduce opcode per iteration)
/// under full trace capture: the dispatch-per-event compiled tape against
/// the VM's batched strips.
fn bench_mmul_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmul_capture");
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/mmul.loop"))
            .expect("examples/mmul.loop");
    let prog = gcr_frontend::parse(&src).expect("mmul.loop parses");
    let n = 48i64;
    g.sample_size(10);
    for engine in [ExecEngine::Compiled, ExecEngine::Vm] {
        g.bench_function(engine.name(), |b| {
            let mut cap = TraceCapture::new();
            b.iter(|| {
                let mut m = Machine::new(&prog, ParamBinding::new(vec![n])).with_engine(engine);
                cap.clear();
                m.run(&mut cap);
                black_box(cap.total_accesses())
            });
        });
    }
    g.finish();
}

/// The sink layer in isolation: one virtual `access` call per event versus
/// one affine `record_batch` call per strip, on the two sinks every sweep
/// stands on (trace capture and the multi-capacity analyzer). The stream
/// is the shape the VM produces — a three-point stencil read plus a write
/// per iteration, addresses affine in the iteration. The capacity sweep
/// consumes both forms to the same final state; trace capture stores the
/// batched form compressed (expansion deferred to materialization), which
/// is exactly the write-traffic gap this group exists to show.
fn bench_sink_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("sink_batching");
    const SLOTS: usize = 4;
    const STRIP: u32 = 1024;
    let strips = 25usize;
    let n = strips * STRIP as usize * SLOTS;
    let stmt = StmtId::from_index(0);
    let strip_slots: Vec<[BatchSlot; SLOTS]> = (0..strips)
        .map(|s| {
            let lo = (s as u64) * STRIP as u64 * 8;
            let read = |off: i64, r: usize| BatchSlot {
                addr: (lo as i64 + off * 8) as u64 + 8,
                stride: 8,
                array: ArrayId::from_index(0),
                ref_id: RefId::from_index(r),
                stmt,
                is_write: false,
            };
            [
                read(-1, 0),
                read(0, 1),
                read(1, 2),
                BatchSlot {
                    addr: (1u64 << 24) + lo,
                    stride: 8,
                    array: ArrayId::from_index(1),
                    ref_id: RefId::from_index(3),
                    stmt,
                    is_write: true,
                },
            ]
        })
        .collect();
    let ends = [(SLOTS as u32, stmt)];
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("trace_capture_per_event", |b| {
        let mut cap = TraceCapture::new();
        b.iter(|| {
            cap.clear();
            for slots in &strip_slots {
                for k in 0..STRIP as i64 {
                    for sl in slots {
                        cap.access(sl.event_at(k));
                    }
                    cap.end_instance(stmt);
                }
            }
            black_box(cap.total_accesses())
        });
    });
    g.bench_function("trace_capture_batched", |b| {
        let mut cap = TraceCapture::new();
        b.iter(|| {
            cap.clear();
            for slots in &strip_slots {
                cap.record_batch(&TraceBatch { slots, ends: &ends, iters: STRIP });
            }
            black_box(cap.total_accesses())
        });
    });
    let line = 32u64;
    let caps: Vec<u64> = (0..8).map(|k| line << k).collect();
    g.bench_function("capacity_sweep_per_event", |b| {
        b.iter(|| {
            let mut sweep = CapacitySweepSink::new(line, &caps);
            for slots in &strip_slots {
                for k in 0..STRIP as i64 {
                    for sl in slots {
                        sweep.access(sl.event_at(k));
                    }
                }
            }
            black_box(sweep.refs())
        });
    });
    g.bench_function("capacity_sweep_batched", |b| {
        b.iter(|| {
            let mut sweep = CapacitySweepSink::new(line, &caps);
            for slots in &strip_slots {
                sweep.record_batch(&TraceBatch { slots, ends: &[], iters: STRIP });
            }
            black_box(sweep.refs())
        });
    });
    g.finish();
}

/// The reuse-distance analyzer on a mixed stream (its `last` map now uses
/// FNV), plus the raw map workload — insert-or-update per access — under
/// FNV and under the std SipHash it replaced, so the hasher swap's delta
/// stays visible without reverting the analyzer.
fn bench_analyzer_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer_hashing");
    let n = 100_000usize;
    let addrs = addr_stream(n);
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("distance_analyzer_fnv", |b| {
        b.iter(|| {
            let mut a = ReuseDistanceAnalyzer::new(1);
            for &addr in &addrs {
                black_box(a.access(addr));
            }
            black_box(a.distinct())
        });
    });
    g.bench_function("map_fnv", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64, FnvBuildHasher> = HashMap::default();
            for (k, &addr) in addrs.iter().enumerate() {
                m.insert(addr, k as u64);
            }
            black_box(m.len())
        });
    });
    g.bench_function("map_siphash", |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64> = HashMap::new();
            for (k, &addr) in addrs.iter().enumerate() {
                m.insert(addr, k as u64);
            }
            black_box(m.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_capacity_sweep,
    bench_trace_capture,
    bench_exec_engines,
    bench_mmul_capture,
    bench_sink_batching,
    bench_analyzer_hashing
);
criterion_main!(benches);
