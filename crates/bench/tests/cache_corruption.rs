//! Disk-cache corruption regression suite: truncated, bit-flipped, and
//! wrong-version `gcr-measure-cache` files must be *detected*, the bad
//! state *quarantined*, and the affected measurements *recomputed* — with
//! results byte-identical to a cold run and golden health counters
//! proving exactly which recovery path fired.

use gcr_bench::sweep::{measure_strategy_report_cached, MeasureCache};
use gcr_core::pipeline::Strategy;

/// A fresh per-test scratch directory (the test binary may run tests in
/// parallel, so paths carry the test name).
fn scratch(test: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gcr-cache-corruption-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Measures two distinct points through `cache`, returning the normalized
/// report JSON of both (the byte-identity oracle).
fn measure_two(cache: &MeasureCache) -> Vec<String> {
    let apps = gcr_apps::evaluation_apps();
    let adi = apps.iter().find(|a| a.name == "ADI").unwrap();
    [Strategy::Original, Strategy::FusionOnly { levels: 3 }]
        .into_iter()
        .map(|s| {
            let (_, report, _) = measure_strategy_report_cached(cache, "t", adi, s, 14, 1).unwrap();
            report.normalized().to_json()
        })
        .collect()
}

/// Writes a warm two-entry cache file and returns (path, cold reports).
fn seeded_cache(dir: &std::path::Path) -> (String, Vec<String>) {
    let path = dir.join("cache.txt").to_str().unwrap().to_string();
    let cache = MeasureCache::with_disk(path.clone());
    let cold = measure_two(&cache);
    assert_eq!((cache.hits(), cache.misses(), cache.corrupt()), (0, 2, 0));
    cache.save().unwrap();
    (path, cold)
}

#[test]
fn truncated_file_quarantines_tail_and_recomputes() {
    let dir = scratch("truncated");
    let (path, cold) = seeded_cache(&dir);
    // Tear the file mid-way through the second entry, as a crash during a
    // (pre-atomic-rename) write would have.
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.len() * 2 / 3;
    std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();

    let warm = MeasureCache::with_disk(path.clone());
    assert_eq!(warm.len(), 1, "the intact leading entry must survive");
    assert_eq!(warm.corrupt(), 1, "the torn tail must be detected");
    let healed = measure_two(&warm);
    assert_eq!(healed, cold, "recomputed results must be byte-identical to the cold run");
    // Golden counters: one served from the surviving entry, one recomputed.
    let c = warm.counters();
    assert_eq!((c.hits, c.misses, c.evictions, c.corrupt), (1, 1, 0, 1), "{c:?}");

    // Self-heal is durable: a clean save then reload is fully warm.
    warm.save().unwrap();
    let again = MeasureCache::with_disk(path);
    assert_eq!((again.len(), again.corrupt()), (2, 0));
    assert_eq!(measure_two(&again), cold);
    assert_eq!((again.hits(), again.misses()), (2, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_fails_checksum_and_recomputes() {
    let dir = scratch("bitflip");
    let (path, cold) = seeded_cache(&dir);
    // Flip one payload byte in the first entry block (a counter digit),
    // leaving the line structurally valid — only the checksum can catch it.
    let mut bytes = std::fs::read(&path).unwrap();
    let first_e = bytes.windows(2).position(|w| w == b"e ").unwrap();
    let digit =
        (first_e..bytes.len()).find(|&i| bytes[i].is_ascii_digit() && bytes[i] != b'9').unwrap();
    bytes[digit] += 1;
    std::fs::write(&path, &bytes).unwrap();

    let warm = MeasureCache::with_disk(path);
    assert_eq!(warm.len(), 1, "only the untouched entry may load");
    assert_eq!(warm.corrupt(), 1, "the flipped entry must fail its checksum");
    assert_eq!(measure_two(&warm), cold, "the poisoned measurement must be recomputed");
    let c = warm.counters();
    assert_eq!((c.hits, c.misses, c.evictions, c.corrupt), (1, 1, 0, 1), "{c:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_version_file_is_quarantined_whole() {
    let dir = scratch("wrongver");
    let path = dir.join("cache.txt").to_str().unwrap().to_string();
    // A v1-era file: right family, no per-entry checksums — untrustworthy.
    std::fs::write(&path, "gcr-measure-cache/v1\ne 0000000000000001 bogus\n").unwrap();

    let cache = MeasureCache::with_disk(path.clone());
    assert_eq!(cache.len(), 0, "no entry of a foreign file may load");
    assert_eq!(cache.corrupt(), 1);
    assert!(
        std::path::Path::new(&format!("{path}.quarantined")).exists(),
        "the foreign bytes must be preserved for inspection"
    );
    let cold = measure_two(&cache);
    let c = cache.counters();
    assert_eq!((c.hits, c.misses, c.evictions, c.corrupt), (0, 2, 0, 1), "{c:?}");

    // The quarantined path is now clean to save and reload.
    cache.save().unwrap();
    let warm = MeasureCache::with_disk(path);
    assert_eq!((warm.len(), warm.corrupt()), (2, 0));
    assert_eq!(measure_two(&warm), cold);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn atomic_save_leaves_no_temp_files() {
    let dir = scratch("atomic");
    let (path, _) = seeded_cache(&dir);
    let survivors: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(survivors, vec!["cache.txt"], "temp file must be renamed away");
    // And the rename-over is a full replacement: saving a cache with one
    // extra entry yields a file whose reload sees all three.
    let cache = MeasureCache::with_disk(path.clone());
    let apps = gcr_apps::evaluation_apps();
    let sp = apps.iter().find(|a| a.name == "SP").unwrap();
    measure_strategy_report_cached(&cache, "t", sp, Strategy::Original, 8, 1).unwrap();
    cache.save().unwrap();
    assert_eq!(MeasureCache::with_disk(path).len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
