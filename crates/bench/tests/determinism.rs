//! Determinism guarantee of the parallel sweep engine: for any worker
//! count, the normalized report-set JSON is byte-identical to the serial
//! run's. `GCR_THREADS` is racy to set from tests, so thread counts are
//! passed explicitly — the env override resolves to the same
//! `scope_map_with` call.

use gcr_bench::fig10_strategies;
use gcr_bench::sweep::{app_jobs, run_jobs, MeasureCache, SweepJob};
use gcr_cli::ReportSet;

fn jobs_of(apps: &[gcr_apps::AppSpec]) -> Vec<SweepJob<'_>> {
    let mut jobs = Vec::new();
    for app in apps {
        jobs.extend(app_jobs(app, &fig10_strategies(app.name), 12, 1));
    }
    jobs
}

fn sweep_json(threads: usize, jobs: &[SweepJob<'_>]) -> String {
    let cache = MeasureCache::new();
    let results = run_jobs(threads, &cache, "determinism", jobs);
    let mut set = ReportSet::new("determinism", "parallel determinism check");
    for r in results {
        match r {
            Ok((_, report, _)) => set.reports.push(report),
            Err(e) => panic!("job failed: {e}"),
        }
    }
    assert!(!set.reports.is_empty());
    set.normalized().to_json()
}

#[test]
fn sweep_output_is_byte_identical_for_1_2_and_8_threads() {
    let apps = gcr_apps::evaluation_apps();
    let jobs = jobs_of(&apps);
    let serial = sweep_json(1, &jobs);
    for threads in [2, 8] {
        let parallel = sweep_json(threads, &jobs);
        assert_eq!(serial, parallel, "{threads}-thread sweep diverged from serial");
    }
}

#[test]
fn warm_cache_does_not_change_output() {
    let apps = gcr_apps::evaluation_apps();
    let adi: Vec<_> = apps.iter().filter(|a| a.name == "ADI").cloned().collect();
    let jobs = jobs_of(&adi);
    let cache = MeasureCache::new();
    let render = |results: Vec<gcr_bench::sweep::JobResult>| {
        let mut set = ReportSet::new("determinism", "memo check");
        for r in results {
            set.reports.push(r.unwrap().1);
        }
        set.normalized().to_json()
    };
    let cold = render(run_jobs(2, &cache, "determinism", &jobs));
    assert!(cache.misses() > 0);
    let cold_misses = cache.misses();
    let warm = render(run_jobs(2, &cache, "determinism", &jobs));
    assert_eq!(cache.misses(), cold_misses, "warm run must not re-measure");
    assert!(cache.hits() >= jobs.len() as u64);
    assert_eq!(cold, warm, "memoized sweep diverged from measured sweep");
}
