//! Golden `gcr-report/v1` files for the workload gallery, plus the
//! thread-count determinism guarantee for the set-associative sweep.
//!
//! Every gallery kernel is measured through the default realistic
//! hierarchy (see [`gcr_bench::gallery::GALLERY_HIERARCHY`]) under the VM
//! engine; the normalized report — hierarchy section included, so
//! per-level hit/miss/writeback counts, prefetch counts, memory traffic
//! and the FA-vs-4-way sweep table are all pinned — is compared
//! byte-for-byte against `tests/golden/gallery/<kernel>.json`.
//!
//! On intentional model or schema changes, regenerate with
//! `GCR_BLESS=1 cargo test -p gcr-bench --test gallery_golden` and review
//! the diff (EXPERIMENTS.md documents the hierarchy section's schema).

use gcr_bench::gallery::run_gallery;

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/gallery/{name}.json", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn gallery_reports_match_goldens() {
    let kernels = gcr_apps::gallery();
    let set = run_gallery(2).unwrap();
    assert_eq!(set.reports.len(), kernels.len());

    let bless = std::env::var_os("GCR_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/gallery"))
            .unwrap();
    }
    let mut bad = Vec::new();
    for (kernel, report) in kernels.iter().zip(set.reports) {
        let json = report.normalized().to_json();
        let path = golden_path(kernel.name);
        if bless {
            std::fs::write(&path, &json).unwrap();
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == json => {}
            Ok(_) => bad.push(format!("{}: drifted", kernel.name)),
            Err(e) => bad.push(format!("{}: golden unreadable ({e})", kernel.name)),
        }
    }
    assert!(
        bad.is_empty(),
        "gallery goldens drifted; if intentional, bless with GCR_BLESS=1 and \
         review the diff:\n{}",
        bad.join("\n")
    );
}

/// The set-associative sweep must be deterministic in the worker count:
/// the rendered report set — per-level counters, sweep bins, everything —
/// is byte-identical for 1, 2 and 8 threads. `GCR_THREADS` is racy to set
/// from tests, so thread counts are passed explicitly; the env override
/// resolves to the same `scope_map_with` call.
#[test]
fn gallery_is_byte_identical_for_1_2_and_8_threads() {
    let serial = run_gallery(1).unwrap().normalized().to_json();
    for threads in [2usize, 8] {
        let parallel = run_gallery(threads).unwrap().normalized().to_json();
        assert_eq!(serial, parallel, "{threads}-thread gallery diverged from serial");
    }
}
