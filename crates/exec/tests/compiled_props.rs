//! Differential oracle for the derived execution engines: on random
//! programs, bindings, layouts (including regrouped-style interleaving),
//! and guard/alignment shapes, the compiled tape *and* the register
//! bytecode VM must each be observationally identical to the tree-walking
//! interpreter — same sink-event sequence (accesses *and* instance
//! boundaries, in order), same `ExecStats`, bit-identical memory images,
//! and identical fuel-exhaustion behaviour.

use gcr_exec::{AccessEvent, ArrayLayout, DataLayout, ExecEngine, ExecStats, Machine, TraceSink};
use gcr_ir::{
    ArrayId, Expr, GcrError, LinExpr, ParamBinding, Program, ProgramBuilder, Range, ReduceOp, Stmt,
    StmtId, Subscript,
};
use proptest::prelude::*;

const NARRAYS: usize = 3;

/// Everything a sink can observe, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    Access(AccessEvent),
    End(StmtId),
}

#[derive(Default)]
struct Cap(Vec<Event>);

impl TraceSink for Cap {
    fn access(&mut self, ev: AccessEvent) {
        self.0.push(Event::Access(ev));
    }
    fn end_instance(&mut self, stmt: StmtId) {
        self.0.push(Event::End(stmt));
    }
}

/// One random statement in a 1-D loop.
#[derive(Clone, Debug)]
struct RStmt {
    lhs: usize,
    lhs_off: i64,
    rhs1: usize,
    rhs1_off: i64,
    rhs2: Option<(usize, i64)>,
    /// 0, 1: normal assign; 2: sum-reduce into the scalar; 3: max-reduce
    /// into the array element (traced reduction read).
    kind: u8,
    /// Combine `rhs1 ∘ rhs2` with division (exercises the FP guard).
    div: bool,
    /// Guard interval, absolute iteration numbers (may exceed the loop
    /// range — resolution must clamp it).
    guard: Option<(i64, i64)>,
}

/// One random top-level item.
#[derive(Clone, Debug)]
enum RItem {
    /// `for i = 3, N-3 { ... }` over 1-D arrays.
    Loop(Vec<RStmt>),
    /// Two-level nest writing the 2-D array, with optional guard on the
    /// inner statement and optional outer-variable condition on the inner
    /// loop's member.
    Nest { di: i64, dj: i64, guard: Option<(i64, i64)>, outer: Option<(i64, i64)> },
    /// Invariant-subscript boundary statement at top level.
    Boundary { lhs: usize, c1: i64, rhs: usize, c2: i64 },
}

fn stmt_strategy() -> impl Strategy<Value = RStmt> {
    (
        (0..NARRAYS, -2i64..=2, 0..NARRAYS, -2i64..=2),
        proptest::option::of((0..NARRAYS, -2i64..=2)),
        0u8..4,
        proptest::option::of((0i64..=9, 0i64..=5)),
        0u8..4,
    )
        .prop_map(|((lhs, lhs_off, rhs1, rhs1_off), rhs2, kind, guard, div)| RStmt {
            lhs,
            lhs_off,
            rhs1,
            rhs1_off,
            rhs2,
            kind,
            div: div == 0,
            guard: guard.map(|(lo, len)| (3 + lo, 3 + lo + len)),
        })
}

fn item_strategy() -> impl Strategy<Value = RItem> {
    prop_oneof![
        4 => proptest::collection::vec(stmt_strategy(), 1..3).prop_map(RItem::Loop),
        2 => (
            (-2i64..=2, -2i64..=2),
            proptest::option::of((0i64..=9, 0i64..=5)),
            proptest::option::of((0i64..=9, 0i64..=5)),
        )
            .prop_map(|((di, dj), guard, outer)| RItem::Nest {
                di,
                dj,
                guard: guard.map(|(lo, len)| (3 + lo, 3 + lo + len)),
                outer: outer.map(|(lo, len)| (3 + lo, 3 + lo + len)),
            }),
        1 => (0..NARRAYS, 1i64..=3, 0..NARRAYS, 1i64..=3)
            .prop_map(|(lhs, c1, rhs, c2)| RItem::Boundary { lhs, c1, rhs, c2 }),
    ]
}

/// Builds the program: three 1-D arrays `A0..A2` of extent N, one 2-D
/// array `M` of extent N×N, and one scalar `s`.
fn build(items: &[RItem]) -> Program {
    let mut b = ProgramBuilder::new("diff");
    let n = b.param("N");
    let arrays: Vec<ArrayId> =
        (0..NARRAYS).map(|k| b.array(format!("A{k}"), &[LinExpr::param(n)])).collect();
    let m2 = b.array("M", &[LinExpr::param(n), LinExpr::param(n)]);
    let sc = b.scalar("s");
    for (li, item) in items.iter().enumerate() {
        match item {
            RItem::Loop(stmts) => {
                let var = b.var(format!("i{li}"));
                let body: Vec<Stmt> = stmts
                    .iter()
                    .map(|s| {
                        let mut rhs = b.read(arrays[s.rhs1], vec![Subscript::var(var, s.rhs1_off)]);
                        if let Some((a2, o2)) = s.rhs2 {
                            let r2 = b.read(arrays[a2], vec![Subscript::var(var, o2)]);
                            rhs = if s.div {
                                Expr::Bin(gcr_ir::BinOp::Div, Box::new(rhs), Box::new(r2))
                            } else {
                                Expr::add(rhs, r2)
                            };
                        }
                        rhs = Expr::Call("f", vec![rhs, Expr::Var { var, offset: 0 }]);
                        match s.kind {
                            2 => b.reduce(ReduceOp::Sum, sc, vec![], rhs),
                            3 => b.reduce(
                                ReduceOp::Max,
                                arrays[s.lhs],
                                vec![Subscript::var(var, s.lhs_off)],
                                rhs,
                            ),
                            _ => b.assign(arrays[s.lhs], vec![Subscript::var(var, s.lhs_off)], rhs),
                        }
                    })
                    .collect();
                let l = b.for_(var, LinExpr::konst(3), LinExpr::param(n).add_const(-3), body);
                let l = match l {
                    Stmt::Loop(mut lp) => {
                        for (k, s) in stmts.iter().enumerate() {
                            if let Some((glo, ghi)) = s.guard {
                                lp.body[k].guard = Some(Range::consts(glo, ghi));
                            }
                        }
                        Stmt::Loop(lp)
                    }
                    _ => unreachable!(),
                };
                b.push(l);
            }
            RItem::Nest { di, dj, guard, outer } => {
                let vi = b.var(format!("i{li}"));
                let vj = b.var(format!("j{li}"));
                let rd = b.read(m2, vec![Subscript::var(vj, *dj), Subscript::var(vi, *di)]);
                let s = b.assign(
                    m2,
                    vec![Subscript::var(vj, 0), Subscript::var(vi, 0)],
                    Expr::Call("g", vec![rd]),
                );
                let inner = b.for_(vj, LinExpr::konst(3), LinExpr::param(n).add_const(-3), vec![s]);
                let inner = match inner {
                    Stmt::Loop(mut lp) => {
                        if let Some((glo, ghi)) = guard {
                            lp.body[0].guard = Some(Range::consts(*glo, *ghi));
                        }
                        if let Some((olo, ohi)) = outer {
                            // Condition the inner member on the *enclosing*
                            // variable — evaluated at inner-loop entry, once
                            // per outer iteration (the fusion idiom).
                            lp.body[0].outer = vec![(vi, Range::consts(*olo, *ohi))];
                        }
                        Stmt::Loop(lp)
                    }
                    _ => unreachable!(),
                };
                let outer_loop =
                    b.for_(vi, LinExpr::konst(3), LinExpr::param(n).add_const(-3), vec![inner]);
                b.push(outer_loop);
            }
            RItem::Boundary { lhs, c1, rhs, c2 } => {
                let r = b.read(arrays[*rhs], vec![Subscript::konst(*c2)]);
                let s =
                    b.assign(arrays[*lhs], vec![Subscript::konst(*c1)], Expr::Call("g", vec![r]));
                b.push(s);
            }
        }
    }
    b.finish()
}

/// A regrouped-style layout: the three 1-D arrays interleaved at stride
/// `3·ELEM`, then the 2-D array and the scalar — the shape `gcr-core`'s
/// regrouping produces, built by hand so this crate needn't depend on it.
fn interleaved_layout(n: i64) -> DataLayout {
    const E: usize = 8;
    let nn = n as usize;
    let mut arrays: Vec<ArrayLayout> = (0..NARRAYS)
        .map(|k| ArrayLayout { base: k * E, strides: vec![NARRAYS * E], extents: vec![n] })
        .collect();
    let m_base = NARRAYS * E * nn;
    arrays.push(ArrayLayout { base: m_base, strides: vec![E, E * nn], extents: vec![n, n] });
    let s_base = m_base + E * nn * nn;
    arrays.push(ArrayLayout { base: s_base, strides: vec![], extents: vec![] });
    DataLayout { arrays, total_bytes: s_base + E }
}

struct RunOut {
    events: Vec<Event>,
    stats: ExecStats,
    bits: Vec<Vec<u64>>,
    checksum: f64,
    fueled: Result<(), GcrError>,
    fueled_events: Vec<Event>,
}

fn run_engine(
    prog: &Program,
    layout: &DataLayout,
    n: i64,
    engine: ExecEngine,
    fuel: u64,
) -> RunOut {
    let bind = ParamBinding::new(vec![n]);
    let mut m = Machine::with_layout(prog, bind.clone(), layout.clone()).with_engine(engine);
    if engine != ExecEngine::Interp {
        assert!(m.compiles(), "generated program must be in the compiler's domain");
    }
    let mut cap = Cap::default();
    m.run_steps(&mut cap, 2);
    let stats = m.stats();
    let bits = (0..prog.arrays.len())
        .map(|i| m.read_array(ArrayId::from_index(i)).into_iter().map(f64::to_bits).collect())
        .collect();
    let checksum = m.checksum();
    // Fresh machine for the fuel experiment: exhaustion behaviour must
    // match from a cold start.
    let mut mf = Machine::with_layout(prog, bind, layout.clone()).with_engine(engine);
    let mut capf = Cap::default();
    let fueled = mf.run_steps_guarded(&mut capf, 2, fuel);
    RunOut { events: cap.0, stats, bits, checksum, fueled, fueled_events: capf.0 }
}

fn check_equivalence(prog: &Program, layout: &DataLayout, n: i64, fuel: u64) {
    let interp = run_engine(prog, layout, n, ExecEngine::Interp, fuel);
    for engine in [ExecEngine::Compiled, ExecEngine::Vm] {
        let name = engine.name();
        let got = run_engine(prog, layout, n, engine, fuel);
        assert_eq!(interp.events, got.events, "{name}: event stream diverged");
        assert_eq!(interp.stats, got.stats, "{name}: ExecStats diverged");
        assert_eq!(interp.bits, got.bits, "{name}: memory image diverged (bitwise)");
        assert_eq!(interp.checksum.to_bits(), got.checksum.to_bits(), "{name}: checksum diverged");
        assert_eq!(interp.fueled, got.fueled, "{name}: fuel-exhaustion result diverged");
        assert_eq!(interp.fueled_events, got.fueled_events, "{name}: fueled event stream diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled, VM, and interpreted execution agree on every observable,
    /// for every layout shape, with and without a fuel budget.
    #[test]
    fn compiled_matches_interpreter(
        items in proptest::collection::vec(item_strategy(), 1..5),
        n in 12i64..=20,
        fuel in 1u64..400,
    ) {
        let prog = build(&items);
        let bind = ParamBinding::new(vec![n]);
        let plain = DataLayout::column_major(&prog, &bind, 0);
        let padded = DataLayout::column_major(&prog, &bind, 64);
        let interleaved = interleaved_layout(n);
        for layout in [&plain, &padded, &interleaved] {
            check_equivalence(&prog, layout, n, fuel);
        }
    }
}

/// A variable used outside its loop is outside the compiler's domain: the
/// machine must fall back to the interpreter rather than miscompile.
#[test]
fn stale_variable_use_falls_back_to_interpreter() {
    let mut b = ProgramBuilder::new("stale");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let i = b.var("i");
    let s0 = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(1.0));
    let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s0]);
    b.push(l);
    // `A[i] = 2` *after* the loop: `i` is stale here.
    let s1 = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(2.0));
    b.push(s1);
    let p = b.finish();
    let bind = ParamBinding::new(vec![6]);
    let mut m = Machine::new(&p, bind.clone()).with_engine(ExecEngine::Compiled);
    assert!(!m.compiles(), "stale-variable program must not compile");
    // Fallback still runs with interpreter semantics.
    let mut cap = Cap::default();
    m.run(&mut cap);
    let mut mi = Machine::new(&p, bind).with_engine(ExecEngine::Interp);
    let mut capi = Cap::default();
    mi.run(&mut capi);
    assert_eq!(cap.0, capi.0);
    assert_eq!(m.read_array(ArrayId::from_index(0)), mi.read_array(ArrayId::from_index(0)));
}
