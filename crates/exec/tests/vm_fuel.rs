//! Fuel-boundary bisection: the VM's partial-run behaviour must match the
//! interpreter event-for-event at *every* fuel level, not just at the
//! halfway points the conformance oracle probes.
//!
//! The VM charges flat segments in bulk and takes the strip path only when
//! the remaining fuel provably covers the whole segment; these tests sweep
//! fuel exhaustively from 0 to past the program's total cost, so every
//! bulk/exact boundary — segment entry with exactly enough fuel, one unit
//! short, exhaustion mid-segment on the exact path — is crossed for every
//! program shape the strip executor specializes (single-statement kernels,
//! fused multi-statement segments, loop-carried chains, reductions, and
//! guarded bodies that never reach the strip path at all).

use gcr_exec::{AccessEvent, ExecEngine, Machine, TraceSink};
use gcr_ir::{
    Expr, GcrError, LinExpr, ParamBinding, ProgramBuilder, Range, ReduceOp, Stmt, StmtId, Subscript,
};

#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    Access(AccessEvent),
    End(StmtId),
}

#[derive(Default)]
struct Cap(Vec<Event>);

impl TraceSink for Cap {
    fn access(&mut self, ev: AccessEvent) {
        self.0.push(Event::Access(ev));
    }
    fn end_instance(&mut self, stmt: StmtId) {
        self.0.push(Event::End(stmt));
    }
}

struct Partial {
    outcome: Result<(), GcrError>,
    events: Vec<Event>,
    stats: gcr_exec::ExecStats,
    bits: Vec<Vec<u64>>,
}

fn run_at(prog: &gcr_ir::Program, n: i64, engine: ExecEngine, fuel: u64) -> Partial {
    let mut m = Machine::new(prog, ParamBinding::new(vec![n])).with_engine(engine);
    let mut cap = Cap::default();
    let outcome = m.run_steps_guarded(&mut cap, 2, fuel);
    let bits = (0..prog.arrays.len())
        .map(|i| {
            m.read_array(gcr_ir::ArrayId::from_index(i)).into_iter().map(f64::to_bits).collect()
        })
        .collect();
    Partial { outcome, events: cap.0, stats: m.stats(), bits }
}

/// Sweeps every fuel level from 0 to `total + 2` and requires the VM's
/// partial run to match the interpreter on outcome, event stream, stats,
/// and memory bits at each one.
fn bisect_fuel(prog: &gcr_ir::Program, n: i64) {
    let full = run_at(prog, n, ExecEngine::Interp, u64::MAX);
    assert!(full.outcome.is_ok());
    let total = full.stats.instances;
    assert!(total > 0, "test program must execute something");
    for fuel in 0..=total + 2 {
        let a = run_at(prog, n, ExecEngine::Interp, fuel);
        let b = run_at(prog, n, ExecEngine::Vm, fuel);
        assert_eq!(a.outcome, b.outcome, "outcome diverged at fuel {fuel}");
        assert_eq!(a.stats, b.stats, "stats diverged at fuel {fuel}");
        assert_eq!(
            a.events.len(),
            b.events.len(),
            "event count diverged at fuel {fuel} ({} vs {})",
            a.events.len(),
            b.events.len()
        );
        assert_eq!(a.events, b.events, "event stream diverged at fuel {fuel}");
        assert_eq!(a.bits, b.bits, "memory diverged at fuel {fuel}");
    }
}

/// Single-statement stencil: the pure statement-major kernel path.
#[test]
fn fuel_bisection_stencil() {
    let mut b = ProgramBuilder::new("stencil");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let c = b.array("B", &[LinExpr::param(n)]);
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, -1)]);
    let r2 = b.read(a, vec![Subscript::var(i, 0)]);
    let r3 = b.read(a, vec![Subscript::var(i, 1)]);
    let s = b.assign(c, vec![Subscript::var(i, 0)], Expr::add(Expr::add(r1, r2), r3));
    let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n).add_const(-1), vec![s]);
    b.push(l);
    bisect_fuel(&b.finish(), 11);
}

/// Loop-carried chain `A[i] = A[i-1] + A[i]`: the kernel must preserve the
/// sequential dependence within a strip.
#[test]
fn fuel_bisection_loop_carried_chain() {
    let mut b = ProgramBuilder::new("chain");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, -1)]);
    let r2 = b.read(a, vec![Subscript::var(i, 0)]);
    let s = b.assign(a, vec![Subscript::var(i, 0)], Expr::add(r1, r2));
    let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s]);
    b.push(l);
    bisect_fuel(&b.finish(), 13);
}

/// Fused multi-statement segment with a cross-statement flow dependence
/// (`B[i] = A[i]·A[i]; C[i] = B[i] + A[i]`): iteration order across the
/// statements is observable through B.
#[test]
fn fuel_bisection_fused_segment() {
    let mut b = ProgramBuilder::new("fused");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let bb = b.array("B", &[LinExpr::param(n)]);
    let cc = b.array("C", &[LinExpr::param(n)]);
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, 0)]);
    let r2 = b.read(a, vec![Subscript::var(i, 0)]);
    let s1 = b.assign(bb, vec![Subscript::var(i, 0)], Expr::mul(r1, r2));
    let r3 = b.read(bb, vec![Subscript::var(i, 0)]);
    let r4 = b.read(a, vec![Subscript::var(i, 0)]);
    let s2 = b.assign(cc, vec![Subscript::var(i, 0)], Expr::add(r3, r4));
    let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s1, s2]);
    b.push(l);
    bisect_fuel(&b.finish(), 10);
}

/// Scalar sum-reduction plus an array max-reduction: the reduce read event
/// and combine order must survive batching and partial runs.
#[test]
fn fuel_bisection_reductions() {
    let mut b = ProgramBuilder::new("reduce");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let m = b.array("M", &[LinExpr::param(n)]);
    let sc = b.scalar("s");
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, 0)]);
    let s1 = b.reduce(ReduceOp::Sum, sc, vec![], r1);
    let r2 = b.read(a, vec![Subscript::var(i, -1)]);
    let s2 = b.reduce(ReduceOp::Max, m, vec![Subscript::var(i, 0)], r2);
    let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s1, s2]);
    b.push(l);
    bisect_fuel(&b.finish(), 9);
}

/// Guarded body: guard resolution produces both flat (strip-eligible) and
/// guarded (exact-path) segments in one loop, so the fuel sweep crosses
/// the boundary between the two within a single run.
#[test]
fn fuel_bisection_guarded() {
    let mut b = ProgramBuilder::new("guarded");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let c = b.array("B", &[LinExpr::param(n)]);
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, 0)]);
    let s1 = b.assign(c, vec![Subscript::var(i, 0)], Expr::Call("f", vec![r1]));
    let r2 = b.read(c, vec![Subscript::var(i, 0)]);
    let s2 = b.assign(a, vec![Subscript::var(i, 0)], r2);
    let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s1, s2]);
    let l = match l {
        Stmt::Loop(mut lp) => {
            lp.body[1].guard = Some(Range::consts(4, 7));
            Stmt::Loop(lp)
        }
        _ => unreachable!(),
    };
    b.push(l);
    bisect_fuel(&b.finish(), 12);
}

/// Intrinsic-call chain (`B[i] = f(A[i-1], A[i], A[i+1])`): the
/// `Const 0 + ReadAdd… + Intrinsic` superinstruction shape.
#[test]
fn fuel_bisection_intrinsic_chain() {
    let mut b = ProgramBuilder::new("intrinsic");
    let n = b.param("N");
    let a = b.array("A", &[LinExpr::param(n)]);
    let c = b.array("B", &[LinExpr::param(n)]);
    let i = b.var("i");
    let r1 = b.read(a, vec![Subscript::var(i, -1)]);
    let r2 = b.read(a, vec![Subscript::var(i, 0)]);
    let r3 = b.read(a, vec![Subscript::var(i, 1)]);
    let s = b.assign(c, vec![Subscript::var(i, 0)], Expr::Call("f", vec![r1, r2, r3]));
    let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n).add_const(-1), vec![s]);
    b.push(l);
    bisect_fuel(&b.finish(), 11);
}
