//! Property tests for data layouts and the memory image.

use gcr_exec::{DataLayout, Machine, NullSink};
use gcr_ir::{LinExpr, ParamBinding, ProgramBuilder};
use proptest::prelude::*;

/// Builds a program declaring arrays with the given ranks (no statements —
/// layout-only tests).
fn decls(ranks: &[usize]) -> gcr_ir::Program {
    let mut b = ProgramBuilder::new("decls");
    let n = b.param("N");
    for (k, &r) in ranks.iter().enumerate() {
        let dims: Vec<LinExpr> = (0..r).map(|_| LinExpr::param(n)).collect();
        b.array(format!("A{k}"), &dims);
    }
    b.finish()
}

proptest! {
    /// Column-major layouts are bijective and dense (modulo padding).
    #[test]
    fn column_major_is_bijective(
        ranks in proptest::collection::vec(0usize..3, 1..5),
        n in 2i64..6,
        pad in prop_oneof![Just(0usize), Just(64)],
    ) {
        let prog = decls(&ranks);
        let layout = DataLayout::column_major(&prog, &ParamBinding::new(vec![n]), pad);
        let mut seen = std::collections::HashSet::new();
        let mut elems = 0usize;
        for al in &layout.arrays {
            let total: i64 = al.extents.iter().product::<i64>().max(1);
            // Enumerate all logical indices via odometer.
            let rank = al.extents.len();
            let mut idx = vec![1i64; rank];
            for _ in 0..total {
                let a = al.addr(&idx);
                prop_assert!(a % 8 == 0);
                prop_assert!(a + 8 <= layout.total_bytes);
                prop_assert!(seen.insert(a), "duplicate address {a}");
                elems += 1;
                let mut d = 0;
                while d < rank {
                    idx[d] += 1;
                    if idx[d] <= al.extents[d] {
                        break;
                    }
                    idx[d] = 1;
                    d += 1;
                }
            }
        }
        prop_assert_eq!(elems, seen.len());
    }

    /// write_array is the inverse of read_array under any padding.
    #[test]
    fn write_read_roundtrip(
        n in 2i64..7,
        pad in prop_oneof![Just(0usize), Just(32)],
        values in proptest::collection::vec(-100.0f64..100.0, 4..49),
    ) {
        let prog = decls(&[2]);
        let bind = ParamBinding::new(vec![n]);
        let layout = DataLayout::column_major(&prog, &bind, pad);
        let mut m = Machine::with_layout(&prog, bind, layout);
        let a = gcr_ir::ArrayId::from_index(0);
        let len = (n * n) as usize;
        let vals: Vec<f64> = values.iter().cycle().take(len).copied().collect();
        m.write_array(a, &vals).unwrap();
        prop_assert_eq!(m.read_array(a), vals);
        m.run(&mut NullSink); // empty body: nothing changes
        prop_assert_eq!(m.stats().instances, 0);
    }
}
