//! Lowering from the IR to the compiled tape of [`crate::tape`].
//!
//! Compilation is a single walk over the program body that resolves every
//! quantity the interpreter re-derives at run time:
//!
//! * loop bounds and guard ranges are `LinExpr`s over size parameters only,
//!   so under a fixed [`ParamBinding`] they fold to constants — each loop
//!   body is split into segments on which the active-member set is fixed;
//! * subscript chains fold into one affine walker per static reference:
//!   `konst` absorbs the layout base, all invariant subscripts, and the
//!   constant offsets, leaving only `stride · var` terms;
//! * expression trees serialize into a register tape whose destination
//!   slots are the tree depths (left subtree at `d`, right at `d+1`),
//!   reproducing the interpreter's left-to-right evaluation order and
//!   therefore its exact floating-point results.
//!
//! [`compile`] is total over the IR the rest of the workspace produces but
//! deliberately conservative: it returns `None` — and the caller falls
//! back to the tree walker — for shapes whose interpreter semantics depend
//! on *stale* loop variables (a variable read outside its enclosing loop,
//! an outer-condition on the loop's own variable), for bodies exceeding
//! the 64-bit outer-condition mask, and for any subscript it cannot prove
//! in-bounds over the reference's execution interval. The last rule keeps
//! the interpreter's debug bounds assertion authoritative: a program that
//! could step outside an array runs (and panics, in debug builds) exactly
//! as it always has.

use crate::layout::DataLayout;
use crate::tape::{
    CLoop, CStmt, CompiledProgram, EvMeta, Item, ItemKind, Op, OuterCheck, Segment, Walker,
};
use gcr_ir::{
    ArrayRef, Assign, AssignKind, BinOp, Expr, Loop, ParamBinding, Program, Stmt, StmtId,
    Subscript, UnOp, VarId,
};

/// Lowers `prog` under `binding` and `layout` into a [`CompiledProgram`].
///
/// Returns `None` when the program is outside the compiler's domain (see
/// the module docs); the machine then keeps using the interpreter, which
/// is the reference semantics for every shape.
pub fn compile(
    prog: &Program,
    binding: &ParamBinding,
    layout: &DataLayout,
) -> Option<CompiledProgram> {
    if prog.vars.len() > usize::from(u16::MAX) {
        return None;
    }
    let mut lw = Lower {
        binding,
        layout,
        out: CompiledProgram::default(),
        stmt_walkers: Vec::new(),
        cur_stmt_walkers: Vec::new(),
        ranges: Vec::new(),
        cur_id: StmtId::from_index(0),
    };
    let mut top_kinds = Vec::new();
    for gs in &prog.body {
        // The interpreter asserts top-level statements are unguarded; keep
        // that invariant's enforcement in one place by refusing to compile
        // anything else.
        if gs.guard.is_some() || !gs.outer.is_empty() {
            return None;
        }
        top_kinds.push(match &gs.stmt {
            Stmt::Assign(a) => ItemKind::Stmt(lw.assign(a)?),
            Stmt::Loop(l) => ItemKind::Loop(lw.lower_loop(l)?),
        });
    }
    let item_start = lw.out.items.len() as u32;
    for &kind in &top_kinds {
        lw.out.items.push(Item { kind, req: 0 });
    }
    lw.out.top_items = (item_start, lw.out.items.len() as u32);
    let prime_start = lw.out.prime_list.len() as u32;
    for &kind in &top_kinds {
        if let ItemKind::Stmt(si) = kind {
            lw.out.prime_list.extend(&lw.stmt_walkers[si as usize]);
        }
    }
    lw.out.top_prime = (prime_start, lw.out.prime_list.len() as u32);
    // The executor's register file is fixed-size with masked indexing;
    // deeper expressions than that stay on the interpreter.
    if lw.out.max_regs > crate::tape::MAX_REGS {
        return None;
    }
    Some(lw.out)
}

struct Lower<'a> {
    binding: &'a ParamBinding,
    layout: &'a DataLayout,
    out: CompiledProgram,
    /// Walkers referenced by each compiled statement (parallel to
    /// `out.stmts`), used to build segment prime/advance lists.
    stmt_walkers: Vec<Vec<u32>>,
    cur_stmt_walkers: Vec<u32>,
    /// Value intervals of the enclosing loop variables along the current
    /// member chain, outermost first: loop range intersected with the
    /// member's guard and outer conditions. Innermost binding wins on
    /// lookup. Doubles as the "is this variable live here?" check and as
    /// the bound prover for subscripts.
    ranges: Vec<(VarId, i64, i64)>,
    /// Id of the assignment currently being lowered (baked into read ops
    /// so flat tapes can emit events without statement context).
    cur_id: StmtId,
}

/// Per-member lowering result, before segmentation.
struct Member {
    kind: ItemKind,
    /// Effective iteration interval: loop range intersected with the guard.
    alo: i64,
    ahi: i64,
    /// Outer-condition mask bit (0 when unconditional).
    req: u64,
}

impl Lower<'_> {
    /// Slot of a variable, provided it is bound by an enclosing loop. Both
    /// engines then agree on its value at every read; anything else would
    /// read a stale variable whose value depends on execution history.
    fn slot_of(&self, v: VarId) -> Option<u16> {
        self.range_of(v).map(|_| v.index() as u16)
    }

    /// Value interval of an enclosing loop variable at the current point.
    fn range_of(&self, v: VarId) -> Option<(i64, i64)> {
        self.ranges.iter().rev().find(|(rv, _, _)| *rv == v).map(|&(_, lo, hi)| (lo, hi))
    }

    fn push(&mut self, op: Op) {
        self.out.ops.push(op);
    }

    fn note_depth(&mut self, d: u16) {
        self.out.max_regs = self.out.max_regs.max(usize::from(d) + 1);
    }

    fn expr(&mut self, e: &Expr, d: u16) -> Option<()> {
        self.note_depth(d);
        match e {
            Expr::Const(c) => self.push(Op::Const { d, v: *c }),
            Expr::Lin(l) => self.push(Op::Const { d, v: l.eval(self.binding) as f64 }),
            Expr::Var { var, offset } => {
                let slot = self.slot_of(*var)?;
                self.push(Op::Var { d, slot, offset: *offset });
            }
            Expr::Read(r) => {
                let w = self.walker(r)?;
                self.push(if r.subs.is_empty() {
                    Op::ReadScalar { d, w }
                } else {
                    Op::Read { d, w, stmt: self.cur_id }
                });
            }
            Expr::Unary(op, x) => {
                self.expr(x, d)?;
                self.push(match op {
                    UnOp::Neg => Op::Neg { d },
                    UnOp::Sqrt => Op::Sqrt { d },
                    UnOp::Abs => Op::Abs { d },
                });
            }
            Expr::Bin(op, x, y) => {
                let d2 = d.checked_add(1)?;
                self.expr(x, d)?;
                if self.fused_rhs(op, y, d)?.is_some() {
                    return Some(());
                }
                self.expr(y, d2)?;
                self.note_depth(d2);
                self.push(match op {
                    BinOp::Add => Op::Add { d },
                    BinOp::Sub => Op::Sub { d },
                    BinOp::Mul => Op::Mul { d },
                    BinOp::Div => Op::Div { d },
                    BinOp::Max => Op::Max { d },
                    BinOp::Min => Op::Min { d },
                });
            }
            Expr::Call(name, args) => {
                // The interpreter folds `s = 0.0; for a in args { s += a }`
                // then applies the intrinsic; replicate that exact order.
                self.push(Op::Const { d, v: 0.0 });
                let d2 = d.checked_add(1)?;
                for a in args {
                    if self.fused_rhs(&BinOp::Add, a, d)?.is_some() {
                        continue;
                    }
                    self.expr(a, d2)?;
                    self.note_depth(d2);
                    self.push(Op::Add { d });
                }
                let (scale, bias) = crate::machine::intrinsic_coeffs(name);
                self.push(Op::Intrinsic { d, scale, bias });
            }
        }
        Some(())
    }

    /// Fuses a binary op whose right operand is a leaf into a single
    /// superinstruction (`regs[d] op= leaf`), skipping the spill to
    /// `regs[d+1]`. The arithmetic is the identical operation in the
    /// identical order — only the dispatch count changes. Returns
    /// `Some(Some(()))` when fused, `Some(None)` when the shape does not
    /// fuse (caller lowers normally), `None` on a compile failure.
    fn fused_rhs(&mut self, op: &BinOp, y: &Expr, d: u16) -> Option<Option<()>> {
        let konst = match y {
            Expr::Const(c) => Some(*c),
            Expr::Lin(l) => Some(l.eval(self.binding) as f64),
            _ => None,
        };
        if let Some(v) = konst {
            self.push(match op {
                BinOp::Add => Op::ConstAdd { d, v },
                BinOp::Sub => Op::ConstSub { d, v },
                BinOp::Mul => Op::ConstMul { d, v },
                BinOp::Div => {
                    // The interpreter's division guard, resolved statically:
                    // a tiny constant divisor leaves `regs[d]` unchanged, so
                    // nothing is emitted at all.
                    if v.abs() < 1e-300 {
                        return Some(Some(()));
                    }
                    Op::ConstDiv { d, v }
                }
                BinOp::Max => Op::ConstMax { d, v },
                BinOp::Min => Op::ConstMin { d, v },
            });
            return Some(Some(()));
        }
        if let Expr::Read(r) = y {
            // Division needs both operands at run time for its guard.
            if !r.subs.is_empty() && !matches!(op, BinOp::Div) {
                let w = self.walker(r)?;
                let stmt = self.cur_id;
                self.push(match op {
                    BinOp::Add => Op::ReadAdd { d, w, stmt },
                    BinOp::Sub => Op::ReadSub { d, w, stmt },
                    BinOp::Mul => Op::ReadMul { d, w, stmt },
                    BinOp::Max => Op::ReadMax { d, w, stmt },
                    BinOp::Min => Op::ReadMin { d, w, stmt },
                    BinOp::Div => unreachable!("division is never fused"),
                });
                return Some(Some(()));
            }
        }
        Some(None)
    }

    /// Creates the affine walker for one static reference. Every subscript
    /// is proved in-bounds over the reference's execution interval —
    /// programs that could step outside an array stay on the interpreter,
    /// whose debug bounds assertion is part of the reference semantics.
    fn walker(&mut self, r: &ArrayRef) -> Option<u32> {
        let al = &self.layout.arrays[r.array.index()];
        let mut konst = al.base as i64;
        let mut terms: Vec<(u16, i64)> = Vec::new();
        for (k, sub) in r.subs.iter().enumerate() {
            let stride = al.strides[k] as i64;
            match sub {
                Subscript::Var { var, offset } => {
                    let slot = self.slot_of(*var)?;
                    let (vlo, vhi) = self.range_of(*var)?;
                    if vlo + offset < 1 || vhi + offset > al.extents[k] {
                        return None;
                    }
                    konst += stride * (offset - 1);
                    match terms.iter_mut().find(|(s, _)| *s == slot) {
                        Some(t) => t.1 += stride,
                        None => terms.push((slot, stride)),
                    }
                }
                Subscript::Invariant(e) => {
                    let i = e.eval(self.binding);
                    if i < 1 || i > al.extents[k] {
                        return None;
                    }
                    konst += stride * (i - 1);
                }
            }
        }
        let w = self.out.walkers.len() as u32;
        self.out.walkers.push(Walker { konst, terms });
        self.out.ev.push(EvMeta { array: r.array, ref_id: r.id });
        self.cur_stmt_walkers.push(w);
        Some(w)
    }

    fn assign(&mut self, a: &Assign) -> Option<u32> {
        debug_assert!(self.cur_stmt_walkers.is_empty());
        self.cur_id = a.id;
        let op_start = self.out.ops.len() as u32;
        let lowered = (|| {
            self.expr(&a.rhs, 0)?;
            self.walker(&a.lhs)
        })();
        let Some(lhs) = lowered else {
            self.cur_stmt_walkers.clear();
            return None;
        };
        let si = self.out.stmts.len() as u32;
        self.out.stmts.push(CStmt {
            ops: (op_start, self.out.ops.len() as u32),
            walker: lhs,
            traced: !a.lhs.subs.is_empty(),
            reduce: match a.kind {
                AssignKind::Normal => None,
                AssignKind::Reduce(op) => Some(op),
            },
            id: a.id,
            flops: a.rhs.op_count() as u32 + 1,
        });
        self.stmt_walkers.push(std::mem::take(&mut self.cur_stmt_walkers));
        Some(si)
    }

    fn lower_loop(&mut self, l: &Loop) -> Option<u32> {
        let lo = l.lo.eval(self.binding);
        let hi = l.hi.eval(self.binding);
        if l.var.index() > usize::from(u16::MAX)
            || hi.checked_add(1).is_none()
            || hi.checked_sub(lo).is_none()
        {
            return None;
        }
        let var_slot = l.var.index() as u16;

        // Phase 1: lower members (recursing into nested loops) and resolve
        // their guard intervals and outer-condition bits. Checks are
        // buffered locally so recursion does not interleave them.
        let mut members: Vec<Member> = Vec::new();
        let mut local_checks: Vec<OuterCheck> = Vec::new();
        let mut nbits = 0u32;
        for gs in &l.body {
            let (mut alo, mut ahi) = (lo, hi);
            if let Some(g) = &gs.guard {
                let (glo, ghi) = g.eval(self.binding);
                alo = alo.max(glo);
                ahi = ahi.min(ghi);
            }
            if alo > ahi {
                // Statically never active: skip the member entirely.
                continue;
            }
            // Outer conditions must test *strictly* enclosing variables —
            // that is the only case in which their value at loop entry is
            // well-defined in both engines. (`l.var` is not yet on the
            // range stack here, so it is rejected too.) Each condition
            // also statically refines the variable's interval for the
            // member's subtree, tightening the bound prover.
            let mut refinements: Vec<(VarId, i64, i64)> = Vec::new();
            let mut statically_dead = false;
            for (v, range) in &gs.outer {
                let (vlo, vhi) = self.range_of(*v)?;
                let (rlo, rhi) = range.eval(self.binding);
                let (nlo, nhi) = (vlo.max(rlo), vhi.min(rhi));
                if nlo > nhi {
                    statically_dead = true;
                    break;
                }
                refinements.push((*v, nlo, nhi));
            }
            if statically_dead {
                // The condition can never hold: the member never runs.
                continue;
            }
            let mut req = 0u64;
            if !gs.outer.is_empty() {
                if nbits == 64 {
                    return None;
                }
                req = 1u64 << nbits;
                nbits += 1;
                for (v, range) in &gs.outer {
                    let (rlo, rhi) = range.eval(self.binding);
                    local_checks.push(OuterCheck {
                        bit: req,
                        slot: v.index() as u16,
                        lo: rlo,
                        hi: rhi,
                    });
                }
            }
            let depth = self.ranges.len();
            self.ranges.extend(refinements);
            self.ranges.push((l.var, alo, ahi));
            let kind = match &gs.stmt {
                Stmt::Assign(a) => self.assign(a).map(ItemKind::Stmt),
                Stmt::Loop(inner) => self.lower_loop(inner).map(ItemKind::Loop),
            };
            self.ranges.truncate(depth);
            members.push(Member { kind: kind?, alo, ahi, req });
        }

        // Phase 2: split `lo..=hi` at every member boundary into segments
        // with a constant active set. A loop that never runs gets no
        // segments; intervals where nothing is active still become
        // segments so the iteration fuel is charged exactly.
        let seg_start = self.out.segments.len() as u32;
        if lo <= hi {
            let mut cuts: Vec<i64> = vec![lo, hi + 1];
            for m in &members {
                cuts.push(m.alo);
                cuts.push(m.ahi + 1);
            }
            cuts.sort_unstable();
            cuts.dedup();
            for w in cuts.windows(2) {
                let (a, b) = (w[0], w[1] - 1);
                let item_start = self.out.items.len() as u32;
                for m in &members {
                    if m.alo <= a && m.ahi >= b {
                        self.out.items.push(Item { kind: m.kind, req: m.req });
                    }
                }
                let item_end = self.out.items.len() as u32;
                let prime_start = self.out.prime_list.len() as u32;
                let adv_start = self.out.advance_list.len() as u32;
                for m in &members {
                    let ItemKind::Stmt(si) = m.kind else { continue };
                    if !(m.alo <= a && m.ahi >= b) {
                        continue;
                    }
                    for &wk in &self.stmt_walkers[si as usize] {
                        self.out.prime_list.push(wk);
                        let stride = self.out.walkers[wk as usize]
                            .terms
                            .iter()
                            .find(|(s, _)| *s == var_slot)
                            .map_or(0, |(_, st)| *st);
                        if stride != 0 {
                            self.out.advance_list.push((wk, stride));
                        }
                    }
                }
                // Flat tape: when every active member is an unconditional
                // statement, concatenate their op ranges with `Store`
                // terminators and precompute the per-iteration fuel and
                // statistic deltas the fast path charges in bulk.
                let window: Vec<u32> = self.out.items[item_start as usize..item_end as usize]
                    .iter()
                    .filter_map(|it| match (it.kind, it.req) {
                        (ItemKind::Stmt(si), 0) => Some(si),
                        _ => None,
                    })
                    .collect();
                let all_stmts = window.len() == (item_end - item_start) as usize;
                let mut flat = None;
                let (mut flops, mut reads, mut writes) = (0u64, 0u64, 0u64);
                if all_stmts && !window.is_empty() {
                    let flat_start = self.out.ops.len() as u32;
                    for &si in &window {
                        let s = self.out.stmts[si as usize];
                        self.out.ops.extend_from_within(s.ops.0 as usize..s.ops.1 as usize);
                        for op in &self.out.ops[s.ops.0 as usize..s.ops.1 as usize] {
                            if matches!(
                                op,
                                Op::Read { .. }
                                    | Op::ReadAdd { .. }
                                    | Op::ReadSub { .. }
                                    | Op::ReadMul { .. }
                                    | Op::ReadMax { .. }
                                    | Op::ReadMin { .. }
                            ) {
                                reads += 1;
                            }
                        }
                        if s.traced {
                            if s.reduce.is_some() {
                                reads += 1;
                            }
                            writes += 1;
                        }
                        flops += u64::from(s.flops);
                        self.out.ops.push(Op::Store { si });
                    }
                    flat = Some((flat_start, self.out.ops.len() as u32));
                }
                self.out.segments.push(Segment {
                    lo: a,
                    hi: b,
                    items: (item_start, item_end),
                    prime: (prime_start, self.out.prime_list.len() as u32),
                    advance: (adv_start, self.out.advance_list.len() as u32),
                    flat,
                    iter_fuel: 1 + window.len() as u64,
                    iter_instances: window.len() as u64,
                    iter_flops: flops,
                    iter_reads: reads,
                    iter_writes: writes,
                });
            }
        }
        let checks_start = self.out.checks.len() as u32;
        self.out.checks.extend(local_checks);
        let li = self.out.loops.len() as u32;
        self.out.loops.push(CLoop {
            var: var_slot,
            segments: (seg_start, self.out.segments.len() as u32),
            checks: (checks_start, self.out.checks.len() as u32),
        });
        Some(li)
    }
}
