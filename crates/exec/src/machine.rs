//! The IR interpreter.
//!
//! Executes a program in exact loop order, evaluating `f64` arithmetic over
//! a flat memory image and streaming every **array** access to a
//! [`TraceSink`]. Scalars (rank-0 arrays) are computed but not traced: in
//! compiled code they live in registers, and the paper's measurements count
//! memory references.
//!
//! Guard ranges are honoured: a member statement of a loop executes only in
//! iterations inside its guard — this is how fused programs (alignment,
//! embedding, peeling) run without code generation.

use crate::layout::DataLayout;
use gcr_ir::{
    ArrayId, ArrayRef, AssignKind, BinOp, Expr, GcrError, GuardedStmt, Loop, ParamBinding, Program,
    ReduceOp, RefId, Resource, Stmt, StmtId, Subscript, UnOp,
};

/// One traced array access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// Byte address.
    pub addr: u64,
    /// Array accessed.
    pub array: ArrayId,
    /// Static reference id.
    pub ref_id: RefId,
    /// Static statement id.
    pub stmt: StmtId,
    /// True for stores (and the store half of reductions).
    pub is_write: bool,
}

/// One event position within a strip iteration: the event's static fields
/// plus its affine address walk. Slot `s` of iteration `k` is the event
/// `AccessEvent { addr: addr + k * stride, .. }` — every address in a strip
/// is an affine function of the iteration, which is exactly what makes the
/// strip batchable in the first place.
#[derive(Clone, Copy, Debug)]
pub struct BatchSlot {
    /// Byte address at the strip's first iteration.
    pub addr: u64,
    /// Per-iteration byte advance (may be zero or negative).
    pub stride: i64,
    /// Array accessed.
    pub array: ArrayId,
    /// Static reference id.
    pub ref_id: RefId,
    /// Static statement id.
    pub stmt: StmtId,
    /// True for stores (and the store half of reductions).
    pub is_write: bool,
}

impl BatchSlot {
    /// Byte address of this slot at strip iteration `k`.
    #[inline(always)]
    pub fn addr_at(&self, k: i64) -> u64 {
        (self.addr as i64 + k * self.stride) as u64
    }

    /// The full event of this slot at strip iteration `k`.
    #[inline(always)]
    pub fn event_at(&self, k: i64) -> AccessEvent {
        AccessEvent {
            addr: self.addr_at(k),
            array: self.array,
            ref_id: self.ref_id,
            stmt: self.stmt,
            is_write: self.is_write,
        }
    }
}

/// A whole iteration strip of trace events, in compressed affine form: the
/// VM engine proves every event address of a flat segment affine in the
/// loop variable, so a strip of `iters` iterations is fully described by
/// one [`BatchSlot`] per event position — no per-event materialization at
/// all on the producer side.
///
/// The exact per-event stream is iteration-major: for `k` in `0..iters`,
/// slot `0..slots.len()` in order, with `end_instance(stmt)` fired after
/// the first `end` slots of each iteration, then after the next boundary,
/// and so on (`ends` offsets are within-iteration and ascending; every
/// iteration has the same boundary structure). Replaying that order
/// reproduces what the per-event engines deliver call by call — the
/// default [`TraceSink::record_batch`] does exactly this, and the
/// differential suites hold batched runs to it bit-for-bit.
pub struct TraceBatch<'a> {
    /// Event positions of one iteration, in emission order.
    pub slots: &'a [BatchSlot],
    /// Instance boundaries within each iteration: `(end, stmt)` means the
    /// instance of `stmt` ends after the iteration's first `end` events.
    pub ends: &'a [(u32, StmtId)],
    /// Number of iterations in the strip.
    pub iters: u32,
}

impl TraceBatch<'_> {
    /// Total number of access events the batch encodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len() * self.iters as usize
    }

    /// True when the batch encodes no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Consumer of the access stream.
pub trait TraceSink {
    /// Called for every traced access, in execution order. Events are
    /// passed by value — [`AccessEvent`] is a small `Copy` struct, and the
    /// hot interpreter → sink path should not bounce through a reference.
    fn access(&mut self, ev: AccessEvent);

    /// Called after each dynamic statement instance (all its reads and its
    /// write have been reported). Used by the reuse-driven execution study
    /// to delimit instruction instances.
    fn end_instance(&mut self, _stmt: StmtId) {}

    /// Delivers a whole strip of events at once (the VM engine's batched
    /// path). The default expands the affine batch through
    /// [`TraceSink::access`] and [`TraceSink::end_instance`] in exact
    /// stream order, so every sink is correct unmodified; hot sinks
    /// override this to turn millions of virtual calls into one tight
    /// address-expansion loop over their own state.
    fn record_batch(&mut self, batch: &TraceBatch<'_>) {
        for k in 0..batch.iters as i64 {
            let mut pos = 0usize;
            for &(end, stmt) in batch.ends {
                for sl in &batch.slots[pos..end as usize] {
                    self.access(sl.event_at(k));
                }
                pos = end as usize;
                self.end_instance(stmt);
            }
            for sl in &batch.slots[pos..] {
                self.access(sl.event_at(k));
            }
        }
    }
}

/// Sink that ignores everything (pure execution).
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn access(&mut self, _ev: AccessEvent) {}

    #[inline]
    fn record_batch(&mut self, _batch: &TraceBatch<'_>) {}
}

/// Sink that counts reads and writes.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of read events.
    pub reads: u64,
    /// Number of write events.
    pub writes: u64,
}

impl TraceSink for CountingSink {
    #[inline]
    fn access(&mut self, ev: AccessEvent) {
        if ev.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }

    fn record_batch(&mut self, batch: &TraceBatch<'_>) {
        let w = batch.slots.iter().filter(|sl| sl.is_write).count() as u64;
        self.writes += w * batch.iters as u64;
        self.reads += (batch.slots.len() as u64 - w) * batch.iters as u64;
    }
}

/// Execution statistics (inputs to the cycle cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic statement instances executed.
    pub instances: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Traced array reads.
    pub reads: u64,
    /// Traced array writes.
    pub writes: u64,
}

impl ExecStats {
    /// Total traced accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Statically estimated dynamic counts for one execution of the program
/// body, computed from loop bounds without running anything. Guards are
/// ignored, so both fields are *upper* bounds — tight for unguarded
/// programs, slightly generous for fused ones. Intended for reserving
/// trace-capture capacity up front instead of growing `Vec`s amortized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecEstimate {
    /// Dynamic assignment instances.
    pub instances: u64,
    /// Traced array accesses (scalar references excluded, matching what
    /// the interpreter reports to its sink).
    pub accesses: u64,
}

/// Which execution engine a [`Machine`] runs.
///
/// All three engines are observationally identical — same access-event
/// stream, bit-identical `f64` memory image, same statistics and fuel
/// accounting — which the differential test suite and the three-way
/// conformance oracle enforce. The interpreter is the reference semantics;
/// the compiled tape lowers dispatch per operation; the register VM lowers
/// it further to one dispatch per iteration strip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecEngine {
    /// The tree-walking interpreter (reference semantics).
    Interp,
    /// The compiled tape of [`mod@crate::compile`]: flat instruction stream,
    /// affine address walkers, guard-resolved iteration segments.
    Compiled,
    /// The register bytecode VM of [`mod@crate::vm`]: superinstructions
    /// selected over the compiled tape plus vectorized strip execution with
    /// batched event emission. Shares the tape's compilation domain; the
    /// default for all measurement runs.
    #[default]
    Vm,
}

impl ExecEngine {
    /// The accepted engine names, for error messages.
    pub const NAMES: &'static str = "interp|compiled|vm";

    /// Parses an engine name as accepted by `GCR_EXEC` and `--exec`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "interp" => Some(ExecEngine::Interp),
            "compiled" => Some(ExecEngine::Compiled),
            "vm" => Some(ExecEngine::Vm),
            _ => None,
        }
    }

    /// Short name of this engine (the inverse of [`ExecEngine::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Interp => "interp",
            ExecEngine::Compiled => "compiled",
            ExecEngine::Vm => "vm",
        }
    }

    /// Engine selected by the `GCR_EXEC` environment variable. Unset picks
    /// the default ([`ExecEngine::Vm`]); a recognized name selects that
    /// engine; anything else is a usage error — entry points surface it
    /// instead of silently falling back to the default. Tests should pass
    /// the engine explicitly via [`Machine::with_engine`] instead;
    /// environment variables are racy to set from a multi-threaded test
    /// harness.
    pub fn from_env() -> Result<Self, GcrError> {
        match std::env::var("GCR_EXEC") {
            Err(_) => Ok(ExecEngine::default()),
            Ok(v) => ExecEngine::parse(&v).ok_or_else(|| {
                GcrError::Usage(format!(
                    "unknown execution engine `{v}` in GCR_EXEC: valid engines are {}",
                    ExecEngine::NAMES
                ))
            }),
        }
    }
}

/// The interpreter. One `Machine` owns the memory image; `run` can be
/// called repeatedly (e.g. once per time step).
pub struct Machine<'p> {
    prog: &'p Program,
    binding: ParamBinding,
    /// Address function per array.
    pub layout: DataLayout,
    mem: Vec<f64>,
    vars: Vec<i64>,
    op_counts: Vec<u32>,
    stats: ExecStats,
    engine: ExecEngine,
    /// Lazily compiled tape: `None` until first needed, `Some(None)` when
    /// the program is outside the compiler's domain (interpreter fallback).
    compiled: Option<Option<crate::tape::CompiledProgram>>,
    /// Lazily built VM plan over the compiled tape, same `Option` protocol.
    /// The VM's lowering is total over compiled programs, so this is
    /// `Some(None)` exactly when `compiled` is.
    vm: Option<Option<crate::vm::VmPlan>>,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the default column-major layout and
    /// deterministic initial memory.
    pub fn new(prog: &'p Program, binding: ParamBinding) -> Self {
        let layout = DataLayout::column_major(prog, &binding, 0);
        Self::with_layout(prog, binding, layout)
    }

    /// Creates a machine with an explicit layout, refusing layouts whose
    /// memory image would exceed `max_bytes` — the guard that keeps a
    /// degenerate parameter binding from exhausting host memory.
    pub fn try_with_layout(
        prog: &'p Program,
        binding: ParamBinding,
        layout: DataLayout,
        max_bytes: Option<usize>,
    ) -> Result<Self, GcrError> {
        if let Some(cap) = max_bytes {
            if layout.total_bytes > cap {
                return Err(GcrError::BudgetExceeded {
                    resource: Resource::MemoryBytes,
                    limit: cap as u64,
                });
            }
        }
        Ok(Self::with_layout(prog, binding, layout))
    }

    /// Creates a machine with an explicit layout (e.g. after regrouping).
    pub fn with_layout(prog: &'p Program, binding: ParamBinding, layout: DataLayout) -> Self {
        let mut op_counts = vec![0u32; prog.next_stmt as usize];
        prog.walk(|gs, _| {
            if let Stmt::Assign(a) = &gs.stmt {
                op_counts[a.id.index()] = a.rhs.op_count() as u32 + 1; // +1 for the store
            }
        });
        let mut m = Machine {
            prog,
            binding,
            mem: vec![0.0; layout.total_bytes / crate::layout::ELEM_BYTES + 1],
            layout,
            vars: vec![0; prog.vars.len()],
            op_counts,
            stats: ExecStats::default(),
            // Construction stays infallible: entry points (CLI, bench and
            // serve binaries) validate `GCR_EXEC` up front and report the
            // usage error; by the time a machine is built here an invalid
            // value has already been rejected.
            engine: ExecEngine::from_env().unwrap_or_default(),
            compiled: None,
            vm: None,
        };
        m.init_memory();
        m
    }

    /// Selects the execution engine, consuming style (for construction
    /// chains). The compiled tape is cached across engine switches — it
    /// depends only on the program, binding, and layout.
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.set_engine(engine);
        self
    }

    /// Selects the execution engine in place.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// Engine currently selected.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// True when this machine's program compiled to the tape engine (after
    /// forcing compilation). The VM shares the tape's domain exactly — its
    /// lowering is total over compiled programs — so this answers for both
    /// fast engines. A `false` under [`ExecEngine::Compiled`] or
    /// [`ExecEngine::Vm`] means runs silently use the interpreter fallback.
    pub fn compiles(&mut self) -> bool {
        self.ensure_compiled();
        matches!(self.compiled, Some(Some(_)))
    }

    fn ensure_compiled(&mut self) {
        if self.compiled.is_none() {
            self.compiled = Some(crate::compile::compile(self.prog, &self.binding, &self.layout));
        }
    }

    fn ensure_vm(&mut self) {
        self.ensure_compiled();
        if self.vm.is_none() {
            self.vm = Some(self.compiled.as_ref().unwrap().as_ref().map(crate::vm::VmPlan::build));
        }
    }

    /// Fills memory with a deterministic per-(array, logical element)
    /// pattern, so that two layouts of the same program start from equal
    /// logical contents.
    pub fn init_memory(&mut self) {
        for (ai, al) in self.layout.arrays.iter().enumerate() {
            let mut flat = 0u64;
            let mem = &mut self.mem;
            for_each_index(&al.extents, |idx| {
                mem[al.addr(idx) / crate::layout::ELEM_BYTES] = init_value(ai as u64, flat);
                flat += 1;
            });
        }
    }

    /// Parameter binding in use.
    pub fn binding(&self) -> &ParamBinding {
        &self.binding
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Statically estimated instance/access counts for one execution of
    /// the body under this machine's parameter binding (see
    /// [`ExecEstimate`] for the bound's direction).
    pub fn estimate(&self) -> ExecEstimate {
        let mut est = ExecEstimate::default();
        estimate_list(&self.prog.body, 1, &self.binding, &mut est);
        est
    }

    /// Executes the whole program body once, streaming accesses to `sink`.
    pub fn run<S: TraceSink>(&mut self, sink: &mut S) {
        self.run_fueled(sink, 1, u64::MAX).expect("unlimited fuel cannot run out");
    }

    /// Executes the body `steps` times (the time-step loop of the kernels).
    pub fn run_steps<S: TraceSink>(&mut self, sink: &mut S, steps: usize) {
        self.run_fueled(sink, steps, u64::MAX).expect("unlimited fuel cannot run out");
    }

    /// Like [`Machine::run`], but stops with [`GcrError::BudgetExceeded`]
    /// once `fuel` units (loop iterations plus statement instances) are
    /// spent. A transformed program whose bounds went wrong terminates
    /// instead of spinning.
    pub fn run_guarded<S: TraceSink>(&mut self, sink: &mut S, fuel: u64) -> Result<(), GcrError> {
        self.run_fueled(sink, 1, fuel)
    }

    /// Like [`Machine::run_steps`], with one fuel budget shared across all
    /// `steps` executions of the body.
    pub fn run_steps_guarded<S: TraceSink>(
        &mut self,
        sink: &mut S,
        steps: usize,
        fuel: u64,
    ) -> Result<(), GcrError> {
        self.run_fueled(sink, steps, fuel)
    }

    fn run_fueled<S: TraceSink>(
        &mut self,
        sink: &mut S,
        steps: usize,
        fuel: u64,
    ) -> Result<(), GcrError> {
        match self.engine {
            ExecEngine::Vm => {
                self.ensure_vm();
                if let (Some(Some(cp)), Some(Some(plan))) =
                    (self.compiled.as_ref(), self.vm.as_ref())
                {
                    return crate::vm::run(
                        cp,
                        plan,
                        &mut self.mem,
                        &mut self.vars,
                        &mut self.stats,
                        sink,
                        steps,
                        fuel,
                    );
                }
                // Outside the compiler's domain: fall through to the
                // reference interpreter, which is total.
            }
            ExecEngine::Compiled => {
                self.ensure_compiled();
                if let Some(Some(cp)) = self.compiled.as_ref() {
                    return cp.run(
                        &mut self.mem,
                        &mut self.vars,
                        &mut self.stats,
                        sink,
                        steps,
                        fuel,
                    );
                }
            }
            ExecEngine::Interp => {}
        }
        // Split borrows: body is part of prog (shared), the rest is mutable.
        let body = &self.prog.body;
        let mut ctx = Ctx {
            binding: &self.binding,
            layout: &self.layout,
            mem: &mut self.mem,
            vars: &mut self.vars,
            op_counts: &self.op_counts,
            stats: &mut self.stats,
            guards: Vec::new(),
            fuel,
            fuel_limit: fuel,
        };
        for _ in 0..steps {
            ctx.run_list(body, sink)?;
        }
        Ok(())
    }

    /// Reads an array's contents in logical (odometer) order, regardless of
    /// layout — used to compare program versions for semantic equality.
    pub fn read_array(&self, a: ArrayId) -> Vec<f64> {
        let al = &self.layout.arrays[a.index()];
        let mut out = Vec::with_capacity(al.len());
        for_each_index(&al.extents, |idx| {
            out.push(self.mem[al.addr(idx) / crate::layout::ELEM_BYTES]);
        });
        out
    }

    /// Writes an array's contents in logical (odometer) order — the inverse
    /// of [`Machine::read_array`]; used to equalize initial data between
    /// program versions whose array identities differ (e.g. after array
    /// splitting). Fails with [`GcrError::LayoutMismatch`] when the value
    /// count disagrees with the layout's element count.
    pub fn write_array(&mut self, a: ArrayId, vals: &[f64]) -> Result<(), GcrError> {
        let al = &self.layout.arrays[a.index()];
        if vals.len() != al.len() {
            return Err(GcrError::LayoutMismatch {
                array: self.prog.array(a).name.clone(),
                expected: al.len(),
                got: vals.len(),
            });
        }
        let mut it = vals.iter();
        let mem = &mut self.mem;
        for_each_index(&al.extents, |idx| {
            mem[al.addr(idx) / crate::layout::ELEM_BYTES] = *it.next().unwrap();
        });
        Ok(())
    }

    /// Sum over all arrays' logical contents (cheap equivalence signal).
    pub fn checksum(&self) -> f64 {
        (0..self.prog.arrays.len())
            .map(|i| {
                self.read_array(ArrayId::from_index(i))
                    .into_iter()
                    .map(|v| if v.is_finite() { v } else { 0.0 })
                    .sum::<f64>()
            })
            .sum()
    }
}

/// Counts traced (non-scalar) reads in an expression tree.
fn expr_traced_reads(e: &Expr) -> u64 {
    match e {
        Expr::Read(r) => u64::from(!r.subs.is_empty()),
        Expr::Unary(_, x) => expr_traced_reads(x),
        Expr::Bin(_, x, y) => expr_traced_reads(x) + expr_traced_reads(y),
        Expr::Call(_, args) => args.iter().map(expr_traced_reads).sum(),
        Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => 0,
    }
}

fn estimate_list(stmts: &[GuardedStmt], mult: u64, bind: &ParamBinding, est: &mut ExecEstimate) {
    for gs in stmts {
        match &gs.stmt {
            Stmt::Assign(a) => {
                let mut acc = expr_traced_reads(&a.rhs);
                if !a.lhs.subs.is_empty() {
                    // The store, plus the read half of a reduction.
                    acc += 1 + u64::from(matches!(a.kind, AssignKind::Reduce(_)));
                }
                est.instances = est.instances.saturating_add(mult);
                est.accesses = est.accesses.saturating_add(mult.saturating_mul(acc));
            }
            Stmt::Loop(l) => {
                let trips = (l.hi.eval(bind) - l.lo.eval(bind) + 1).max(0) as u64;
                estimate_list(&l.body, mult.saturating_mul(trips), bind, est);
            }
        }
    }
}

/// Deterministic initial value for logical element `flat` of array `ai`.
fn init_value(ai: u64, flat: u64) -> f64 {
    // Small, well-conditioned values in [0.5, 1.5).
    let h = ai
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(flat.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    0.5 + (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Visits every logical index tuple of an array (1-based, innermost dimension
/// fastest — the logical order used by `init_memory` and `read_array`).
fn for_each_index(extents: &[i64], mut f: impl FnMut(&[i64])) {
    let rank = extents.len();
    let mut idx = vec![1i64; rank];
    if extents.iter().any(|&e| e <= 0) {
        return;
    }
    loop {
        f(&idx);
        let mut d = 0;
        while d < rank {
            idx[d] += 1;
            if idx[d] <= extents[d] {
                break;
            }
            idx[d] = 1;
            d += 1;
        }
        if d == rank {
            return; // odometer wrapped (also the rank-0 single visit)
        }
    }
}

struct Ctx<'a> {
    binding: &'a ParamBinding,
    layout: &'a DataLayout,
    mem: &'a mut Vec<f64>,
    vars: &'a mut Vec<i64>,
    op_counts: &'a [u32],
    stats: &'a mut ExecStats,
    /// Guard-range scratch, used as a stack across nested `run_loop`
    /// calls. Hoisted here so entering a loop — which happens once per
    /// *enclosing* iteration — allocates nothing after the first entry.
    guards: Vec<Option<(i64, i64)>>,
    fuel: u64,
    fuel_limit: u64,
}

impl Ctx<'_> {
    /// Spends one fuel unit; `Err` when the budget is exhausted.
    #[inline]
    fn spend(&mut self) -> Result<(), GcrError> {
        if self.fuel == 0 {
            return Err(GcrError::BudgetExceeded {
                resource: Resource::InterpreterFuel,
                limit: self.fuel_limit,
            });
        }
        self.fuel -= 1;
        Ok(())
    }

    fn run_list<S: TraceSink>(
        &mut self,
        stmts: &[GuardedStmt],
        sink: &mut S,
    ) -> Result<(), GcrError> {
        for gs in stmts {
            debug_assert!(gs.guard.is_none(), "top-level statements are unguarded");
            self.run_stmt(&gs.stmt, sink)?;
        }
        Ok(())
    }

    fn run_stmt<S: TraceSink>(&mut self, stmt: &Stmt, sink: &mut S) -> Result<(), GcrError> {
        match stmt {
            Stmt::Assign(a) => self.run_assign(a, sink),
            Stmt::Loop(l) => self.run_loop(l, sink),
        }
    }

    fn run_loop<S: TraceSink>(&mut self, l: &Loop, sink: &mut S) -> Result<(), GcrError> {
        let lo = l.lo.eval(self.binding);
        let hi = l.hi.eval(self.binding);
        // Guards are loop-invariant; outer-variable entries depend only on
        // enclosing loop variables, which are fixed for this execution of
        // the loop — evaluate both once, into the shared scratch stack
        // (recursion pushes above `base`, so this frame's entries stay put).
        let base = self.guards.len();
        for gs in &l.body {
            let mut g = None;
            // Conjunction over outer entries: inactive => never-active range.
            for (v, r) in &gs.outer {
                let (rlo, rhi) = r.eval(self.binding);
                let val = self.vars[v.index()];
                if val < rlo || val > rhi {
                    g = Some(Some((1, 0))); // empty range: never active
                    break;
                }
            }
            self.guards.push(g.unwrap_or_else(|| gs.guard.as_ref().map(|r| r.eval(self.binding))));
        }
        for t in lo..=hi {
            self.spend()?;
            self.vars[l.var.index()] = t;
            for (k, gs) in l.body.iter().enumerate() {
                if let Some((glo, ghi)) = self.guards[base + k] {
                    if t < glo || t > ghi {
                        continue;
                    }
                }
                self.run_stmt(&gs.stmt, sink)?;
            }
        }
        self.guards.truncate(base);
        Ok(())
    }

    fn run_assign<S: TraceSink>(
        &mut self,
        a: &gcr_ir::Assign,
        sink: &mut S,
    ) -> Result<(), GcrError> {
        self.spend()?;
        let rhs = self.eval(&a.rhs, a.id, sink);
        // Locate the target once; the (possible) reduction read and the
        // store both reuse the same slot.
        let slot = self.locate(&a.lhs);
        let traced = !a.lhs.subs.is_empty();
        let value = match a.kind {
            AssignKind::Normal => rhs,
            AssignKind::Reduce(op) => {
                // The reduction reads its target first.
                if traced {
                    self.touch_at(slot.byte, &a.lhs, false, a.id, sink);
                }
                let old = self.mem[slot.elem];
                match op {
                    ReduceOp::Sum => old + rhs,
                    ReduceOp::Max => old.max(rhs),
                    ReduceOp::Min => old.min(rhs),
                }
            }
        };
        self.mem[slot.elem] = value;
        if traced {
            self.touch_at(slot.byte, &a.lhs, true, a.id, sink);
        }
        self.stats.instances += 1;
        self.stats.flops += u64::from(self.op_counts[a.id.index()]);
        sink.end_instance(a.id);
        Ok(())
    }

    fn eval<S: TraceSink>(&mut self, e: &Expr, stmt: StmtId, sink: &mut S) -> f64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Lin(l) => l.eval(self.binding) as f64,
            Expr::Var { var, offset } => (self.vars[var.index()] + offset) as f64,
            Expr::Read(r) => {
                let slot = self.locate(r);
                if !r.subs.is_empty() {
                    self.touch_at(slot.byte, r, false, stmt, sink);
                }
                self.mem[slot.elem]
            }
            Expr::Unary(op, x) => {
                let v = self.eval(x, stmt, sink);
                match op {
                    UnOp::Neg => -v,
                    UnOp::Sqrt => v.abs().sqrt(),
                    UnOp::Abs => v.abs(),
                }
            }
            Expr::Bin(op, x, y) => {
                let a = self.eval(x, stmt, sink);
                let b = self.eval(y, stmt, sink);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b.abs() < 1e-300 {
                            a
                        } else {
                            a / b
                        }
                    }
                    BinOp::Max => a.max(b),
                    BinOp::Min => a.min(b),
                }
            }
            Expr::Call(name, args) => {
                let mut s = 0.0;
                for a in args {
                    s += self.eval(a, stmt, sink);
                }
                intrinsic(name, s)
            }
        }
    }

    #[inline]
    fn locate(&self, r: &ArrayRef) -> Slot {
        let al = &self.layout.arrays[r.array.index()];
        let mut addr = al.base;
        for (k, sub) in r.subs.iter().enumerate() {
            let i = match sub {
                Subscript::Var { var, offset } => self.vars[var.index()] + offset,
                Subscript::Invariant(e) => e.eval(self.binding),
            };
            debug_assert!(
                i >= 1 && i <= al.extents[k],
                "subscript {i} out of bounds 1..={} (dim {k})",
                al.extents[k]
            );
            addr += al.strides[k] * (i - 1) as usize;
        }
        Slot { byte: addr as u64, elem: addr / crate::layout::ELEM_BYTES }
    }

    /// Reports one traced access at an already-located address. Callers
    /// are responsible for skipping scalars (register-allocated, not
    /// traced) — this keeps the hot path to a single `locate` per access.
    #[inline]
    fn touch_at<S: TraceSink>(
        &mut self,
        addr: u64,
        r: &ArrayRef,
        is_write: bool,
        stmt: StmtId,
        sink: &mut S,
    ) {
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        sink.access(AccessEvent { addr, array: r.array, ref_id: r.id, stmt, is_write });
    }
}

struct Slot {
    byte: u64,
    elem: usize,
}

/// Affine coefficients of the opaque intrinsics (`f`, `g`, … in the
/// paper's examples): `(scale, bias)` applied to the argument sum. Shared
/// with the compiled engine's `Intrinsic` op so both evaluate the exact
/// same expression.
pub(crate) fn intrinsic_coeffs(name: &str) -> (f64, f64) {
    match name {
        "f" => (0.5, 1.0),
        "g" => (0.3, 2.0),
        "h" => (0.7, -1.0),
        "t" => (0.9, 0.1),
        "u" => (1.1, 0.0),
        "w" => (0.5, 0.3),
        "relax" => (0.25, 0.0),
        "flux" => (0.4, 0.2),
        "wave" => (0.25, 0.5),
        _ => (1.0, 0.0),
    }
}

/// Fixed interpretations of the intrinsics: affine functions of the
/// argument sum, cheap and deterministic.
fn intrinsic(name: &str, s: f64) -> f64 {
    let (scale, bias) = intrinsic_coeffs(name);
    scale * s + bias
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::{LinExpr, ProgramBuilder, Range};

    /// for i = 2, N { A[i] = f(A[i-1]) }
    fn chain_prog() -> Program {
        let mut b = ProgramBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, -1)]);
        let s = b.assign(a, vec![Subscript::var(i, 0)], Expr::Call("f", vec![rhs]));
        let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s]);
        b.push(l);
        b.finish()
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in [ExecEngine::Interp, ExecEngine::Compiled, ExecEngine::Vm] {
            assert_eq!(ExecEngine::parse(engine.name()), Some(engine));
            assert!(ExecEngine::NAMES.contains(engine.name()));
        }
        assert_eq!(ExecEngine::parse("jit"), None);
        assert_eq!(ExecEngine::parse(""), None);
        assert_eq!(ExecEngine::default(), ExecEngine::Vm);
    }

    #[test]
    fn executes_chain_and_counts() {
        let p = chain_prog();
        let mut m = Machine::new(&p, ParamBinding::new(vec![10]));
        let mut sink = CountingSink::default();
        m.run(&mut sink);
        assert_eq!(sink.reads, 9);
        assert_eq!(sink.writes, 9);
        assert_eq!(m.stats().instances, 9);
        // A[i] = 0.5*A[i-1] + 1: fixed point 2; check recurrence applied.
        let a = m.read_array(gcr_ir::ArrayId::from_index(0));
        for i in 1..10 {
            assert!((a[i] - (0.5 * a[i - 1] + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_addresses_are_sequential() {
        let p = chain_prog();
        let mut m = Machine::new(&p, ParamBinding::new(vec![5]));
        struct Cap(Vec<AccessEvent>);
        impl TraceSink for Cap {
            fn access(&mut self, ev: AccessEvent) {
                self.0.push(ev);
            }
        }
        let mut sink = Cap(Vec::new());
        m.run(&mut sink);
        // i=2: read A[1] (addr 0), write A[2] (addr 8); i=3: read 8, write 16...
        let addrs: Vec<u64> = sink.0.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0, 8, 8, 16, 16, 24, 24, 32]);
        assert!(!sink.0[0].is_write && sink.0[1].is_write);
    }

    #[test]
    fn guards_restrict_iterations() {
        let mut b = ProgramBuilder::new("g");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let s0 = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(1.0));
        let s1 = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(2.0));
        let l = match b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s0, s1]) {
            Stmt::Loop(mut l) => {
                l.body[1].guard = Some(Range::consts(3, 4)); // overwrite only at 3,4
                Stmt::Loop(l)
            }
            _ => unreachable!(),
        };
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![6]));
        m.run(&mut NullSink);
        let a = m.read_array(gcr_ir::ArrayId::from_index(0));
        assert_eq!(a, vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn outer_guard_entries_restrict_outer_iterations() {
        // Inner member active only when the OUTER variable is in [2, 3].
        let mut b = ProgramBuilder::new("og");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        let i = b.var("i");
        let j = b.var("j");
        let s = b.assign(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)], Expr::Const(7.0));
        let inner = match b.for_(j, LinExpr::konst(1), LinExpr::param(n), vec![s]) {
            Stmt::Loop(mut l) => {
                l.body[0].outer = vec![(i, Range::consts(2, 3))];
                Stmt::Loop(l)
            }
            _ => unreachable!(),
        };
        let outer = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![inner]);
        b.push(outer);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let before = m.read_array(gcr_ir::ArrayId::from_index(0));
        m.run(&mut NullSink);
        let after = m.read_array(gcr_ir::ArrayId::from_index(0));
        for col in 0..4 {
            for row in 0..4 {
                let k = col * 4 + row;
                if col == 1 || col == 2 {
                    assert_eq!(after[k], 7.0, "col {col} written");
                } else {
                    assert_eq!(after[k], before[k], "col {col} untouched");
                }
            }
        }
    }

    #[test]
    fn estimate_matches_unguarded_execution() {
        let p = chain_prog();
        let mut m = Machine::new(&p, ParamBinding::new(vec![10]));
        let est = m.estimate();
        let mut c = CountingSink::default();
        m.run(&mut c);
        assert_eq!(est.instances, m.stats().instances);
        assert_eq!(est.accesses, m.stats().accesses());
    }

    #[test]
    fn estimate_is_upper_bound_under_guards() {
        let mut b = ProgramBuilder::new("g");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let s = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(1.0));
        let l = match b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s]) {
            Stmt::Loop(mut l) => {
                l.body[0].guard = Some(Range::consts(3, 4));
                Stmt::Loop(l)
            }
            _ => unreachable!(),
        };
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![8]));
        let est = m.estimate();
        m.run(&mut NullSink);
        assert!(est.instances >= m.stats().instances);
        assert!(est.accesses >= m.stats().accesses());
        assert_eq!(est.instances, 8, "guard ignored: full trip count");
        assert_eq!(m.stats().instances, 2, "guard executed: two iterations");
    }

    #[test]
    fn reductions_accumulate() {
        let mut b = ProgramBuilder::new("r");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let sc = b.scalar("s");
        let i = b.var("i");
        let init = b.assign(sc, vec![], Expr::Const(0.0));
        b.push(init);
        let s0 = b.assign(a, vec![Subscript::var(i, 0)], Expr::Const(2.0));
        let rd = b.read(a, vec![Subscript::var(i, 0)]);
        let s1 = b.reduce(ReduceOp::Sum, sc, vec![], rd);
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s0, s1]);
        b.push(l);
        let p = b.finish();
        let mut m = Machine::new(&p, ParamBinding::new(vec![8]));
        let mut c = CountingSink::default();
        m.run(&mut c);
        let s = m.read_array(gcr_ir::ArrayId::from_index(1));
        assert_eq!(s, vec![16.0]);
        // scalar accesses are not traced
        assert_eq!(c.writes, 8);
        assert_eq!(c.reads, 8);
    }

    #[test]
    fn init_memory_is_layout_independent() {
        let p = chain_prog();
        let bind = ParamBinding::new(vec![7]);
        let m1 = Machine::new(&p, bind.clone());
        let l2 = DataLayout::column_major(&p, &bind, 256);
        let m2 = Machine::with_layout(&p, bind, l2);
        assert_eq!(
            m1.read_array(gcr_ir::ArrayId::from_index(0)),
            m2.read_array(gcr_ir::ArrayId::from_index(0))
        );
    }

    #[test]
    fn run_steps_iterates() {
        let p = chain_prog();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let mut c = CountingSink::default();
        m.run_steps(&mut c, 3);
        assert_eq!(m.stats().instances, 9);
    }

    #[test]
    fn fuel_budget_terminates_degenerate_runs() {
        let p = chain_prog();
        // Tiny memory footprint, huge trip count: only fuel can stop it soon.
        let mut m = Machine::new(&p, ParamBinding::new(vec![1_000_000]));
        let err = m.run_guarded(&mut NullSink, 1000).unwrap_err();
        assert_eq!(
            err,
            GcrError::BudgetExceeded { resource: Resource::InterpreterFuel, limit: 1000 }
        );
        // Ample fuel: completes fine, budget shared across steps.
        let mut m = Machine::new(&p, ParamBinding::new(vec![10]));
        m.run_steps_guarded(&mut NullSink, 2, 1_000).unwrap();
        assert!(m.run_steps_guarded(&mut NullSink, 2, 30).is_err());
    }

    #[test]
    fn memory_cap_rejects_oversized_layouts() {
        let p = chain_prog();
        let bind = ParamBinding::new(vec![1_000_000]);
        let layout = DataLayout::column_major(&p, &bind, 0);
        let err = match Machine::try_with_layout(&p, bind.clone(), layout, Some(1 << 20)) {
            Err(e) => e,
            Ok(_) => panic!("oversized layout accepted"),
        };
        assert!(matches!(err, GcrError::BudgetExceeded { resource: Resource::MemoryBytes, .. }));
        let bind = ParamBinding::new(vec![16]);
        let layout = DataLayout::column_major(&p, &bind, 0);
        assert!(Machine::try_with_layout(&p, bind, layout, Some(1 << 20)).is_ok());
    }

    #[test]
    fn write_array_checks_length() {
        let p = chain_prog();
        let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
        let a = gcr_ir::ArrayId::from_index(0);
        let err = m.write_array(a, &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, GcrError::LayoutMismatch { array: "A".into(), expected: 4, got: 2 });
        m.write_array(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.read_array(a), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
