#![warn(missing_docs)]

//! `gcr-exec` — program execution and memory-trace generation.
//!
//! The paper's experiments all measure functions of the memory-address
//! stream (cache misses, TLB misses, reuse distances) or a cycle count.
//! Instead of generating Fortran through Omega as the authors did, we
//! execute the transformed IR directly: the [`machine::Machine`]
//! interpreter walks the (guarded) loop nests in exact iteration order and
//! reports every array access — mapped to a byte address through a
//! [`layout::DataLayout`] — to a [`machine::TraceSink`]. This produces the
//! identical address trace compiled code would produce under the same
//! layout, which is what every downstream measurement consumes.
//!
//! The layout is the regrouping transformation's output format: an affine
//! `base + Σ stride·(idx−1)` address function per array. The default layout
//! places arrays sequentially in column-major (Fortran) order; regrouped
//! layouts interleave strides (see `gcr-core::regroup`).
//!
//! Three engines produce that trace: the tree-walking interpreter (the
//! reference semantics); the compiled tape of [`mod@compile`]/[`tape`],
//! which lowers a `(Program, ParamBinding, DataLayout)` triple once into a
//! flat instruction stream with affine address walkers and guard-resolved
//! iteration segments; and the register bytecode VM of [`mod@vm`], which
//! selects superinstructions over the tape and executes guard-free inner
//! segments in whole iteration strips, emitting access events in batches
//! through [`machine::TraceSink::record_batch`]. All three are
//! observationally identical; the engine is selected per
//! [`machine::Machine`] (explicitly, or via `GCR_EXEC`), and the VM is the
//! default for all measurement runs.

pub mod compile;
pub mod layout;
pub mod machine;
pub mod tape;
pub mod vm;

pub use compile::compile;
pub use layout::{ArrayLayout, DataLayout};
pub use machine::{
    AccessEvent, BatchSlot, CountingSink, ExecEngine, ExecEstimate, ExecStats, Machine, NullSink,
    TraceBatch, TraceSink,
};
pub use tape::CompiledProgram;
pub use vm::VmPlan;
