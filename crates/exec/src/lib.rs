#![warn(missing_docs)]

//! `gcr-exec` — program execution and memory-trace generation.
//!
//! The paper's experiments all measure functions of the memory-address
//! stream (cache misses, TLB misses, reuse distances) or a cycle count.
//! Instead of generating Fortran through Omega as the authors did, we
//! execute the transformed IR directly: the [`machine::Machine`]
//! interpreter walks the (guarded) loop nests in exact iteration order and
//! reports every array access — mapped to a byte address through a
//! [`layout::DataLayout`] — to a [`machine::TraceSink`]. This produces the
//! identical address trace compiled code would produce under the same
//! layout, which is what every downstream measurement consumes.
//!
//! The layout is the regrouping transformation's output format: an affine
//! `base + Σ stride·(idx−1)` address function per array. The default layout
//! places arrays sequentially in column-major (Fortran) order; regrouped
//! layouts interleave strides (see `gcr-core::regroup`).

pub mod layout;
pub mod machine;

pub use layout::{ArrayLayout, DataLayout};
pub use machine::{
    AccessEvent, CountingSink, ExecEstimate, ExecStats, Machine, NullSink, TraceSink,
};
