//! Affine data layouts: byte address functions for array elements.
//!
//! Every array `A` gets `addr(A[i₁,…,i_d]) = base_A + Σ strideₖ·(iₖ − 1)`
//! (1-based Fortran indexing). The default layout allocates arrays one
//! after another in column-major order (first dimension contiguous). Data
//! regrouping produces layouts whose strides interleave several arrays —
//! e.g. grouping `A` and `B` at the element level gives them strides twice
//! as large and adjacent bases — without any special cases downstream.

use gcr_ir::{ParamBinding, Program};

/// Size of one array element in bytes (all data is `f64`).
pub const ELEM_BYTES: usize = 8;

/// Address function for one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Byte offset of element (1, 1, …).
    pub base: usize,
    /// Byte stride per dimension, innermost first.
    pub strides: Vec<usize>,
    /// Concrete extent per dimension (for bounds checking).
    pub extents: Vec<i64>,
}

impl ArrayLayout {
    /// Byte address of an element (1-based indices).
    #[inline]
    pub fn addr(&self, idxs: &[i64]) -> usize {
        debug_assert_eq!(idxs.len(), self.strides.len());
        let mut a = self.base;
        for (k, &i) in idxs.iter().enumerate() {
            debug_assert!(
                i >= 1 && i <= self.extents[k],
                "index {i} out of bounds 1..={} in dim {k}",
                self.extents[k]
            );
            a += self.strides[k] * (i - 1) as usize;
        }
        a
    }

    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.extents.iter().map(|&e| e as usize).product()
    }

    /// True for zero-element arrays (never produced in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete layout for a program's arrays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataLayout {
    /// One entry per `ArrayId` (scalars get rank-0 entries).
    pub arrays: Vec<ArrayLayout>,
    /// Total footprint in bytes.
    pub total_bytes: usize,
}

impl DataLayout {
    /// The default layout: arrays allocated sequentially in declaration
    /// order, each column-major, with `pad_bytes` of padding between
    /// consecutive arrays (0 for the plain layout; the SGI-like baseline
    /// uses inter-array padding to break conflict alignment).
    pub fn column_major(prog: &Program, binding: &ParamBinding, pad_bytes: usize) -> DataLayout {
        let mut arrays = Vec::with_capacity(prog.arrays.len());
        let mut cursor = 0usize;
        for decl in &prog.arrays {
            let extents: Vec<i64> = decl.dims.iter().map(|d| d.eval(binding)).collect();
            assert!(
                extents.iter().all(|&e| e >= 1),
                "array {} has non-positive extent {extents:?}",
                decl.name
            );
            let mut strides = Vec::with_capacity(extents.len());
            let mut s = ELEM_BYTES;
            for &e in &extents {
                strides.push(s);
                s *= e as usize;
            }
            arrays.push(ArrayLayout { base: cursor, strides, extents });
            cursor += s; // total bytes of this array (ELEM_BYTES for scalars)
            cursor += pad_bytes;
        }
        DataLayout { arrays, total_bytes: cursor }
    }

    /// Address of an element of array `a`.
    #[inline]
    pub fn addr(&self, a: gcr_ir::ArrayId, idxs: &[i64]) -> usize {
        self.arrays[a.index()].addr(idxs)
    }

    /// Total footprint in elements.
    pub fn total_elems(&self) -> usize {
        self.total_bytes / ELEM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::{LinExpr, ProgramBuilder};

    fn demo() -> (Program, ParamBinding) {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        b.array("B", &[LinExpr::param(n)]);
        b.scalar("s");
        (b.finish(), ParamBinding::new(vec![4]))
    }

    #[test]
    fn column_major_strides() {
        let (p, bind) = demo();
        let l = DataLayout::column_major(&p, &bind, 0);
        let a = &l.arrays[0];
        assert_eq!(a.strides, vec![8, 32]);
        assert_eq!(a.extents, vec![4, 4]);
        // A occupies [0, 128), B [128, 160), s [160, 168)
        assert_eq!(l.arrays[1].base, 128);
        assert_eq!(l.arrays[2].base, 160);
        assert_eq!(l.total_bytes, 168);
    }

    #[test]
    fn addresses_are_one_based_column_major() {
        let (p, bind) = demo();
        let l = DataLayout::column_major(&p, &bind, 0);
        // A[1,1] at 0; A[2,1] contiguous; A[1,2] one column later.
        assert_eq!(l.arrays[0].addr(&[1, 1]), 0);
        assert_eq!(l.arrays[0].addr(&[2, 1]), 8);
        assert_eq!(l.arrays[0].addr(&[1, 2]), 32);
        assert_eq!(l.arrays[0].addr(&[4, 4]), 120);
        // scalar
        assert_eq!(l.arrays[2].addr(&[]), 160);
    }

    #[test]
    fn padding_shifts_bases() {
        let (p, bind) = demo();
        let l = DataLayout::column_major(&p, &bind, 64);
        assert_eq!(l.arrays[1].base, 128 + 64);
        assert_eq!(l.arrays[2].base, 128 + 64 + 32 + 64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn bounds_checked_in_debug() {
        let (p, bind) = demo();
        let l = DataLayout::column_major(&p, &bind, 0);
        let _ = l.arrays[0].addr(&[5, 1]);
    }
}
