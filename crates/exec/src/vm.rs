//! The register bytecode VM: superinstruction selection over the compiled
//! tape and vectorized strip execution with batched event emission.
//!
//! The tape engine ([`crate::tape`]) already lowered expression trees to
//! linear op tapes over an untagged register file, but it still pays one
//! dispatch per scalar op and one virtual sink call per access event. This
//! engine removes both taxes where the tape's own analysis proves it safe:
//!
//! * **Superinstructions.** Each compiled statement's op tape is pattern
//!   matched once into a single `VInst`: constant fills, copies, fused
//!   load-load-op-store sequences (`VInst::BinRR`), load-const forms
//!   (`VInst::BinRC`), and read-sum chains with an optional affine
//!   post-step (`VInst::Chain` — the shape of every stencil and intrinsic
//!   call the frontend produces). Statements outside these shapes keep the
//!   op tape and run as `VInst::Micro`, so the lowering is *total*: the
//!   VM's domain is exactly the tape compiler's domain.
//! * **Strip execution.** Flat segments — guard-free basic blocks whose
//!   members are unconditional statements with affine walkers — execute in
//!   whole iteration strips per dispatch. Because every event address is an
//!   affine function of the loop variable (value-independent), the strip's
//!   complete event stream is known before any arithmetic runs and is
//!   handed to the sink once per strip in compressed affine form: one
//!   [`crate::machine::BatchSlot`] (start address, stride, static fields)
//!   per event position, via [`crate::TraceSink::record_batch`]. The producer does
//!   *zero* per-event work — an event-blind sink costs nothing, and a hot
//!   sink expands addresses in one tight loop over its own state. The
//!   arithmetic then runs as tight per-statement kernels over the strip.
//!   When a compile-time dependence check proves no statement pair can
//!   touch the same address within a strip (distinct iterations), kernels
//!   sweep statement-major; otherwise compute falls back to
//!   iteration-major order inside the strip, which preserves every data
//!   dependence while events stay batched.
//! * **Inner-loop unrolling.** A guard-free constant-trip inner loop (the
//!   `for m = 1, 5` component loops NPB wraps around every statement)
//!   would otherwise cap strips at its tiny trip count. When every trip is
//!   statement-major safe with the inner value substituted into its
//!   affine forms, the planner unrolls the loop body into the *parent*
//!   strip — one `SItem::Prime` step re-bases the inner walkers per
//!   trip, and strips run as long as the parent loop.
//!
//! Observational equivalence with the interpreter and the tape is
//! non-negotiable and enforced by the differential test suite and the
//! three-way conformance oracle: identical `AccessEvent` streams
//! (including `end_instance` interleaving), bit-identical `f64` memory,
//! identical [`ExecStats`], and identical fuel accounting. The strip path
//! is taken only when the remaining fuel provably covers the whole segment
//! — the same rule as the tape's flat path — so exhaustion inside a strip
//! is impossible and partial runs take the exact per-event path.

use crate::layout::ELEM_BYTES;
use crate::machine::{BatchSlot, ExecStats, NullSink, TraceBatch, TraceSink};
use crate::tape::{CompiledProgram, Exec, ItemKind, Op, Segment};
use gcr_ir::{ArrayId, GcrError, ReduceOp, StmtId};

/// Cap on iterations per strip: bounds each kernel's working set (a strip
/// walks at most this many elements per operand) and the distance the
/// statement-major dependence check must clear.
const MAX_STRIP: usize = 1024;

/// Trip-count ceiling for unrolling a constant-bound inner loop into its
/// parent's strip. Small by design: unrolling multiplies the per-iteration
/// slot and kernel count by the trip count, and the payoff — strips as
/// long as the *parent* loop instead of the tiny inner one — only needs
/// the short component-style loops (`for m = 1, 5`) the NPB kernels wrap
/// around every statement.
const UNROLL_MAX: i64 = 8;

/// Arithmetic of the binary superinstructions. Division carries the
/// interpreter's guard (divisor below `1e-300` leaves the left operand).
#[derive(Clone, Copy, Debug)]
enum VBin {
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
}

impl VBin {
    #[inline(always)]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            VBin::Add => a + b,
            VBin::Sub => a - b,
            VBin::Mul => a * b,
            VBin::Div => {
                if b.abs() < 1e-300 {
                    a
                } else {
                    a / b
                }
            }
            VBin::Max => a.max(b),
            VBin::Min => a.min(b),
        }
    }

    fn from_read_op(op: &Op) -> Option<(Self, u32)> {
        match *op {
            Op::ReadAdd { d: 0, w, .. } => Some((VBin::Add, w)),
            Op::ReadSub { d: 0, w, .. } => Some((VBin::Sub, w)),
            Op::ReadMul { d: 0, w, .. } => Some((VBin::Mul, w)),
            Op::ReadMax { d: 0, w, .. } => Some((VBin::Max, w)),
            Op::ReadMin { d: 0, w, .. } => Some((VBin::Min, w)),
            _ => None,
        }
    }

    fn from_const_op(op: &Op) -> Option<(Self, f64)> {
        match *op {
            Op::ConstAdd { d: 0, v } => Some((VBin::Add, v)),
            Op::ConstSub { d: 0, v } => Some((VBin::Sub, v)),
            Op::ConstMul { d: 0, v } => Some((VBin::Mul, v)),
            // `ConstDiv` is emitted only for `|v| >= 1e-300`, where the
            // guarded division is a plain division — identical result.
            Op::ConstDiv { d: 0, v } => Some((VBin::Div, v)),
            Op::ConstMax { d: 0, v } => Some((VBin::Max, v)),
            Op::ConstMin { d: 0, v } => Some((VBin::Min, v)),
            _ => None,
        }
    }

    fn from_bin_op(op: &Op) -> Option<Self> {
        match *op {
            Op::Add { d: 0 } => Some(VBin::Add),
            Op::Sub { d: 0 } => Some(VBin::Sub),
            Op::Mul { d: 0 } => Some(VBin::Mul),
            Op::Div { d: 0 } => Some(VBin::Div),
            Op::Max { d: 0 } => Some(VBin::Max),
            Op::Min { d: 0 } => Some(VBin::Min),
            _ => None,
        }
    }
}

/// Post-step of a read-sum chain, preserving the tape's exact FP order.
#[derive(Clone, Copy, Debug)]
enum ChainKind {
    /// `scale * acc + bias`, accumulator seeded with `0.0` (the intrinsic
    /// call lowering: `Const 0, ReadAdd…, Intrinsic`).
    Intrinsic { scale: f64, bias: f64 },
    /// `c * acc`, accumulator seeded with the first read
    /// (`Const c, Read, ReadAdd…, Mul` — a scaled stencil).
    PreMul { c: f64 },
    /// `acc ⊕ v`, accumulator seeded with the first read
    /// (`Read, ReadAdd…, Const⊕`).
    Post { v: f64, op: VBin },
    /// Plain sum, accumulator seeded with the first read.
    Sum,
}

/// One superinstruction: how a statement's right-hand side is computed.
/// The store (reduce read, write, instance boundary) is driven uniformly
/// from the statement's metadata.
#[derive(Clone, Copy, Debug)]
enum VInst {
    /// `rhs = v`.
    Fill { v: f64 },
    /// `rhs = read(a)`.
    Copy { a: u32 },
    /// `rhs = read(a) ⊕ read(b)`.
    BinRR { a: u32, b: u32, op: VBin },
    /// `rhs = read(a) ⊕ v`.
    BinRC { a: u32, v: f64, op: VBin },
    /// Read-sum chain over `chain_ws[ws.0..ws.1]` with a post-step.
    Chain { ws: (u32, u32), kind: ChainKind },
    /// No recognized shape: interpret the statement's op tape.
    Micro,
}

/// One event slot of a strip iteration: which walker produces the event,
/// how its address advances per iteration, and the event's static fields.
#[derive(Clone, Copy, Debug)]
struct EvSlot {
    w: u32,
    stride: i64,
    stmt: StmtId,
    is_write: bool,
}

/// One step of a strip iteration, in source order. Plain flat segments
/// produce only `Stmt` steps; segments with unrolled constant-trip inner
/// loops interleave `Prime` steps that re-base the inner iteration's
/// walkers (one per unrolled inner iteration, before its statements).
#[derive(Clone, Copy, Debug)]
enum SItem {
    /// One statement instance; it owns the next `nslots` event slots.
    Stmt { si: u32, nslots: u32 },
    /// Set `vars[var] = val` and prime walkers `prime` — positions one
    /// unrolled inner iteration's references at the current parent value.
    Prime { var: u16, val: i64, prime: (u32, u32) },
}

/// Strip plan of one guard-free segment.
#[derive(Clone, Debug)]
struct Strip {
    /// Steps per iteration: `sitems[start..end]`.
    items: (u32, u32),
    /// Event slots per iteration, in emission order: `slots[start..end]`.
    slots: (u32, u32),
    /// Instance boundaries per iteration: `ends[start..end]`, each an
    /// (event offset within the iteration, statement) pair.
    ends: (u32, u32),
    /// Iterations per strip.
    max_iters: u32,
    /// True when kernels may sweep statement-major: the affine dependence
    /// check proved no cross-instance address collision within a strip,
    /// and every `VInst::Micro` instance passed the same-statement
    /// check that makes its op-major vector execution safe.
    stmt_major: bool,
    /// True when the strip carries `Prime` steps (unrolled inner loops).
    unrolled: bool,
    /// Fuel per parent iteration, inner-loop iterations included — the
    /// segment's own `iter_fuel` is wrong for unrolled strips (the tape
    /// computes it only for flat segments), so the plan carries its own.
    iter_fuel: u64,
    /// Statistic deltas per parent iteration, matching the exact path.
    iter_instances: u64,
    iter_flops: u64,
    iter_reads: u64,
    iter_writes: u64,
}

/// A compiled program's VM lowering: superinstructions for every statement
/// plus strip plans for every flat segment. Built once per
/// [`CompiledProgram`] by [`VmPlan::build`] and cached by the machine; the
/// lowering is total, so the VM runs exactly the programs the tape runs.
#[derive(Clone, Debug)]
pub struct VmPlan {
    vstmts: Vec<VInst>,
    chain_ws: Vec<u32>,
    /// Indexed like `CompiledProgram::segments`; `Some` iff the segment
    /// is guard-free with affine walkers (flat, or flat after unrolling
    /// constant-trip inner loops).
    strips: Vec<Option<Strip>>,
    slots: Vec<EvSlot>,
    ends: Vec<(u32, StmtId)>,
    sitems: Vec<SItem>,
    /// Most event slots any strip iteration has (descriptor pre-sizing).
    max_slots: usize,
    /// Vector-register rows the widest op-major Micro kernel needs.
    max_vregs: usize,
}

impl VmPlan {
    /// Lowers a compiled program to the VM. Total: every statement gets a
    /// superinstruction (worst case `VInst::Micro`) and every flat
    /// segment a strip plan.
    pub fn build(cp: &CompiledProgram) -> VmPlan {
        let mut plan = VmPlan {
            vstmts: Vec::with_capacity(cp.stmts.len()),
            chain_ws: Vec::new(),
            strips: vec![None; cp.segments.len()],
            slots: Vec::new(),
            ends: Vec::new(),
            sitems: Vec::new(),
            max_slots: 0,
            max_vregs: 0,
        };
        for s in &cp.stmts {
            let inst = select(cp, s.ops, &mut plan.chain_ws);
            plan.vstmts.push(inst);
        }
        for l in &cp.loops {
            for sidx in l.segments.0..l.segments.1 {
                plan.build_strip(cp, sidx, l.var);
            }
        }
        plan
    }

    /// Number of statements lowered to a single-opcode superinstruction
    /// (everything except `VInst::Micro`).
    pub fn superinstruction_count(&self) -> usize {
        self.vstmts.iter().filter(|i| !matches!(i, VInst::Micro)).count()
    }

    /// Number of flat segments with a strip plan.
    pub fn strip_count(&self) -> usize {
        self.strips.iter().flatten().count()
    }

    fn build_strip(&mut self, cp: &CompiledProgram, sidx: u32, var: u16) {
        let seg = &cp.segments[sidx as usize];
        // Admission: every member must be an unconditional statement, or an
        // unconditional constant-trip inner loop that unrolls — no checks,
        // one flat segment (all unconditional statements by construction),
        // and a small trip count. Anything else keeps the exact path.
        enum Unit {
            Stmt(u32),
            Unroll { mvar: u16, mseg: u32 },
        }
        let items = &cp.items[seg.items.0 as usize..seg.items.1 as usize];
        let mut units = Vec::new();
        let mut unrolled = false;
        for it in items {
            if it.req != 0 {
                return;
            }
            match it.kind {
                ItemKind::Stmt(si) => units.push(Unit::Stmt(si)),
                ItemKind::Loop(li) => {
                    let l2 = &cp.loops[li as usize];
                    if l2.checks.1 != l2.checks.0 || l2.segments.1 - l2.segments.0 != 1 {
                        return;
                    }
                    let ms = l2.segments.0;
                    let m = &cp.segments[ms as usize];
                    if m.flat.is_none() || m.hi - m.lo + 1 > UNROLL_MAX {
                        return;
                    }
                    unrolled = true;
                    units.push(Unit::Unroll { mvar: l2.var, mseg: ms });
                }
            }
        }
        if units.is_empty() {
            return;
        }
        // Instance list (one entry per unrolled statement instance) for
        // the dependence analysis, and per-iteration accounting matching
        // the exact path's fuel and statistics exactly.
        let mut insts: Vec<(u32, Option<(u16, i64)>)> = Vec::new();
        let (mut fuel, mut instances) = (1u64, 0u64);
        let (mut flops, mut reads, mut writes) = (0u64, 0u64, 0u64);
        for u in &units {
            match *u {
                Unit::Stmt(si) => {
                    insts.push((si, None));
                    let s = &cp.stmts[si as usize];
                    fuel += 1;
                    instances += 1;
                    flops += u64::from(s.flops);
                    reads += cp.ops[s.ops.0 as usize..s.ops.1 as usize]
                        .iter()
                        .filter(|op| traced_read_walker(op).is_some())
                        .count() as u64;
                    if s.traced {
                        if s.reduce.is_some() {
                            reads += 1;
                        }
                        writes += 1;
                    }
                }
                Unit::Unroll { mvar, mseg } => {
                    let m = &cp.segments[mseg as usize];
                    for j in m.lo..=m.hi {
                        for it in &cp.items[m.items.0 as usize..m.items.1 as usize] {
                            let ItemKind::Stmt(si) = it.kind else { unreachable!() };
                            insts.push((si, Some((mvar, j))));
                        }
                    }
                    let trips = (m.hi - m.lo + 1) as u64;
                    fuel += trips * m.iter_fuel;
                    instances += trips * m.iter_instances;
                    flops += trips * m.iter_flops;
                    reads += trips * m.iter_reads;
                    writes += trips * m.iter_writes;
                }
            }
        }
        // Strips never run longer than the segment itself, so dependence
        // distances only matter up to the shorter of the two.
        let max_iters = MAX_STRIP as u32;
        let strip_len = (max_iters as i64).min(seg.hi - seg.lo + 1);
        // Statement-major execution needs every instance to be safe when
        // run a whole strip at a time: vector kernels always are (their
        // fused read-compute-write loop ascends in the original iteration
        // order), a Micro instance is when its op-major sweep — all reads
        // of the strip before its stores — cannot observe its own writes
        // (no read/write collision at nonzero iteration distance within a
        // strip), and instance pairs must never touch the same address in
        // different iterations of one strip. Unrolled instances take part
        // with their inner-loop value substituted into the affine form.
        let accs: Vec<Vec<AffAcc>> =
            insts.iter().map(|&(si, subst)| inst_accs(cp, si, var, subst)).collect();
        let vec_ok = insts.iter().zip(&accs).all(|(&(si, _), acc)| {
            !matches!(self.vstmts[si as usize], VInst::Micro) || micro_vec_ok(acc, strip_len)
        });
        let stmt_major = vec_ok && (accs.len() == 1 || deps_allow_stmt_major(&accs, strip_len));
        if unrolled && !stmt_major {
            // An unrolled iteration-major fallback would re-prime every
            // inner iteration per parent iteration — slower than the
            // exact path it replaces. Keep the exact path (the inner
            // loop's own strip still batches its events).
            return;
        }
        if stmt_major {
            for &(si, _) in &insts {
                if matches!(self.vstmts[si as usize], VInst::Micro) {
                    let s = &cp.stmts[si as usize];
                    for op in &cp.ops[s.ops.0 as usize..s.ops.1 as usize] {
                        self.max_vregs = self.max_vregs.max(op_rows(op));
                    }
                }
            }
        }
        // Emit the per-iteration step list, event slots, and instance
        // boundaries, in source order.
        let slots_start = self.slots.len() as u32;
        let ends_start = self.ends.len() as u32;
        let items_start = self.sitems.len() as u32;
        let mut off = 0u32;
        for u in &units {
            match *u {
                Unit::Stmt(si) => self.push_inst(cp, si, var, &mut off),
                Unit::Unroll { mvar, mseg } => {
                    let m = &cp.segments[mseg as usize];
                    for j in m.lo..=m.hi {
                        self.sitems.push(SItem::Prime { var: mvar, val: j, prime: m.prime });
                        for it in &cp.items[m.items.0 as usize..m.items.1 as usize] {
                            let ItemKind::Stmt(si) = it.kind else { unreachable!() };
                            self.push_inst(cp, si, var, &mut off);
                        }
                    }
                }
            }
        }
        self.max_slots = self.max_slots.max(off as usize);
        self.strips[sidx as usize] = Some(Strip {
            items: (items_start, self.sitems.len() as u32),
            slots: (slots_start, self.slots.len() as u32),
            ends: (ends_start, self.ends.len() as u32),
            max_iters,
            stmt_major,
            unrolled,
            iter_fuel: fuel,
            iter_instances: instances,
            iter_flops: flops,
            iter_reads: reads,
            iter_writes: writes,
        });
    }

    /// Appends one statement instance's event slots, instance boundary,
    /// and step-list entry.
    fn push_inst(&mut self, cp: &CompiledProgram, si: u32, var: u16, off: &mut u32) {
        let s = &cp.stmts[si as usize];
        let mut n = 0u32;
        for op in &cp.ops[s.ops.0 as usize..s.ops.1 as usize] {
            if let Some(w) = traced_read_walker(op) {
                self.slots.push(EvSlot {
                    w,
                    stride: pstride(cp, w, var),
                    stmt: s.id,
                    is_write: false,
                });
                n += 1;
            }
        }
        if s.traced {
            if s.reduce.is_some() {
                self.slots.push(EvSlot {
                    w: s.walker,
                    stride: pstride(cp, s.walker, var),
                    stmt: s.id,
                    is_write: false,
                });
                n += 1;
            }
            self.slots.push(EvSlot {
                w: s.walker,
                stride: pstride(cp, s.walker, var),
                stmt: s.id,
                is_write: true,
            });
            n += 1;
        }
        *off += n;
        self.ends.push((*off, s.id));
        self.sitems.push(SItem::Stmt { si, nslots: n });
    }
}

/// Per-iteration byte stride of walker `w` with respect to loop variable
/// `var` — the walker's `var` term. Identical to the segment advance-list
/// entry for directly-advanced walkers, and defined (unlike the advance
/// list) for walkers of unrolled inner statements, which re-prime instead
/// of advancing.
fn pstride(cp: &CompiledProgram, w: u32, var: u16) -> i64 {
    cp.walkers[w as usize].terms.iter().filter(|&&(slot, _)| slot == var).map(|&(_, st)| st).sum()
}

/// Walker of a traced-read op, if any.
fn traced_read_walker(op: &Op) -> Option<u32> {
    match *op {
        Op::Read { w, .. }
        | Op::ReadAdd { w, .. }
        | Op::ReadSub { w, .. }
        | Op::ReadMul { w, .. }
        | Op::ReadMax { w, .. }
        | Op::ReadMin { w, .. } => Some(w),
        _ => None,
    }
}

/// Walker of any memory-touching op (traced or scalar) — the dependence
/// check must see scalar reads too.
fn any_read_walker(op: &Op) -> Option<u32> {
    match *op {
        Op::ReadScalar { w, .. } => Some(w),
        _ => traced_read_walker(op),
    }
}

/// Selects the superinstruction for one op tape.
fn select(cp: &CompiledProgram, ops_range: (u32, u32), chain_ws: &mut Vec<u32>) -> VInst {
    let ops = &cp.ops[ops_range.0 as usize..ops_range.1 as usize];
    match ops {
        [Op::Const { d: 0, v }] => return VInst::Fill { v: *v },
        [Op::Read { d: 0, w, .. }] => return VInst::Copy { a: *w },
        [Op::Read { d: 0, w: a, .. }, second] => {
            if let Some((op, b)) = VBin::from_read_op(second) {
                return VInst::BinRR { a: *a, b, op };
            }
            if let Some((op, v)) = VBin::from_const_op(second) {
                return VInst::BinRC { a: *a, v, op };
            }
        }
        // Unfused three-op binary (division is never leaf-fused).
        [Op::Read { d: 0, w: a, .. }, Op::Read { d: 1, w: b, .. }, third] => {
            if let Some(op) = VBin::from_bin_op(third) {
                return VInst::BinRR { a: *a, b: *b, op };
            }
        }
        _ => {}
    }
    // Read-sum chains. The intrinsic-call shape seeds the accumulator
    // with literal +0.0 (matching the interpreter's argument sum); the
    // other shapes seed it with the first read.
    if ops.len() >= 3 {
        if let (Op::Const { d: 0, v }, Op::Intrinsic { d: 0, scale, bias }) =
            (&ops[0], &ops[ops.len() - 1])
        {
            if v.to_bits() == 0.0f64.to_bits() {
                if let Some(ws) = collect_chain(&ops[1..ops.len() - 1], chain_ws, false) {
                    return VInst::Chain {
                        ws,
                        kind: ChainKind::Intrinsic { scale: *scale, bias: *bias },
                    };
                }
            }
        }
    }
    if ops.len() >= 4 {
        if let (Op::Const { d: 0, v }, Op::Mul { d: 0 }) = (&ops[0], &ops[ops.len() - 1]) {
            if let Some(ws) = collect_chain_at(&ops[1..ops.len() - 1], chain_ws, 1) {
                return VInst::Chain { ws, kind: ChainKind::PreMul { c: *v } };
            }
        }
    }
    if ops.len() >= 3 {
        if let Some((op, v)) = VBin::from_const_op(&ops[ops.len() - 1]) {
            if let Some(ws) = collect_chain(&ops[..ops.len() - 1], chain_ws, true) {
                return VInst::Chain { ws, kind: ChainKind::Post { v, op } };
            }
        }
        if let Some(ws) = collect_chain(ops, chain_ws, true) {
            return VInst::Chain { ws, kind: ChainKind::Sum };
        }
    }
    VInst::Micro
}

/// Collects a `Read, ReadAdd…` (when `lead_read`) or `ReadAdd…` chain at
/// register depth 0 into the walker pool, returning the pool range.
fn collect_chain(ops: &[Op], chain_ws: &mut Vec<u32>, lead_read: bool) -> Option<(u32, u32)> {
    collect_chain_inner(ops, chain_ws, lead_read, 0)
}

/// Like [`collect_chain`], with a leading `Read` at register depth `d`
/// (the scaled-stencil shape puts the sum one register deep).
fn collect_chain_at(ops: &[Op], chain_ws: &mut Vec<u32>, d: u16) -> Option<(u32, u32)> {
    collect_chain_inner(ops, chain_ws, true, d)
}

fn collect_chain_inner(
    ops: &[Op],
    chain_ws: &mut Vec<u32>,
    lead_read: bool,
    depth: u16,
) -> Option<(u32, u32)> {
    let mut ws = Vec::with_capacity(ops.len());
    for (k, op) in ops.iter().enumerate() {
        match *op {
            Op::Read { d, w, .. } if k == 0 && lead_read && d == depth => ws.push(w),
            Op::ReadAdd { d, w, .. } if d == depth && (k > 0 || !lead_read) => ws.push(w),
            _ => return None,
        }
    }
    if ws.is_empty() {
        return None;
    }
    let start = chain_ws.len() as u32;
    chain_ws.extend_from_slice(&ws);
    Some((start, chain_ws.len() as u32))
}

/// One statement instance's access in affine form over the strip
/// variable: `addr(t) = konst + stride·t + Σ rest·vars`, with any
/// unrolled inner-loop value already substituted into `konst`.
#[derive(Clone, Debug)]
struct AffAcc {
    array: ArrayId,
    konst: i64,
    stride: i64,
    rest: Vec<(u16, i64)>,
    write: bool,
}

/// Builds the affine access of walker `w` over strip variable `var`,
/// substituting the unrolled inner-loop value (if any) into the constant.
fn aff_acc(
    cp: &CompiledProgram,
    w: u32,
    var: u16,
    subst: Option<(u16, i64)>,
    write: bool,
) -> AffAcc {
    let wk = &cp.walkers[w as usize];
    let mut konst = wk.konst;
    let mut stride = 0i64;
    let mut rest = Vec::new();
    for &(slot, st) in &wk.terms {
        if slot == var {
            stride += st;
        } else if subst.is_some_and(|(mv, _)| slot == mv) {
            konst += st * subst.unwrap().1;
        } else if st != 0 {
            rest.push((slot, st));
        }
    }
    rest.sort_unstable();
    AffAcc { array: cp.ev[w as usize].array, konst, stride, rest, write }
}

/// All memory accesses of one statement instance (scalar reads included —
/// the dependence check must see them) with the write last.
fn inst_accs(cp: &CompiledProgram, si: u32, var: u16, subst: Option<(u16, i64)>) -> Vec<AffAcc> {
    let s = &cp.stmts[si as usize];
    let mut v: Vec<AffAcc> = cp.ops[s.ops.0 as usize..s.ops.1 as usize]
        .iter()
        .filter_map(|op| any_read_walker(op).map(|w| aff_acc(cp, w, var, subst, false)))
        .collect();
    v.push(aff_acc(cp, s.walker, var, subst, true));
    v
}

/// Conservative cross-iteration collision test between two affine
/// accesses over a strip of `strip` iterations.
fn aff_collide(a: &AffAcc, b: &AffAcc, strip: i64) -> bool {
    // Distinct arrays occupy disjoint byte sets under every layout
    // (including regrouped interleavings), so they can never alias.
    if a.array != b.array {
        return false;
    }
    if a.stride != b.stride || a.rest != b.rest {
        // Bases not provably related, or diverging strides: assume the
        // worst. Disjoint allocations with equal terms are handled by the
        // constant difference below.
        return true;
    }
    let dc = a.konst - b.konst;
    if a.stride == 0 {
        // Loop-invariant addresses collide iff equal.
        return dc == 0;
    }
    if dc % a.stride != 0 {
        return false;
    }
    let q = dc / a.stride;
    q != 0 && q.abs() < strip
}

/// True when statement-major kernel sweeps over a strip of up to `strip`
/// iterations preserve every data dependence: for every pair of accesses
/// in *different* instances with at least one write, the affine forms
/// provably never touch the same address in different iterations of the
/// same strip. Same-iteration collisions are fine — instance order within
/// an iteration is preserved by the statement-major sweep — and
/// same-instance dependences are handled by each kernel's sequential
/// ascending-iteration loop.
fn deps_allow_stmt_major(accs: &[Vec<AffAcc>], strip: i64) -> bool {
    for p1 in 0..accs.len() {
        for p2 in p1 + 1..accs.len() {
            for a in &accs[p1] {
                for b in &accs[p2] {
                    if (a.write || b.write) && aff_collide(a, b, strip) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// True when one `VInst::Micro` instance may execute op-major over a
/// strip: one pass per op across all iterations, stores last. That
/// reorders each iteration's reads before *earlier* iterations' stores,
/// which is unobservable unless a read can touch the instance's own write
/// at a nonzero iteration distance within the strip. Distance zero is
/// fine — per-iteration execution also reads before its own store — and
/// the reduce read-modify-write stays sequential in ascending iteration
/// order in both schedules. `acc` is the instance's access list with the
/// write last.
fn micro_vec_ok(acc: &[AffAcc], strip: i64) -> bool {
    let (w, reads) = acc.split_last().expect("instance access list has a write");
    reads.iter().all(|r| !aff_collide(w, r, strip))
}

/// Vector-register rows an op touches (binaries read one row deeper).
fn op_rows(op: &Op) -> usize {
    match *op {
        Op::Add { d }
        | Op::Sub { d }
        | Op::Mul { d }
        | Op::Div { d }
        | Op::Max { d }
        | Op::Min { d } => d as usize + 2,
        Op::Const { d, .. }
        | Op::Var { d, .. }
        | Op::Read { d, .. }
        | Op::ReadScalar { d, .. }
        | Op::Neg { d }
        | Op::Sqrt { d }
        | Op::Abs { d }
        | Op::Intrinsic { d, .. }
        | Op::ReadAdd { d, .. }
        | Op::ReadSub { d, .. }
        | Op::ReadMul { d, .. }
        | Op::ReadMax { d, .. }
        | Op::ReadMin { d, .. }
        | Op::ConstAdd { d, .. }
        | Op::ConstSub { d, .. }
        | Op::ConstMul { d, .. }
        | Op::ConstDiv { d, .. }
        | Op::ConstMax { d, .. }
        | Op::ConstMin { d, .. } => d as usize + 1,
        Op::Store { .. } => 0,
    }
}

/// Executes a compiled program under the VM plan. Mirrors
/// [`CompiledProgram`]'s `run` observably.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<S: TraceSink>(
    cp: &CompiledProgram,
    plan: &VmPlan,
    mem: &mut [f64],
    vars: &mut [i64],
    stats: &mut ExecStats,
    sink: &mut S,
    steps: usize,
    fuel: u64,
) -> Result<(), GcrError> {
    let mut vx = VmExec {
        ex: Exec::new(cp, mem, vars, fuel),
        plan,
        bslots: Vec::with_capacity(plan.max_slots),
        vregs: vec![0.0; plan.max_vregs * MAX_STRIP],
    };
    let mut result = Ok(());
    for _ in 0..steps {
        vx.ex.prime(cp.top_prime);
        if let Err(e) = vx.run_items(cp.top_items, 0, sink) {
            result = Err(e);
            break;
        }
    }
    vx.ex.flush_stats(stats);
    result
}

/// Address cursor of one kernel operand.
#[derive(Clone, Copy)]
struct Cur {
    addr: i64,
    stride: i64,
}

/// Resolved kernel of one statement over a strip.
enum Kern {
    Fill(f64),
    Copy(Cur),
    BinRR(Cur, Cur, VBin),
    BinRC(Cur, f64, VBin),
    Chain(Vec<Cur>, ChainKind),
}

/// The VM executor: tape execution state plus the strip's batch-slot
/// descriptor buffer (one entry per event position of an iteration —
/// building it is the *only* per-strip event work the VM does).
struct VmExec<'a> {
    ex: Exec<'a>,
    plan: &'a VmPlan,
    bslots: Vec<BatchSlot>,
    /// Vector register file of the op-major Micro kernel:
    /// `max_vregs` rows of [`MAX_STRIP`] elements.
    vregs: Vec<f64>,
}

impl VmExec<'_> {
    fn run_items<S: TraceSink>(
        &mut self,
        range: (u32, u32),
        inactive: u64,
        sink: &mut S,
    ) -> Result<(), GcrError> {
        let cp = self.ex.cp;
        for it in &cp.items[range.0 as usize..range.1 as usize] {
            if it.req & inactive != 0 {
                continue;
            }
            match it.kind {
                ItemKind::Stmt(si) => self.exec_stmt(si, sink)?,
                ItemKind::Loop(li) => self.run_loop(li, sink)?,
            }
        }
        Ok(())
    }

    fn run_loop<S: TraceSink>(&mut self, li: u32, sink: &mut S) -> Result<(), GcrError> {
        let cp = self.ex.cp;
        let l = &cp.loops[li as usize];
        let mut inactive = 0u64;
        for c in &cp.checks[l.checks.0 as usize..l.checks.1 as usize] {
            let v = self.ex.vars[c.slot as usize];
            if v < c.lo || v > c.hi {
                inactive |= c.bit;
            }
        }
        for s in l.segments.0..l.segments.1 {
            let seg = &cp.segments[s as usize];
            // Strip path: a planned guard-free segment with enough fuel
            // that exhaustion inside it is impossible — charge fuel and
            // statistics in bulk (the tape's flat-path rule, extended to
            // cover unrolled inner-loop iterations) and run whole
            // iteration strips per dispatch.
            if let Some(strip) = &self.plan.strips[s as usize] {
                let trips = (seg.hi - seg.lo + 1) as u64;
                let cost = trips * strip.iter_fuel;
                if self.ex.fuel >= cost {
                    self.ex.fuel -= cost;
                    self.ex.instances += trips * strip.iter_instances;
                    self.ex.flops += trips * strip.iter_flops;
                    self.ex.reads += trips * strip.iter_reads;
                    self.ex.writes += trips * strip.iter_writes;
                    self.run_strips(l.var, seg, strip, sink);
                    continue;
                }
            }
            let items = &cp.items[seg.items.0 as usize..seg.items.1 as usize];
            if !items.iter().any(|it| it.req & inactive == 0) {
                self.ex.spend_bulk((seg.hi - seg.lo + 1) as u64)?;
                continue;
            }
            self.ex.vars[l.var as usize] = seg.lo;
            self.ex.prime(seg.prime);
            let advance = &cp.advance_list[seg.advance.0 as usize..seg.advance.1 as usize];
            for t in seg.lo..=seg.hi {
                self.ex.spend()?;
                self.ex.vars[l.var as usize] = t;
                self.run_items(seg.items, inactive, sink)?;
                for &(w, stride) in advance {
                    self.ex.wk[w as usize].cur += stride;
                }
            }
        }
        Ok(())
    }

    /// Runs one planned segment as a sequence of iteration strips. Fuel
    /// and statistics are already charged in bulk by the caller. Unrolled
    /// strips interleave `Prime` steps that re-base each inner iteration's
    /// walkers at the strip's parent value before its statements run (or
    /// before their event slots are materialized).
    fn run_strips<S: TraceSink>(&mut self, var: u16, seg: &Segment, strip: &Strip, sink: &mut S) {
        let cp = self.ex.cp;
        let plan = self.plan;
        self.ex.vars[var as usize] = seg.lo;
        self.ex.prime(seg.prime);
        let advance = &cp.advance_list[seg.advance.0 as usize..seg.advance.1 as usize];
        let slots = &plan.slots[strip.slots.0 as usize..strip.slots.1 as usize];
        let iter_ends = &plan.ends[strip.ends.0 as usize..strip.ends.1 as usize];
        let sitems = &plan.sitems[strip.items.0 as usize..strip.items.1 as usize];
        let mut t = seg.lo;
        while t <= seg.hi {
            let len = (strip.max_iters as i64).min(seg.hi - t + 1);
            self.ex.vars[var as usize] = t;
            // Event pass: every address is affine in the strip iteration,
            // so the strip's complete event stream is known here, before
            // any arithmetic runs. Hand it to the sink in compressed
            // affine form — one descriptor per event position, O(slots)
            // work regardless of strip length. Unrolled inner walkers are
            // primed as the walk reaches them.
            self.bslots.clear();
            if strip.unrolled {
                let mut next = strip.slots.0 as usize;
                for it in sitems {
                    match *it {
                        SItem::Prime { var: mv, val, prime } => {
                            self.ex.vars[mv as usize] = val;
                            self.ex.prime(prime);
                        }
                        SItem::Stmt { nslots, .. } => {
                            for sl in &plan.slots[next..next + nslots as usize] {
                                let st = self.ex.wk[sl.w as usize];
                                self.bslots.push(BatchSlot {
                                    addr: st.cur as u64,
                                    stride: sl.stride,
                                    array: st.array,
                                    ref_id: st.ref_id,
                                    stmt: sl.stmt,
                                    is_write: sl.is_write,
                                });
                            }
                            next += nslots as usize;
                        }
                    }
                }
            } else {
                for sl in slots {
                    let st = self.ex.wk[sl.w as usize];
                    self.bslots.push(BatchSlot {
                        addr: st.cur as u64,
                        stride: sl.stride,
                        array: st.array,
                        ref_id: st.ref_id,
                        stmt: sl.stmt,
                        is_write: sl.is_write,
                    });
                }
            }
            sink.record_batch(&TraceBatch {
                slots: &self.bslots,
                ends: iter_ends,
                iters: len as u32,
            });
            // Compute pass.
            if strip.stmt_major {
                for it in sitems {
                    match *it {
                        SItem::Prime { var: mv, val, prime } => {
                            self.ex.vars[mv as usize] = val;
                            self.ex.prime(prime);
                        }
                        SItem::Stmt { si, .. } => self.kernel(si, len, var, t),
                    }
                }
                for &(w, stride) in advance {
                    self.ex.wk[w as usize].cur += stride * len;
                }
            } else {
                for k in 0..len {
                    self.ex.vars[var as usize] = t + k;
                    for it in sitems {
                        let SItem::Stmt { si, .. } = *it else {
                            unreachable!("unrolled strips are statement-major")
                        };
                        self.compute_one(si);
                    }
                    for &(w, stride) in advance {
                        self.ex.wk[w as usize].cur += stride;
                    }
                }
            }
            t += len;
        }
        self.ex.vars[var as usize] = seg.hi;
    }

    /// Kernel operand cursor of walker `w`: current address plus the
    /// per-iteration stride with respect to the strip variable.
    fn cur_of(&self, w: u32, var: u16) -> Cur {
        Cur { addr: self.ex.wk[w as usize].cur, stride: pstride(self.ex.cp, w, var) }
    }

    /// Statement-major vector kernel: one dispatch, then a tight
    /// read-compute-write loop ascending in the strip iteration — which is
    /// exactly the original per-iteration order of this statement, so
    /// same-statement loop-carried dependences are preserved by
    /// construction.
    fn kernel(&mut self, si: u32, len: i64, var: u16, t0: i64) {
        let cp = self.ex.cp;
        let s = cp.stmts[si as usize];
        let plan = self.plan;
        let k = match plan.vstmts[si as usize] {
            VInst::Fill { v } => Kern::Fill(v),
            VInst::Copy { a } => Kern::Copy(self.cur_of(a, var)),
            VInst::BinRR { a, b, op } => Kern::BinRR(self.cur_of(a, var), self.cur_of(b, var), op),
            VInst::BinRC { a, v, op } => Kern::BinRC(self.cur_of(a, var), v, op),
            VInst::Chain { ws, kind } => {
                let list = &plan.chain_ws[ws.0 as usize..ws.1 as usize];
                Kern::Chain(list.iter().map(|&w| self.cur_of(w, var)).collect(), kind)
            }
            // The planner admits Micro statements to statement-major
            // strips only when their op-major vector execution is safe.
            VInst::Micro => return self.vec_micro(si, len, var, t0),
        };
        let sd = pstride(cp, s.walker, var);
        let mut pd = self.ex.wk[s.walker as usize].cur;
        let mem = &mut *self.ex.mem;
        // Fused read-compute-write per iteration (never read-all-then
        // -write-all — that would break same-statement dependences).
        macro_rules! each {
            ($rhs:expr) => {{
                match s.reduce {
                    None => {
                        for _ in 0..len {
                            let v = $rhs;
                            mem[pd as usize / ELEM_BYTES] = v;
                            pd += sd;
                        }
                    }
                    Some(rop) => {
                        for _ in 0..len {
                            let v = $rhs;
                            let e = pd as usize / ELEM_BYTES;
                            let old = mem[e];
                            mem[e] = match rop {
                                ReduceOp::Sum => old + v,
                                ReduceOp::Max => old.max(v),
                                ReduceOp::Min => old.min(v),
                            };
                            pd += sd;
                        }
                    }
                }
            }};
        }
        match k {
            Kern::Fill(v) => each!(v),
            Kern::Copy(mut a) => each!({
                let x = mem[a.addr as usize / ELEM_BYTES];
                a.addr += a.stride;
                x
            }),
            Kern::BinRR(mut a, mut b, op) => each!({
                let x = mem[a.addr as usize / ELEM_BYTES];
                let y = mem[b.addr as usize / ELEM_BYTES];
                a.addr += a.stride;
                b.addr += b.stride;
                op.apply(x, y)
            }),
            Kern::BinRC(mut a, v, op) => each!({
                let x = mem[a.addr as usize / ELEM_BYTES];
                a.addr += a.stride;
                op.apply(x, v)
            }),
            Kern::Chain(mut cs, kind) => each!({
                let mut it = cs.iter_mut();
                let mut acc = match kind {
                    ChainKind::Intrinsic { .. } => 0.0,
                    _ => {
                        let c = it.next().unwrap();
                        let x = mem[c.addr as usize / ELEM_BYTES];
                        c.addr += c.stride;
                        x
                    }
                };
                for c in it {
                    acc += mem[c.addr as usize / ELEM_BYTES];
                    c.addr += c.stride;
                }
                match kind {
                    ChainKind::Intrinsic { scale, bias } => scale * acc + bias,
                    ChainKind::PreMul { c } => c * acc,
                    ChainKind::Post { v, op } => op.apply(acc, v),
                    ChainKind::Sum => acc,
                }
            }),
        }
    }

    /// Op-major vector execution of one Micro statement over a strip:
    /// each tape op runs once, as a tight loop over all `len` iterations
    /// on a row of the vector register file, then the store phase commits
    /// row 0 in ascending iteration order. One dispatch per op per strip
    /// instead of per iteration — the vectorized form of the tape's inner
    /// loop. Admitted by [`micro_vec_ok`] only when the schedule change
    /// (a strip's reads before its stores) is unobservable; each element
    /// still runs the exact op sequence of the tape, so memory is
    /// bit-identical.
    fn vec_micro(&mut self, si: u32, len: i64, var: u16, t0: i64) {
        let cp = self.ex.cp;
        let s = cp.stmts[si as usize];
        let n = len as usize;
        let stride_of = |w: u32| pstride(cp, w, var);
        {
            let vr = &mut self.vregs;
            let ex = &self.ex;
            let mem = &*ex.mem;
            macro_rules! row {
                ($d:expr) => {
                    &mut vr[$d as usize * MAX_STRIP..$d as usize * MAX_STRIP + n]
                };
            }
            macro_rules! map {
                ($d:expr, $f:expr) => {{
                    let f = $f;
                    for x in row!($d).iter_mut() {
                        *x = f(*x);
                    }
                }};
            }
            macro_rules! bin {
                ($d:expr, $f:expr) => {{
                    let f = $f;
                    let (a, b) = vr[$d as usize * MAX_STRIP..].split_at_mut(MAX_STRIP);
                    for k in 0..n {
                        a[k] = f(a[k], b[k]);
                    }
                }};
            }
            macro_rules! read {
                ($d:expr, $w:expr, $f:expr) => {{
                    let f = $f;
                    let st = stride_of($w);
                    let mut a = ex.wk[$w as usize].cur;
                    for x in row!($d).iter_mut() {
                        *x = f(*x, mem[a as usize / ELEM_BYTES]);
                        a += st;
                    }
                }};
            }
            for op in &cp.ops[s.ops.0 as usize..s.ops.1 as usize] {
                match *op {
                    Op::Const { d, v } => map!(d, |_| v),
                    Op::Var { d, slot, offset } => {
                        if slot == var {
                            for (k, x) in row!(d).iter_mut().enumerate() {
                                *x = (t0 + k as i64 + offset) as f64;
                            }
                        } else {
                            let v = (ex.vars[slot as usize] + offset) as f64;
                            map!(d, |_| v);
                        }
                    }
                    Op::Read { d, w, .. } | Op::ReadScalar { d, w } => {
                        read!(d, w, |_, m: f64| m)
                    }
                    Op::Neg { d } => map!(d, |x: f64| -x),
                    Op::Sqrt { d } => map!(d, |x: f64| x.abs().sqrt()),
                    Op::Abs { d } => map!(d, |x: f64| x.abs()),
                    Op::Add { d } => bin!(d, |a, b| a + b),
                    Op::Sub { d } => bin!(d, |a, b| a - b),
                    Op::Mul { d } => bin!(d, |a, b| a * b),
                    Op::Div { d } => {
                        bin!(d, |a, b: f64| if b.abs() < 1e-300 { a } else { a / b })
                    }
                    Op::Max { d } => bin!(d, |a: f64, b: f64| a.max(b)),
                    Op::Min { d } => bin!(d, |a: f64, b: f64| a.min(b)),
                    Op::Intrinsic { d, scale, bias } => map!(d, |x: f64| scale * x + bias),
                    Op::ReadAdd { d, w, .. } => read!(d, w, |x, m| x + m),
                    Op::ReadSub { d, w, .. } => read!(d, w, |x, m| x - m),
                    Op::ReadMul { d, w, .. } => read!(d, w, |x, m| x * m),
                    Op::ReadMax { d, w, .. } => read!(d, w, |x: f64, m: f64| x.max(m)),
                    Op::ReadMin { d, w, .. } => read!(d, w, |x: f64, m: f64| x.min(m)),
                    Op::ConstAdd { d, v } => map!(d, |x: f64| x + v),
                    Op::ConstSub { d, v } => map!(d, |x: f64| x - v),
                    Op::ConstMul { d, v } => map!(d, |x: f64| x * v),
                    Op::ConstDiv { d, v } => map!(d, |x: f64| x / v),
                    Op::ConstMax { d, v } => map!(d, |x: f64| x.max(v)),
                    Op::ConstMin { d, v } => map!(d, |x: f64| x.min(v)),
                    // Statement op ranges never contain flat-tape stores.
                    Op::Store { .. } => unreachable!("Store inside a statement tape"),
                }
            }
        }
        // Store phase: commit row 0 ascending — the original iteration
        // order of this statement's stores.
        let sd = stride_of(s.walker);
        let mut pd = self.ex.wk[s.walker as usize].cur;
        let mem = &mut *self.ex.mem;
        let r0 = &self.vregs[..n];
        match s.reduce {
            None => {
                for &v in r0 {
                    mem[pd as usize / ELEM_BYTES] = v;
                    pd += sd;
                }
            }
            Some(rop) => {
                for &v in r0 {
                    let e = pd as usize / ELEM_BYTES;
                    let old = mem[e];
                    mem[e] = match rop {
                        ReduceOp::Sum => old + v,
                        ReduceOp::Max => old.max(v),
                        ReduceOp::Min => old.min(v),
                    };
                    pd += sd;
                }
            }
        }
    }

    /// Iteration-major quiet compute of one statement instance: identical
    /// arithmetic to the exact path, no events (the batch already carries
    /// them) and no accounting (charged in bulk).
    fn compute_one(&mut self, si: u32) {
        let cp = self.ex.cp;
        let plan = self.plan;
        let s = cp.stmts[si as usize];
        let mut ns = NullSink;
        let rhs = match plan.vstmts[si as usize] {
            VInst::Fill { v } => v,
            VInst::Copy { a } => self.read_quiet(a),
            VInst::BinRR { a, b, op } => {
                let x = self.read_quiet(a);
                let y = self.read_quiet(b);
                op.apply(x, y)
            }
            VInst::BinRC { a, v, op } => op.apply(self.read_quiet(a), v),
            VInst::Chain { ws, kind } => {
                let list = &plan.chain_ws[ws.0 as usize..ws.1 as usize];
                self.chain_value::<false, NullSink>(list, kind, s.id, &mut ns)
            }
            VInst::Micro => {
                self.ex.exec_ops::<false, false, NullSink>(s.ops, &mut ns);
                self.ex.regs[0]
            }
        };
        self.ex.regs[0] = rhs;
        self.ex.store_tail::<false, false, NullSink>(s, &mut ns);
    }

    #[inline(always)]
    fn read_quiet(&mut self, w: u32) -> f64 {
        self.ex.mem[self.ex.wk[w as usize].cur as usize / ELEM_BYTES]
    }

    /// Evaluates a read-sum chain; `EMIT` selects per-event emission (the
    /// exact path) versus quiet reads (the strip-compute path).
    #[inline(always)]
    fn chain_value<const EMIT: bool, S: TraceSink>(
        &mut self,
        list: &[u32],
        kind: ChainKind,
        stmt: StmtId,
        sink: &mut S,
    ) -> f64 {
        let mut i = 0;
        let mut acc = match kind {
            ChainKind::Intrinsic { .. } => 0.0,
            _ => {
                i = 1;
                self.ex.traced_read::<EMIT, EMIT, S>(list[0], stmt, sink)
            }
        };
        for &w in &list[i..] {
            acc += self.ex.traced_read::<EMIT, EMIT, S>(w, stmt, sink);
        }
        match kind {
            ChainKind::Intrinsic { scale, bias } => scale * acc + bias,
            ChainKind::PreMul { c } => c * acc,
            ChainKind::Post { v, op } => op.apply(acc, v),
            ChainKind::Sum => acc,
        }
    }

    /// Exact-path statement execution: superinstruction dispatch with
    /// per-event emission and per-access accounting — event-for-event
    /// identical to the tape's per-op path.
    fn exec_stmt<S: TraceSink>(&mut self, si: u32, sink: &mut S) -> Result<(), GcrError> {
        self.ex.spend()?;
        let cp = self.ex.cp;
        let plan = self.plan;
        let s = cp.stmts[si as usize];
        let rhs = match plan.vstmts[si as usize] {
            VInst::Fill { v } => v,
            VInst::Copy { a } => self.ex.traced_read::<true, true, S>(a, s.id, sink),
            VInst::BinRR { a, b, op } => {
                let x = self.ex.traced_read::<true, true, S>(a, s.id, sink);
                let y = self.ex.traced_read::<true, true, S>(b, s.id, sink);
                op.apply(x, y)
            }
            VInst::BinRC { a, v, op } => {
                op.apply(self.ex.traced_read::<true, true, S>(a, s.id, sink), v)
            }
            VInst::Chain { ws, kind } => {
                let list = &plan.chain_ws[ws.0 as usize..ws.1 as usize];
                self.chain_value::<true, S>(list, kind, s.id, sink)
            }
            VInst::Micro => {
                self.ex.exec_ops::<true, true, S>(s.ops, sink);
                self.ex.regs[0]
            }
        };
        self.ex.regs[0] = rhs;
        self.ex.store_tail::<true, true, S>(s, sink);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::machine::Machine;
    use gcr_ir::ParamBinding;

    fn plan_of(src: &str, n: i64) -> (VmPlan, CompiledProgram) {
        let prog = gcr_frontend::parse(src).unwrap();
        let bind = ParamBinding::new(vec![n; prog.params.len()]);
        let layout = DataLayout::column_major(&prog, &bind, 0);
        let cp = crate::compile::compile(&prog, &bind, &layout)
            .expect("test program must be in the compiler's domain");
        (VmPlan::build(&cp), cp)
    }

    #[test]
    fn stencil_selects_chain_superinstruction() {
        let (plan, _) = plan_of(
            "
program s
param N
array A[N], B[N]
for i = 2, N - 1 { B[i] = A[i-1] + A[i] + A[i+1] }
",
            16,
        );
        assert_eq!(plan.vstmts.len(), 1);
        assert!(
            matches!(plan.vstmts[0], VInst::Chain { kind: ChainKind::Sum, ws } if ws.1 - ws.0 == 3),
            "3-point stencil must fuse to one read-sum chain: {:?}",
            plan.vstmts[0]
        );
        assert_eq!(plan.strip_count(), 1, "guard-free inner loop must get a strip plan");
        assert_eq!(plan.superinstruction_count(), 1);
    }

    #[test]
    fn intrinsic_call_selects_intrinsic_chain() {
        let (plan, _) = plan_of(
            "
program s
param N
array A[N], B[N]
for i = 2, N - 1 { B[i] = f(A[i-1], A[i], A[i+1]) }
",
            16,
        );
        assert!(
            matches!(
                plan.vstmts[0],
                VInst::Chain { kind: ChainKind::Intrinsic { .. }, ws } if ws.1 - ws.0 == 3
            ),
            "intrinsic call must fuse to one chain: {:?}",
            plan.vstmts[0]
        );
    }

    #[test]
    fn mmul_inner_selects_fused_multiply() {
        let (plan, cp) = plan_of(
            "
program mmul
param N
array A[N, N], B[N, N], C[N, N]
for i = 1, N { for j = 1, N { for k = 1, N {
  C[j, i] sum= A[j, k] * B[k, i]
} } }
",
            8,
        );
        assert!(
            matches!(plan.vstmts[0], VInst::BinRR { op: VBin::Mul, .. }),
            "mmul inner product must fuse to one load-load-mul opcode: {:?}",
            plan.vstmts[0]
        );
        assert!(cp.stmts[0].reduce.is_some(), "sum= must lower to a reduction store");
        assert!(plan.strip_count() >= 1);
    }

    #[test]
    fn copy_and_fill_select_single_opcodes() {
        let (plan, _) = plan_of(
            "
program s
param N
array A[N], B[N]
for i = 1, N { A[i] = 0.0 }
for i = 1, N { B[i] = A[i] }
",
            16,
        );
        assert!(matches!(plan.vstmts[0], VInst::Fill { .. }), "{:?}", plan.vstmts[0]);
        assert!(matches!(plan.vstmts[1], VInst::Copy { .. }), "{:?}", plan.vstmts[1]);
        assert_eq!(plan.superinstruction_count(), 2);
    }

    #[test]
    fn loop_carried_write_disables_statement_major_only_when_it_must() {
        // Two statements where s2 reads what s1 wrote one iteration ago:
        // statement-major sweeping would let s1 run the whole strip before
        // s2 sees any of it — which is exactly what the dependence check
        // must reject. Same-iteration flow (distance 0) is fine.
        let (plan, _) = plan_of(
            "
program dep
param N
array A[N], B[N], C[N]
for i = 2, N { B[i] = A[i] + A[i]
               C[i] = B[i-1] + A[i] }
",
            16,
        );
        let strip = plan.strips.iter().flatten().next().expect("flat segment must plan a strip");
        assert!(
            !strip.stmt_major,
            "cross-statement distance-1 dependence must force iteration-major compute"
        );
        // Independent outputs: statement-major is safe and must be kept.
        let (plan2, _) = plan_of(
            "
program indep
param N
array A[N], B[N], C[N]
for i = 2, N { B[i] = A[i] + A[i]
               C[i] = A[i-1] + A[i] }
",
            16,
        );
        let strip2 = plan2.strips.iter().flatten().next().unwrap();
        assert!(strip2.stmt_major, "independent statements must sweep statement-major");
    }

    #[test]
    fn constant_trip_inner_loop_unrolls_into_parent_strip() {
        // The SP shape: a 5-trip guard-free inner loop under a long flat
        // parent. The planner must unroll the `m` instances into one wide
        // parent strip instead of running 5-iteration strips per parent
        // iteration.
        let src = "
program unroll
param N
array U[5, N], R[5, N]
for i = 2, N - 1 { for m = 1, 5 { R[m, i] = U[m, i-1] + U[m, i+1] } }
";
        let (plan, _) = plan_of(src, 24);
        let strip = plan
            .strips
            .iter()
            .flatten()
            .find(|s| s.unrolled)
            .expect("constant-trip inner loop must unroll into the parent strip");
        assert!(strip.stmt_major, "unrolled strips are admitted statement-major only");
        assert_eq!(
            strip.items.1 - strip.items.0,
            10,
            "5 unrolled instances, each with its prime step"
        );
        // Per parent iteration the interpreter charges 1 for the parent
        // item plus, per inner iteration, 1 for the loop step and 1 for
        // the statement: 1 + 5 × 2.
        assert_eq!(strip.iter_fuel, 11);
        assert_eq!(strip.iter_instances, 5);
        // And the unrolled execution must stay observationally exact.
        let prog = gcr_frontend::parse(src).unwrap();
        let bind = ParamBinding::new(vec![24]);
        let run = |engine: crate::machine::ExecEngine| {
            let mut m = Machine::new(&prog, bind.clone()).with_engine(engine);
            let mut sink = crate::machine::CountingSink::default();
            m.run(&mut sink);
            (sink.reads, sink.writes, m.stats(), m.checksum().to_bits())
        };
        assert_eq!(run(crate::machine::ExecEngine::Interp), run(crate::machine::ExecEngine::Vm));

        // A same-instance recurrence (R[m, i-1]) is still safe: each
        // unrolled instance's kernel ascends in `i` with a fused
        // read-compute-write loop, which is that instance's original
        // order. But a *cross-instance* dependence at nonzero strip
        // distance — instance m reading what instance m+1 wrote one `i`
        // ago — would be reordered by the statement-major sweep, so the
        // parent must not unroll; the inner loop keeps its own short
        // exact strips.
        let (plan2, _) = plan_of(
            "
program rec
param N
array U[5, N], R[5, N]
for i = 2, N - 1 { for m = 1, 4 { R[m, i] = R[m + 1, i - 1] + U[m, i] } }
",
            24,
        );
        assert!(
            plan2.strips.iter().flatten().all(|s| !s.unrolled),
            "cross-instance strip-carried dependence must reject unrolling"
        );
    }

    #[test]
    fn vm_runs_mmul_identically_to_interpreter() {
        let src = "
program mmul
param N
array A[N, N], B[N, N], C[N, N]
for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i]) } }
for i = 1, N { for j = 1, N { for k = 1, N {
  C[j, i] sum= A[j, k] * B[k, i]
} } }
";
        let prog = gcr_frontend::parse(src).unwrap();
        let bind = ParamBinding::new(vec![9]);
        let run = |engine: crate::machine::ExecEngine| {
            let mut m = Machine::new(&prog, bind.clone()).with_engine(engine);
            let mut sink = crate::machine::CountingSink::default();
            m.run(&mut sink);
            (sink.reads, sink.writes, m.stats(), m.checksum().to_bits())
        };
        let a = run(crate::machine::ExecEngine::Interp);
        let b = run(crate::machine::ExecEngine::Vm);
        assert_eq!(a, b);
    }
}
