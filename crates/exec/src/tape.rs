//! The compiled execution engine: flat instruction tapes, affine address
//! walkers, and guard-resolved iteration segments.
//!
//! The tree-walking interpreter in [`crate::machine`] pays three taxes per
//! dynamic statement instance: recursive `Expr` dispatch, a fresh
//! `base + Σ stride·(i−1)` multiply chain per array access, and a guard
//! check per member per iteration. All three are static properties of a
//! `(Program, ParamBinding, DataLayout)` triple, so [`mod@crate::compile`]
//! lowers them away once:
//!
//! * every assignment's right-hand side becomes a linear `Op` tape over a
//!   small register file — destination registers are the expression-tree
//!   depths, assigned at lowering time, so evaluation is a single loop with
//!   no runtime stack. Leaf-then-combine pairs are fused into single
//!   superinstructions (`Op::ReadAdd`, `Op::ConstMul`, …), halving the
//!   dispatch count on stencil right-hand sides without reordering any
//!   floating-point operation;
//! * every static array reference becomes a `Walker`: an affine address
//!   re-based at loop entry and advanced by a constant byte stride per
//!   iteration, replacing the subscript multiply chain in `locate()`;
//! * every loop body is split into `Segment`s — maximal sub-intervals of
//!   the iteration range on which the *set* of guard-active members is
//!   constant — so the per-iteration loop runs guard-check-free (the
//!   compile-time analogue of the paper's boundary splitting). Segments
//!   whose members are all unconditional statements additionally get a
//!   *flat tape*: the statements' ops concatenated with `Op::Store`
//!   terminators, so one iteration is a single op-dispatch loop. Because a
//!   flat segment's fuel and statistics per iteration are compile-time
//!   constants, the executor charges them in bulk up front — the fast path
//!   is only taken when the fuel budget provably cannot run out inside the
//!   segment, so per-instance accounting is unobservable.
//!
//! The engine is observationally identical to the interpreter: same
//! [`AccessEvent`] stream (order and fields), bit-identical `f64` memory
//! image (same FP evaluation order, including the division guard and the
//! intrinsic call lowering), same [`ExecStats`], and the same fuel
//! accounting — one unit per loop iteration plus one per assignment
//! instance, spent in the same order. Segments in which no member can run
//! spend their fuel in bulk, which is indistinguishable from per-iteration
//! spending because empty iterations emit no events.

use crate::layout::ELEM_BYTES;
use crate::machine::{AccessEvent, ExecStats, TraceSink};
use gcr_ir::{ArrayId, GcrError, ReduceOp, RefId, Resource, StmtId};

/// One register-machine instruction. `d` is the destination register,
/// assigned at lowering time from the expression-tree depth. Binary ops
/// combine `regs[d]` (left operand) with `regs[d+1]` (right operand) into
/// `regs[d]`; unary ops, the fused leaf-combine ops, and the intrinsic
/// update `regs[d]` in place.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// `regs[d] = v` (literal constants and folded `Lin` expressions).
    Const { d: u16, v: f64 },
    /// `regs[d] = (vars[slot] + offset) as f64`.
    Var { d: u16, slot: u16, offset: i64 },
    /// Traced array read through walker `w`: emits the access event, then
    /// `regs[d] = mem[addr/8]`.
    Read { d: u16, w: u32, stmt: StmtId },
    /// Untraced (scalar) read through walker `w`.
    ReadScalar { d: u16, w: u32 },
    /// `regs[d] = -regs[d]`.
    Neg { d: u16 },
    /// `regs[d] = regs[d].abs().sqrt()` (the interpreter's total sqrt).
    Sqrt { d: u16 },
    /// `regs[d] = regs[d].abs()`.
    Abs { d: u16 },
    /// `regs[d] = regs[d] + regs[d+1]`.
    Add { d: u16 },
    /// `regs[d] = regs[d] - regs[d+1]`.
    Sub { d: u16 },
    /// `regs[d] = regs[d] * regs[d+1]`.
    Mul { d: u16 },
    /// Guarded division: `regs[d]` unchanged when `|regs[d+1]| < 1e-300`.
    Div { d: u16 },
    /// `regs[d] = regs[d].max(regs[d+1])`.
    Max { d: u16 },
    /// `regs[d] = regs[d].min(regs[d+1])`.
    Min { d: u16 },
    /// `regs[d] = scale * regs[d] + bias` (intrinsic call, argument sum
    /// already accumulated in `regs[d]` by the lowering).
    Intrinsic { d: u16, scale: f64, bias: f64 },
    /// Fused traced read + combine: `regs[d] = regs[d] + read(w)`.
    ReadAdd { d: u16, w: u32, stmt: StmtId },
    /// `regs[d] = regs[d] - read(w)`.
    ReadSub { d: u16, w: u32, stmt: StmtId },
    /// `regs[d] = regs[d] * read(w)`.
    ReadMul { d: u16, w: u32, stmt: StmtId },
    /// `regs[d] = regs[d].max(read(w))`.
    ReadMax { d: u16, w: u32, stmt: StmtId },
    /// `regs[d] = regs[d].min(read(w))`.
    ReadMin { d: u16, w: u32, stmt: StmtId },
    /// Fused constant combine: `regs[d] = regs[d] + v`.
    ConstAdd { d: u16, v: f64 },
    /// `regs[d] = regs[d] - v`.
    ConstSub { d: u16, v: f64 },
    /// `regs[d] = regs[d] * v`.
    ConstMul { d: u16, v: f64 },
    /// `regs[d] = regs[d] / v` — emitted only when `|v| >= 1e-300`, so the
    /// interpreter's division guard is resolved at compile time.
    ConstDiv { d: u16, v: f64 },
    /// `regs[d] = regs[d].max(v)`.
    ConstMax { d: u16, v: f64 },
    /// `regs[d] = regs[d].min(v)`.
    ConstMin { d: u16, v: f64 },
    /// Flat-tape statement terminator: performs statement `si`'s store
    /// (reduce read, memory write, write event, `end_instance`) with no
    /// fuel or statistics updates — the flat path accounts those in bulk.
    Store { si: u32 },
}

/// Affine address walker for one static array reference. The byte address
/// is `konst + Σ stride·vars[slot]`, computed once at loop entry (priming)
/// and advanced incrementally by the innermost loop's stride afterwards.
#[derive(Clone, Debug)]
pub(crate) struct Walker {
    /// Layout base plus all invariant-subscript and offset contributions.
    pub konst: i64,
    /// `(loop-variable slot, byte stride)` terms, duplicates merged.
    pub terms: Vec<(u16, i64)>,
}

/// Event metadata of one walker, split from `Walker` so the per-access
/// hot path loads a compact struct instead of a `Vec`-bearing one.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EvMeta {
    /// Array accessed (reported in events).
    pub array: ArrayId,
    /// Static reference id (reported in events).
    pub ref_id: RefId,
}

/// Per-walker run-time state: the current byte address packed next to the
/// event metadata, so one bounds check and one cache line serve both.
/// Shared with the VM engine, whose walker semantics are identical.
#[derive(Clone, Copy)]
pub(crate) struct WState {
    pub(crate) cur: i64,
    pub(crate) array: ArrayId,
    pub(crate) ref_id: RefId,
}

/// Register-file size. Expression depth is bounded by this at compile
/// time; the executor masks indices with `REG_MASK`, which removes every
/// register bounds check without changing any in-domain behaviour.
pub(crate) const MAX_REGS: usize = 32;
pub(crate) const REG_MASK: usize = MAX_REGS - 1;

/// One compiled assignment statement.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CStmt {
    /// Right-hand-side tape: `ops[start..end]`, result in `regs[0]`.
    pub ops: (u32, u32),
    /// Walker of the left-hand-side reference.
    pub walker: u32,
    /// False for scalar targets (not traced).
    pub traced: bool,
    /// `Some` for reductions (which read their target first).
    pub reduce: Option<ReduceOp>,
    /// Static statement id (reported in events).
    pub id: StmtId,
    /// Flop count charged per instance (rhs ops + 1 for the store).
    pub flops: u32,
}

/// What a segment item executes.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ItemKind {
    /// Index into [`CompiledProgram::stmts`].
    Stmt(u32),
    /// Index into [`CompiledProgram::loops`].
    Loop(u32),
}

/// One member of a segment, in source order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Item {
    /// Statement or nested loop.
    pub kind: ItemKind,
    /// Outer-condition bit; item is skipped when `req & inactive != 0`.
    /// Zero for unconditional members.
    pub req: u64,
}

/// A maximal sub-interval of a loop's range on which the set of
/// guard-active members is constant.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Segment {
    /// First iteration (inclusive).
    pub lo: i64,
    /// Last iteration (inclusive).
    pub hi: i64,
    /// Members active on this interval: `items[start..end]`.
    pub items: (u32, u32),
    /// Walkers to re-base at segment entry: `prime_list[start..end]`.
    pub prime: (u32, u32),
    /// Per-iteration walker increments: `advance_list[start..end]`.
    pub advance: (u32, u32),
    /// Flat tape (`ops[start..end]`) when every item is an unconditional
    /// statement; `None` keeps the item-walking path.
    pub flat: Option<(u32, u32)>,
    /// Fuel per iteration of the flat tape: 1 + statement count.
    pub iter_fuel: u64,
    /// Statistic deltas per iteration of the flat tape.
    pub iter_instances: u64,
    /// Flops per iteration.
    pub iter_flops: u64,
    /// Traced reads per iteration.
    pub iter_reads: u64,
    /// Traced writes per iteration.
    pub iter_writes: u64,
}

/// One compiled loop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CLoop {
    /// Loop-variable slot.
    pub var: u16,
    /// Guard-resolved iteration segments: `segments[start..end]`. Together
    /// they cover the full `lo..=hi` range exactly.
    pub segments: (u32, u32),
    /// Outer-condition checks evaluated at loop entry: `checks[start..end]`.
    pub checks: (u32, u32),
}

/// One outer-variable condition, evaluated once at loop entry. A failing
/// check sets `bit` in the loop's inactive mask.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OuterCheck {
    /// Mask bit of the member this check belongs to.
    pub bit: u64,
    /// Enclosing loop-variable slot to test.
    pub slot: u16,
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

/// A program lowered once against a `(ParamBinding, DataLayout)` pair.
///
/// Produced by [`crate::compile::compile`]; executed by
/// [`crate::machine::Machine`] when its engine is
/// [`crate::machine::ExecEngine::Compiled`]. All loop bounds, guard
/// intervals, and address strides are resolved to constants; only loop
/// variables and the register file exist at run time.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    pub(crate) ops: Vec<Op>,
    pub(crate) stmts: Vec<CStmt>,
    pub(crate) walkers: Vec<Walker>,
    pub(crate) ev: Vec<EvMeta>,
    pub(crate) items: Vec<Item>,
    pub(crate) segments: Vec<Segment>,
    pub(crate) loops: Vec<CLoop>,
    pub(crate) checks: Vec<OuterCheck>,
    pub(crate) prime_list: Vec<u32>,
    pub(crate) advance_list: Vec<(u32, i64)>,
    pub(crate) top_items: (u32, u32),
    pub(crate) top_prime: (u32, u32),
    pub(crate) max_regs: usize,
}

impl CompiledProgram {
    /// Number of tape instructions (statement tapes plus flat segment
    /// tapes).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of address walkers (static array references).
    pub fn walker_count(&self) -> usize {
        self.walkers.len()
    }

    /// Number of guard-resolved iteration segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Executes the body `steps` times against `mem`/`vars`, sharing one
    /// fuel budget, streaming accesses to `sink`. Mirrors the
    /// interpreter's `run_fueled` observably.
    pub(crate) fn run<S: TraceSink>(
        &self,
        mem: &mut [f64],
        vars: &mut [i64],
        stats: &mut ExecStats,
        sink: &mut S,
        steps: usize,
        fuel: u64,
    ) -> Result<(), GcrError> {
        let mut ex = Exec::new(self, mem, vars, fuel);
        let mut result = Ok(());
        for _ in 0..steps {
            ex.prime(self.top_prime);
            if let Err(e) = ex.run_items(self.top_items, 0, sink) {
                result = Err(e);
                break;
            }
        }
        ex.flush_stats(stats);
        result
    }
}

/// Run-time state of one compiled execution. Statistics are owned
/// counters, flushed to the machine's [`ExecStats`] when the run ends.
/// Shared with the VM engine ([`crate::vm`]), whose executor wraps this
/// state and reuses the op interpreter, the walkers, and the fuel
/// accounting.
pub(crate) struct Exec<'a> {
    pub(crate) cp: &'a CompiledProgram,
    pub(crate) mem: &'a mut [f64],
    pub(crate) vars: &'a mut [i64],
    /// Register file (expression scratch).
    pub(crate) regs: [f64; MAX_REGS],
    /// Per-walker state: current byte address plus event metadata.
    pub(crate) wk: Vec<WState>,
    pub(crate) instances: u64,
    pub(crate) flops: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) fuel: u64,
    pub(crate) fuel_limit: u64,
}

impl<'a> Exec<'a> {
    /// Fresh execution state over a compiled program.
    pub(crate) fn new(
        cp: &'a CompiledProgram,
        mem: &'a mut [f64],
        vars: &'a mut [i64],
        fuel: u64,
    ) -> Self {
        Exec {
            cp,
            mem,
            vars,
            regs: [0.0; MAX_REGS],
            wk: cp.ev.iter().map(|m| WState { cur: 0, array: m.array, ref_id: m.ref_id }).collect(),
            instances: 0,
            flops: 0,
            reads: 0,
            writes: 0,
            fuel,
            fuel_limit: fuel,
        }
    }

    /// Flushes the owned counters into `stats`. Counters live in registers
    /// during the run; flush even on a fuel error so partial-run statistics
    /// match the interpreter's.
    pub(crate) fn flush_stats(&self, stats: &mut ExecStats) {
        stats.instances += self.instances;
        stats.flops += self.flops;
        stats.reads += self.reads;
        stats.writes += self.writes;
    }

    #[inline]
    fn out_of_fuel(&self) -> GcrError {
        GcrError::BudgetExceeded { resource: Resource::InterpreterFuel, limit: self.fuel_limit }
    }

    /// Spends one fuel unit (same accounting as the interpreter).
    #[inline]
    pub(crate) fn spend(&mut self) -> Result<(), GcrError> {
        if self.fuel == 0 {
            return Err(self.out_of_fuel());
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Spends `n` units at once for iterations that execute nothing.
    /// Observably identical to `n` single spends: no events separate them,
    /// and exhaustion anywhere inside the run produces the same error.
    #[inline]
    pub(crate) fn spend_bulk(&mut self, n: u64) -> Result<(), GcrError> {
        if self.fuel < n {
            return Err(self.out_of_fuel());
        }
        self.fuel -= n;
        Ok(())
    }

    /// Re-bases a range of walkers from the current loop variables.
    pub(crate) fn prime(&mut self, range: (u32, u32)) {
        let cp = self.cp;
        for &w in &cp.prime_list[range.0 as usize..range.1 as usize] {
            let info = &cp.walkers[w as usize];
            let mut addr = info.konst;
            for &(slot, stride) in &info.terms {
                addr += stride * self.vars[slot as usize];
            }
            self.wk[w as usize].cur = addr;
        }
    }

    fn run_items<S: TraceSink>(
        &mut self,
        range: (u32, u32),
        inactive: u64,
        sink: &mut S,
    ) -> Result<(), GcrError> {
        let cp = self.cp;
        for it in &cp.items[range.0 as usize..range.1 as usize] {
            if it.req & inactive != 0 {
                continue;
            }
            match it.kind {
                ItemKind::Stmt(si) => self.exec_stmt(si, sink)?,
                ItemKind::Loop(li) => self.run_loop(li, sink)?,
            }
        }
        Ok(())
    }

    fn run_loop<S: TraceSink>(&mut self, li: u32, sink: &mut S) -> Result<(), GcrError> {
        let cp = self.cp;
        let l = &cp.loops[li as usize];
        // Outer conditions are loop-invariant: evaluate once into a mask,
        // at the same point the interpreter evaluates its guard vector.
        let mut inactive = 0u64;
        for c in &cp.checks[l.checks.0 as usize..l.checks.1 as usize] {
            let v = self.vars[c.slot as usize];
            if v < c.lo || v > c.hi {
                inactive |= c.bit;
            }
        }
        for s in l.segments.0..l.segments.1 {
            let seg = &cp.segments[s as usize];
            // Fast path: a flat tape whose per-iteration fuel and stats
            // are static, and enough fuel that exhaustion inside the
            // segment is impossible — charge everything up front and run
            // the iterations with no accounting at all.
            if let Some(fr) = seg.flat {
                let trips = (seg.hi - seg.lo + 1) as u64;
                let cost = trips * seg.iter_fuel;
                if self.fuel >= cost {
                    self.fuel -= cost;
                    self.instances += trips * seg.iter_instances;
                    self.flops += trips * seg.iter_flops;
                    self.reads += trips * seg.iter_reads;
                    self.writes += trips * seg.iter_writes;
                    self.vars[l.var as usize] = seg.lo;
                    self.prime(seg.prime);
                    let advance = &cp.advance_list[seg.advance.0 as usize..seg.advance.1 as usize];
                    for t in seg.lo..=seg.hi {
                        self.vars[l.var as usize] = t;
                        self.exec_ops::<false, true, S>(fr, sink);
                        for &(w, stride) in advance {
                            self.wk[w as usize].cur += stride;
                        }
                    }
                    continue;
                }
            }
            let items = &cp.items[seg.items.0 as usize..seg.items.1 as usize];
            if !items.iter().any(|it| it.req & inactive == 0) {
                // Nothing can run here: charge the loop-iteration fuel and
                // move on without touching walkers or variables.
                self.spend_bulk((seg.hi - seg.lo + 1) as u64)?;
                continue;
            }
            self.vars[l.var as usize] = seg.lo;
            self.prime(seg.prime);
            let advance = &cp.advance_list[seg.advance.0 as usize..seg.advance.1 as usize];
            for t in seg.lo..=seg.hi {
                self.spend()?;
                self.vars[l.var as usize] = t;
                self.run_items(seg.items, inactive, sink)?;
                for &(w, stride) in advance {
                    self.wk[w as usize].cur += stride;
                }
            }
        }
        Ok(())
    }

    /// Reads through walker `w` and returns the value. `COUNT` selects
    /// per-access statistics (the exact path); the flat path accounts
    /// statistics in bulk per segment. `EMIT` selects event emission —
    /// false on the VM's strip-compute pass, whose events are emitted
    /// separately in batches.
    #[inline(always)]
    pub(crate) fn traced_read<const COUNT: bool, const EMIT: bool, S: TraceSink>(
        &mut self,
        w: u32,
        stmt: StmtId,
        sink: &mut S,
    ) -> f64 {
        let st = self.wk[w as usize];
        if COUNT {
            self.reads += 1;
        }
        if EMIT {
            sink.access(AccessEvent {
                addr: st.cur as u64,
                array: st.array,
                ref_id: st.ref_id,
                stmt,
                is_write: false,
            });
        }
        self.mem[st.cur as usize / ELEM_BYTES]
    }

    /// Runs one op range. Infallible: fuel is spent by the callers
    /// (per-instance on the exact path, in bulk on the flat path).
    #[inline(always)]
    pub(crate) fn exec_ops<const COUNT: bool, const EMIT: bool, S: TraceSink>(
        &mut self,
        range: (u32, u32),
        sink: &mut S,
    ) {
        let cp = self.cp;
        for op in &cp.ops[range.0 as usize..range.1 as usize] {
            match *op {
                Op::Const { d, v } => self.regs[d as usize & REG_MASK] = v,
                Op::Var { d, slot, offset } => {
                    self.regs[d as usize & REG_MASK] = (self.vars[slot as usize] + offset) as f64;
                }
                Op::Read { d, w, stmt } => {
                    self.regs[d as usize & REG_MASK] =
                        self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                }
                Op::ReadScalar { d, w } => {
                    self.regs[d as usize & REG_MASK] =
                        self.mem[self.wk[w as usize].cur as usize / ELEM_BYTES];
                }
                Op::Neg { d } => {
                    self.regs[d as usize & REG_MASK] = -self.regs[d as usize & REG_MASK]
                }
                Op::Sqrt { d } => {
                    self.regs[d as usize & REG_MASK] =
                        self.regs[d as usize & REG_MASK].abs().sqrt();
                }
                Op::Abs { d } => {
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK].abs()
                }
                Op::Add { d } => {
                    self.regs[d as usize & REG_MASK] += self.regs[(d as usize + 1) & REG_MASK];
                }
                Op::Sub { d } => {
                    self.regs[d as usize & REG_MASK] -= self.regs[(d as usize + 1) & REG_MASK];
                }
                Op::Mul { d } => {
                    self.regs[d as usize & REG_MASK] *= self.regs[(d as usize + 1) & REG_MASK];
                }
                Op::Div { d } => {
                    // Mirrors the interpreter's guard exactly, including
                    // its NaN behaviour (`NaN.abs() < 1e-300` is false, so
                    // a NaN divisor divides).
                    let a = self.regs[d as usize & REG_MASK];
                    let b = self.regs[(d as usize + 1) & REG_MASK];
                    self.regs[d as usize & REG_MASK] = if b.abs() < 1e-300 { a } else { a / b };
                }
                Op::Max { d } => {
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK]
                        .max(self.regs[(d as usize + 1) & REG_MASK]);
                }
                Op::Min { d } => {
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK]
                        .min(self.regs[(d as usize + 1) & REG_MASK]);
                }
                Op::Intrinsic { d, scale, bias } => {
                    self.regs[d as usize & REG_MASK] =
                        scale * self.regs[d as usize & REG_MASK] + bias;
                }
                Op::ReadAdd { d, w, stmt } => {
                    self.regs[d as usize & REG_MASK] +=
                        self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                }
                Op::ReadSub { d, w, stmt } => {
                    self.regs[d as usize & REG_MASK] -=
                        self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                }
                Op::ReadMul { d, w, stmt } => {
                    self.regs[d as usize & REG_MASK] *=
                        self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                }
                Op::ReadMax { d, w, stmt } => {
                    let v = self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK].max(v);
                }
                Op::ReadMin { d, w, stmt } => {
                    let v = self.traced_read::<COUNT, EMIT, S>(w, stmt, sink);
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK].min(v);
                }
                Op::ConstAdd { d, v } => self.regs[d as usize & REG_MASK] += v,
                Op::ConstSub { d, v } => self.regs[d as usize & REG_MASK] -= v,
                Op::ConstMul { d, v } => self.regs[d as usize & REG_MASK] *= v,
                Op::ConstDiv { d, v } => self.regs[d as usize & REG_MASK] /= v,
                Op::ConstMax { d, v } => {
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK].max(v);
                }
                Op::ConstMin { d, v } => {
                    self.regs[d as usize & REG_MASK] = self.regs[d as usize & REG_MASK].min(v);
                }
                Op::Store { si } => {
                    let s = cp.stmts[si as usize];
                    self.store_tail::<COUNT, EMIT, S>(s, sink);
                }
            }
        }
    }

    /// The store sequence of one statement instance: reduce read, memory
    /// write, write event, `end_instance` — in the interpreter's exact
    /// order. `COUNT` selects per-access statistics; `EMIT` selects event
    /// and instance-boundary emission (false on the VM's strip-compute
    /// pass, whose events and boundaries are emitted in batches).
    #[inline(always)]
    pub(crate) fn store_tail<const COUNT: bool, const EMIT: bool, S: TraceSink>(
        &mut self,
        s: CStmt,
        sink: &mut S,
    ) {
        let rhs = self.regs[0];
        let st = self.wk[s.walker as usize];
        let addr = st.cur;
        let elem = addr as usize / ELEM_BYTES;
        let value = match s.reduce {
            None => rhs,
            Some(op) => {
                // The reduction reads its target first, as the interpreter
                // does (event before the combine, write event after).
                if s.traced {
                    if COUNT {
                        self.reads += 1;
                    }
                    if EMIT {
                        sink.access(AccessEvent {
                            addr: addr as u64,
                            array: st.array,
                            ref_id: st.ref_id,
                            stmt: s.id,
                            is_write: false,
                        });
                    }
                }
                let old = self.mem[elem];
                match op {
                    ReduceOp::Sum => old + rhs,
                    ReduceOp::Max => old.max(rhs),
                    ReduceOp::Min => old.min(rhs),
                }
            }
        };
        self.mem[elem] = value;
        if s.traced {
            if COUNT {
                self.writes += 1;
            }
            if EMIT {
                sink.access(AccessEvent {
                    addr: addr as u64,
                    array: st.array,
                    ref_id: st.ref_id,
                    stmt: s.id,
                    is_write: true,
                });
            }
        }
        if COUNT {
            self.instances += 1;
            self.flops += u64::from(s.flops);
        }
        if EMIT {
            sink.end_instance(s.id);
        }
    }

    fn exec_stmt<S: TraceSink>(&mut self, si: u32, sink: &mut S) -> Result<(), GcrError> {
        self.spend()?;
        let s = self.cp.stmts[si as usize];
        self.exec_ops::<true, true, S>(s.ops, sink);
        self.store_tail::<true, true, S>(s, sink);
        Ok(())
    }
}
