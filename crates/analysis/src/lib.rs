#![warn(missing_docs)]

//! `gcr-analysis` — data-footprint and dependence analysis.
//!
//! The paper (Section 4.1) summarizes "the data access of each loop by its
//! data footprint. For each dimension of an array, a data footprint records
//! whether the loop accesses the whole dimension, a number of elements on
//! the border, or a loop-variant section. Data dependence is tested by the
//! intersection of footprints. The range information is also used to
//! calculate the minimal alignment factor between loops."
//!
//! This crate provides exactly those pieces:
//!
//! * [`access`] — flattened array-access collection with read/write/reduce
//!   kinds;
//! * [`footprint`] — per-dimension access sets ([`footprint::DimSet`]) and
//!   conservative overlap tests under the "parameters are large" order;
//! * [`level`] — classification of references relative to one fusion level
//!   ([`level::LevelRef`]): *variant* (subscripted by the level variable) or
//!   *invariant* (border/constant), with active time ranges;
//! * [`align`] — pairwise dependence constraints on the alignment factor,
//!   the machinery behind the paper's `FusibleTest`;
//! * [`stats`] — static program statistics (Figure 9);
//! * [`summary`] — printable per-loop data-footprint records (Section 4.1).
//!
//! The usual entry point is [`stats::program_stats`]:
//!
//! ```
//! let prog = gcr_frontend::parse("
//! program demo
//! param N
//! array A[N], B[N]
//! for i = 1, N {
//!   A[i] = f(A[i])
//! }
//! for i = 1, N {
//!   B[i] = g(A[i], B[i])
//! }
//! ").unwrap();
//! let st = gcr_analysis::stats::program_stats(&prog);
//! assert_eq!((st.loops, st.nests, st.arrays), (2, 2, 2));
//! ```

pub mod access;
pub mod align;
pub mod bounds;
pub mod footprint;
pub mod graph;
pub mod level;
pub mod stats;
pub mod summary;

pub use access::{collect_accesses, AccessInfo, AccessKind};
pub use align::{pairwise_constraint, AlignConstraint};
pub use footprint::{var_ranges, DimSet, VarRanges};
pub use level::{classify_level_refs, LevelPos, LevelRef};
