//! Static array-bounds checking.
//!
//! Verifies, under the large-parameter order, that every subscript stays
//! within `1..=extent` given its enclosing loop ranges and guards. Used as
//! a compiler diagnostic (`gcrc --check`) and as a sanity oracle in tests:
//! a transformation that produced an out-of-bounds access would be caught
//! here before the interpreter trips on it.

use crate::footprint::VarRanges;
use gcr_ir::{GuardedStmt, LinExpr, Program, Range, Stmt, Subscript};
use std::cmp::Ordering;
use std::fmt;

/// One potential out-of-bounds access.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundsIssue {
    /// Array name.
    pub array: String,
    /// Dimension index (innermost = 0).
    pub dim: usize,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for BoundsIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[dim {}]: {}", self.array, self.dim, self.detail)
    }
}

/// Checks every access of the program. Conservative: reports an issue when
/// a bound violation is *provable* under the large-parameter order (it
/// stays silent on incomparable symbolic bounds).
pub fn check_bounds(prog: &Program) -> Vec<BoundsIssue> {
    let mut issues = Vec::new();
    let mut ranges = VarRanges::new();
    walk(prog, &prog.body, &mut ranges, None, &mut issues);
    issues
}

fn intersect(ranges: &mut VarRanges, var: gcr_ir::VarId, g: &Range) -> Option<Range> {
    let old = ranges.get(&var).cloned();
    if let Some(r) = &old {
        let lo = r.lo.max_large(&g.lo).unwrap_or_else(|| r.lo.clone());
        let hi = r.hi.min_large(&g.hi).unwrap_or_else(|| r.hi.clone());
        ranges.insert(var, Range::new(lo, hi));
    }
    old
}

fn walk(
    prog: &Program,
    stmts: &[GuardedStmt],
    ranges: &mut VarRanges,
    enclosing: Option<gcr_ir::VarId>,
    issues: &mut Vec<BoundsIssue>,
) {
    for gs in stmts {
        // This member's guards narrow the enclosing/outer variables for its
        // whole subtree.
        let mut saved: Vec<(gcr_ir::VarId, Option<Range>)> = Vec::new();
        if let (Some(encl), Some(g)) = (enclosing, &gs.guard) {
            saved.push((encl, intersect(ranges, encl, g)));
        }
        for (v, g) in &gs.outer {
            saved.push((*v, intersect(ranges, *v, g)));
        }
        match &gs.stmt {
            Stmt::Loop(l) => {
                // Member guards inside this loop narrow l.var when every
                // member is guarded.
                let range = effective_range(&l.range(), &l.body);
                ranges.insert(l.var, range);
                walk(prog, &l.body, ranges, Some(l.var), issues);
                ranges.remove(&l.var);
            }
            Stmt::Assign(a) => {
                let mut check = |r: &gcr_ir::ArrayRef| {
                    let decl = prog.array(r.array);
                    for (d, sub) in r.subs.iter().enumerate() {
                        let extent = &decl.dims[d];
                        let (lo, hi) = subscript_hull(sub, ranges);
                        if let Some(lo) = lo {
                            if matches!(
                                lo.cmp_for_large_params(&LinExpr::konst(1)),
                                Some(Ordering::Less)
                            ) {
                                issues.push(BoundsIssue {
                                    array: decl.name.clone(),
                                    dim: d,
                                    detail: format!("lower bound {lo:?} < 1"),
                                });
                            }
                        }
                        if let Some(hi) = hi {
                            if matches!(hi.cmp_for_large_params(extent), Some(Ordering::Greater)) {
                                issues.push(BoundsIssue {
                                    array: decl.name.clone(),
                                    dim: d,
                                    detail: format!("upper bound {hi:?} > extent {extent:?}"),
                                });
                            }
                        }
                    }
                };
                check(&a.lhs);
                a.rhs.visit_reads(&mut |r| check(r));
            }
        }
        // Restore narrowed ranges.
        for (v, old) in saved.into_iter().rev() {
            match old {
                Some(r) => {
                    ranges.insert(v, r);
                }
                None => {
                    ranges.remove(&v);
                }
            }
        }
    }
}

/// The hull of a subscript's values given the (guard-narrowed) variable
/// ranges.
fn subscript_hull(sub: &Subscript, ranges: &VarRanges) -> (Option<LinExpr>, Option<LinExpr>) {
    match sub {
        Subscript::Invariant(k) => (Some(k.clone()), Some(k.clone())),
        Subscript::Var { var, offset } => match ranges.get(var) {
            Some(r) => (Some(r.lo.add_const(*offset)), Some(r.hi.add_const(*offset))),
            None => (None, None),
        },
    }
}

/// Narrows a loop's range by the union of its members' guards when every
/// member is guarded (iterations outside all guards execute nothing).
fn effective_range(range: &Range, body: &[GuardedStmt]) -> Range {
    let mut lo: Option<LinExpr> = None;
    let mut hi: Option<LinExpr> = None;
    for gs in body {
        match &gs.guard {
            Some(g) => {
                lo = match lo {
                    None => Some(g.lo.clone()),
                    Some(l) => l.min_large(&g.lo),
                };
                hi = match hi {
                    None => Some(g.hi.clone()),
                    Some(h) => h.max_large(&g.hi),
                };
            }
            None => return range.clone(),
        }
        if lo.is_none() || hi.is_none() {
            return range.clone();
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => {
            let lo = l.max_large(&range.lo).unwrap_or_else(|| range.lo.clone());
            let hi = h.min_large(&range.hi).unwrap_or_else(|| range.hi.clone());
            Range::new(lo, hi)
        }
        _ => range.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_frontend::parse;

    #[test]
    fn in_bounds_program_is_clean() {
        let p = parse(
            "
program ok
param N
array A[N]
for i = 2, N - 1 {
  A[i] = f(A[i-1], A[i+1])
}
",
        )
        .unwrap();
        assert!(check_bounds(&p).is_empty());
    }

    #[test]
    fn detects_low_violation() {
        let p = parse(
            "
program bad
param N
array A[N]
for i = 1, N {
  A[i] = f(A[i-1])
}
",
        )
        .unwrap();
        let issues = check_bounds(&p);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].detail.contains("lower bound"), "{}", issues[0]);
    }

    #[test]
    fn detects_high_violation() {
        let p = parse(
            "
program bad
param N
array A[N, N]
for i = 1, N {
  for j = 1, N {
    A[j+1, i] = 0.0
  }
}
",
        )
        .unwrap();
        let issues = check_bounds(&p);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].detail.contains("upper bound"), "{}", issues[0]);
        assert_eq!(issues[0].dim, 0);
    }

    #[test]
    fn guarded_members_narrow_the_range() {
        // The loop hull is [1, N] but the only member is guarded to [2, N],
        // so A[i-1] stays in bounds.
        let p = parse(
            "
program g
param N
array A[N]
for i = 1, N {
  when [2, N] A[i] = f(A[i-1])
}
",
        )
        .unwrap();
        assert!(check_bounds(&p).is_empty(), "{:?}", check_bounds(&p));
    }

    #[test]
    fn fused_applications_stay_in_bounds() {
        {
            let (name, prog) = ("adi", gcr_apps_like_adi());
            let mut fused = prog.clone();
            gcr_core_like_fuse(&mut fused);
            let issues = check_bounds(&fused);
            assert!(issues.is_empty(), "{name}: {issues:?}");
        }
    }

    // The analysis crate sits below gcr-core/gcr-apps; use a local
    // stand-in kernel and rely on the root integration tests for the real
    // applications.
    fn gcr_apps_like_adi() -> Program {
        parse(
            "
program mini
param N
array X[N, N], A[N, N]
for i = 2, N {
  for j = 1, N {
    X[j, i] = X[j, i] - X[j, i-1] * A[j, i]
  }
}
for i = 1, N {
  for j = 2, N {
    X[j, i] = X[j, i] - X[j-1, i] * A[j, i]
  }
}
",
        )
        .unwrap()
    }

    fn gcr_core_like_fuse(_p: &mut Program) {
        // No-op at this layer; the root tests fuse for real.
    }
}
