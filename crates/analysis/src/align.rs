//! Alignment-factor constraints between a fused loop and an incoming loop.
//!
//! Fusing loop *G* into the earlier loop *F* with alignment factor `a` makes
//! G's iteration `x` execute at fused iteration `t = x + a`, with G's
//! statements placed after F's inside the body. Every pair of conflicting
//! references then induces a lower bound on `a`; read-read (and
//! reduce-reduce) pairs induce *reuse targets* — the alignment that brings
//! the two accesses into the same fused iteration. The paper's `FusibleTest`
//! takes the largest of all factors and declares the loops infusible when a
//! bound is not a constant (Figure 6 and the Figure 4(b) example).
//!
//! Constraints are derived per the reference classification of
//! [`crate::level`]:
//!
//! | F ref        | G ref        | conflict constraint                  |
//! |--------------|--------------|--------------------------------------|
//! | variant `c1` | variant `c2` (same dim) | `a ≥ c2 − c1`             |
//! | variant `c1` | invariant at `k`        | `a ≥ (k − c1) − G.lo`; unbounded ⇒ infusible |
//! | invariant at `k`, active until `T` | variant `c2` | `a ≥ T − (k − c2)`; unbounded ⇒ peel iteration `k − c2` |
//! | invariant until `T` | invariant from `L` | `a ≥ T − L`; unbounded ⇒ infusible |
//!
//! Cross-dimension (transposed) conflicts are conservatively infusible —
//! the paper handles the one program needing it (Tomcatv) by a hand loop
//! interchange, which our pipeline performs as a preliminary step.

use crate::access::AccessKind;
use crate::footprint::DimSet;
use crate::level::{LevelPos, LevelRef};
use gcr_ir::LinExpr;

/// Constraint contributed by one pair of references.
#[derive(Clone, Debug, PartialEq)]
pub enum AlignConstraint {
    /// No conflict and no reuse between the pair.
    None,
    /// Dependence: `a ≥ k`.
    Lower(i64),
    /// Reuse (no ordering): bringing the accesses together wants `a = k`.
    ReuseTarget(i64),
    /// The conflict involves only the single G iteration at this position;
    /// peeling it off makes the remainder fusible.
    PeelIteration(LinExpr),
    /// The pair requires an alignment that grows with a size parameter.
    Infusible(&'static str),
}

/// Classifies the required alignment between `f` (a reference of the fused
/// loop) and `g` (a reference of the incoming loop, pre-shift).
pub fn pairwise_constraint(f: &LevelRef, g: &LevelRef) -> AlignConstraint {
    if f.access.aref.array != g.access.aref.array {
        return AlignConstraint::None;
    }
    if !f.dims_may_overlap(g) {
        return AlignConstraint::None;
    }
    let conflict = f.access.kind.conflicts(g.access.kind);
    match (f.pos, g.pos) {
        (LevelPos::Variant { dim: d1, offset: c1 }, LevelPos::Variant { dim: d2, offset: c2 }) => {
            if d1 == d2 {
                if conflict {
                    AlignConstraint::Lower(c2 - c1)
                } else {
                    AlignConstraint::ReuseTarget(c2 - c1)
                }
            } else if conflict {
                AlignConstraint::Infusible("conflict between transposed accesses")
            } else {
                AlignConstraint::None
            }
        }
        (LevelPos::Variant { dim, offset: c1 }, LevelPos::Invariant) => {
            match g.dims.get(dim) {
                Some(DimSet::Point(k)) => {
                    // F touches element k at time k − c1; G touches it in
                    // every active iteration, the first at G.lo + a.
                    let bound = k.add_const(-c1).sub(&g.time.lo);
                    lower_or(bound, conflict, "whole second loop depends on a late element")
                }
                Some(DimSet::Span(_)) => {
                    if conflict {
                        AlignConstraint::Infusible("conflict between transposed accesses")
                    } else {
                        AlignConstraint::None
                    }
                }
                _ => AlignConstraint::None,
            }
        }
        (LevelPos::Invariant, LevelPos::Variant { dim, offset: c2 }) => {
            match f.dims.get(dim) {
                Some(DimSet::Point(k)) => {
                    // F touches element k until f.time.hi; G touches it only
                    // at iteration x = k − c2 (time x + a).
                    let g_iter = k.add_const(-c2);
                    let bound = f.time.hi.sub(&g_iter);
                    match bound.as_const() {
                        Some(c) => {
                            if conflict {
                                AlignConstraint::Lower(c)
                            } else {
                                AlignConstraint::None
                            }
                        }
                        None if conflict => {
                            if positive_growth(&bound) {
                                // Only that single iteration conflicts late.
                                AlignConstraint::PeelIteration(g_iter)
                            } else {
                                AlignConstraint::None
                            }
                        }
                        None => AlignConstraint::None,
                    }
                }
                Some(DimSet::Span(_)) => {
                    if conflict {
                        AlignConstraint::Infusible("conflict between transposed accesses")
                    } else {
                        AlignConstraint::None
                    }
                }
                _ => AlignConstraint::None,
            }
        }
        (LevelPos::Invariant, LevelPos::Invariant) => {
            // Both access fixed elements (which overlap): G entirely after F.
            let bound = f.time.hi.sub(&g.time.lo);
            lower_or(bound, conflict, "serializing dependence on an invariant location")
        }
    }
}

fn lower_or(bound: LinExpr, conflict: bool, why: &'static str) -> AlignConstraint {
    match bound.as_const() {
        Some(c) => {
            if conflict {
                AlignConstraint::Lower(c)
            } else {
                AlignConstraint::ReuseTarget(c)
            }
        }
        None => {
            if conflict && positive_growth(&bound) {
                AlignConstraint::Infusible(why)
            } else {
                AlignConstraint::None
            }
        }
    }
}

/// True when the expression grows with some parameter (the "unbounded
/// alignment" direction).
fn positive_growth(e: &LinExpr) -> bool {
    e.terms().iter().any(|&(_, c)| c > 0)
}

/// True when the loop (given its level refs) carries a dependence between
/// *different* iterations — in which case boundary iterations cannot be
/// moved past the rest of the loop (peeling would reorder them illegally).
pub fn has_loop_carried_self_dep(refs: &[LevelRef]) -> bool {
    for (i, r1) in refs.iter().enumerate() {
        for r2 in &refs[i..] {
            if r1.access.aref.array != r2.access.aref.array {
                continue;
            }
            if !r1.access.kind.conflicts(r2.access.kind) {
                continue;
            }
            if !r1.dims_may_overlap(r2) {
                continue;
            }
            match (r1.pos, r2.pos) {
                (
                    LevelPos::Variant { dim: d1, offset: c1 },
                    LevelPos::Variant { dim: d2, offset: c2 },
                ) => {
                    if d1 != d2 || c1 != c2 {
                        return true;
                    }
                }
                // An invariant location written or read against a variant
                // sweep couples distinct iterations.
                _ => return true,
            }
        }
    }
    false
}

/// Kinds re-exported for convenience in fusion code.
pub fn is_reuse_pair(a: AccessKind, b: AccessKind) -> bool {
    !a.conflicts(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::VarRanges;
    use crate::level::classify_level_refs;
    use gcr_ir::{Expr, GuardedStmt, LinExpr, ProgramBuilder, Range, Stmt, Subscript};

    /// Builds Figure 4(a)'s two loops and returns their level refs.
    /// loop1: for i = 3, N-2 { A[i] = f(A[i-1]) }
    /// loop2: for i = 3, N   { B[i] = g(A[i-2]) }
    fn fig4a() -> (Vec<LevelRef>, Vec<LevelRef>) {
        let mut b = ProgramBuilder::new("fig4a");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let bb = b.array("B", &[LinExpr::param(n)]);
        let i1 = b.var("i1");
        let i2 = b.var("i2");
        let rhs1 = b.read(a, vec![Subscript::var(i1, -1)]);
        let s1 = b.assign(a, vec![Subscript::var(i1, 0)], rhs1);
        let l1 = b.for_(i1, LinExpr::konst(3), LinExpr::param(n).add_const(-2), vec![s1]);
        let rhs2 = b.read(a, vec![Subscript::var(i2, -2)]);
        let s2 = b.assign(bb, vec![Subscript::var(i2, 0)], rhs2);
        let l2 = b.for_(i2, LinExpr::konst(3), LinExpr::param(n), vec![s2]);
        let r1 = Range::new(LinExpr::konst(3), LinExpr::param(n).add_const(-2));
        let r2 = Range::new(LinExpr::konst(3), LinExpr::param(n));
        let (Stmt::Loop(lp1), Stmt::Loop(lp2)) = (l1, l2) else { unreachable!() };
        let f: Vec<_> = lp1
            .body
            .iter()
            .flat_map(|m| classify_level_refs(m, i1, &r1, &VarRanges::new()))
            .collect();
        let g: Vec<_> = lp2
            .body
            .iter()
            .flat_map(|m| classify_level_refs(m, i2, &r2, &VarRanges::new()))
            .collect();
        (f, g)
    }

    #[test]
    fn variant_variant_flow_dep() {
        let (f, g) = fig4a();
        // f[1] = write A[i]; g[0] = read A[i-2]  => a >= -2
        let w = f.iter().find(|r| r.access.kind == AccessKind::Write).unwrap();
        let rd = g.iter().find(|r| r.access.kind == AccessKind::Read).unwrap();
        assert_eq!(pairwise_constraint(w, rd), AlignConstraint::Lower(-2));
    }

    #[test]
    fn different_arrays_no_constraint() {
        let (f, g) = fig4a();
        let w = f.iter().find(|r| r.access.kind == AccessKind::Write).unwrap();
        let wb = g.iter().find(|r| r.access.kind == AccessKind::Write).unwrap();
        assert_eq!(pairwise_constraint(w, wb), AlignConstraint::None);
    }

    #[test]
    fn read_read_is_reuse_target() {
        let (f, g) = fig4a();
        let r1 = f.iter().find(|r| r.access.kind == AccessKind::Read).unwrap();
        let r2 = g.iter().find(|r| r.access.kind == AccessKind::Read).unwrap();
        // A[i-1] vs A[i-2]: target a = (-2) - (-1) = -1
        assert_eq!(pairwise_constraint(r1, r2), AlignConstraint::ReuseTarget(-1));
    }

    /// Figure 4(b): loop writes A[2..N], statement reads A[N] and writes
    /// A[1], next loop reads A[i-1] — infusible.
    #[test]
    fn fig4b_is_infusible() {
        let mut b = ProgramBuilder::new("fig4b");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i1 = b.var("i1");
        let i2 = b.var("i2");
        let rhs1 = b.read(a, vec![Subscript::var(i1, -1)]);
        let s1 = b.assign(a, vec![Subscript::var(i1, 0)], rhs1);
        let l1 = b.for_(i1, LinExpr::konst(2), LinExpr::param(n), vec![s1]);
        let rhs2 = b.read(a, vec![Subscript::var(i2, -1)]);
        let s2 = b.assign(a, vec![Subscript::var(i2, 0)], rhs2);
        let l2 = b.for_(i2, LinExpr::konst(2), LinExpr::param(n), vec![s2]);
        let r = Range::new(LinExpr::konst(2), LinExpr::param(n));
        let (Stmt::Loop(lp1), Stmt::Loop(lp2)) = (l1, l2) else { unreachable!() };
        let _f: Vec<_> = lp1
            .body
            .iter()
            .flat_map(|m| classify_level_refs(m, i1, &r, &VarRanges::new()))
            .collect();
        // The intervening statement A[1] = A[N] becomes an embedded member
        // pinned at a late iteration; model it as an invariant ref active at
        // [N, N] (it must run after the loop's write of A[N]).
        let s_mid = {
            let rhs = b.read(a, vec![Subscript::Invariant(LinExpr::param(n))]);
            b.assign(a, vec![Subscript::konst(1)], rhs)
        };
        let member = GuardedStmt::guarded(s_mid, Range::new(LinExpr::param(n), LinExpr::param(n)));
        let mid_refs = classify_level_refs(&member, i1, &r, &VarRanges::new());
        let write_a1 = mid_refs.iter().find(|m| m.access.kind == AccessKind::Write).unwrap();
        let g: Vec<_> = lp2
            .body
            .iter()
            .flat_map(|m| classify_level_refs(m, i2, &r, &VarRanges::new()))
            .collect();
        let g_read = g.iter().find(|m| m.access.kind == AccessKind::Read).unwrap();
        // write A[1] active until time N vs read A[i-1] touching element 1
        // at iteration 2 => a >= N - 2: peelable single iteration.
        match pairwise_constraint(write_a1, g_read) {
            AlignConstraint::PeelIteration(pos) => assert_eq!(pos.as_const(), Some(2)),
            other => panic!("expected peel, got {other:?}"),
        }
        // ... but loop2 carries a self dependence (A[i] = f(A[i-1])), so the
        // peel is illegal and FusibleTest reports infusible.
        assert!(has_loop_carried_self_dep(&g));
        let _ = Expr::Const(0.0);
    }

    #[test]
    fn variant_vs_late_invariant_read_is_infusible() {
        // loop1 writes A[i]; a second loop reads A[N] every iteration.
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let c = b.array("C", &[LinExpr::param(n)]);
        let i1 = b.var("i1");
        let i2 = b.var("i2");
        let s1 = b.assign(a, vec![Subscript::var(i1, 0)], Expr::Const(1.0));
        let l1 = b.for_(i1, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
        let rhs = b.read(a, vec![Subscript::Invariant(LinExpr::param(n))]);
        let s2 = b.assign(c, vec![Subscript::var(i2, 0)], rhs);
        let l2 = b.for_(i2, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        let r = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let (Stmt::Loop(lp1), Stmt::Loop(lp2)) = (l1, l2) else { unreachable!() };
        let f = classify_level_refs(&lp1.body[0], i1, &r, &VarRanges::new());
        let g = classify_level_refs(&lp2.body[0], i2, &r, &VarRanges::new());
        let w = &f[0];
        let rd = g.iter().find(|m| m.access.kind == AccessKind::Read).unwrap();
        assert!(matches!(pairwise_constraint(w, rd), AlignConstraint::Infusible(_)));
    }

    #[test]
    fn no_self_dep_in_streaming_loop() {
        let (_, g) = fig4a();
        assert!(!has_loop_carried_self_dep(&g), "B[i] = g(A[i-2]) carries nothing");
    }

    #[test]
    fn scalar_serialization() {
        // loop1 writes scalar s each iteration; loop2 reads it: infusible.
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let sc = b.scalar("s");
        let c = b.array("C", &[LinExpr::param(n)]);
        let i1 = b.var("i1");
        let i2 = b.var("i2");
        let s1 = b.assign(sc, vec![], Expr::Const(1.0));
        let l1 = b.for_(i1, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
        let rhs = b.read_scalar(sc);
        let s2 = b.assign(c, vec![Subscript::var(i2, 0)], rhs);
        let l2 = b.for_(i2, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        let r = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let (Stmt::Loop(lp1), Stmt::Loop(lp2)) = (l1, l2) else { unreachable!() };
        let f = classify_level_refs(&lp1.body[0], i1, &r, &VarRanges::new());
        let g = classify_level_refs(&lp2.body[0], i2, &r, &VarRanges::new());
        let sw = &f[0];
        let sr = g.iter().find(|m| m.access.aref.array == sc).unwrap();
        assert!(matches!(pairwise_constraint(sw, sr), AlignConstraint::Infusible(_)));
    }

    #[test]
    fn reduce_reduce_same_op_is_reuse() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let sc = b.scalar("s");
        let i1 = b.var("i1");
        let i2 = b.var("i2");
        let r1 = b.read(a, vec![Subscript::var(i1, 0)]);
        let s1 = b.reduce(gcr_ir::ReduceOp::Sum, sc, vec![], r1);
        let l1 = b.for_(i1, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
        let r2 = b.read(a, vec![Subscript::var(i2, 0)]);
        let s2 = b.reduce(gcr_ir::ReduceOp::Sum, sc, vec![], r2);
        let l2 = b.for_(i2, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        let r = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let (Stmt::Loop(lp1), Stmt::Loop(lp2)) = (l1, l2) else { unreachable!() };
        let f = classify_level_refs(&lp1.body[0], i1, &r, &VarRanges::new());
        let g = classify_level_refs(&lp2.body[0], i2, &r, &VarRanges::new());
        let f_red = f.iter().find(|m| matches!(m.access.kind, AccessKind::Reduce(_))).unwrap();
        let g_red = g.iter().find(|m| matches!(m.access.kind, AccessKind::Reduce(_))).unwrap();
        // Same-operator reductions commute: no ordering constraint, and the
        // (non-constant) reuse bound contributes nothing.
        assert_eq!(pairwise_constraint(f_red, g_red), AlignConstraint::None);
    }
}
