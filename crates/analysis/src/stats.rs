//! Static program statistics, used to regenerate the paper's Figure 9
//! (application table: lines, loop nests, nest depths, number of arrays).

use gcr_ir::{Program, Stmt};

/// Summary statistics of one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramStats {
    /// Program name.
    pub name: String,
    /// Number of source lines when printed as LoopLang.
    pub lines: usize,
    /// Total number of loops.
    pub loops: usize,
    /// Number of top-level loop nests.
    pub nests: usize,
    /// Minimum nesting depth over top-level nests.
    pub min_depth: usize,
    /// Maximum nesting depth over top-level nests.
    pub max_depth: usize,
    /// Number of declared arrays (excluding scalars).
    pub arrays: usize,
    /// Number of declared scalars.
    pub scalars: usize,
    /// Number of assignment statements.
    pub assigns: usize,
}

/// Computes statistics for a program.
pub fn program_stats(prog: &Program) -> ProgramStats {
    fn depth_of(stmt: &Stmt) -> usize {
        match stmt {
            Stmt::Assign(_) => 0,
            Stmt::Loop(l) => 1 + l.body.iter().map(|gs| depth_of(&gs.stmt)).max().unwrap_or(0),
        }
    }
    let depths: Vec<usize> = prog
        .body
        .iter()
        .filter(|gs| matches!(gs.stmt, Stmt::Loop(_)))
        .map(|gs| depth_of(&gs.stmt))
        .collect();
    ProgramStats {
        name: prog.name.clone(),
        lines: gcr_ir::print::print_program(prog).lines().count(),
        loops: prog.count_loops(),
        nests: prog.count_nests(),
        min_depth: depths.iter().copied().min().unwrap_or(0),
        max_depth: depths.iter().copied().max().unwrap_or(0),
        arrays: prog.arrays.iter().filter(|a| !a.is_scalar()).count(),
        scalars: prog.arrays.iter().filter(|a| a.is_scalar()).count(),
        assigns: prog.count_assigns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::{Expr, LinExpr, ProgramBuilder, Subscript};

    #[test]
    fn counts_nests_and_depths() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        let sc = b.scalar("s");
        let i = b.var("i");
        let j = b.var("j");
        let s1 = b.assign(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)], Expr::Const(0.0));
        let inner = b.for_(j, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
        let outer = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![inner]);
        b.push(outer);
        let k = b.var("k");
        let s2 = b.assign(a, vec![Subscript::konst(1), Subscript::var(k, 0)], Expr::Const(1.0));
        let l2 = b.for_(k, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        b.push(l2);
        let _ = sc;
        let st = program_stats(&b.finish());
        assert_eq!(st.loops, 3);
        assert_eq!(st.nests, 2);
        assert_eq!(st.min_depth, 1);
        assert_eq!(st.max_depth, 2);
        assert_eq!(st.arrays, 1);
        assert_eq!(st.scalars, 1);
        assert_eq!(st.assigns, 2);
        assert!(st.lines > 5);
    }
}
