//! The data-sharing graph over top-level statements.
//!
//! The paper's related work (Gao et al., Kennedy & McKinley) formulates
//! global fusion over a graph whose nodes are loops and whose edges carry
//! data sharing; Ding & Kennedy extend it to hypergraphs where an edge (an
//! array) connects every loop that touches it. This module materializes
//! that view for inspection: per top-level statement, the arrays it
//! touches, and a Graphviz rendering (`gcrc --dot`) where edges are
//! labelled with the shared arrays.

use crate::access::{collect_accesses, AccessKind};
use gcr_ir::{ArrayId, Program, Stmt};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One node of the sharing graph.
#[derive(Clone, Debug)]
pub struct SharingNode {
    /// Index in the top-level statement list.
    pub index: usize,
    /// Short label ("loop i" or "stmt").
    pub label: String,
    /// Arrays read (and not written).
    pub reads: BTreeSet<ArrayId>,
    /// Arrays written (or reduced).
    pub writes: BTreeSet<ArrayId>,
}

impl SharingNode {
    /// All arrays touched.
    pub fn touched(&self) -> BTreeSet<ArrayId> {
        self.reads.union(&self.writes).copied().collect()
    }
}

/// Builds the sharing graph nodes for the top-level statement list.
pub fn sharing_nodes(prog: &Program) -> Vec<SharingNode> {
    prog.body
        .iter()
        .enumerate()
        .map(|(index, gs)| {
            let label = match &gs.stmt {
                Stmt::Loop(l) => format!("loop {}", prog.var(l.var).name),
                Stmt::Assign(_) => "stmt".to_string(),
            };
            let mut accs = Vec::new();
            collect_accesses(&gs.stmt, &mut accs);
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            for a in accs {
                if matches!(a.kind, AccessKind::Read) {
                    reads.insert(a.aref.array);
                } else {
                    writes.insert(a.aref.array);
                }
            }
            reads = reads.difference(&writes).copied().collect();
            SharingNode { index, label, reads, writes }
        })
        .collect()
}

/// Renders the sharing graph in Graphviz DOT format: one node per
/// top-level statement, an edge for each consecutive-sharing pair labelled
/// with the shared arrays (solid when a dependence direction exists —
/// writer → toucher — dashed for read-read sharing).
pub fn render_dot(prog: &Program) -> String {
    let nodes = sharing_nodes(prog);
    let mut out = String::from("digraph sharing {\n  rankdir=TB;\n  node [shape=box];\n");
    for n in &nodes {
        let arrays: Vec<String> = n.touched().iter().map(|&a| prog.array(a).name.clone()).collect();
        let _ = writeln!(
            out,
            "  n{} [label=\"[{}] {}\\n{}\"];",
            n.index,
            n.index,
            n.label,
            arrays.join(", ")
        );
    }
    for (i, a) in nodes.iter().enumerate() {
        for b in nodes.iter().skip(i + 1) {
            let dep: Vec<String> = a
                .writes
                .union(&b.writes)
                .filter(|x| a.touched().contains(x) && b.touched().contains(x))
                .map(|&x| prog.array(x).name.clone())
                .collect();
            let rr: Vec<String> =
                a.reads.intersection(&b.reads).map(|&x| prog.array(x).name.clone()).collect();
            if !dep.is_empty() {
                let _ =
                    writeln!(out, "  n{} -> n{} [label=\"{}\"];", a.index, b.index, dep.join(","));
            }
            if !rr.is_empty() {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dashed, dir=none, label=\"{}\"];",
                    a.index,
                    b.index,
                    rr.join(",")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_frontend::parse;

    fn demo() -> Program {
        parse(
            "
program g
param N
array A[N], B[N], C[N]

for i = 1, N {
  A[i] = f(C[i])
}
for i = 1, N {
  B[i] = g(A[i], C[i])
}
",
        )
        .unwrap()
    }

    #[test]
    fn nodes_classify_reads_and_writes() {
        let p = demo();
        let nodes = sharing_nodes(&p);
        assert_eq!(nodes.len(), 2);
        let a = p.array_by_name("A").unwrap();
        let c = p.array_by_name("C").unwrap();
        assert!(nodes[0].writes.contains(&a));
        assert!(nodes[0].reads.contains(&c));
        assert!(nodes[1].reads.contains(&a));
    }

    #[test]
    fn dot_contains_dependence_and_reuse_edges() {
        let p = demo();
        let dot = render_dot(&p);
        assert!(dot.starts_with("digraph sharing {"));
        assert!(dot.contains("n0 -> n1 [label=\"A\"]"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains('C'), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
