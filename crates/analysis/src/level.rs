//! Classification of references relative to one fusion level.
//!
//! When fusing at a loop level with variable `t`, every array reference in a
//! member statement is either **variant** — some dimension is subscripted
//! `t + k` — or **invariant** (constant/border access repeated by every
//! active iteration). A [`LevelRef`] carries this classification, the
//! per-dimension index sets for overlap testing, and the member's active
//! *time range* (the level iterations in which the access occurs).

use crate::access::{collect_accesses, AccessInfo};
use crate::footprint::{extend_var_ranges, DimSet, VarRanges};
use gcr_ir::{GuardedStmt, Range, Subscript, VarId};

/// Position of a reference relative to the level variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelPos {
    /// Dimension `dim` is subscripted `t + offset`.
    Variant {
        /// Which data dimension carries the level variable.
        dim: usize,
        /// The constant offset `k` in `t + k`.
        offset: i64,
    },
    /// No dimension uses the level variable.
    Invariant,
}

/// A reference seen from one fusion level.
#[derive(Clone, Debug)]
pub struct LevelRef {
    /// The underlying access.
    pub access: AccessInfo,
    /// Variant or invariant at this level.
    pub pos: LevelPos,
    /// Index set per data dimension.
    pub dims: Vec<DimSet>,
    /// Level iterations in which the access is active.
    pub time: Range,
}

impl LevelRef {
    /// Variant offset, if variant.
    pub fn variant_offset(&self) -> Option<i64> {
        match self.pos {
            LevelPos::Variant { offset, .. } => Some(offset),
            LevelPos::Invariant => None,
        }
    }

    /// True when every dimension of `self` may overlap the corresponding
    /// dimension of `other` (same array assumed). `level_range` bounds the
    /// level variable for `LevelVar` dims — each side uses its own time
    /// range for its own level-var dims.
    pub fn dims_may_overlap(&self, other: &LevelRef) -> bool {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        self.dims.iter().zip(&other.dims).all(|(a, b)| {
            let ra = a.span(&self.time);
            let rb = b.span(&other.time);
            crate::footprint::ranges_may_overlap(&ra, &rb)
        })
    }
}

/// Classifies every access in a member statement of a level-`level` loop.
///
/// * `member` — a direct body element of the loop (its guard, if any,
///   restricts the level iterations in which it runs);
/// * `loop_range` — the loop's full iteration range;
/// * `outer_ranges` — iteration ranges of loop variables declared outside
///   this loop (inner ones are discovered by walking `member`).
pub fn classify_level_refs(
    member: &GuardedStmt,
    level: VarId,
    loop_range: &Range,
    outer_ranges: &VarRanges,
) -> Vec<LevelRef> {
    let time = member.guard.clone().unwrap_or_else(|| loop_range.clone());
    let mut ranges = outer_ranges.clone();
    extend_var_ranges(&member.stmt, &mut ranges);
    let mut accesses = Vec::new();
    collect_accesses(&member.stmt, &mut accesses);
    accesses
        .into_iter()
        .map(|access| {
            let mut pos = LevelPos::Invariant;
            for (d, sub) in access.aref.subs.iter().enumerate() {
                if let Subscript::Var { var, offset } = sub {
                    if *var == level {
                        pos = LevelPos::Variant { dim: d, offset: *offset };
                        break;
                    }
                }
            }
            let dims = access
                .aref
                .subs
                .iter()
                .map(|s| DimSet::from_subscript(s, level, &ranges))
                .collect();
            LevelRef { access, pos, dims, time: time.clone() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use gcr_ir::{LinExpr, ProgramBuilder, Stmt, Subscript};

    #[test]
    fn classifies_variant_and_invariant() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        let i = b.var("i");
        let j = b.var("j");
        // inner loop over j: A[j, i] = A[1, i-1]
        let rhs = b.read(a, vec![Subscript::konst(1), Subscript::var(i, -1)]);
        let s = b.assign(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)], rhs);
        let inner = b.for_(j, LinExpr::konst(1), LinExpr::param(n), vec![s]);
        let member = gcr_ir::GuardedStmt::bare(inner);
        let loop_range = Range::new(LinExpr::konst(2), LinExpr::param(n));
        let refs = classify_level_refs(&member, i, &loop_range, &VarRanges::new());
        assert_eq!(refs.len(), 2);
        // read A[1, i-1]: variant at dim 1 with offset -1
        assert_eq!(refs[0].pos, LevelPos::Variant { dim: 1, offset: -1 });
        assert_eq!(refs[0].access.kind, AccessKind::Read);
        assert_eq!(refs[0].dims[0], DimSet::Point(LinExpr::konst(1)));
        // write A[j, i]: variant at dim 1, offset 0; dim 0 spans inner loop
        assert_eq!(refs[1].pos, LevelPos::Variant { dim: 1, offset: 0 });
        assert_eq!(refs[1].dims[0], DimSet::Span(Range::new(LinExpr::konst(1), LinExpr::param(n))));
        assert_eq!(refs[1].time, loop_range);
    }

    #[test]
    fn guard_narrows_time() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let s = b.assign(a, vec![Subscript::var(i, 0)], gcr_ir::Expr::Const(0.0));
        let member = gcr_ir::GuardedStmt::guarded(s, Range::consts(2, 2));
        let loop_range = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let refs = classify_level_refs(&member, i, &loop_range, &VarRanges::new());
        assert_eq!(refs[0].time, Range::consts(2, 2));
    }

    #[test]
    fn scalar_is_invariant_with_no_dims() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let sc = b.scalar("s");
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, 0)]);
        let s = b.reduce(gcr_ir::ReduceOp::Sum, sc, vec![], rhs);
        let member = gcr_ir::GuardedStmt::bare(s);
        let loop_range = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let refs = classify_level_refs(&member, i, &loop_range, &VarRanges::new());
        let scalar_ref = refs.iter().find(|r| r.access.aref.array == sc).unwrap();
        assert_eq!(scalar_ref.pos, LevelPos::Invariant);
        assert!(scalar_ref.dims.is_empty());
    }

    #[test]
    fn overlap_respects_points() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        let i = b.var("i");
        let s1 =
            b.assign(a, vec![Subscript::konst(1), Subscript::var(i, 0)], gcr_ir::Expr::Const(0.0));
        let s2 =
            b.assign(a, vec![Subscript::konst(2), Subscript::var(i, 0)], gcr_ir::Expr::Const(0.0));
        let lr = Range::new(LinExpr::konst(1), LinExpr::param(n));
        let m1 = gcr_ir::GuardedStmt::bare(s1);
        let m2 = gcr_ir::GuardedStmt::bare(s2);
        let r1 = &classify_level_refs(&m1, i, &lr, &VarRanges::new())[0];
        let r2 = &classify_level_refs(&m2, i, &lr, &VarRanges::new())[0];
        assert!(!r1.dims_may_overlap(r2), "row 1 vs row 2 disjoint");
        assert!(r1.dims_may_overlap(r1));
        let _ = Stmt::Assign;
    }
}
